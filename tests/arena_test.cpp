// Unit tests for the backward-pass memory planner (autograd/arena.h):
// plan_buffers interval assignment (no aliasing of overlapping lifetimes,
// exact peak bytes on known graphs, determinism, validation) and the
// thread-local GradArena (slot reuse across passes, fallback when a slot is
// still referenced).
#include <gtest/gtest.h>

#include <vector>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace bd::ag {
namespace {

bool overlaps(const BufferLifetime& a, const BufferLifetime& b) {
  return a.born <= b.dies && b.born <= a.dies;
}

/// The invariant the planner must uphold for any input: two lifetimes whose
/// [born, dies] intervals intersect never share a slot, and every slot is
/// at least as large as its largest occupant.
void check_plan_invariants(const std::vector<BufferLifetime>& lifetimes,
                           const BufferPlan& plan) {
  ASSERT_EQ(plan.slot.size(), lifetimes.size());
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    ASSERT_GE(plan.slot[i], 0);
    ASSERT_LT(static_cast<std::size_t>(plan.slot[i]), plan.slot_numel.size());
    EXPECT_GE(plan.slot_numel[static_cast<std::size_t>(plan.slot[i])],
              lifetimes[i].numel);
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      if (plan.slot[i] == plan.slot[j]) {
        EXPECT_FALSE(overlaps(lifetimes[i], lifetimes[j]))
            << "lifetimes " << i << " and " << j << " overlap in time but "
            << "share slot " << plan.slot[i];
      }
    }
  }
  std::int64_t total = 0;
  for (const std::int64_t n : plan.slot_numel) total += n;
  EXPECT_EQ(plan.peak_bytes,
            total * static_cast<std::int64_t>(sizeof(float)));
}

TEST(PlanBuffers, EmptyPlanIsEmpty) {
  const BufferPlan plan = plan_buffers({});
  EXPECT_TRUE(plan.slot.empty());
  EXPECT_TRUE(plan.slot_numel.empty());
  EXPECT_EQ(plan.peak_bytes, 0);
  EXPECT_EQ(plan.naive_bytes, 0);
}

TEST(PlanBuffers, DisjointLifetimesShareOneSlot) {
  // A chain a -> b -> c where each gradient dies as the next is born is the
  // common backward shape: one slot should carry all three.
  const std::vector<BufferLifetime> chain = {
      {100, 0, 1}, {80, 2, 3}, {60, 4, 5}};
  const BufferPlan plan = plan_buffers(chain);
  check_plan_invariants(chain, plan);
  EXPECT_EQ(plan.slot_numel.size(), 1u);
  EXPECT_EQ(plan.slot_numel[0], 100);
  EXPECT_EQ(plan.peak_bytes, 100 * static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(plan.naive_bytes,
            (100 + 80 + 60) * static_cast<std::int64_t>(sizeof(float)));
}

TEST(PlanBuffers, OverlappingLifetimesNeverAlias) {
  // Diamond: both branch gradients are live at once, so two slots minimum.
  const std::vector<BufferLifetime> diamond = {
      {50, 0, 3}, {50, 1, 2}, {50, 4, 5}};
  const BufferPlan plan = plan_buffers(diamond);
  check_plan_invariants(diamond, plan);
  EXPECT_NE(plan.slot[0], plan.slot[1]);
  EXPECT_EQ(plan.slot_numel.size(), 2u);
  EXPECT_EQ(plan.peak_bytes, 100 * static_cast<std::int64_t>(sizeof(float)));
}

TEST(PlanBuffers, KnownGraphPeakBytes) {
  // Hand-worked example. Lifetimes in born order with intervals:
  //   L0 [0,2] 64   L1 [1,1] 16   L2 [2,4] 64   L3 [3,3] 256   L4 [5,6] 8
  // Step-by-step best fit: L0 -> new slot A(64). L1 overlaps L0 -> new slot
  // B(16). L2 overlaps L0, fits B? no (16 < 64) -> grow largest free slot
  // B to 64. L3 overlaps L2; A free, too small -> grow A to 256. L4: all
  // free; best fit = smallest sufficient = slot A? A=256, B=64 -> B.
  // Final capacities: A=256, B=64 -> peak = 320 floats.
  const std::vector<BufferLifetime> lifetimes = {
      {64, 0, 2}, {16, 1, 1}, {64, 2, 4}, {256, 3, 3}, {8, 5, 6}};
  const BufferPlan plan = plan_buffers(lifetimes);
  check_plan_invariants(lifetimes, plan);
  EXPECT_EQ(plan.slot_numel.size(), 2u);
  EXPECT_EQ(plan.peak_bytes,
            (256 + 64) * static_cast<std::int64_t>(sizeof(float)));
  EXPECT_EQ(plan.naive_bytes,
            (64 + 16 + 64 + 256 + 8) * static_cast<std::int64_t>(sizeof(float)));
  EXPECT_LT(plan.peak_bytes, plan.naive_bytes);
}

TEST(PlanBuffers, UnsortedInputIsProcessedInBornOrder) {
  // Same lifetimes as the chain test but permuted: the plan must be
  // identical up to the permutation (stable sort by born, then index).
  const std::vector<BufferLifetime> permuted = {
      {60, 4, 5}, {100, 0, 1}, {80, 2, 3}};
  const BufferPlan plan = plan_buffers(permuted);
  check_plan_invariants(permuted, plan);
  EXPECT_EQ(plan.slot_numel.size(), 1u);
  EXPECT_EQ(plan.slot_numel[0], 100);
}

TEST(PlanBuffers, DeterministicAcrossCalls) {
  const std::vector<BufferLifetime> lifetimes = {
      {32, 0, 5}, {32, 1, 2}, {48, 2, 3}, {16, 3, 4}, {64, 4, 6}, {8, 6, 7}};
  const BufferPlan a = plan_buffers(lifetimes);
  const BufferPlan b = plan_buffers(lifetimes);
  EXPECT_EQ(a.slot, b.slot);
  EXPECT_EQ(a.slot_numel, b.slot_numel);
  EXPECT_EQ(a.peak_bytes, b.peak_bytes);
  check_plan_invariants(lifetimes, a);
}

TEST(PlanBuffers, ValidationThrows) {
  EXPECT_THROW(plan_buffers({{10, 3, 2}}), std::invalid_argument);
  EXPECT_THROW(plan_buffers({{-1, 0, 1}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// GradArena
// ---------------------------------------------------------------------------

TEST(GradArena, ReusesStorageAcrossPasses) {
  GradArena& arena = GradArena::local();
  arena.release_storage();
  arena.reset_stats();

  const std::vector<BufferLifetime> lifetimes = {{24, 0, 1}, {24, 0, 1}};
  const BufferPlan plan = plan_buffers(lifetimes);

  arena.prepare(plan);
  EXPECT_EQ(arena.stats().passes, 1u);
  EXPECT_EQ(arena.stats().buffers_planned, 2u);
  const std::uint64_t first_allocs = arena.stats().slot_allocs;
  EXPECT_GT(first_allocs, 0u);
  {
    Tensor a = arena.acquire(0, {4, 6});
    Tensor b = arena.acquire(1, {24});
    ASSERT_EQ(a.numel(), 24);
    ASSERT_EQ(b.numel(), 24);
    EXPECT_NE(a.data(), b.data()) << "overlapping lifetimes aliased storage";
    a[0] = 1.0f;
    b[0] = 2.0f;
    EXPECT_EQ(a[0], 1.0f);
  }

  // Second pass, same plan: no new storage, everything reused.
  arena.prepare(plan);
  EXPECT_EQ(arena.stats().passes, 2u);
  EXPECT_EQ(arena.stats().slot_allocs, first_allocs);
  EXPECT_GE(arena.stats().buffers_reused, 2u);
  EXPECT_EQ(arena.stats().last_peak_bytes, plan.peak_bytes);
}

TEST(GradArena, FallbackWhenSlotStillReferenced) {
  GradArena& arena = GradArena::local();
  arena.release_storage();
  arena.reset_stats();

  const BufferPlan plan = plan_buffers({{8, 0, 1}});
  arena.prepare(plan);
  Tensor held = arena.acquire(0, {8});  // keep the slot referenced

  arena.prepare(plan);
  Tensor fresh = arena.acquire(0, {8});
  EXPECT_NE(fresh.data(), held.data())
      << "arena handed out a slot that was still alive";
  EXPECT_GE(arena.stats().fallback_allocs, 1u);
}

TEST(GradArena, BackwardPassesPopulateStats) {
  // End to end: two identical backward passes through a small graph must
  // plan interior buffers and reuse them on the second pass.
  GradArena& arena = GradArena::local();
  arena.release_storage();
  arena.reset_stats();

  for (int pass = 0; pass < 2; ++pass) {
    Var a(Tensor({2, 3}, {1, 2, 3, 4, 5, 6}), /*requires_grad=*/true);
    Var loss = sum_all(mul(relu(a), sigmoid(a)));
    loss.backward();
  }
  const ArenaStats& s = arena.stats();
  EXPECT_EQ(s.passes, 2u);
  EXPECT_GT(s.buffers_planned, 0u);
  EXPECT_GT(s.buffers_reused, 0u);
  EXPECT_GT(s.last_peak_bytes, 0);
  EXPECT_GE(s.max_peak_bytes, s.last_peak_bytes);
  EXPECT_EQ(s.fallback_allocs, 0u);
}

}  // namespace
}  // namespace bd::ag
