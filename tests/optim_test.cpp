// Optimizer tests: SGD semantics (plain, momentum, weight decay), Adam,
// gradient clipping, and the two-step SAM protocol.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace bd::optim {
namespace {

/// Minimizes f(w) = 0.5 * ||w - target||^2; gradient is (w - target).
ag::Var quadratic_loss(ag::Var& w, const Tensor& target) {
  ag::Var diff = ag::sub(w, ag::Var(target));
  return ag::mul_scalar(ag::sum_all(ag::mul(diff, diff)), 0.5f);
}

TEST(Sgd, PlainStepMatchesFormula) {
  ag::Var w(Tensor({2}, {1.0f, -2.0f}), true);
  Sgd sgd({&w}, {/*lr=*/0.1f, 0.0f, 0.0f});
  quadratic_loss(w, Tensor({2}, {0.0f, 0.0f})).backward();
  sgd.step();
  // w <- w - lr * w = 0.9 * w
  EXPECT_FLOAT_EQ(w.value()[0], 0.9f);
  EXPECT_FLOAT_EQ(w.value()[1], -1.8f);
}

TEST(Sgd, ConvergesToTarget) {
  ag::Var w(Tensor({3}, {5.0f, -4.0f, 2.0f}), true);
  const Tensor target({3}, {1.0f, 1.0f, 1.0f});
  Sgd sgd({&w}, {0.2f, 0.0f, 0.0f});
  for (int i = 0; i < 100; ++i) {
    sgd.zero_grad();
    quadratic_loss(w, target).backward();
    sgd.step();
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w.value()[i], 1.0f, 1e-4);
  }
}

TEST(Sgd, MomentumAcceleratesFirstSteps) {
  // With momentum, the second step is larger than plain SGD's.
  ag::Var w1(Tensor({1}, {1.0f}), true);
  ag::Var w2(Tensor({1}, {1.0f}), true);
  Sgd plain({&w1}, {0.1f, 0.0f, 0.0f});
  Sgd momentum({&w2}, {0.1f, 0.9f, 0.0f});
  const Tensor target({1}, {0.0f});
  for (int i = 0; i < 2; ++i) {
    plain.zero_grad();
    quadratic_loss(w1, target).backward();
    plain.step();
    momentum.zero_grad();
    quadratic_loss(w2, target).backward();
    momentum.step();
  }
  EXPECT_LT(w2.value()[0], w1.value()[0]);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  ag::Var w(Tensor({1}, {1.0f}), true);
  Sgd sgd({&w}, {0.1f, 0.0f, 0.5f});
  // Zero data gradient: decay alone should shrink w.
  ag::Var loss = ag::mul_scalar(ag::sum_all(w), 0.0f);
  loss.backward();
  sgd.step();
  EXPECT_FLOAT_EQ(w.value()[0], 1.0f - 0.1f * 0.5f);
}

TEST(Sgd, SkipsParamsWithoutGrad) {
  ag::Var w(Tensor({1}, {1.0f}), true);
  Sgd sgd({&w}, {0.1f, 0.0f, 0.0f});
  EXPECT_NO_THROW(sgd.step());
  EXPECT_FLOAT_EQ(w.value()[0], 1.0f);
}

TEST(Optimizer, RejectsNullParam) {
  EXPECT_THROW(Sgd({nullptr}, {}), std::invalid_argument);
  ag::Var undefined;
  EXPECT_THROW(Sgd({&undefined}, {}), std::invalid_argument);
}

TEST(Optimizer, GradNormAndClipping) {
  ag::Var w(Tensor({2}, {3.0f, 4.0f}), true);
  Sgd sgd({&w}, {0.1f, 0.0f, 0.0f});
  quadratic_loss(w, Tensor({2}, {0.0f, 0.0f})).backward();
  EXPECT_NEAR(sgd.grad_norm(), 5.0f, 1e-5);  // grad = (3,4)
  sgd.clip_grad_norm(1.0f);
  EXPECT_NEAR(sgd.grad_norm(), 1.0f, 1e-5);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-5);
}

TEST(Adam, ConvergesToTarget) {
  ag::Var w(Tensor({3}, {5.0f, -4.0f, 2.0f}), true);
  const Tensor target({3}, {1.0f, 1.0f, 1.0f});
  Adam adam({&w}, {0.2f});
  for (int i = 0; i < 200; ++i) {
    adam.zero_grad();
    quadratic_loss(w, target).backward();
    adam.step();
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w.value()[i], 1.0f, 1e-2);
  }
}

TEST(Adam, FirstStepIsLrSized) {
  // Adam's bias-corrected first step ~= lr * sign(grad).
  ag::Var w(Tensor({1}, {1.0f}), true);
  Adam adam({&w}, {0.1f});
  quadratic_loss(w, Tensor({1}, {0.0f})).backward();
  adam.step();
  EXPECT_NEAR(w.value()[0], 0.9f, 1e-3);
}

TEST(Sam, PerturbAndRestore) {
  ag::Var w(Tensor({2}, {3.0f, 4.0f}), true);
  Sam sam(std::make_unique<Sgd>(std::vector<ag::Var*>{&w},
                                SgdOptions{0.0f, 0.0f, 0.0f}),
          /*rho=*/0.5f);
  quadratic_loss(w, Tensor({2}, {0.0f, 0.0f})).backward();
  sam.first_step();
  // Perturbed by rho * g/||g|| = 0.5 * (0.6, 0.8).
  EXPECT_NEAR(w.value()[0], 3.3f, 1e-5);
  EXPECT_NEAR(w.value()[1], 4.4f, 1e-5);

  sam.zero_grad();
  quadratic_loss(w, Tensor({2}, {0.0f, 0.0f})).backward();
  sam.second_step();
  // lr = 0 base optimizer: weights restored exactly.
  EXPECT_NEAR(w.value()[0], 3.0f, 1e-5);
  EXPECT_NEAR(w.value()[1], 4.0f, 1e-5);
}

TEST(Sam, ProtocolEnforced) {
  ag::Var w(Tensor({1}, {1.0f}), true);
  Sam sam(std::make_unique<Sgd>(std::vector<ag::Var*>{&w},
                                SgdOptions{0.1f, 0.0f, 0.0f}),
          0.1f);
  EXPECT_THROW(sam.second_step(), std::logic_error);
  quadratic_loss(w, Tensor({1}, {0.0f})).backward();
  sam.first_step();
  EXPECT_THROW(sam.first_step(), std::logic_error);
}

TEST(Sam, ConvergesOnQuadratic) {
  ag::Var w(Tensor({2}, {4.0f, -3.0f}), true);
  const Tensor target({2}, {1.0f, 2.0f});
  Sam sam(std::make_unique<Sgd>(std::vector<ag::Var*>{&w},
                                SgdOptions{0.1f, 0.0f, 0.0f}),
          0.05f);
  for (int i = 0; i < 200; ++i) {
    sam.zero_grad();
    quadratic_loss(w, target).backward();
    sam.first_step();
    sam.zero_grad();
    quadratic_loss(w, target).backward();
    sam.second_step();
  }
  EXPECT_NEAR(w.value()[0], 1.0f, 0.05f);
  EXPECT_NEAR(w.value()[1], 2.0f, 0.05f);
}

TEST(Sam, RejectsBadConstruction) {
  EXPECT_THROW(Sam(nullptr, 0.1f), std::invalid_argument);
  ag::Var w(Tensor({1}, {1.0f}), true);
  EXPECT_THROW(Sam(std::make_unique<Sgd>(std::vector<ag::Var*>{&w},
                                         SgdOptions{}),
                   0.0f),
               std::invalid_argument);
}

}  // namespace
}  // namespace bd::optim
