// Model zoo tests: output shapes, staged features, parameter counts,
// state-dict round trips, factory behaviour, and trainability (a few SGD
// steps reduce the loss on a tiny separable problem) - parameterized over
// all four architectures.
#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "models/factory.h"
#include "nn/layers.h"
#include "optim/optim.h"
#include "tensor/ops.h"

namespace bd::models {
namespace {

Tensor random_images(std::int64_t n, std::int64_t hw, Rng& rng) {
  Tensor t({n, 3, hw, hw});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform());
  }
  return t;
}

class ModelZooTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZooTest, ForwardShape) {
  Rng rng(1);
  ModelSpec spec;
  spec.arch = GetParam();
  spec.num_classes = 7;
  spec.base_width = 8;
  auto model = make_model(spec, rng);
  model->set_training(false);
  const Tensor x = random_images(2, 12, rng);
  const Tensor logits = model->forward(ag::Var(x)).value();
  EXPECT_EQ(logits.shape(), (Shape{2, 7}));
}

TEST_P(ModelZooTest, StagedFeaturesDeepenAndShrink) {
  Rng rng(2);
  ModelSpec spec;
  spec.arch = GetParam();
  spec.base_width = 8;
  auto model = make_model(spec, rng);
  model->set_training(false);
  const Tensor x = random_images(1, 16, rng);
  const auto staged = model->forward_with_features(ag::Var(x));
  ASSERT_EQ(staged.stage_features.size(), 3u);
  // Channels increase, spatial size decreases monotonically.
  for (std::size_t i = 0; i + 1 < staged.stage_features.size(); ++i) {
    const auto& a = staged.stage_features[i].value().shape();
    const auto& b = staged.stage_features[i + 1].value().shape();
    EXPECT_LE(a[1], b[1]);
    EXPECT_GE(a[2], b[2]);
  }
}

TEST_P(ModelZooTest, StateDictRoundTripPreservesOutputs) {
  Rng rng(3);
  ModelSpec spec;
  spec.arch = GetParam();
  spec.base_width = 8;
  auto a = make_model(spec, rng);
  auto b = make_model(spec, rng);  // different init
  a->set_training(false);
  b->set_training(false);

  const Tensor x = random_images(2, 12, rng);
  const Tensor ya = a->forward(ag::Var(x)).value();
  b->load_state_dict(a->state_dict());
  const Tensor yb = b->forward(ag::Var(x)).value();
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
  }
}

TEST_P(ModelZooTest, FewStepsReduceLoss) {
  Rng rng(4);
  ModelSpec spec;
  spec.arch = GetParam();
  spec.num_classes = 2;
  spec.base_width = 8;
  auto model = make_model(spec, rng);
  model->set_training(true);

  // Trivially separable batch: class 0 dark, class 1 bright.
  Tensor x({8, 3, 12, 12});
  std::vector<std::int64_t> labels(8);
  for (std::int64_t i = 0; i < 8; ++i) {
    const float level = (i % 2 == 0) ? 0.1f : 0.9f;
    labels[static_cast<std::size_t>(i)] = i % 2;
    float* img = x.data() + i * 3 * 144;
    for (std::int64_t j = 0; j < 3 * 144; ++j) {
      img[j] = level + static_cast<float>(rng.uniform(-0.05, 0.05));
    }
  }

  optim::Sgd sgd(model->parameters(), {0.05f, 0.9f, 0.0f});
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 12; ++step) {
    sgd.zero_grad();
    ag::Var loss = ag::cross_entropy(model->forward(ag::Var(x)), labels);
    loss.backward();
    sgd.step();
    if (step == 0) first_loss = loss.value()[0];
    last_loss = loss.value()[0];
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST_P(ModelZooTest, HasConvAndBnLayers) {
  Rng rng(5);
  ModelSpec spec;
  spec.arch = GetParam();
  spec.base_width = 8;
  auto model = make_model(spec, rng);
  EXPECT_GT(model->modules_of_type<nn::Conv2d>().size(), 2u);
  EXPECT_GT(model->modules_of_type<nn::BatchNorm2d>().size(), 1u);
  EXPECT_GT(model->parameter_count(), 1000);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ModelZooTest,
                         ::testing::Values("preactresnet", "vgg",
                                           "efficientnet", "mobilenet"));

TEST(Factory, RejectsUnknownArch) {
  Rng rng(6);
  ModelSpec spec;
  spec.arch = "alexnet";
  EXPECT_THROW(make_model(spec, rng), std::invalid_argument);
}

TEST(Factory, KnownArchitecturesListMatchesFactory) {
  Rng rng(7);
  for (const auto& arch : known_architectures()) {
    ModelSpec spec;
    spec.arch = arch;
    spec.base_width = 8;
    EXPECT_NO_THROW(make_model(spec, rng));
  }
}

TEST(PreActResNet, DeterministicGivenSeed) {
  ModelSpec spec;
  spec.arch = "preactresnet";
  spec.base_width = 8;
  Rng r1(42), r2(42);
  auto a = make_model(spec, r1);
  auto b = make_model(spec, r2);
  const auto sa = a->state_dict();
  const auto sb = b->state_dict();
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }
}

}  // namespace
}  // namespace bd::models
