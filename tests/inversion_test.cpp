// Trigger-inversion tests: optimization mechanics, applier semantics, and
// the target-class scan on a genuinely backdoored model.
#include <gtest/gtest.h>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "data/synth.h"
#include "defense/inversion.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "tensor/ops.h"

namespace bd::defense {
namespace {

/// A BadNets-backdoored tiny model shared by the expensive tests.
struct BackdooredFixture {
  Rng rng{777};
  data::TrainTest data;
  attack::BadNetsTrigger trigger;
  models::ModelSpec spec{"vgg", 10, 3, 8};
  std::unique_ptr<models::Classifier> model;
  data::ImageDataset spc;

  BackdooredFixture()
      : data([this] {
          data::SynthConfig cfg;
          cfg.height = cfg.width = 10;
          cfg.train_per_class = 40;
          cfg.test_per_class = 8;
          return data::make_synth_cifar(cfg, rng);
        }()),
        model(models::make_model(spec, rng)),
        spc(data.train.sample_per_class(6, rng)) {
    attack::PoisonConfig pcfg;  // target class 0
    const auto poisoned =
        attack::poison_training_set(data.train, trigger, pcfg, rng);
    eval::TrainConfig tc;
    tc.epochs = 3;
    eval::train_classifier(*model, poisoned, tc, rng);
  }
};

BackdooredFixture& fixture() {
  static BackdooredFixture f;
  return f;
}

TEST(Inversion, OutputsWellFormedTrigger) {
  auto& f = fixture();
  InversionConfig cfg;
  cfg.iterations = 30;
  const auto trig = invert_trigger(*f.model, f.spc, 0, cfg, f.rng);

  EXPECT_EQ(trig.mask.shape(), (Shape{1, 10, 10}));
  EXPECT_EQ(trig.pattern.shape(), (Shape{3, 10, 10}));
  for (std::int64_t i = 0; i < trig.mask.numel(); ++i) {
    EXPECT_GE(trig.mask[i], 0.0f);
    EXPECT_LE(trig.mask[i], 1.0f);
  }
  for (std::int64_t i = 0; i < trig.pattern.numel(); ++i) {
    EXPECT_GE(trig.pattern[i], 0.0f);
    EXPECT_LE(trig.pattern[i], 1.0f);
  }
  EXPECT_EQ(trig.target_class, 0);
  EXPECT_NEAR(trig.mask_l1, l1_norm(trig.mask), 1e-3);
}

TEST(Inversion, InvertedTriggerActuallyFlipsToTarget) {
  // The recovered trigger should steer most clean images to the backdoor
  // target - that is what makes it usable for unlearning.
  auto& f = fixture();
  InversionConfig cfg;
  cfg.iterations = 80;
  const auto trig = invert_trigger(*f.model, f.spc, 0, cfg, f.rng);
  const InvertedTriggerApplier applier(trig);

  data::ImageDataset flipped(f.data.test.image_shape(),
                             f.data.test.num_classes());
  for (std::size_t i = 0; i < f.data.test.size(); ++i) {
    if (f.data.test.label(i) == 0) continue;
    flipped.add(applier.apply(f.data.test.image(i)), 0);
  }
  const double asr = eval::accuracy(*f.model, flipped);
  EXPECT_GT(asr, 0.7) << "inverted trigger should reach the target class";
}

TEST(Inversion, BackdooredTargetHasSmallerMaskThanCleanClass) {
  // The backdoor shortcut means class 0 needs a much smaller mask than a
  // clean class - the core Neural Cleanse signal.
  auto& f = fixture();
  InversionConfig cfg;
  cfg.iterations = 60;
  const auto target = invert_trigger(*f.model, f.spc, 0, cfg, f.rng);
  const auto clean = invert_trigger(*f.model, f.spc, 5, cfg, f.rng);
  EXPECT_LT(target.mask_l1, clean.mask_l1);
}

TEST(Inversion, ApplierValidation) {
  InvertedTrigger bad;
  EXPECT_THROW(InvertedTriggerApplier{bad}, std::invalid_argument);

  InvertedTrigger ok;
  ok.mask = Tensor::full({1, 4, 4}, 0.5f);
  ok.pattern = Tensor::full({3, 4, 4}, 1.0f);
  const InvertedTriggerApplier applier(ok);
  const Tensor x = Tensor::zeros({3, 4, 4});
  const Tensor y = applier.apply(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y[i], 0.5f);
  EXPECT_THROW(applier.apply(Tensor::zeros({3, 5, 5})),
               std::invalid_argument);
  EXPECT_EQ(applier.name(), "inverted");
}

TEST(Inversion, RejectsEmptyCleanSet) {
  auto& f = fixture();
  const data::ImageDataset empty({3, 10, 10}, 10);
  InversionConfig cfg;
  EXPECT_THROW(invert_trigger(*f.model, empty, 0, cfg, f.rng),
               std::invalid_argument);
}

TEST(InversionScan, BackdooredClassRanksAmongTopCandidates) {
  // Classes with naturally small universal perturbations can tie with the
  // true target at this tiny scale (a known Neural Cleanse failure mode),
  // so the robust claim is: the true target ranks in the top-2 suspects.
  auto& f = fixture();
  InversionConfig cfg;
  cfg.iterations = 60;
  const auto scan = scan_for_backdoor_target(*f.model, f.spc, cfg, f.rng);
  ASSERT_EQ(scan.per_class.size(), 10u);

  const auto ranked = scan.ranked_candidates();
  ASSERT_EQ(ranked.size(), 10u);
  EXPECT_TRUE(ranked[0] == 0 || ranked[1] == 0)
      << "true target ranked " << ranked[0] << "," << ranked[1] << ",...";
  // Ranking is consistent with the mask L1 values.
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(scan.per_class[static_cast<std::size_t>(ranked[i])].mask_l1,
              scan.per_class[static_cast<std::size_t>(ranked[i + 1])].mask_l1);
  }
}

}  // namespace
}  // namespace bd::defense
