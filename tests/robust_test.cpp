// Fault-tolerance tests: CRC32, fault injection, checkpoint v2 durability
// (atomic writes, CRC rejection, truncation at every boundary, legacy v1),
// the crash-resume run journal (torn final line, byte-identical resumed
// tables), and TrainGuard divergence recovery in the training loops.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/table_bench.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"
#include "robust/cancel.h"
#include "robust/crc32.h"
#include "robust/fault_injector.h"
#include "robust/journal.h"
#include "robust/supervisor.h"
#include "robust/train_guard.h"
#include "tensor/serialize.h"

namespace bd {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/bd_robust_test_" + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Every test using the process-global injector must leave it disarmed.
class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override { robust::FaultInjector::instance().reset(); }
  void TearDown() override { robust::FaultInjector::instance().reset(); }
};

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesKnownVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(robust::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(robust::crc32("", 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = robust::crc32(data.data(), data.size());
  const std::uint32_t part = robust::crc32(data.data(), 10);
  EXPECT_EQ(robust::crc32(data.data() + 10, data.size() - 10, part), whole);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

using FaultInjectorTest = FaultFixture;

TEST_F(FaultInjectorTest, FiresAtArmedOccurrences) {
  auto& faults = robust::FaultInjector::instance();
  faults.configure("nan@2,nan@4,crash@1");
  EXPECT_FALSE(faults.fire_nan_loss());  // occurrence 1
  EXPECT_TRUE(faults.fire_nan_loss());   // occurrence 2 (armed)
  EXPECT_FALSE(faults.fire_nan_loss());  // occurrence 3
  EXPECT_TRUE(faults.fire_nan_loss());   // occurrence 4 (armed)
  EXPECT_FALSE(faults.armed(robust::FaultKind::kNanLoss));
  EXPECT_THROW(faults.fire_crash("here"), robust::SimulatedCrash);
  EXPECT_NO_THROW(faults.fire_io("save"));  // io_fail never armed
}

TEST_F(FaultInjectorTest, ResetDisarms) {
  auto& faults = robust::FaultInjector::instance();
  faults.configure("nan@1");
  faults.reset();
  EXPECT_FALSE(faults.fire_nan_loss());
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecs) {
  auto& faults = robust::FaultInjector::instance();
  EXPECT_THROW(faults.configure("bogus@1"), std::invalid_argument);
  EXPECT_THROW(faults.configure("nan"), std::invalid_argument);
  EXPECT_THROW(faults.configure("nan@0"), std::invalid_argument);
  EXPECT_THROW(faults.configure("nan@x"), std::invalid_argument);
  EXPECT_NO_THROW(faults.configure("io_fail@3,nan@120"));
}

// ---------------------------------------------------------------------------
// TrainGuard policy
// ---------------------------------------------------------------------------

TEST(TrainGuard, DetectsNanInfAndExplosion) {
  robust::TrainGuardConfig cfg;
  cfg.explode_factor = 10.0;
  robust::TrainGuard guard(cfg);
  EXPECT_EQ(guard.check_loss(2.0), nullptr);
  EXPECT_STREQ(guard.check_loss(std::nan("")), "non-finite loss");
  EXPECT_STREQ(guard.check_loss(INFINITY), "non-finite loss");
  // 25 < 10 * (1 + 2): not yet an explosion.
  EXPECT_EQ(guard.check_loss(25.0), nullptr);
  EXPECT_STREQ(guard.check_loss(31.0), "loss explosion");
  EXPECT_STREQ(guard.check_grad_norm(INFINITY), "non-finite gradient");
  EXPECT_EQ(guard.check_grad_norm(1.5), nullptr);
}

TEST(TrainGuard, RetryBudgetAndReport) {
  robust::TrainGuardConfig cfg;
  cfg.max_recoveries = 2;
  robust::TrainGuard guard(cfg);
  EXPECT_TRUE(guard.can_recover());
  guard.record_recovery(0, 3, std::nan(""), 0.025, "non-finite loss");
  guard.record_recovery(1, 0, 1e9, 0.0125, "loss explosion");
  EXPECT_FALSE(guard.can_recover());
  guard.record_exhausted();
  const auto& report = guard.report();
  EXPECT_EQ(report.recoveries, 2);
  EXPECT_TRUE(report.gave_up);
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.events[0].reason, "non-finite loss");
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("2 recoveries"), std::string::npos);
  EXPECT_NE(summary.find("exhausted"), std::string::npos);
}

TEST(TrainGuard, DisabledNeverFlags) {
  robust::TrainGuardConfig cfg;
  cfg.enabled = false;
  robust::TrainGuard guard(cfg);
  EXPECT_EQ(guard.check_loss(std::nan("")), nullptr);
  EXPECT_EQ(guard.check_grad_norm(INFINITY), nullptr);
}

// ---------------------------------------------------------------------------
// Checkpoint v2: durability and corruption rejection
// ---------------------------------------------------------------------------

using CheckpointRobust = FaultFixture;

TEST_F(CheckpointRobust, V2RoundTripWithInfo) {
  Rng rng(1);
  nn::Conv2d a(3, 4, 3, 1, 1, /*bias=*/true, rng);
  nn::Conv2d b(3, 4, 3, 1, 1, /*bias=*/true, rng);
  TempFile file("v2_roundtrip");
  nn::save_checkpoint(a, file.path());

  const auto info = nn::inspect_checkpoint(file.path());
  EXPECT_EQ(info.version, 2u);
  EXPECT_TRUE(info.crc_verified);
  EXPECT_EQ(info.entries.size(), a.state_dict().size());
  EXPECT_GT(info.total_elements, 0);

  nn::load_checkpoint(b, file.path());
  const auto sa = a.state_dict();
  const auto sb = b.state_dict();
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }
}

TEST_F(CheckpointRobust, SaveLeavesNoTempFile) {
  Rng rng(2);
  nn::Conv2d conv(1, 2, 3, 1, 1, true, rng);
  TempFile file("no_tmp");
  nn::save_checkpoint(conv, file.path());
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST_F(CheckpointRobust, BitFlipIsCaughtByCrc) {
  Rng rng(3);
  nn::Conv2d conv(3, 4, 3, 1, 1, true, rng);
  TempFile file("bitflip");
  nn::save_checkpoint(conv, file.path());

  std::string bytes = slurp(file.path());
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-payload
  spit(file.path(), bytes);

  try {
    nn::load_state(file.path());
    FAIL() << "bit-flipped checkpoint loaded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(file.path()), std::string::npos);
  }
}

TEST_F(CheckpointRobust, TruncatedAtEveryBoundaryThrows) {
  Rng rng(4);
  nn::Conv2d conv(2, 2, 3, 1, 1, true, rng);  // small: a few hundred bytes
  TempFile file("truncate_all");
  nn::save_checkpoint(conv, file.path());
  const std::string bytes = slurp(file.path());
  ASSERT_GT(bytes.size(), 16u);

  TempFile cut("truncate_all_cut");
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(cut.path(), bytes.substr(0, len));
    EXPECT_THROW(nn::load_state(cut.path()), std::runtime_error)
        << "prefix of " << len << "/" << bytes.size() << " bytes loaded";
  }
  // The full file still loads.
  spit(cut.path(), bytes);
  EXPECT_NO_THROW(nn::load_state(cut.path()));
}

TEST_F(CheckpointRobust, InjectedOpenFailureLeavesTargetUntouched) {
  Rng rng(5);
  nn::Conv2d conv(1, 2, 3, 1, 1, true, rng);
  TempFile file("io_open");
  nn::save_checkpoint(conv, file.path());
  const std::string before = slurp(file.path());

  auto& faults = robust::FaultInjector::instance();
  faults.configure("io_fail@1");  // first fire site: before writing the tmp
  EXPECT_THROW(nn::save_checkpoint(conv, file.path()), std::runtime_error);
  EXPECT_EQ(slurp(file.path()), before);
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST_F(CheckpointRobust, InjectedCommitFailureLeavesTargetUntouched) {
  Rng rng(6);
  nn::Conv2d old_weights(1, 2, 3, 1, 1, true, rng);
  nn::Conv2d new_weights(1, 2, 3, 1, 1, true, rng);
  TempFile file("io_commit");
  nn::save_checkpoint(old_weights, file.path());
  const std::string before = slurp(file.path());

  auto& faults = robust::FaultInjector::instance();
  faults.configure("io_fail@2");  // second fire site: after the tmp write
  EXPECT_THROW(nn::save_checkpoint(new_weights, file.path()),
               std::runtime_error);
  // The fully-written tmp was discarded; the old checkpoint is intact.
  EXPECT_EQ(slurp(file.path()), before);
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
  EXPECT_NO_THROW(nn::load_state(file.path()));
}

// ---------------------------------------------------------------------------
// Legacy v1 checkpoints
// ---------------------------------------------------------------------------

void write_v1_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Writes a v1 (magic + count + entries, no CRC) checkpoint of `module`.
void write_v1_checkpoint(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const std::uint32_t magic = 0x42444350;  // v1 "BDCP"
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const auto state = module.state_dict();
  const auto count = static_cast<std::uint32_t>(state.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : state) {
    write_v1_string(out, name);
    write_tensor(out, tensor);
  }
}

TEST_F(CheckpointRobust, LegacyV1StillLoads) {
  Rng rng(7);
  nn::Conv2d a(3, 4, 3, 1, 1, true, rng);
  nn::Conv2d b(3, 4, 3, 1, 1, true, rng);
  TempFile file("legacy_v1");
  write_v1_checkpoint(a, file.path());

  const auto info = nn::inspect_checkpoint(file.path());
  EXPECT_EQ(info.version, 1u);
  EXPECT_FALSE(info.crc_verified);

  nn::load_checkpoint(b, file.path());
  const auto sa = a.state_dict();
  const auto sb = b.state_dict();
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }
}

TEST_F(CheckpointRobust, EntryErrorNamesTheEntry) {
  TempFile file("v1_bad_entry");
  {
    std::ofstream out(file.path(), std::ios::binary);
    const std::uint32_t magic = 0x42444350;
    const std::uint32_t count = 1;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    write_v1_string(out, "conv.weight");
    out << "garbage instead of a tensor";
  }
  try {
    nn::load_state(file.path());
    FAIL() << "corrupt entry loaded";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("conv.weight"), std::string::npos) << msg;
    EXPECT_NE(msg.find("entry 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
    EXPECT_NE(msg.find(file.path()), std::string::npos) << msg;
  }
}

TEST_F(CheckpointRobust, ImplausibleEntryCountRejected) {
  TempFile file("v1_bad_count");
  {
    std::ofstream out(file.path(), std::ios::binary);
    const std::uint32_t magic = 0x42444350;
    const std::uint32_t count = 0xFFFFFFFFu;  // would loop ~4e9 times
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  try {
    nn::load_state(file.path());
    FAIL() << "implausible count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("entry count"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Run journal
// ---------------------------------------------------------------------------

TEST(Journal, RoundTripWithEscaping) {
  TempFile file("journal_roundtrip");
  {
    robust::RunJournal journal(file.path());
    journal.record("k1", {{"acc", "97.5"}, {"note", "a\"b\\c\nd"}});
    journal.record("k2", {{"asr", "1.25"}});
  }
  robust::RunJournal reopened(file.path());
  EXPECT_EQ(reopened.size(), 2u);
  ASSERT_TRUE(reopened.has("k1"));
  EXPECT_EQ(reopened.find("k1")->at("note"), "a\"b\\c\nd");
  EXPECT_EQ(reopened.find("k2")->at("asr"), "1.25");
  EXPECT_EQ(reopened.find("missing"), nullptr);
}

TEST(Journal, TornFinalLineIsDroppedAndAppendable) {
  TempFile file("journal_torn");
  {
    robust::RunJournal journal(file.path());
    journal.record("k1", {{"acc", "97.5"}});
    journal.record("k2", {{"acc", "96.0"}});
  }
  {
    // Simulate a kill mid-append: a partial line with no newline.
    std::ofstream out(file.path(), std::ios::app | std::ios::binary);
    out << "{\"key\":\"k3\",\"fie";
  }
  robust::RunJournal reopened(file.path());
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_FALSE(reopened.has("k3"));
  reopened.record("k3", {{"acc", "95.0"}});

  robust::RunJournal again(file.path());
  EXPECT_EQ(again.size(), 3u);
  EXPECT_TRUE(again.has("k3"));
}

TEST(Journal, MalformedInteriorLineThrows) {
  TempFile file("journal_corrupt");
  {
    robust::RunJournal journal(file.path());
    journal.record("k1", {{"acc", "97.5"}});
  }
  const std::string intact = slurp(file.path());
  spit(file.path(), "not json at all\n" + intact);
  EXPECT_THROW(robust::RunJournal{file.path()}, std::runtime_error);
}

TEST(Journal, DisabledJournalIsNoop) {
  robust::RunJournal journal;
  EXPECT_FALSE(journal.enabled());
  journal.record("k", {{"a", "b"}});  // must not touch the filesystem
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_FALSE(journal.has("k"));
}

TEST(Journal, ExactDoubleRoundTripsBitwise) {
  for (const double v : {97.123456789012345, 1.0 / 3.0, 2.5e-17, 0.0}) {
    const std::string s = robust::exact_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

// ---------------------------------------------------------------------------
// TrainGuard wired into the training loops
// ---------------------------------------------------------------------------

data::TrainTest tiny_task(Rng& rng, std::int64_t per_class = 30) {
  data::SynthConfig cfg;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 4;
  return data::make_synth_cifar(cfg, rng);
}

std::unique_ptr<models::Classifier> tiny_model(Rng& rng) {
  models::ModelSpec spec;
  spec.arch = "vgg";
  spec.num_classes = 10;
  spec.base_width = 8;
  return models::make_model(spec, rng);
}

using TrainRecovery = FaultFixture;

TEST_F(TrainRecovery, InjectedNanRollsBackAndStillConverges) {
  Rng rng(6);
  const auto data = tiny_task(rng);
  auto model = tiny_model(rng);
  robust::FaultInjector::instance().configure("nan@5");

  eval::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr = 0.05f;
  const eval::TrainResult result =
      eval::train_classifier(*model, data.train, cfg, rng);

  EXPECT_EQ(result.guard.recoveries, 1);
  EXPECT_FALSE(result.guard.gave_up);
  ASSERT_EQ(result.guard.events.size(), 1u);
  EXPECT_EQ(result.guard.events[0].reason, "non-finite loss");
  // The learning rate was backed off once from the configured 0.05.
  EXPECT_NEAR(result.guard.events[0].lr_after, 0.025, 1e-6);
  // Despite the mid-run divergence the run completes and converges.
  EXPECT_TRUE(std::isfinite(result.final_loss));
  EXPECT_LT(result.final_loss, 1.5);
}

TEST_F(TrainRecovery, ExhaustedBudgetStopsAtLastGoodSnapshot) {
  Rng rng(7);
  const auto data = tiny_task(rng, 8);
  auto model = tiny_model(rng);
  auto& faults = robust::FaultInjector::instance();
  faults.configure("nan@1,nan@2,nan@3,nan@4");

  eval::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.guard.max_recoveries = 3;
  const eval::TrainResult result =
      eval::train_classifier(*model, data.train, cfg, rng);

  EXPECT_EQ(result.guard.recoveries, 3);
  EXPECT_TRUE(result.guard.gave_up);
  // The model was restored to its last good snapshot: all weights finite.
  for (const auto& [name, tensor] : model->state_dict()) {
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(tensor[i])) << name;
    }
  }
}

TEST_F(TrainRecovery, FinetuneEarlyStoppingRecovers) {
  Rng rng(8);
  const auto data = tiny_task(rng, 12);
  auto model = tiny_model(rng);
  robust::FaultInjector::instance().configure("nan@3");

  eval::EarlyStopConfig cfg;
  cfg.max_epochs = 3;
  cfg.patience = 2;
  const eval::EarlyStopResult result = eval::finetune_early_stopping(
      *model, data.train, data.test, cfg, rng);

  EXPECT_EQ(result.guard.recoveries, 1);
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_TRUE(std::isfinite(result.best_val_loss));
}

TEST_F(TrainRecovery, GradPruneSkipsNonFiniteRound) {
  Rng rng(9);
  data::SynthConfig dcfg;
  dcfg.height = dcfg.width = 10;
  dcfg.train_per_class = 6;
  dcfg.test_per_class = 2;
  const auto data = data::make_synth_cifar(dcfg, rng);
  models::ModelSpec spec{"vgg", 10, 3, 8};
  auto model = models::make_model(spec, rng);
  attack::BadNetsTrigger trigger;
  const auto ctx = defense::make_defense_context(data.train, trigger, spec, rng);

  robust::FaultInjector::instance().configure("nan_grad@1");
  core::GradPruneConfig cfg;
  cfg.max_prune_rounds = 3;
  cfg.finetune = false;
  core::GradPruneDefense defense(cfg);
  const auto result = defense.apply(*model, ctx);

  // Round 1 was skipped on non-finite scores and counted as a recovery;
  // later rounds proceeded on real gradients.
  EXPECT_GE(result.recoveries, 1);
  for (const auto& [name, tensor] : model->state_dict()) {
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(tensor[i])) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-resumable bench runs
// ---------------------------------------------------------------------------

eval::ExperimentScale micro_scale() {
  eval::ExperimentScale s;
  s.data.height = s.data.width = 8;
  s.data.train_per_class = 8;
  s.data.test_per_class = 2;
  s.attack_train.epochs = 1;
  s.base_width = 8;
  s.spc_settings = {2};
  s.trials = 1;
  s.defense_max_epochs = 2;
  s.prune_max_rounds = 3;
  s.anp_iterations = 2;
  s.nad_teacher_epochs = 1;
  s.nad_distill_epochs = 1;
  return s;
}

/// Drops the wall-clock footer ("total: 12.3s"), the only
/// run-dependent part of run_table's stdout.
std::string strip_timing(const std::string& output) {
  std::string out;
  std::size_t pos = 0;
  while (pos < output.size()) {
    std::size_t end = output.find('\n', pos);
    if (end == std::string::npos) end = output.size();
    const std::string line = output.substr(pos, end - pos);
    if (line.rfind("total:", 0) != 0) {
      out += line;
      out += '\n';
    }
    pos = end + 1;
  }
  return out;
}

using TableResume = FaultFixture;

TEST_F(TableResume, CrashThenResumeIsByteIdentical) {
  eval::TableSpec spec;
  spec.title = "resume-test";
  spec.dataset = "cifar";
  spec.arch = "vgg";
  spec.attacks = {"badnet"};
  spec.defenses = {"ft", "clp"};
  spec.scatter = true;
  spec.scale = micro_scale();
  spec.resume = false;

  // Reference: uninterrupted run.
  TempFile ref_journal("journal_ref");
  spec.journal_path = ref_journal.path();
  ::testing::internal::CaptureStdout();
  const eval::TableRun reference = eval::run_table(spec);
  const std::string reference_out = strip_timing(
      ::testing::internal::GetCapturedStdout());
  EXPECT_EQ(reference.resumed_cells, 0u);
  ASSERT_EQ(reference.settings.size(), 2u);

  // Crashed run: killed between cell 1 and cell 2.
  TempFile crash_journal("journal_crash");
  spec.journal_path = crash_journal.path();
  robust::FaultInjector::instance().configure("crash@1");
  ::testing::internal::CaptureStdout();
  bool crashed = false;
  try {
    eval::run_table(spec);
  } catch (const robust::SimulatedCrash&) {
    crashed = true;
  }
  ::testing::internal::GetCapturedStdout();
  ASSERT_TRUE(crashed);
  robust::FaultInjector::instance().reset();

  // Resume: completed cells are skipped, output is byte-identical.
  spec.resume = true;
  ::testing::internal::CaptureStdout();
  const eval::TableRun resumed = eval::run_table(spec);
  const std::string resumed_out = strip_timing(
      ::testing::internal::GetCapturedStdout());

  EXPECT_EQ(resumed.resumed_cells, 1u);
  EXPECT_EQ(resumed_out, reference_out);
  ASSERT_EQ(resumed.settings.size(), reference.settings.size());
  for (std::size_t i = 0; i < reference.settings.size(); ++i) {
    EXPECT_EQ(resumed.settings[i].acc, reference.settings[i].acc) << i;
    EXPECT_EQ(resumed.settings[i].asr, reference.settings[i].asr) << i;
    EXPECT_EQ(resumed.settings[i].ra, reference.settings[i].ra) << i;
  }
  ASSERT_EQ(resumed.baselines.size(), 1u);
  EXPECT_EQ(resumed.baselines[0].second.acc, reference.baselines[0].second.acc);
}

TEST_F(TableResume, FullyJournaledRunSkipsAttackTraining) {
  eval::TableSpec spec;
  spec.title = "resume-full";
  spec.dataset = "cifar";
  spec.arch = "vgg";
  spec.attacks = {"badnet"};
  spec.defenses = {"clp"};
  spec.scale = micro_scale();

  TempFile journal("journal_full");
  spec.journal_path = journal.path();
  spec.resume = false;
  ::testing::internal::CaptureStdout();
  const eval::TableRun first = eval::run_table(spec);
  const std::string first_out = strip_timing(
      ::testing::internal::GetCapturedStdout());

  spec.resume = true;
  ::testing::internal::CaptureStdout();
  const eval::TableRun second = eval::run_table(spec);
  const std::string second_out = strip_timing(
      ::testing::internal::GetCapturedStdout());

  // Everything (baseline included) came from the journal: no retraining,
  // identical tables.
  EXPECT_EQ(second.resumed_cells, 1u);
  EXPECT_EQ(second_out, first_out);
  EXPECT_EQ(second.baselines[0].second.asr, first.baselines[0].second.asr);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation primitives
// ---------------------------------------------------------------------------

TEST(CancelToken, NullTokenNeverCancelsAndHeartbeatIsNoop) {
  robust::CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  token.heartbeat();  // must not crash
  // Polling outside any scope is a cheap no-op too.
  robust::poll_cancellation("test.no_scope");
}

TEST(CancelSource, FirstCancelReasonWins) {
  robust::CancelSource source;
  const robust::CancelToken token = source.token();
  EXPECT_FALSE(token.cancelled());

  source.cancel("first");
  source.cancel("second");
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "first");
}

TEST(CancelSource, HeartbeatAgeTracksPolls) {
  robust::CancelSource source;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(source.heartbeat_age_seconds(), 0.02);
  source.token().heartbeat();
  EXPECT_LT(source.heartbeat_age_seconds(), 0.02);
}

TEST(CancelScope, InstallsAndRestoresThreadToken) {
  EXPECT_FALSE(robust::current_cancel_token().valid());
  robust::CancelSource outer;
  {
    robust::CancelScope outer_scope(outer.token());
    EXPECT_TRUE(robust::current_cancel_token().valid());
    robust::CancelSource inner;
    inner.cancel("inner cancelled");
    {
      robust::CancelScope inner_scope(inner.token());
      EXPECT_THROW(robust::poll_cancellation("test.inner"), robust::Cancelled);
    }
    // Back to the outer (uncancelled) token: polling passes again.
    robust::poll_cancellation("test.outer");
  }
  EXPECT_FALSE(robust::current_cancel_token().valid());
}

TEST(Cancelled, MessageCarriesReasonAndBoundary) {
  robust::CancelSource source;
  source.cancel("watchdog: deadline of 1s exceeded");
  robust::CancelScope scope(source.token());
  try {
    robust::poll_cancellation("train.batch");
    FAIL() << "poll_cancellation must throw under a cancelled scope";
  } catch (const robust::Cancelled& e) {
    EXPECT_EQ(e.reason(), "watchdog: deadline of 1s exceeded");
    EXPECT_NE(std::string(e.what()).find("train.batch"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Supervisor: retry, watchdog, quarantine
// ---------------------------------------------------------------------------

/// Saves/restores the process-global supervisor config (and clears its
/// strikes + stats) around every test; also keeps the fault injector clean.
class SupervisorTest : public FaultFixture {
 protected:
  void SetUp() override {
    FaultFixture::SetUp();
    saved_config_ = robust::Supervisor::instance().config();
    robust::Supervisor::instance().configure(fast_config());
  }
  void TearDown() override {
    robust::Supervisor::instance().configure(saved_config_);
    FaultFixture::TearDown();
  }

  /// Retry policy with negligible backoff so tests stay fast.
  static robust::SupervisorConfig fast_config() {
    robust::SupervisorConfig config;
    config.backoff_initial_seconds = 0.001;
    config.backoff_factor = 1.0;
    return config;
  }

  robust::SupervisorConfig saved_config_;
};

TEST_F(SupervisorTest, SuccessOnFirstAttempt) {
  robust::Supervisor sup(fast_config());
  int calls = 0;
  const robust::RunReport report = sup.run("key", [&] { ++calls; });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.retries(), 0);
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(sup.stats().runs, 1);
  EXPECT_EQ(sup.stats().retries, 0);
}

TEST_F(SupervisorTest, RetriesWithBackoffThenSucceeds) {
  robust::SupervisorConfig config = fast_config();
  config.max_retries = 2;
  robust::Supervisor sup(config);
  int calls = 0;
  const robust::RunReport report = sup.run("key", [&] {
    if (++calls < 3) throw std::runtime_error("transient failure");
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.retries(), 2);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sup.stats().retries, 2);
  // Success wipes the key's strikes.
  EXPECT_EQ(sup.strikes("key"), 0);
}

TEST_F(SupervisorTest, ExhaustedRetriesReportFailure) {
  robust::SupervisorConfig config = fast_config();
  config.max_retries = 1;
  robust::Supervisor sup(config);
  const robust::RunReport report =
      sup.run("key", [] { throw std::runtime_error("permanent failure"); });
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status, robust::RunStatus::kFailed);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_NE(report.failure.find("permanent failure"), std::string::npos);
  EXPECT_EQ(sup.stats().failures, 1);
  EXPECT_EQ(sup.strikes("key"), 2);
}

TEST_F(SupervisorTest, QuarantineAfterStrikesThenRefusesImmediately) {
  robust::SupervisorConfig config = fast_config();
  config.max_retries = 0;
  config.quarantine_strikes = 2;
  robust::Supervisor sup(config);
  int calls = 0;
  const auto failing = [&] {
    ++calls;
    throw std::runtime_error("boom");
  };

  EXPECT_EQ(sup.run("bad", failing).status, robust::RunStatus::kFailed);
  EXPECT_FALSE(sup.quarantined("bad"));
  // Second strike crosses the threshold.
  EXPECT_EQ(sup.run("bad", failing).status, robust::RunStatus::kQuarantined);
  EXPECT_TRUE(sup.quarantined("bad"));
  EXPECT_EQ(sup.stats().quarantines, 1);

  // Refused without executing: attempts == 0, reason names the quarantine.
  const robust::RunReport refused = sup.run("bad", failing);
  EXPECT_EQ(refused.status, robust::RunStatus::kQuarantined);
  EXPECT_EQ(refused.attempts, 0);
  EXPECT_NE(refused.failure.find("quarantined"), std::string::npos);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(sup.stats().refused, 1);

  // Other keys are unaffected.
  EXPECT_TRUE(sup.run("good", [] {}).ok());
}

TEST_F(SupervisorTest, SimulatedCrashPropagatesWithoutRetry) {
  robust::SupervisorConfig config = fast_config();
  config.max_retries = 5;
  robust::Supervisor sup(config);
  int calls = 0;
  EXPECT_THROW(sup.run("key",
                       [&] {
                         ++calls;
                         throw robust::SimulatedCrash("kill");
                       }),
               robust::SimulatedCrash);
  EXPECT_EQ(calls, 1);  // a crash models a kill: no in-process retry
}

TEST_F(SupervisorTest, HangIsDetectedWithinStallBudget) {
  robust::SupervisorConfig config = fast_config();
  config.deadline_seconds = 20.0;  // generous total budget...
  config.stall_seconds = 0.2;      // ...but a tight heartbeat budget
  config.max_retries = 0;
  robust::Supervisor sup(config);
  robust::FaultInjector::instance().configure("hang@1");

  const auto start = std::chrono::steady_clock::now();
  const robust::RunReport report = sup.run("hang", [] {
    for (int i = 0; i < 1000; ++i) {
      robust::poll_cancellation("test.step");
    }
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.timed_out);
  EXPECT_NE(report.failure.find("stalled"), std::string::npos);
  EXPECT_EQ(sup.stats().timeouts, 1);
  // Detection must come from the 0.2s stall budget, not the 20s deadline
  // (5s leaves slack for a loaded CI machine).
  EXPECT_LT(elapsed, 5.0);
}

TEST_F(SupervisorTest, DeadlineCancelsOverBudgetAttempt) {
  robust::SupervisorConfig config = fast_config();
  config.deadline_seconds = 0.2;
  config.stall_seconds = 20.0;  // heartbeats stay fresh; total budget trips
  config.max_retries = 0;
  robust::Supervisor sup(config);

  const robust::RunReport report = sup.run("slow", [] {
    for (int i = 0; i < 5000; ++i) {  // bounded: ~10s worst case
      robust::poll_cancellation("test.step");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.timed_out);
  EXPECT_NE(report.failure.find("deadline"), std::string::npos);
  // The reason is formatted from the configured budget, never measured
  // time, so degraded cells replay byte-identically on resume.
  EXPECT_NE(report.failure.find("0.2s"), std::string::npos);
}

TEST_F(SupervisorTest, CancellationAtBatchBoundaryLeavesWeightsUntouched) {
  Rng rng(11);
  const auto data = tiny_task(rng, 8);
  auto model = tiny_model(rng);
  std::map<std::string, Tensor> before;
  for (const auto& [name, tensor] : model->state_dict()) {
    before[name] = tensor.clone();
  }

  robust::CancelSource source;
  source.cancel("test: cancelled before training");
  robust::CancelScope scope(source.token());

  eval::TrainConfig cfg;
  cfg.epochs = 2;
  EXPECT_THROW(eval::train_classifier(*model, data.train, cfg, rng),
               robust::Cancelled);

  // The poll sits at the top of the batch loop, before any optimizer work:
  // an already-cancelled scope means zero weight mutation (an integer
  // number of sgd steps — here exactly none).
  const auto after = model->state_dict();
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [name, tensor] : after) {
    const Tensor& orig = before.at(name);
    ASSERT_EQ(tensor.numel(), orig.numel()) << name;
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], orig[i]) << name << "[" << i << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// New fault verbs: torn_write, slow_io, oom_sim
// ---------------------------------------------------------------------------

TEST_F(CheckpointRobust, TornWriteNeverReplacesGoodCheckpoint) {
  Rng rng(7);
  nn::Conv2d good(3, 4, 3, 1, 1, true, rng);
  nn::Conv2d other(3, 4, 3, 1, 1, true, rng);
  TempFile file("torn_write");
  nn::save_checkpoint(good, file.path());
  const std::string good_bytes = slurp(file.path());

  robust::FaultInjector::instance().configure("torn_write@1");
  EXPECT_THROW(nn::save_checkpoint(other, file.path()),
               robust::SimulatedCrash);

  // Crash semantics: the torn tmp file stays on disk as debris...
  ASSERT_TRUE(std::filesystem::exists(file.path() + ".tmp"));
  EXPECT_LT(std::filesystem::file_size(file.path() + ".tmp"),
            good_bytes.size());
  // ...but the committed checkpoint is byte-identical and still loads.
  EXPECT_EQ(slurp(file.path()), good_bytes);
  nn::Conv2d reloaded(3, 4, 3, 1, 1, true, rng);
  nn::load_checkpoint(reloaded, file.path());

  // After the "restart" (fault disarmed) the save path works again and
  // cleans up its tmp file.
  robust::FaultInjector::instance().reset();
  nn::save_checkpoint(other, file.path());
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
  const auto info = nn::inspect_checkpoint(file.path());
  EXPECT_TRUE(info.crc_verified);
}

TEST_F(FaultInjectorTest, SlowIoOnlyAddsLatency) {
  TempFile file("journal_slow");
  robust::FaultInjector::instance().configure("slow_io@1");
  robust::RunJournal journal(file.path());
  journal.record("k1", {{"a", "1"}});  // slowed, but must succeed
  journal.record("k2", {{"b", "2"}});

  robust::FaultInjector::instance().reset();
  robust::RunJournal reread(file.path());
  EXPECT_EQ(reread.size(), 2u);
  EXPECT_EQ(reread.find("k1")->at("a"), "1");
}

TEST_F(FaultInjectorTest, OomSimThrowsBadAlloc) {
  robust::FaultInjector::instance().configure("oom_sim@1");
  auto& faults = robust::FaultInjector::instance();
  EXPECT_THROW(faults.fire_oom("test"), robust::SimulatedOom);
  EXPECT_THROW(
      {
        robust::FaultInjector::instance().configure("oom_sim@1");
        try {
          faults.fire_oom("test");
        } catch (const std::bad_alloc&) {
          throw;  // must be catchable as bad_alloc
        }
      },
      std::bad_alloc);
}

// ---------------------------------------------------------------------------
// Degraded cells: retry determinism + journal round-trip
// ---------------------------------------------------------------------------

using TableChaos = SupervisorTest;

TEST_F(TableChaos, RetriedRunMatchesCleanRunByteForByte) {
  eval::TableSpec spec;
  spec.title = "chaos-retry";
  spec.dataset = "cifar";
  spec.arch = "vgg";
  spec.attacks = {"badnet"};
  spec.defenses = {"ft", "clp"};
  spec.scale = micro_scale();
  spec.resume = false;

  ::testing::internal::CaptureStdout();
  eval::run_table(spec);
  const std::string clean_out =
      strip_timing(::testing::internal::GetCapturedStdout());

  // Trial 2 (the clp cell's only trial) fails once and is retried from its
  // pre-drawn seed: the supervised rerun must be bit-identical, proving
  // retries never advance the global RNG or shift later seeds.
  robust::FaultInjector::instance().configure("oom_sim@2");
  ::testing::internal::CaptureStdout();
  const eval::TableRun faulted = eval::run_table(spec);
  const std::string faulted_out =
      strip_timing(::testing::internal::GetCapturedStdout());

  EXPECT_EQ(faulted_out, clean_out);
  EXPECT_EQ(faulted.degraded_cells, 0u);
  ASSERT_EQ(faulted.settings.size(), 2u);
  EXPECT_EQ(faulted.settings[0].attempts, 1);
  EXPECT_EQ(faulted.settings[1].attempts, 2);  // one retry
}

TEST_F(TableChaos, DegradedCellRoundTripsThroughJournal) {
  robust::SupervisorConfig config = fast_config();
  config.max_retries = 1;
  robust::Supervisor::instance().configure(config);

  eval::TableSpec spec;
  spec.title = "chaos-degraded";
  spec.dataset = "cifar";
  spec.arch = "vgg";
  spec.attacks = {"badnet"};
  spec.defenses = {"ft", "clp"};
  spec.scale = micro_scale();
  spec.resume = false;

  TempFile journal("journal_degraded");
  spec.journal_path = journal.path();

  // Both attempts of the first cell's only trial fail: retry budget
  // exhausted, the cell degrades, the rest of the table completes.
  robust::FaultInjector::instance().configure("oom_sim@1,oom_sim@2");
  ::testing::internal::CaptureStdout();
  const eval::TableRun first = eval::run_table(spec);
  const std::string first_out =
      strip_timing(::testing::internal::GetCapturedStdout());
  robust::FaultInjector::instance().reset();

  EXPECT_EQ(first.degraded_cells, 1u);
  ASSERT_EQ(first.settings.size(), 2u);
  EXPECT_TRUE(first.settings[0].degraded);
  EXPECT_EQ(first.settings[0].attempts, 2);
  EXPECT_NE(first.settings[0].failure.find("out-of-memory"),
            std::string::npos);
  EXPECT_FALSE(first.settings[1].degraded);
  EXPECT_NE(first_out.find("degraded"), std::string::npos);

  // Resume replays the degraded cell from the journal byte-identically —
  // failure reason, attempts and the table row all round-trip.
  spec.resume = true;
  ::testing::internal::CaptureStdout();
  const eval::TableRun resumed = eval::run_table(spec);
  const std::string resumed_out =
      strip_timing(::testing::internal::GetCapturedStdout());

  EXPECT_EQ(resumed_out, first_out);
  EXPECT_EQ(resumed.resumed_cells, 2u);
  EXPECT_EQ(resumed.degraded_cells, 1u);
  ASSERT_EQ(resumed.settings.size(), 2u);
  EXPECT_TRUE(resumed.settings[0].degraded);
  EXPECT_EQ(resumed.settings[0].attempts, 2);
  EXPECT_EQ(resumed.settings[0].failure, first.settings[0].failure);
}

}  // namespace
}  // namespace bd
