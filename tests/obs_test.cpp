// Observability subsystem: metric semantics, span nesting across the
// parallel runtime, exporter validity, env-knob gating — and the harness
// that proves instrumentation costs (almost) nothing when off.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "autograd/arena.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace bd::obs {
namespace {

/// Every test must leave the process-wide observability state exactly as it
/// found it (disabled, empty trace), because the instruments are global.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(false);
    set_trace_enabled(false);
    clear_trace();
  }
  void TearDown() override {
    set_metrics_enabled(false);
    set_trace_enabled(false);
    clear_trace();
    set_trace_capacity_for_test(0);
  }
};

TEST_F(ObsTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST_F(ObsTest, GaugeSemantics) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1.0      -> bucket 0
  h.observe(1.0);    // == bound    -> bucket 0 (le semantics)
  h.observe(5.0);    //             -> bucket 1
  h.observe(100.0);  //             -> bucket 2
  h.observe(1e9);    // overflow    -> bucket 3
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e9);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(3), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(ObsTest, HistogramRejectsBadLayouts) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({10.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, FixedBucketLayouts) {
  EXPECT_EQ(duration_ns_buckets().size(), 8u);
  EXPECT_EQ(duration_ns_buckets().front(), 1e3);
  EXPECT_EQ(duration_ns_buckets().back(), 1e10);
  EXPECT_EQ(seconds_buckets().size(), 7u);
  EXPECT_EQ(seconds_buckets().front(), 1e-3);
  EXPECT_EQ(seconds_buckets().back(), 1e3);
}

TEST_F(ObsTest, RegistryGetOrCreate) {
  Counter& a = registry().counter("obs_test.counter");
  Counter& b = registry().counter("obs_test.counter");
  EXPECT_EQ(&a, &b);
  Histogram& h = registry().histogram("obs_test.hist", {1.0, 2.0});
  // Bounds apply only on first registration; same instrument afterwards.
  Histogram& h2 = registry().histogram("obs_test.hist", {99.0});
  EXPECT_EQ(&h, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST_F(ObsTest, KnobParsing) {
  EXPECT_FALSE(knob_enables(""));
  EXPECT_FALSE(knob_enables("0"));
  EXPECT_FALSE(knob_enables("off"));
  EXPECT_FALSE(knob_enables("OFF"));
  EXPECT_FALSE(knob_enables("false"));
  EXPECT_TRUE(knob_enables("1"));
  EXPECT_TRUE(knob_enables("on"));
  EXPECT_TRUE(knob_enables("TRUE"));
  EXPECT_TRUE(knob_enables("/tmp/out.json"));

  EXPECT_EQ(knob_path("1", "default.json"), "default.json");
  EXPECT_EQ(knob_path("ON", "default.json"), "default.json");
  EXPECT_EQ(knob_path("true", "default.json"), "default.json");
  EXPECT_EQ(knob_path("/tmp/custom.json", "default.json"),
            "/tmp/custom.json");
}

TEST_F(ObsTest, EnvKnobGating) {
  // Default (knobs unset): everything off after a reinit.
  ::unsetenv("BDPROTO_METRICS");
  ::unsetenv("BDPROTO_TRACE");
  reinit_from_env_for_test();
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(trace_enabled());
  EXPECT_FALSE(enabled());
  EXPECT_EQ(metrics_export_path(), "");
  EXPECT_EQ(trace_export_path(), "");

  ::setenv("BDPROTO_METRICS", "1", 1);
  ::setenv("BDPROTO_TRACE", "/tmp/obs_test_trace.json", 1);
  reinit_from_env_for_test();
  EXPECT_TRUE(metrics_enabled());
  EXPECT_TRUE(trace_enabled());
  EXPECT_EQ(metrics_export_path(), "bdproto_metrics.jsonl");
  EXPECT_EQ(trace_export_path(), "/tmp/obs_test_trace.json");

  ::setenv("BDPROTO_METRICS", "off", 1);
  ::setenv("BDPROTO_TRACE", "0", 1);
  reinit_from_env_for_test();
  EXPECT_FALSE(metrics_enabled());
  EXPECT_FALSE(trace_enabled());

  ::unsetenv("BDPROTO_METRICS");
  ::unsetenv("BDPROTO_TRACE");
  reinit_from_env_for_test();
  EXPECT_FALSE(enabled());
}

TEST_F(ObsTest, SetHooksToggleIndependently) {
  set_trace_enabled(true);
  EXPECT_TRUE(trace_enabled());
  EXPECT_FALSE(metrics_enabled());
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_trace_enabled(false);
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(metrics_enabled());
}

TEST_F(ObsTest, SpanRecordsNothingWhenOff) {
  clear_trace();
  const auto before = snapshot_trace().size();
  {
    Span s("obs_test.off");
    Span t("obs_test.off_nested", 7);
  }
  EXPECT_EQ(snapshot_trace().size(), before);
}

TEST_F(ObsTest, SpanNestingOnOneThread) {
  set_trace_enabled(true);
  clear_trace();
  {
    Span outer("obs_test.outer", 1);
    { Span inner("obs_test.inner", 2); }
    { Span inner("obs_test.inner", 3); }
  }
  const auto events = snapshot_trace();
  ASSERT_EQ(events.size(), 6u);
  // Record order on a single thread is B(outer) B/E(inner) B/E(inner)
  // E(outer); all on the same tid with monotone timestamps.
  EXPECT_STREQ(events[0].name, "obs_test.outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].arg, 1);
  EXPECT_STREQ(events[5].name, "obs_test.outer");
  EXPECT_EQ(events[5].phase, 'E');
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].tid, events[0].tid);
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST_F(ObsTest, SpanNestingAcrossParallelWorkers) {
  runtime::set_thread_count(4);
  set_trace_enabled(true);
  clear_trace();

  constexpr std::int64_t kChunks = 64;
  {
    Span outer("obs_test.parallel_outer");
    runtime::parallel_for(0, kChunks, 1, [](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        Span chunk("obs_test.chunk", i);
        // A nested span inside the worker, as kernels produce.
        Span inner("obs_test.chunk_inner");
      }
    });
  }
  runtime::set_thread_count(0);

  const auto events = snapshot_trace();
  // Per-tid streams must be balanced and properly nested.
  std::map<std::uint32_t, std::vector<const char*>> stacks;
  std::int64_t chunk_begins = 0;
  for (const auto& e : events) {
    auto& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
      if (std::string_view(e.name) == "obs_test.chunk") ++chunk_begins;
    } else {
      ASSERT_FALSE(stack.empty()) << "unbalanced E on tid " << e.tid;
      EXPECT_STREQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  // Chunk boundaries are deterministic: exactly one span per chunk executed,
  // spread over however many workers picked them up.
  EXPECT_EQ(chunk_begins, kChunks);
}

TEST_F(ObsTest, ChromeTraceExportParsesBack) {
  set_trace_enabled(true);
  clear_trace();
  {
    Span outer("obs_test.export", 5);
    Span inner("obs_test.export_inner");
  }
  std::ostringstream os;
  write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.export\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":5}"), std::string::npos);

  // Hand-rolled pairing check: equal numbers of begin and end events.
  auto count = [&json](const char* needle) {
    std::size_t n = 0, pos = 0;
    const std::string s(needle);
    while ((pos = json.find(s, pos)) != std::string::npos) {
      ++n;
      pos += s.size();
    }
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), 2u);
  EXPECT_EQ(count("\"ph\":\"E\""), 2u);
  EXPECT_EQ(count("\"cat\":\"bd\""), 4u);
}

TEST_F(ObsTest, JsonlExportIsValid) {
  registry().counter("obs_test.export_counter").add(3);
  registry().gauge("obs_test.export_gauge").set(1.5);
  registry()
      .histogram("obs_test.export_hist", {10.0, 20.0})
      .observe(15.0);

  std::ostringstream os;
  registry().write_jsonl(os);
  const std::string jsonl = os.str();

  EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":"
                       "\"obs_test.export_counter\",\"value\":3}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"obs_test.export_gauge\",\"value\":1.5}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"obs_test.export_hist\""), std::string::npos);
  EXPECT_NE(jsonl.find("{\"le\":\"+Inf\","), std::string::npos);

  // Every line is one object: starts with '{', ends with '}'.
  std::istringstream is(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_GE(lines, 3u);
}

TEST_F(ObsTest, CapacityDropKeepsPairsBalanced) {
  set_trace_enabled(true);
  clear_trace();
  set_trace_capacity_for_test(4);

  for (int i = 0; i < 8; ++i) {
    Span outer("obs_test.cap_outer", i);
    Span inner("obs_test.cap_inner");
  }
  EXPECT_GT(trace_dropped_count(), 0u);

  const auto events = snapshot_trace();
  std::vector<const char*> stack;
  for (const auto& e : events) {
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else {
      ASSERT_FALSE(stack.empty());
      EXPECT_STREQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());
  // Dropping a 'B' suppresses its whole subtree, so the export is still a
  // valid forest even though events were discarded.
  EXPECT_LE(events.size(), 4u + 1u);  // one 'E' may land past the cap

  set_trace_capacity_for_test(0);
  clear_trace();
  {
    Span s("obs_test.cap_restored");
  }
  EXPECT_GE(snapshot_trace().size(), 2u);
}

TEST_F(ObsTest, RenderSpanTreeAggregates) {
  set_trace_enabled(true);
  clear_trace();
  {
    Span outer("obs_test.tree_outer");
    { Span inner("obs_test.tree_inner"); }
    { Span inner("obs_test.tree_inner"); }
  }
  const std::string tree = render_span_tree();
  EXPECT_NE(tree.find("obs_test.tree_outer"), std::string::npos);
  EXPECT_NE(tree.find("obs_test.tree_inner"), std::string::npos);
  EXPECT_NE(tree.find("2 x"), std::string::npos);

  clear_trace();
  EXPECT_EQ(render_span_tree(), "(no spans recorded)\n");
}

TEST_F(ObsTest, KernelProbeRecordsWhenMetricsOn) {
  set_metrics_enabled(true);
  const std::uint64_t calls_before =
      registry().counter("kernel.matmul.calls").value();
  const std::uint64_t items_before =
      registry().counter("kernel.matmul.items").value();

  Tensor a({4, 8});
  Tensor b({8, 2});
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = 1.0f;
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = 2.0f;
  (void)matmul(a, b);

  EXPECT_EQ(registry().counter("kernel.matmul.calls").value(),
            calls_before + 1);
  EXPECT_EQ(registry().counter("kernel.matmul.items").value(),
            items_before + 4u * 8u * 2u);
}

// The graph-IR scheduler reports its arena footprint: after a backward pass
// with metrics on, the autograd.arena_peak_bytes gauge holds the plan's
// peak (the same number GradArena::stats() carries) and the pass/planner
// counters have moved.
TEST_F(ObsTest, AutogradArenaGaugeRecordsBackwardFootprint) {
  set_metrics_enabled(true);
  const std::uint64_t passes_before =
      registry().counter("autograd.backward_passes").value();

  ag::Var a(Tensor({4, 4}), /*requires_grad=*/true);
  for (std::int64_t i = 0; i < 16; ++i) a.mutable_value()[i] = 0.1f * i;
  ag::Var loss = ag::sum_all(ag::mul(ag::relu(a), ag::sigmoid(a)));
  loss.backward();

  EXPECT_EQ(registry().counter("autograd.backward_passes").value(),
            passes_before + 1);
  EXPECT_GT(registry().counter("autograd.nodes_materialized").value(), 0u);
  const double gauge = registry().gauge("autograd.arena_peak_bytes").value();
  EXPECT_GT(gauge, 0.0);
  EXPECT_EQ(gauge, static_cast<double>(
                       ag::GradArena::local().stats().last_peak_bytes));
}

TEST_F(ObsTest, ResetValuesZeroesInPlace) {
  Counter& c = registry().counter("obs_test.reset_me");
  c.add(5);
  registry().reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // the reference stayed valid
  EXPECT_EQ(c.value(), 1u);
}

// The "costs nothing when off" guarantee, as a wall-clock bound: one
// million span enter/exit pairs with both pillars disabled. The disabled
// path is one relaxed atomic load, so even under ASan + Debug this runs in
// a few milliseconds; the bound is deliberately generous (2s) to stay
// robust on loaded CI machines while still catching a regression that
// takes a lock or allocates per span (which would be >100x slower).
TEST_F(ObsTest, DisabledSpanOverheadGuard) {
  ASSERT_FALSE(enabled());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    Span span("obs_test.overhead");
    (void)span;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  EXPECT_LT(ms, 2000) << "disabled spans cost " << ms << "ms per 1e6 pairs";
  // And they really recorded nothing.
  EXPECT_EQ(snapshot_trace().size(), 0u);
}

}  // namespace
}  // namespace bd::obs
