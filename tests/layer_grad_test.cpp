// Finite-difference gradient checks THROUGH trainable layers (the
// composite autograd paths): BatchNorm in training and eval mode, the SE
// block, depthwise conv layers, and a full residual block. These guard the
// exact gradients the unlearning-loss scoring consumes.
#include <gtest/gtest.h>

#include <functional>

#include "models/preact_resnet.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace bd::nn {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, float scale = 1.0f) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal()) * scale;
  }
  return t;
}

/// Central-difference check of d(sum(module(x)))/d(param) for every
/// registered parameter of `module`, plus the input gradient.
void check_module_gradients(Module& module, const Tensor& x,
                            double tolerance = 5e-2, float epsilon = 1e-2f) {
  auto loss_value = [&module](const Tensor& input) {
    ag::NoGradGuard guard;
    return sum_all(module.forward(ag::Var(input)).value());
  };

  // Analytic gradients.
  module.zero_grad();
  ag::Var vx(x.clone(), /*requires_grad=*/true);
  ag::Var out = ag::sum_all(module.forward(vx));
  out.backward();

  // Input gradient (spot-check three coordinates).
  ASSERT_TRUE(vx.has_grad());
  for (const std::int64_t i : {std::int64_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp[i] += epsilon;
    xm[i] -= epsilon;
    const double numeric =
        (loss_value(xp) - loss_value(xm)) / (2.0 * epsilon);
    EXPECT_NEAR(vx.grad()[i], numeric, tolerance) << "input grad at " << i;
  }

  // Parameter gradients (spot-check first/middle/last entry of each).
  for (auto& [name, param] : module.named_parameters()) {
    ASSERT_TRUE(param->has_grad()) << name << " received no gradient";
    Tensor& w = param->mutable_value();
    for (const std::int64_t i :
         {std::int64_t{0}, w.numel() / 2, w.numel() - 1}) {
      const float saved = w[i];
      w[i] = saved + epsilon;
      const double up = loss_value(x);
      w[i] = saved - epsilon;
      const double down = loss_value(x);
      w[i] = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(param->grad()[i], numeric, tolerance)
          << name << " grad at " << i;
    }
  }
}

TEST(LayerGrad, Conv2dLayer) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  check_module_gradients(conv, random_tensor({2, 2, 5, 5}, rng, 0.5f));
}

TEST(LayerGrad, DepthwiseConvLayer) {
  Rng rng(2);
  DepthwiseConv2d dw(3, 3, 1, 1, /*bias=*/true, rng);
  check_module_gradients(dw, random_tensor({2, 3, 5, 5}, rng, 0.5f));
}

TEST(LayerGrad, LinearLayer) {
  Rng rng(3);
  Linear fc(6, 4, rng);
  check_module_gradients(fc, random_tensor({3, 6}, rng, 0.5f));
}

TEST(LayerGrad, BatchNormTrainingMode) {
  // The hardest composite path: gradients flow through batch mean AND
  // variance. Note: the check perturbs one input coordinate, which changes
  // the batch statistics - the analytic path covers that coupling.
  Rng rng(4);
  BatchNorm2d bn(3);
  bn.set_training(true);
  // Non-trivial gamma/beta so their gradients are distinguishable.
  bn.gamma().mutable_value() = Tensor({3}, {1.5f, 0.5f, -0.8f});
  bn.beta().mutable_value() = Tensor({3}, {0.1f, -0.2f, 0.3f});

  // sum(BN(x)) has ~zero input gradient by mean-invariance; use a weighted
  // sum instead to expose the full Jacobian.
  const Tensor x = random_tensor({4, 3, 3, 3}, rng);
  const Tensor weights = random_tensor(x.shape(), rng);

  auto loss_value = [&bn, &weights](const Tensor& input) {
    ag::NoGradGuard guard;
    // Keep running stats frozen for the probe evaluations.
    const Tensor rm = bn.running_mean().clone();
    const Tensor rv = bn.running_var().clone();
    const float v = sum_all(mul(bn.forward(ag::Var(input)).value(), weights));
    bn.running_mean() = rm;
    bn.running_var() = rv;
    return v;
  };

  bn.zero_grad();
  ag::Var vx(x.clone(), true);
  ag::Var out = ag::sum_all(ag::mul(bn.forward(vx), ag::Var(weights)));
  out.backward();

  const float epsilon = 1e-2f;
  for (const std::int64_t i : {std::int64_t{0}, x.numel() / 2}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp[i] += epsilon;
    xm[i] -= epsilon;
    const double numeric =
        (loss_value(xp) - loss_value(xm)) / (2.0 * epsilon);
    EXPECT_NEAR(vx.grad()[i], numeric, 5e-2) << "input grad at " << i;
  }
  // Gamma/beta gradients.
  for (auto& [name, param] : bn.named_parameters()) {
    Tensor& w = param->mutable_value();
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      const float saved = w[i];
      w[i] = saved + epsilon;
      const double up = loss_value(x);
      w[i] = saved - epsilon;
      const double down = loss_value(x);
      w[i] = saved;
      EXPECT_NEAR(param->grad()[i], (up - down) / (2.0 * epsilon), 5e-2)
          << name << "[" << i << "]";
    }
  }
}

TEST(LayerGrad, BatchNormEvalMode) {
  Rng rng(5);
  BatchNorm2d bn(2);
  bn.set_training(false);
  bn.running_mean() = Tensor({2}, {0.3f, -0.2f});
  bn.running_var() = Tensor({2}, {1.5f, 0.7f});
  check_module_gradients(bn, random_tensor({2, 2, 3, 3}, rng));
}

TEST(LayerGrad, SEBlock) {
  Rng rng(6);
  SEBlock se(4, 2, rng);
  // Keep activations away from hard-sigmoid kinks with a mild input.
  check_module_gradients(se, random_tensor({2, 4, 3, 3}, rng, 0.4f));
}

TEST(LayerGrad, PreActResidualBlock) {
  Rng rng(7);
  models::PreActBlock block(3, 4, /*stride=*/2, rng);
  block.set_training(false);  // frozen statistics: deterministic check
  // Small epsilon: the block contains ReLUs and central differences across
  // their kinks would otherwise dominate the error.
  check_module_gradients(block, random_tensor({2, 3, 6, 6}, rng, 0.5f),
                         /*tolerance=*/6e-2, /*epsilon=*/2e-3f);
}

TEST(LayerGrad, BatchNormWithAnpMaskGradientFlowsToMask) {
  // The ANP mask is a leaf the defense optimizes; its gradient must arrive.
  Rng rng(8);
  BatchNorm2d bn(3);
  bn.set_training(false);
  ag::Var mask(Tensor::ones({3}), /*requires_grad=*/true);
  bn.set_channel_mask(mask);

  const Tensor x = random_tensor({2, 3, 3, 3}, rng);
  ag::Var out = ag::sum_all(bn.forward(ag::Var(x)));
  out.backward();
  ASSERT_TRUE(mask.has_grad());
  // d(sum)/d(mask_c) = sum over that channel of the unmasked affine output.
  bn.clear_channel_mask();
  const Tensor unmasked = bn.forward(ag::Var(x)).value();
  for (std::int64_t c = 0; c < 3; ++c) {
    double expected = 0.0;
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t j = 0; j < 9; ++j) {
        expected += unmasked[(n * 3 + c) * 9 + j];
      }
    }
    EXPECT_NEAR(mask.grad()[c], expected, 1e-3);
  }
}

}  // namespace
}  // namespace bd::nn
