// Tests for the debug lock-rank deadlock detector (runtime/ordered_mutex.h).
//
// The lockrank:: bookkeeping functions are compiled in every build, so the
// detector logic is tested directly here regardless of configuration; the
// OrderedMutex wiring (lock/unlock call sites) is additionally exercised
// when BD_LOCK_RANK_CHECKS is active (Debug builds).
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/ordered_mutex.h"

namespace {

using bd::runtime::LockRank;
using bd::runtime::OrderedMutex;
namespace lockrank = bd::runtime::lockrank;

std::vector<lockrank::Violation>& recorded() {
  static std::vector<lockrank::Violation> v;
  return v;
}

void record_violation(const lockrank::Violation& v) {
  recorded().push_back(v);
}

// Installs the recording handler for one test and restores the default
// (abort) afterwards. Each scenario runs on a fresh thread so the
// thread-local held stack starts empty and leaks nothing across tests.
class RecordingHandler {
 public:
  RecordingHandler() {
    recorded().clear();
    lockrank::set_violation_handler(&record_violation);
  }
  ~RecordingHandler() { lockrank::set_violation_handler(nullptr); }
};

void on_fresh_thread(void (*body)()) {
  std::thread t(body);
  t.join();
}

TEST(LockRankApi, AscendingAcquisitionIsClean) {
  RecordingHandler guard;
  on_fresh_thread([] {
    lockrank::note_acquire(static_cast<int>(LockRank::kServeService));
    lockrank::note_acquire(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_acquire(static_cast<int>(LockRank::kObsRegistry));
    lockrank::note_release(static_cast<int>(LockRank::kObsRegistry));
    lockrank::note_release(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_release(static_cast<int>(LockRank::kServeService));
  });
  EXPECT_TRUE(recorded().empty());
}

TEST(LockRankApi, InversionIsReportedAtTheBadAcquire) {
  RecordingHandler guard;
  on_fresh_thread([] {
    lockrank::note_acquire(static_cast<int>(LockRank::kPoolState));
    lockrank::note_acquire(static_cast<int>(LockRank::kPoolJob));  // inverted
    lockrank::note_release(static_cast<int>(LockRank::kPoolJob));
    lockrank::note_release(static_cast<int>(LockRank::kPoolState));
  });
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, static_cast<int>(LockRank::kPoolJob));
  EXPECT_EQ(recorded()[0].highest_held,
            static_cast<int>(LockRank::kPoolState));
}

TEST(LockRankApi, SameRankReacquisitionIsAViolation) {
  // Two locks sharing a rank may not nest — that is exactly the ABBA shape
  // the rank table exists to forbid.
  RecordingHandler guard;
  on_fresh_thread([] {
    lockrank::note_acquire(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_acquire(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_release(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_release(static_cast<int>(LockRank::kServeQueue));
  });
  ASSERT_EQ(recorded().size(), 1u);
}

TEST(LockRankApi, MidStackReleaseKeepsCheckSound) {
  // A condition-variable wait releases mid-stack: after releasing the
  // outer rank, acquisitions are judged against what is still held.
  RecordingHandler guard;
  on_fresh_thread([] {
    lockrank::note_acquire(static_cast<int>(LockRank::kServeService));
    lockrank::note_acquire(static_cast<int>(LockRank::kServeQueue));
    lockrank::note_release(static_cast<int>(LockRank::kServeService));
    // kServeQueue (30) is still held, so a lower rank must still report.
    lockrank::note_acquire(static_cast<int>(LockRank::kServeServer));
    lockrank::note_release(static_cast<int>(LockRank::kServeServer));
    lockrank::note_release(static_cast<int>(LockRank::kServeQueue));
  });
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].highest_held,
            static_cast<int>(LockRank::kServeQueue));
}

TEST(LockRankApi, TryAcquireNeverReports) {
  RecordingHandler guard;
  on_fresh_thread([] {
    lockrank::note_acquire(static_cast<int>(LockRank::kPoolState));
    // try_lock cannot block, so it cannot close a waits-for cycle.
    lockrank::note_try_acquire(static_cast<int>(LockRank::kPoolJob));
    lockrank::note_release(static_cast<int>(LockRank::kPoolJob));
    lockrank::note_release(static_cast<int>(LockRank::kPoolState));
  });
  EXPECT_TRUE(recorded().empty());
}

TEST(LockRankApi, OverflowBeyondMaxHeldStaysBalanced) {
  RecordingHandler guard;
  on_fresh_thread([] {
    // Push more than kMaxHeld ranks ascending, then unwind; the depth
    // counter must return to zero without corrupting the tracked slots.
    for (int i = 1; i <= lockrank::kMaxHeld + 4; ++i) {
      lockrank::note_try_acquire(i);
    }
    for (int i = lockrank::kMaxHeld + 4; i >= 1; --i) {
      lockrank::note_release(i);
    }
    lockrank::note_acquire(static_cast<int>(LockRank::kServeServer));
    lockrank::note_release(static_cast<int>(LockRank::kServeServer));
  });
  EXPECT_TRUE(recorded().empty());
}

TEST(LockRankTable, RanksMatchTheDocumentedNestingOrder) {
  // Outer-to-inner as derived from the real call graph; a rank edit that
  // breaks any of these orderings would re-allow a known deadlock shape.
  EXPECT_LT(LockRank::kServeServer, LockRank::kServeService);
  EXPECT_LT(LockRank::kServeService, LockRank::kServeQueue);       // push/remove under service mutex
  EXPECT_LT(LockRank::kServeQueue, LockRank::kServeBackboneCache);
  EXPECT_LT(LockRank::kServeBackboneCache, LockRank::kSupervisor);
  EXPECT_LT(LockRank::kSupervisor, LockRank::kSupervisorWatchdog);
  EXPECT_LT(LockRank::kSupervisorWatchdog, LockRank::kPoolRegistry);
  EXPECT_LT(LockRank::kPoolRegistry, LockRank::kPoolJob);          // registry lock outlives pool dtor
  EXPECT_LT(LockRank::kPoolJob, LockRank::kPoolState);             // run_chunks: job -> state
  EXPECT_LT(LockRank::kPoolState, LockRank::kPoolError);           // first-error capture under job
  EXPECT_LT(LockRank::kPoolError, LockRank::kObsRegistry);         // BD_OBS_* fires under any lock
}

#if BD_LOCK_RANK_CHECKS

TEST(OrderedMutexChecked, GuardedInversionIsDetected) {
  RecordingHandler guard;
  on_fresh_thread([] {
    static OrderedMutex<LockRank::kPoolState> inner;
    static OrderedMutex<LockRank::kPoolJob> outer;
    std::lock_guard hold_inner(inner);
    std::lock_guard hold_outer(outer);  // kPoolJob < kPoolState: inversion
  });
  ASSERT_EQ(recorded().size(), 1u);
  EXPECT_EQ(recorded()[0].acquiring, static_cast<int>(LockRank::kPoolJob));
}

TEST(OrderedMutexChecked, ConditionVariableWaitReleasesTheRank) {
  RecordingHandler guard;
  static OrderedMutex<LockRank::kServeQueue> mutex;
  static std::condition_variable_any cv;
  static bool ready = false;

  std::thread waiter([] {
    std::unique_lock lk(mutex);
    cv.wait(lk, [] { return ready; });
  });
  std::thread signaler([] {
    // If wait() failed to release the ranked mutex through unlock(), this
    // same-rank acquisition would be reported as a violation.
    {
      std::lock_guard lk(mutex);
      ready = true;
    }
    cv.notify_one();
  });
  waiter.join();
  signaler.join();
  EXPECT_TRUE(recorded().empty());
}

#else

TEST(OrderedMutexUnchecked, BehavesAsPlainMutex) {
  OrderedMutex<LockRank::kServeQueue> mutex;
  {
    std::lock_guard lk(mutex);
  }
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();  // bdlint:allow(no-naked-lock): paired with try_lock above
}

#endif  // BD_LOCK_RANK_CHECKS

}  // namespace
