// Checkpoint tests: file round-trips across all architectures, corruption
// handling, and cross-instance equivalence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "models/factory.h"
#include "nn/checkpoint.h"
#include "nn/layers.h"

namespace bd::nn {
namespace {

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/bd_checkpoint_test_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Checkpoint, RoundTripSingleLayer) {
  Rng rng(1);
  Conv2d a(3, 4, 3, 1, 1, /*bias=*/true, rng);
  Conv2d b(3, 4, 3, 1, 1, /*bias=*/true, rng);  // different init

  TempFile file("single");
  save_checkpoint(a, file.path());
  load_checkpoint(b, file.path());

  const auto sa = a.state_dict();
  const auto sb = b.state_dict();
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }
}

class CheckpointZooTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckpointZooTest, ModelOutputsIdenticalAfterFileRoundTrip) {
  Rng rng(2);
  models::ModelSpec spec;
  spec.arch = GetParam();
  spec.base_width = 8;
  auto a = models::make_model(spec, rng);
  auto b = models::make_model(spec, rng);
  a->set_training(false);
  b->set_training(false);

  TempFile file(std::string("zoo_") + GetParam());
  save_checkpoint(*a, file.path());
  load_checkpoint(*b, file.path());

  Tensor x({2, 3, 12, 12});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform());
  }
  const Tensor ya = a->forward(ag::Var(x)).value();
  const Tensor yb = b->forward(ag::Var(x)).value();
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(ya[i], yb[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, CheckpointZooTest,
                         ::testing::Values("preactresnet", "vgg",
                                           "efficientnet", "mobilenet"));

TEST(Checkpoint, MissingFileThrows) {
  Rng rng(3);
  Conv2d conv(1, 1, 1, 1, 0, false, rng);
  EXPECT_THROW(load_checkpoint(conv, "/nonexistent/dir/x.ckpt"),
               std::runtime_error);
  EXPECT_THROW(save_checkpoint(conv, "/nonexistent/dir/x.ckpt"),
               std::runtime_error);
}

TEST(Checkpoint, GarbageFileThrows) {
  TempFile file("garbage");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "this is not a checkpoint";
  }
  Rng rng(4);
  Conv2d conv(1, 1, 1, 1, 0, false, rng);
  EXPECT_THROW(load_checkpoint(conv, file.path()), std::runtime_error);
}

TEST(Checkpoint, TruncatedFileThrows) {
  Rng rng(5);
  Conv2d conv(3, 4, 3, 1, 1, true, rng);
  TempFile file("truncated");
  save_checkpoint(conv, file.path());

  // Truncate to half length.
  std::ifstream in(file.path(), std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string content(size / 2, '\0');
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out << content;
  out.close();

  Conv2d other(3, 4, 3, 1, 1, true, rng);
  EXPECT_THROW(load_checkpoint(other, file.path()), std::runtime_error);
}

TEST(Checkpoint, WrongArchitectureThrows) {
  Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, true, rng);
  TempFile file("wrongarch");
  save_checkpoint(conv, file.path());
  Linear fc(4, 2, rng);
  EXPECT_THROW(load_checkpoint(fc, file.path()), std::runtime_error);
}

TEST(Checkpoint, LoadStateExposesRawDict) {
  Rng rng(7);
  BatchNorm2d bn(4);
  TempFile file("raw");
  save_checkpoint(bn, file.path());
  const auto state = load_state(file.path());
  EXPECT_EQ(state.size(), 4u);  // gamma, beta, running_mean, running_var
  EXPECT_TRUE(state.count("running_mean"));
}

}  // namespace
}  // namespace bd::nn
