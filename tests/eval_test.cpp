// Eval module tests: accuracy/loss metrics, the ACC/ASR/RA triple and its
// invariant, training loops, early stopping, and dataset concatenation.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "data/synth.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"

namespace bd::eval {
namespace {

data::TrainTest tiny_task(Rng& rng, std::int64_t per_class = 12) {
  data::SynthConfig cfg;
  cfg.height = cfg.width = 10;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 4;
  return data::make_synth_cifar(cfg, rng);
}

std::unique_ptr<models::Classifier> tiny_model(Rng& rng,
                                               std::int64_t classes = 10) {
  models::ModelSpec spec;
  spec.arch = "vgg";
  spec.num_classes = classes;
  spec.base_width = 8;
  return models::make_model(spec, rng);
}

TEST(Metrics, AccuracyBounds) {
  Rng rng(1);
  const auto data = tiny_task(rng);
  auto model = tiny_model(rng);
  const double acc = accuracy(*model, data.test);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  // Untrained 10-class model: accuracy should be near chance.
  EXPECT_LT(acc, 0.5);
}

TEST(Metrics, AccuracyEmptyDatasetIsZero) {
  Rng rng(2);
  auto model = tiny_model(rng);
  const data::ImageDataset empty({3, 10, 10}, 10);
  EXPECT_EQ(accuracy(*model, empty), 0.0);
  EXPECT_EQ(dataset_loss(*model, empty), 0.0);
}

TEST(Metrics, AccuracyRestoresTrainingMode) {
  Rng rng(3);
  const auto data = tiny_task(rng, 2);
  auto model = tiny_model(rng);
  model->set_training(true);
  accuracy(*model, data.test);
  EXPECT_TRUE(model->training());
  model->set_training(false);
  accuracy(*model, data.test);
  EXPECT_FALSE(model->training());
}

TEST(Metrics, UntrainedLossNearLogC) {
  Rng rng(4);
  const auto data = tiny_task(rng, 2);
  auto model = tiny_model(rng);
  const double loss = dataset_loss(*model, data.test);
  EXPECT_NEAR(loss, std::log(10.0), 1.2);
}

TEST(Metrics, AsrPlusRaInvariant) {
  // ASR + RA <= 100 because the same triggered image cannot match both the
  // target label and its (different) true label.
  Rng rng(5);
  const auto data = tiny_task(rng);
  auto model = tiny_model(rng);
  attack::BadNetsTrigger trigger;
  const auto asr_set = attack::make_asr_test_set(data.test, trigger, 0);
  const auto ra_set = attack::make_ra_test_set(data.test, trigger, 0);
  const auto m = evaluate_backdoor(*model, data.test, asr_set, ra_set);
  EXPECT_LE(m.asr + m.ra, 100.0 + 1e-9);
  EXPECT_GE(m.acc, 0.0);
  EXPECT_LE(m.acc, 100.0);
}

TEST(Trainer, LearnsTinyTask) {
  Rng rng(6);
  const auto data = tiny_task(rng, 30);
  auto model = tiny_model(rng);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr = 0.05f;
  const TrainResult result = train_classifier(*model, data.train, cfg, rng);
  EXPECT_LT(result.final_loss, 1.5);
  EXPECT_EQ(result.guard.recoveries, 0);
  EXPECT_FALSE(result.guard.gave_up);
  EXPECT_GT(accuracy(*model, data.test), 0.5);
}

TEST(Trainer, RejectsEmptyTrainingSet) {
  Rng rng(7);
  auto model = tiny_model(rng);
  const data::ImageDataset empty({3, 10, 10}, 10);
  TrainConfig cfg;
  EXPECT_THROW(train_classifier(*model, empty, cfg, rng),
               std::invalid_argument);
}

TEST(Trainer, EarlyStoppingRestoresBestState) {
  Rng rng(8);
  const auto data = tiny_task(rng, 10);
  auto [train, val] = data.train.split_per_class(0.8, rng);
  auto model = tiny_model(rng);

  EarlyStopConfig cfg;
  cfg.max_epochs = 6;
  cfg.patience = 2;
  cfg.lr = 0.05f;
  const auto result = finetune_early_stopping(*model, train, val, cfg, rng);
  EXPECT_GT(result.epochs_run, 0);
  EXPECT_LE(result.epochs_run, 6);
  // The restored model's val loss equals the reported best.
  EXPECT_NEAR(dataset_loss(*model, val), result.best_val_loss, 1e-3);
}

TEST(Trainer, PostStepHookRuns) {
  Rng rng(9);
  const auto data = tiny_task(rng, 4);
  auto [train, val] = data.train.split_per_class(0.75, rng);
  auto model = tiny_model(rng);

  int hook_calls = 0;
  EarlyStopConfig cfg;
  cfg.max_epochs = 2;
  cfg.patience = 10;
  cfg.post_step = [&hook_calls] { ++hook_calls; };
  finetune_early_stopping(*model, train, val, cfg, rng);
  EXPECT_GT(hook_calls, 0);
}

TEST(Trainer, ConcatDatasets) {
  Rng rng(10);
  const auto data = tiny_task(rng, 2);
  const auto merged = concat(data.train, data.test);
  EXPECT_EQ(merged.size(), data.train.size() + data.test.size());

  const data::ImageDataset other({3, 8, 8}, 10);
  EXPECT_THROW(concat(data.train, other), std::invalid_argument);
}

}  // namespace
}  // namespace bd::eval
