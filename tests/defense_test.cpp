// Baseline-defense tests: context construction, each defense's mechanics
// (pruning bookkeeping, mask lifecycle, data-free behaviour), and the
// defense registry.
#include <gtest/gtest.h>

#include "attack/trigger.h"
#include "core/registry.h"
#include "data/synth.h"
#include "defense/anp.h"
#include "defense/clp.h"
#include "defense/fine_pruning.h"
#include "defense/finetune.h"
#include "defense/ftsam.h"
#include "defense/nad.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "tensor/ops.h"

namespace bd::defense {
namespace {

struct Fixture {
  Rng rng{101};
  data::TrainTest data;
  models::ModelSpec spec;
  std::unique_ptr<models::Classifier> model;
  attack::BadNetsTrigger trigger;
  DefenseContext ctx;

  explicit Fixture(std::int64_t per_class = 6, const char* arch = "vgg")
      : data([this, per_class] {
          data::SynthConfig cfg;
          cfg.height = cfg.width = 10;
          cfg.train_per_class = per_class;
          cfg.test_per_class = 2;
          return data::make_synth_cifar(cfg, rng);
        }()),
        spec{arch, 10, 3, 8},
        model(models::make_model(spec, rng)),
        ctx(make_defense_context(data.train, trigger, spec, rng)) {}
};

TEST(Context, SplitsAndSynthesis) {
  Fixture f;
  // 90/10 per-class split of 60 samples -> 50 train / 10 val.
  EXPECT_EQ(f.ctx.clean_train.size() + f.ctx.clean_val.size(), 60u);
  EXPECT_EQ(f.ctx.clean_val.indices_of_class(0).size(), 1u);
  // Synthesized sets mirror the clean splits with true labels.
  EXPECT_EQ(f.ctx.backdoor_train.size(), f.ctx.clean_train.size());
  EXPECT_EQ(f.ctx.backdoor_val.size(), f.ctx.clean_val.size());
  for (std::size_t i = 0; i < f.ctx.backdoor_train.size(); ++i) {
    EXPECT_EQ(f.ctx.backdoor_train.label(i), f.ctx.clean_train.label(i));
  }
  EXPECT_NO_THROW(f.ctx.rng_ref());
  DefenseContext empty{data::ImageDataset({3, 4, 4}, 2),
                       data::ImageDataset({3, 4, 4}, 2),
                       data::ImageDataset({3, 4, 4}, 2),
                       data::ImageDataset({3, 4, 4}, 2),
                       models::ModelSpec{},
                       nullptr};
  EXPECT_THROW(empty.rng_ref(), std::logic_error);
}

TEST(Finetune, RunsAndKeepsModelFunctional) {
  Fixture f;
  FinetuneConfig cfg;
  cfg.max_epochs = 3;
  FinetuneDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_EQ(result.defense_name, "ft");
  EXPECT_GT(result.finetune_epochs, 0);
  EXPECT_LE(result.finetune_epochs, 3);
  // Model still produces valid probabilities.
  const double acc = eval::accuracy(*f.model, f.data.test);
  EXPECT_GE(acc, 0.0);
}

TEST(FinePruning, PrunesDormantFiltersAndEnforcesMasks) {
  Fixture f;
  FinePruningConfig cfg;
  cfg.finetune_max_epochs = 2;
  cfg.max_accuracy_drop = 1.0;  // never blocks pruning in this test
  cfg.max_prune_fraction = 0.3;
  FinePruningDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_GT(result.pruned_units, 0);

  // Every pruned filter is still zero after the fine-tune stage.
  std::int64_t zeroed = 0;
  for (auto* conv : f.model->modules_of_type<nn::Conv2d>()) {
    const Tensor& w = conv->weight().value();
    const std::int64_t fsz = w.numel() / conv->out_channels();
    for (std::int64_t c = 0; c < conv->out_channels(); ++c) {
      if (!conv->is_filter_pruned(c)) continue;
      ++zeroed;
      for (std::int64_t j = 0; j < fsz; ++j) {
        ASSERT_EQ(w[c * fsz + j], 0.0f);
      }
    }
  }
  EXPECT_EQ(zeroed, result.pruned_units);
}

TEST(Clp, PrunesPlantedOutlierChannel) {
  Fixture f;
  // Plant an extreme-Lipschitz filter: scale one filter's weights up.
  auto convs = f.model->modules_of_type<nn::Conv2d>();
  nn::Conv2d* conv = convs.front();
  Tensor& w = conv->weight().mutable_value();
  const std::int64_t fsz = w.numel() / conv->out_channels();
  for (std::int64_t j = 0; j < fsz; ++j) w[2 * fsz + j] *= 50.0f;

  ClpDefense defense(ClpConfig{2.0, 20});
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_GE(result.pruned_units, 1);
  EXPECT_TRUE(conv->is_filter_pruned(2));
}

TEST(Clp, DataFreeDeterminism) {
  // Two identical models yield identical pruning regardless of context.
  Fixture f1, f2;
  f2.model->load_state_dict(f1.model->state_dict());
  ClpDefense d1, d2;
  const auto r1 = d1.apply(*f1.model, f1.ctx);
  const auto r2 = d2.apply(*f2.model, f2.ctx);
  EXPECT_EQ(r1.pruned_units, r2.pruned_units);
}

TEST(Clp, SpectralNormMatchesKnownMatrix) {
  // Diagonal matrix: spectral norm = max |diagonal|.
  Tensor m({2, 2}, {3.0f, 0.0f, 0.0f, 1.0f});
  EXPECT_NEAR(spectral_norm(m, 30), 3.0f, 1e-3);
  Tensor zero({3, 3});
  EXPECT_EQ(spectral_norm(zero, 10), 0.0f);
}

TEST(Anp, MaskLifecycleAndSuppression) {
  Fixture f;
  AnpConfig cfg;
  cfg.iterations = 4;
  cfg.prune_threshold = 0.2f;
  AnpDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_EQ(result.defense_name, "anp");

  std::int64_t suppressed = 0;
  for (auto* bn : f.model->modules_of_type<nn::BatchNorm2d>()) {
    // Masks/perturbations must be cleared after apply.
    EXPECT_FALSE(bn->channel_mask().defined());
    for (std::int64_t c = 0; c < bn->channels(); ++c) {
      if (bn->gamma().value()[c] == 0.0f && bn->beta().value()[c] == 0.0f) {
        ++suppressed;
      }
    }
  }
  EXPECT_GE(suppressed, result.pruned_units);
}

TEST(Nad, AttentionMapIsNormalized) {
  Rng rng(7);
  Tensor f({2, 4, 3, 3});
  for (std::int64_t i = 0; i < f.numel(); ++i) {
    f[i] = static_cast<float>(rng.normal());
  }
  const Tensor a = attention_map(ag::Var(f)).value();
  EXPECT_EQ(a.shape(), (Shape{2, 1, 3, 3}));
  // Per-sample L2 norm ~= 1.
  for (std::int64_t n = 0; n < 2; ++n) {
    double total = 0.0;
    for (std::int64_t j = 0; j < 9; ++j) {
      const float v = a[n * 9 + j];
      total += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(total, 1.0, 1e-3);
  }
}

TEST(Nad, RunsEndToEnd) {
  Fixture f(4);
  NadConfig cfg;
  cfg.teacher_epochs = 1;
  cfg.distill_epochs = 1;
  NadDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_EQ(result.finetune_epochs, 1);
  EXPECT_GE(eval::accuracy(*f.model, f.data.test), 0.0);
}

TEST(FtSam, RunsFixedBudget) {
  Fixture f(4);
  FtSamConfig cfg;
  cfg.max_epochs = 3;
  FtSamDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_GT(result.finetune_epochs, 0);
  EXPECT_LE(result.finetune_epochs, 3);
}

TEST(Registry, CoversAllDefensesWithDisplayNames) {
  const auto names = core::known_defenses();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    auto defense = core::make_defense(name);
    ASSERT_NE(defense, nullptr);
    EXPECT_EQ(defense->name(), name);
    EXPECT_FALSE(core::defense_display_name(name).empty());
  }
  EXPECT_EQ(core::defense_display_name("gradprune"), "Ours");
  EXPECT_THROW(core::make_defense("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace bd::defense
