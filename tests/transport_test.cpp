// Tests for the socket transports and connection lifecycle: TCP endpoint
// parsing, adversarial framing (byte-at-a-time, split at every boundary,
// pipelined, oversized mid-stream), SIGPIPE-free writes against a dead
// peer, injected network faults (short_write, accept_fail, conn_reset,
// slow_peer), read deadlines, connection-cap shedding, client retry with
// idempotent resubmission (including across a daemon restart), drain vs
// abandon shutdown, and the WaitOutcome contract.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "robust/fault_injector.h"
#include "robust/supervisor.h"
#include "serve/client.h"
#include "serve/job.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/transport_tcp.h"
#include "serve/wire.h"

namespace bd {
namespace {

using serve::Admission;
using serve::Client;
using serve::ClientConfig;
using serve::Endpoint;
using serve::JobRecord;
using serve::JobSpec;
using serve::JobState;
using serve::Json;
using serve::SanitizeService;
using serve::ServerConfig;
using serve::ServiceConfig;
using serve::SocketServer;
using serve::StopMode;
using serve::TcpEndpoint;
using serve::TransportError;
using serve::WaitOutcome;
namespace net = serve::net;

// ---------------------------------------------------------------------------
// TCP endpoint parsing
// ---------------------------------------------------------------------------

TEST(TcpEndpointTest, ParsesValidSpecs) {
  TcpEndpoint e;
  std::string error;
  ASSERT_TRUE(serve::parse_tcp_endpoint("127.0.0.1:8080", e, error)) << error;
  EXPECT_EQ(e.host, "127.0.0.1");
  EXPECT_EQ(e.port, 8080);
  ASSERT_TRUE(serve::parse_tcp_endpoint("localhost:1", e, error)) << error;
  EXPECT_EQ(e.port, 1);
  ASSERT_TRUE(serve::parse_tcp_endpoint(":9000", e, error)) << error;
  EXPECT_EQ(e.host, "");
  ASSERT_TRUE(serve::parse_tcp_endpoint("*:9000", e, error)) << error;
  ASSERT_TRUE(serve::parse_tcp_endpoint("0.0.0.0:0", e, error)) << error;
  EXPECT_EQ(e.port, 0);  // ephemeral: legal for listeners
}

TEST(TcpEndpointTest, RejectsMalformedSpecs) {
  TcpEndpoint e;
  std::string error;
  EXPECT_FALSE(serve::parse_tcp_endpoint("", e, error));
  EXPECT_FALSE(serve::parse_tcp_endpoint("127.0.0.1", e, error));
  EXPECT_FALSE(serve::parse_tcp_endpoint("host:", e, error));
  EXPECT_FALSE(serve::parse_tcp_endpoint("host:abc", e, error));
  EXPECT_FALSE(serve::parse_tcp_endpoint("host:70000", e, error));
  EXPECT_FALSE(serve::parse_tcp_endpoint("host:-1", e, error));
  // No DNS by design: non-numeric hosts other than localhost are refused.
  EXPECT_FALSE(serve::parse_tcp_endpoint("example.com:80", e, error));
  EXPECT_NE(error, "");
}

TEST(TcpEndpointTest, ClientEndpointRequiresRealPort) {
  EXPECT_THROW(serve::tcp_endpoint("127.0.0.1:0"), std::invalid_argument);
  EXPECT_THROW(serve::tcp_endpoint("nonsense"), std::invalid_argument);
  const Endpoint e = serve::tcp_endpoint("127.0.0.1:8080");
  EXPECT_EQ(serve::endpoint_name(e), "tcp:127.0.0.1:8080");
  EXPECT_EQ(serve::endpoint_name(serve::unix_endpoint("/tmp/x.sock")),
            "unix:/tmp/x.sock");
}

// ---------------------------------------------------------------------------
// LineFramer: adversarial chunk delivery
// ---------------------------------------------------------------------------

TEST(LineFramerTest, ReassemblesByteAtATime) {
  net::LineFramer framer(64);
  const std::string wire = "{\"op\":\"ping\"}\n";
  std::string line;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(framer.append(wire.data() + i, 1));
    EXPECT_FALSE(framer.next(line)) << "line complete early at byte " << i;
  }
  ASSERT_TRUE(framer.append(wire.data() + wire.size() - 1, 1));
  ASSERT_TRUE(framer.next(line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  EXPECT_FALSE(framer.next(line));
}

TEST(LineFramerTest, SplitAtEveryBoundaryYieldsSameFrames) {
  const std::string wire = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
  for (std::size_t split = 1; split < wire.size(); ++split) {
    net::LineFramer framer(64);
    ASSERT_TRUE(framer.append(wire.data(), split));
    ASSERT_TRUE(framer.append(wire.data() + split, wire.size() - split));
    std::vector<std::string> lines;
    std::string line;
    while (framer.next(line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 3u) << "split at " << split;
    EXPECT_EQ(lines[0], "{\"a\":1}");
    EXPECT_EQ(lines[1], "{\"b\":2}");
    EXPECT_EQ(lines[2], "{\"c\":3}");
  }
}

TEST(LineFramerTest, PipelinedBurstInOneChunk) {
  net::LineFramer framer(16);
  // Many frames in one read: the per-line bound applies to each line, not
  // to the burst, so a legal pipeline larger than max_line still passes.
  std::string wire;
  for (int i = 0; i < 10; ++i) wire += "{\"i\":" + std::to_string(i) + "}\n";
  ASSERT_GT(wire.size(), 16u);
  ASSERT_TRUE(framer.append(wire.data(), wire.size()));
  std::string line;
  int count = 0;
  while (framer.next(line)) ++count;
  EXPECT_EQ(count, 10);
  EXPECT_FALSE(framer.overflowed());
}

TEST(LineFramerTest, OversizedMidStreamLatchesAfterCompleteLines) {
  net::LineFramer framer(8);
  // A complete line, then an unterminated monster: the good line must
  // still come out, and the overflow must latch.
  const std::string wire = "{\"k\":1}\nAAAAAAAAAAAAAAAAAAAA";
  EXPECT_FALSE(framer.append(wire.data(), wire.size()));
  EXPECT_TRUE(framer.overflowed());
  std::string line;
  ASSERT_TRUE(framer.next(line));
  EXPECT_EQ(line, "{\"k\":1}");
}

TEST(LineFramerTest, ToleratesCrlfAndSkipsKeepAliveNewlines) {
  net::LineFramer framer(64);
  const std::string wire = "\n\n{\"op\":\"ping\"}\r\n\n";
  ASSERT_TRUE(framer.append(wire.data(), wire.size()));
  std::string line;
  ASSERT_TRUE(framer.next(line));
  EXPECT_EQ(line, "{\"op\":\"ping\"}");
  EXPECT_FALSE(framer.next(line));
}

// ---------------------------------------------------------------------------
// net: SIGPIPE safety and injected short writes
// ---------------------------------------------------------------------------

class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("BDPROTO_MODE", "quick", 1);
    robust::FaultInjector::instance().reset();
  }
  void TearDown() override { robust::FaultInjector::instance().reset(); }
};

using NetTest = FaultFixture;

TEST_F(NetTest, SendToClosedPeerReportsResetNotSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);  // peer dies before we write
  const std::string payload(4096, 'x');
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test
  // process. The first send may land in the buffer; looping over a large
  // payload guarantees we hit the dead peer.
  net::IoStatus status = net::IoStatus::kOk;
  for (int i = 0; i < 64 && status == net::IoStatus::kOk; ++i) {
    status = net::send_all(fds[0], payload, /*deadline_seconds=*/1.0);
  }
  EXPECT_EQ(status, net::IoStatus::kReset);
  ::close(fds[0]);
}

TEST_F(NetTest, ShortWriteFaultStillDeliversEveryByte) {
  robust::FaultInjector::instance().configure("short_write@1");
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "{\"op\":\"ping\"}\n";
  std::thread reader([&fds, &payload] {
    std::string got;
    while (got.size() < payload.size()) {
      const net::IoStatus status = net::recv_some(fds[1], got, 4096, 5.0);
      if (status != net::IoStatus::kOk) break;
    }
    EXPECT_EQ(got, payload);
  });
  EXPECT_EQ(net::send_all(fds[0], payload, /*deadline_seconds=*/5.0),
            net::IoStatus::kOk);
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// server lifecycle over real sockets
// ---------------------------------------------------------------------------

JobSpec micro_spec(std::uint64_t seed = 2024) {
  JobSpec spec;
  spec.spc = 2;
  spec.seed = seed;
  spec.width = 4;
  spec.attack_epochs = 1;
  spec.prune_rounds = 2;
  spec.finetune_epochs = 1;
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  return spec;
}

/// A serve daemon on an ephemeral TCP port (and optionally a Unix socket),
/// run()ning on its own thread until stop() or a protocol shutdown.
class TestServer {
 public:
  explicit TestServer(ServerConfig config) : server_(config) {
    thread_ = std::thread([this] { server_.run(); });
    if (!config.listen_address.empty()) {
      for (int i = 0; i < 500 && server_.tcp_port() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    } else {
      const Client probe(config.socket_path);
      for (int i = 0; i < 500 && !probe.alive(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
  ~TestServer() {
    server_.request_stop(StopMode::kDrain);
    if (thread_.joinable()) thread_.join();
  }
  SocketServer& server() { return server_; }
  Endpoint tcp() const {
    return serve::tcp_endpoint("127.0.0.1:" +
                               std::to_string(server_.tcp_port()));
  }
  /// Joins run() — for tests that end the daemon via a protocol shutdown.
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  SocketServer server_;
  std::thread thread_;
};

ServerConfig tcp_config(robust::Supervisor* supervisor,
                        std::size_t workers = 0) {
  ServerConfig config;
  config.socket_path.clear();
  config.listen_address = "127.0.0.1:0";
  config.service.workers = workers;
  config.service.supervisor = supervisor;
  return config;
}

ClientConfig fast_retries() {
  ClientConfig c;
  c.connect_timeout_seconds = 5.0;
  c.io_timeout_seconds = 5.0;
  c.overall_deadline_seconds = 30.0;
  c.retry_budget = 4;
  c.backoff_initial_seconds = 0.005;  // keep tests fast
  c.backoff_max_seconds = 0.02;
  return c;
}

using TransportTest = FaultFixture;

TEST_F(TransportTest, TcpEndToEndPingSubmitStatus) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  const Client client(ts.tcp());
  EXPECT_TRUE(client.alive());

  const Json submit = client.request_json(
      "{\"op\":\"submit\",\"tenant\":\"t0\",\"job\":{\"spc\":2,\"seed\":7}}");
  ASSERT_TRUE(submit.get_bool("ok", false)) << submit.get_string("message");
  const std::string id = submit.get_string("id");
  const Json status = client.request_json(
      serve::JsonObject().set("op", "status").set("id", id).str());
  ASSERT_TRUE(status.get_bool("ok", false));
  EXPECT_EQ(status.find("job")->get_string("state"), "queued");
}

TEST_F(TransportTest, ByteAtATimeAndPipelinedRequestsOverTcp) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  std::string error;
  const int fd =
      serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()}, 5.0, error);
  ASSERT_GE(fd, 0) << error;

  // Trickle one ping a byte at a time...
  const std::string ping = "{\"op\":\"ping\"}\n";
  for (char c : ping) {
    ASSERT_EQ(net::send_all(fd, &c, 1, 5.0), net::IoStatus::kOk);
  }
  std::string buf;
  while (buf.find('\n') == std::string::npos) {
    ASSERT_EQ(net::recv_some(fd, buf, 4096, 5.0), net::IoStatus::kOk);
  }
  EXPECT_NE(buf.find("pong"), std::string::npos);

  // ...then pipeline three requests in one segment on the same connection.
  buf.clear();
  ASSERT_EQ(net::send_all(fd, ping + ping + ping, 5.0), net::IoStatus::kOk);
  int newlines = 0;
  while (newlines < 3) {
    ASSERT_EQ(net::recv_some(fd, buf, 4096, 5.0), net::IoStatus::kOk);
    newlines = static_cast<int>(
        std::count(buf.begin(), buf.end(), '\n'));
  }
  EXPECT_EQ(newlines, 3);
  ::close(fd);
}

TEST_F(TransportTest, OversizedRequestGetsStructuredErrorNotCrash) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  std::string error;
  const int fd =
      serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()}, 5.0, error);
  ASSERT_GE(fd, 0) << error;
  // An unterminated line past kMaxRequestBytes arrives mid-stream.
  const std::string flood(serve::Protocol::kMaxRequestBytes + 100, 'a');
  ASSERT_EQ(net::send_all(fd, flood, 5.0), net::IoStatus::kOk);
  std::string buf;
  while (buf.find('\n') == std::string::npos) {
    const net::IoStatus status = net::recv_some(fd, buf, 4096, 5.0);
    if (status != net::IoStatus::kOk) break;
  }
  EXPECT_NE(buf.find("oversized_request"), std::string::npos);
  ::close(fd);
  // The daemon is still alive for the next client.
  EXPECT_TRUE(Client(ts.tcp()).alive());
}

TEST_F(TransportTest, PeerClosingMidResponseDoesNotKillDaemon) {
  robust::Supervisor supervisor;
  ServerConfig config = tcp_config(&supervisor);
  config.socket_path = "/tmp/transport_test_sigpipe.sock";  // both transports
  TestServer ts(config);
  // Fire a request and slam the connection shut without reading the
  // response, over both transports; the daemon's reply hits a dead or
  // dying socket and must not SIGPIPE the process.
  for (int round = 0; round < 3; ++round) {
    std::string error;
    int fd = serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()}, 5.0,
                                error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_EQ(net::send_all(fd, std::string("{\"op\":\"stats\"}\n"), 5.0),
              net::IoStatus::kOk);
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;  // RST instead of FIN: the rudest possible exit
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);

    fd = net::connect_unix(config.socket_path, 5.0, error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_EQ(net::send_all(fd, std::string("{\"op\":\"stats\"}\n"), 5.0),
              net::IoStatus::kOk);
    ::close(fd);  // orderly close, response still unread
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(Client(ts.tcp()).alive());
  std::remove(config.socket_path.c_str());
}

TEST_F(TransportTest, ReadDeadlineEvictsSilentConnection) {
  robust::Supervisor supervisor;
  ServerConfig config = tcp_config(&supervisor);
  config.read_deadline_seconds = 0.2;
  TestServer ts(config);
  std::string error;
  const int fd =
      serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()}, 5.0, error);
  ASSERT_GE(fd, 0) << error;
  // Send nothing. Within the deadline (plus slack) the server must give
  // up on us: a best-effort `timeout` error then EOF.
  std::string buf;
  net::IoStatus status = net::IoStatus::kOk;
  while (status == net::IoStatus::kOk) {
    status = net::recv_some(fd, buf, 4096, 5.0);
  }
  EXPECT_EQ(status, net::IoStatus::kClosed);
  EXPECT_NE(buf.find("timeout"), std::string::npos);
  ::close(fd);
}

TEST_F(TransportTest, ConnectionCapShedsWithOverloadedError) {
  robust::Supervisor supervisor;
  ServerConfig config = tcp_config(&supervisor);
  config.max_connections = 1;
  config.read_deadline_seconds = 10.0;  // the hog idles within its budget
  TestServer ts(config);
  std::string error;
  const int hog =
      serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()}, 5.0, error);
  ASSERT_GE(hog, 0) << error;
  // The hog must be inside serve_connection (not just queued in the
  // accept backlog) before the next connection can be shed.
  ASSERT_EQ(net::send_all(hog, std::string("{\"op\":\"ping\"}\n"), 5.0),
            net::IoStatus::kOk);
  std::string hog_buf;
  while (hog_buf.find('\n') == std::string::npos) {
    ASSERT_EQ(net::recv_some(hog, hog_buf, 4096, 5.0), net::IoStatus::kOk);
  }

  bool shed = false;
  for (int i = 0; i < 50 && !shed; ++i) {
    const int fd = serve::connect_tcp({"127.0.0.1", ts.server().tcp_port()},
                                      5.0, error);
    ASSERT_GE(fd, 0) << error;
    std::string buf;
    net::IoStatus status = net::IoStatus::kOk;
    while (buf.find('\n') == std::string::npos &&
           status == net::IoStatus::kOk) {
      status = net::recv_some(fd, buf, 4096, 5.0);
    }
    ::close(fd);
    shed = buf.find("overloaded") != std::string::npos;
  }
  EXPECT_TRUE(shed);
  ::close(hog);

  // With the hog gone the slot frees up and service resumes.
  bool recovered = false;
  const Client probe(ts.tcp());
  for (int i = 0; i < 100 && !recovered; ++i) {
    recovered = probe.alive();
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
}

TEST_F(TransportTest, AcceptFailFaultIsSheddedAndRetried) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  robust::FaultInjector::instance().configure("accept_fail@1");
  int retries = 0;
  const Client client(ts.tcp(), fast_retries());
  const Json response = client.request_json_retry("{\"op\":\"ping\"}",
                                                  &retries);
  EXPECT_TRUE(response.get_bool("ok", false));
  EXPECT_GE(retries, 1);
}

TEST_F(TransportTest, SlowPeerRequestIsReassembledByServer) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  robust::FaultInjector::instance().configure("slow_peer@1");
  const Client client(ts.tcp(), fast_retries());
  const Json response = client.request_json("{\"op\":\"ping\"}");
  EXPECT_TRUE(response.get_bool("ok", false));
}

// ---------------------------------------------------------------------------
// idempotent retries and dedup
// ---------------------------------------------------------------------------

TEST_F(TransportTest, ConnResetRetryWithClientIdDoesNotDuplicate) {
  robust::Supervisor supervisor;
  TestServer ts(tcp_config(&supervisor));
  // The reset fires after the submit is sent: the daemon may have enqueued
  // the job, the client cannot know. The retry must resolve to ONE job.
  robust::FaultInjector::instance().configure("conn_reset@1");
  const Client client(ts.tcp(), fast_retries());
  int retries = 0;
  const Json response = client.request_json_retry(
      "{\"op\":\"submit\",\"tenant\":\"t0\","
      "\"job\":{\"spc\":2,\"seed\":7,\"client_id\":\"retry-test-1\"}}",
      &retries);
  ASSERT_TRUE(response.get_bool("ok", false)) << response.get_string("message");
  EXPECT_GE(retries, 1);
  EXPECT_TRUE(response.get_bool("dedup", false));

  const Json jobs = client.request_json("{\"op\":\"jobs\"}");
  ASSERT_NE(jobs.find("jobs"), nullptr);
  EXPECT_EQ(jobs.find("jobs")->items().size(), 1u);
}

TEST_F(TransportTest, DedupSurvivesDaemonRestart) {
  const std::string journal = "/tmp/transport_test_dedup.jsonl";
  std::remove(journal.c_str());
  JobSpec spec = micro_spec(11);
  spec.client_job_id = "restart-key";
  std::string first_id;
  {
    ServiceConfig config;
    config.workers = 0;
    config.journal_path = journal;
    SanitizeService service(config);
    const serve::SubmitResult submitted = service.submit(spec);
    ASSERT_EQ(submitted.admission, Admission::kAdmitted);
    EXPECT_FALSE(submitted.deduplicated);
    first_id = submitted.id;
    const serve::SubmitResult again = service.submit(spec);
    ASSERT_EQ(again.admission, Admission::kAdmitted);
    EXPECT_TRUE(again.deduplicated);
    EXPECT_EQ(again.id, first_id);
    service.stop();
  }
  {
    // Same journal, new incarnation: the key must still dedup, even though
    // the job is now terminal (interrupted by the restart).
    ServiceConfig config;
    config.workers = 0;
    config.journal_path = journal;
    SanitizeService service(config);
    const serve::SubmitResult after = service.submit(spec);
    ASSERT_EQ(after.admission, Admission::kAdmitted);
    EXPECT_TRUE(after.deduplicated);
    EXPECT_EQ(after.id, first_id);
    EXPECT_EQ(service.stats().deduplicated, 1);
    service.stop();
  }
  std::remove(journal.c_str());
}

TEST_F(TransportTest, RejectsBadClientIds) {
  EXPECT_THROW(
      serve::parse_job_spec(
          [] {
            Json v;
            std::string e;
            Json::parse("{\"client_id\":\"bad id with spaces\"}", v, e);
            return v;
          }(),
          "t0"),
      serve::BadRequest);
  EXPECT_THROW(
      serve::parse_job_spec(
          [] {
            Json v;
            std::string e;
            Json::parse("{\"client_id\":\"" + std::string(200, 'a') + "\"}",
                        v, e);
            return v;
          }(),
          "t0"),
      serve::BadRequest);
}

TEST_F(TransportTest, OverloadedReplyIsRetriedWithinBudget) {
  // No server at all: connection refused is retryable, and the budget
  // bounds the attempts — the last error surfaces, not a hang.
  const Endpoint nowhere = serve::tcp_endpoint("127.0.0.1:1");
  ClientConfig config = fast_retries();
  config.retry_budget = 2;
  config.connect_timeout_seconds = 0.2;
  const Client client(nowhere, config);
  int retries = 0;
  try {
    (void)client.request_json_retry("{\"op\":\"ping\"}", &retries);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.retryable());
  }
}

TEST_F(TransportTest, OverallDeadlineBoundsRetryLoop) {
  const Endpoint nowhere = serve::tcp_endpoint("127.0.0.1:1");
  ClientConfig config = fast_retries();
  config.retry_budget = 1000000;  // budget alone would spin a long time
  config.overall_deadline_seconds = 0.2;
  config.connect_timeout_seconds = 0.05;
  config.backoff_initial_seconds = 0.05;
  config.backoff_max_seconds = 0.05;
  const Client client(nowhere, config);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)client.request_json_retry("{\"op\":\"ping\"}");
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_FALSE(e.retryable());  // deadline exhaustion is terminal
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed.count(), 5.0);
}

// ---------------------------------------------------------------------------
// shutdown: drain vs abandon, WaitOutcome
// ---------------------------------------------------------------------------

TEST_F(TransportTest, ProtocolShutdownAbandonLeavesCrashEquivalentJournal) {
  const std::string journal = "/tmp/transport_test_abandon.jsonl";
  std::remove(journal.c_str());
  robust::Supervisor supervisor;
  ServerConfig config = tcp_config(&supervisor);
  config.service.journal_path = journal;
  std::string id;
  {
    TestServer ts(config);
    const Client client(ts.tcp());
    const Json submit = client.request_json(
        "{\"op\":\"submit\",\"tenant\":\"t0\",\"job\":{\"spc\":2,"
        "\"seed\":3}}");
    ASSERT_TRUE(submit.get_bool("ok", false));
    id = submit.get_string("id");
    const Json bye =
        client.request_json("{\"op\":\"shutdown\",\"drain\":false}");
    ASSERT_TRUE(bye.get_bool("ok", false));
    EXPECT_FALSE(bye.get_bool("drain", true));
    ts.join();  // run() returns once the abandon completes
  }
  // Restart: the abandoned job must look exactly like a crash left it.
  ServiceConfig restarted;
  restarted.workers = 0;
  restarted.journal_path = journal;
  SanitizeService service(restarted);
  JobRecord record;
  ASSERT_TRUE(service.status(id, record));
  EXPECT_EQ(record.state, JobState::kInterrupted);
  service.stop();
  std::remove(journal.c_str());
}

TEST_F(TransportTest, WaitOutcomeDistinguishesTimeoutFromUnknown) {
  ServiceConfig config;
  config.workers = 0;  // nothing ever runs: waits can only time out
  SanitizeService service(config);
  const serve::SubmitResult submitted = service.submit(micro_spec(5));
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);
  EXPECT_EQ(service.wait(submitted.id, 0.05), WaitOutcome::kTimeout);
  EXPECT_EQ(service.wait("j999999", 0.05), WaitOutcome::kUnknown);
  service.stop();
  // After stop, waiters must not hang: the queued job never finished, so
  // the outcome is a timeout, returned promptly.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(service.wait(submitted.id, 30.0), WaitOutcome::kTimeout);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed.count(), 5.0);
}

TEST_F(TransportTest, ProtocolWaitReportsTerminalJob) {
  robust::Supervisor supervisor;
  ServiceConfig config;
  config.workers = 1;
  config.supervisor = &supervisor;
  SanitizeService service(config);
  service.start();
  serve::Protocol protocol(service);
  const serve::SubmitResult submitted = service.submit(micro_spec(6));
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);
  const serve::ProtocolResult result = protocol.handle_line(
      serve::JsonObject()
          .set("op", "wait")
          .set("id", submitted.id)
          .set_double("timeout", 60.0)
          .str());
  Json response;
  std::string error;
  ASSERT_TRUE(Json::parse(result.response, response, error)) << error;
  ASSERT_TRUE(response.get_bool("ok", false))
      << response.get_string("message");
  const std::string state = response.find("job")->get_string("state");
  EXPECT_TRUE(state == "done" || state == "failed") << state;
  service.stop();
}

}  // namespace
}  // namespace bd
