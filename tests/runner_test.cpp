// Experiment-runner tests: scale configuration invariants and a miniature
// end-to-end run through prepare_backdoored_model / run_setting with a
// deliberately tiny custom scale.
#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/runner.h"
#include "util/env.h"

namespace bd::eval {
namespace {

ExperimentScale micro_scale() {
  ExperimentScale s;
  s.data.height = s.data.width = 8;
  s.data.train_per_class = 8;
  s.data.test_per_class = 2;
  s.attack_train.epochs = 1;
  s.base_width = 8;
  s.spc_settings = {2};
  s.trials = 1;
  s.defense_max_epochs = 2;
  s.prune_max_rounds = 3;
  s.anp_iterations = 2;
  s.nad_teacher_epochs = 1;
  s.nad_distill_epochs = 1;
  return s;
}

TEST(Scale, DefaultsAreInternallyConsistent) {
  for (const char* dataset : {"cifar", "gtsrb"}) {
    const ExperimentScale s = default_scale(dataset);
    EXPECT_GT(s.trials, 0);
    ASSERT_FALSE(s.spc_settings.empty());
    // The clean pool must be able to supply the largest SPC setting.
    EXPECT_GE(s.data.train_per_class, s.spc_settings.back());
    EXPECT_GT(s.attack_train.epochs, 0);
    EXPECT_GT(s.defense_max_epochs, 0);
  }
  EXPECT_THROW(default_scale("imagenet"), std::invalid_argument);
}

TEST(Scale, TrialsOverridableByEnv) {
  setenv("BDPROTO_TRIALS", "7", 1);
  EXPECT_EQ(default_scale("cifar").trials, 7);
  unsetenv("BDPROTO_TRIALS");
}

TEST(Runner, MicroExperimentEndToEnd) {
  const ExperimentScale scale = micro_scale();
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "badnet", scale, 42);

  EXPECT_EQ(bd.dataset, "cifar");
  EXPECT_EQ(bd.attack, "badnet");
  EXPECT_FALSE(bd.state.empty());
  EXPECT_FALSE(bd.clean_test.empty());
  EXPECT_FALSE(bd.asr_test.empty());
  EXPECT_EQ(bd.asr_test.size(), bd.ra_test.size());
  // Metrics are percentages within range; invariant holds.
  EXPECT_LE(bd.baseline.asr + bd.baseline.ra, 100.0 + 1e-9);

  // Instantiate reproduces the stored weights.
  Rng rng(1);
  auto m1 = bd.instantiate(rng);
  auto m2 = bd.instantiate(rng);
  const auto s1 = m1->state_dict();
  const auto s2 = m2->state_dict();
  for (const auto& [name, tensor] : s1) {
    const auto& other = s2.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }

  // One defense setting runs end-to-end and aggregates per-trial vectors.
  const SettingResult setting = run_setting(bd, "clp", 2, scale, 7);
  EXPECT_EQ(setting.attack, "badnet");
  EXPECT_EQ(setting.defense, "clp");
  ASSERT_EQ(setting.acc.size(), 1u);
  ASSERT_EQ(setting.seconds.size(), 1u);
  EXPECT_GE(setting.acc[0], 0.0);
  EXPECT_LE(setting.acc[0], 100.0);
  EXPECT_LE(setting.asr[0] + setting.ra[0], 100.0 + 1e-9);
}

TEST(Runner, EveryRegisteredDefenseRunsAtMicroScale) {
  const ExperimentScale scale = micro_scale();
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "blended", scale, 43);
  for (const char* defense :
       {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"}) {
    const TrialResult trial = run_defense_trial(bd, defense, 2, scale, 11);
    EXPECT_GE(trial.metrics.acc, 0.0) << defense;
    EXPECT_LE(trial.metrics.asr + trial.metrics.ra, 100.0 + 1e-9) << defense;
    EXPECT_GE(trial.info.seconds, 0.0) << defense;
  }
}

}  // namespace
}  // namespace bd::eval
