// Experiment-runner tests: scale configuration invariants and a miniature
// end-to-end run through prepare_backdoored_model / run_setting with a
// deliberately tiny custom scale.
#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/runner.h"
#include "robust/fault_injector.h"
#include "robust/supervisor.h"
#include "util/env.h"

namespace bd::eval {
namespace {

ExperimentScale micro_scale() {
  ExperimentScale s;
  s.data.height = s.data.width = 8;
  s.data.train_per_class = 8;
  s.data.test_per_class = 2;
  s.attack_train.epochs = 1;
  s.base_width = 8;
  s.spc_settings = {2};
  s.trials = 1;
  s.defense_max_epochs = 2;
  s.prune_max_rounds = 3;
  s.anp_iterations = 2;
  s.nad_teacher_epochs = 1;
  s.nad_distill_epochs = 1;
  return s;
}

TEST(Scale, DefaultsAreInternallyConsistent) {
  for (const char* dataset : {"cifar", "gtsrb"}) {
    const ExperimentScale s = default_scale(dataset);
    EXPECT_GT(s.trials, 0);
    ASSERT_FALSE(s.spc_settings.empty());
    // The clean pool must be able to supply the largest SPC setting.
    EXPECT_GE(s.data.train_per_class, s.spc_settings.back());
    EXPECT_GT(s.attack_train.epochs, 0);
    EXPECT_GT(s.defense_max_epochs, 0);
  }
  EXPECT_THROW(default_scale("imagenet"), std::invalid_argument);
}

TEST(Scale, TrialsOverridableByEnv) {
  setenv("BDPROTO_TRIALS", "7", 1);
  EXPECT_EQ(default_scale("cifar").trials, 7);
  unsetenv("BDPROTO_TRIALS");
}

TEST(Runner, MicroExperimentEndToEnd) {
  const ExperimentScale scale = micro_scale();
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "badnet", scale, 42);

  EXPECT_EQ(bd.dataset, "cifar");
  EXPECT_EQ(bd.attack, "badnet");
  EXPECT_FALSE(bd.state.empty());
  EXPECT_FALSE(bd.clean_test.empty());
  EXPECT_FALSE(bd.asr_test.empty());
  EXPECT_EQ(bd.asr_test.size(), bd.ra_test.size());
  // Metrics are percentages within range; invariant holds.
  EXPECT_LE(bd.baseline.asr + bd.baseline.ra, 100.0 + 1e-9);

  // Instantiate reproduces the stored weights.
  Rng rng(1);
  auto m1 = bd.instantiate(rng);
  auto m2 = bd.instantiate(rng);
  const auto s1 = m1->state_dict();
  const auto s2 = m2->state_dict();
  for (const auto& [name, tensor] : s1) {
    const auto& other = s2.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }

  // One defense setting runs end-to-end and aggregates per-trial vectors.
  const SettingResult setting = run_setting(bd, "clp", 2, scale, 7);
  EXPECT_EQ(setting.attack, "badnet");
  EXPECT_EQ(setting.defense, "clp");
  ASSERT_EQ(setting.acc.size(), 1u);
  ASSERT_EQ(setting.seconds.size(), 1u);
  EXPECT_GE(setting.acc[0], 0.0);
  EXPECT_LE(setting.acc[0], 100.0);
  EXPECT_LE(setting.asr[0] + setting.ra[0], 100.0 + 1e-9);
}

TEST(Runner, EveryRegisteredDefenseRunsAtMicroScale) {
  const ExperimentScale scale = micro_scale();
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "blended", scale, 43);
  for (const char* defense :
       {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"}) {
    const TrialResult trial = run_defense_trial(bd, defense, 2, scale, 11);
    EXPECT_GE(trial.metrics.acc, 0.0) << defense;
    EXPECT_LE(trial.metrics.asr + trial.metrics.ra, 100.0 + 1e-9) << defense;
    EXPECT_GE(trial.info.seconds, 0.0) << defense;
  }
}

// ---------------------------------------------------------------------------
// Supervised trial execution inside run_setting
// ---------------------------------------------------------------------------

/// Saves/restores the global supervisor config and keeps faults disarmed.
class RunnerSupervised : public ::testing::Test {
 protected:
  void SetUp() override {
    robust::FaultInjector::instance().reset();
    saved_config_ = robust::Supervisor::instance().config();
    robust::SupervisorConfig config;
    config.backoff_initial_seconds = 0.001;
    config.backoff_factor = 1.0;
    robust::Supervisor::instance().configure(config);
  }
  void TearDown() override {
    robust::Supervisor::instance().configure(saved_config_);
    robust::FaultInjector::instance().reset();
  }

  robust::SupervisorConfig saved_config_;
};

TEST_F(RunnerSupervised, HealthySettingReportsOneAttemptPerTrial) {
  ExperimentScale scale = micro_scale();
  scale.trials = 2;
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "badnet", scale, 44);
  const SettingResult setting = run_setting(bd, "clp", 2, scale, 9);
  EXPECT_FALSE(setting.degraded);
  EXPECT_EQ(setting.failure, "");
  EXPECT_EQ(setting.attempts, 2);  // one attempt per trial
  EXPECT_EQ(setting.acc.size(), 2u);
}

TEST_F(RunnerSupervised, RetriedTrialReusesItsPreDrawnSeed) {
  ExperimentScale scale = micro_scale();
  scale.trials = 2;
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "badnet", scale, 44);
  const SettingResult clean = run_setting(bd, "clp", 2, scale, 9);

  // Trial 1's first attempt fails; its retry must re-derive the same seed,
  // and trial 2's seed must not shift: bit-identical metrics.
  robust::FaultInjector::instance().configure("oom_sim@1");
  const SettingResult retried = run_setting(bd, "clp", 2, scale, 9);
  robust::FaultInjector::instance().reset();

  EXPECT_FALSE(retried.degraded);
  EXPECT_EQ(retried.attempts, 3);  // trial 1 twice + trial 2 once
  EXPECT_EQ(retried.acc, clean.acc);
  EXPECT_EQ(retried.asr, clean.asr);
  EXPECT_EQ(retried.ra, clean.ra);
}

TEST_F(RunnerSupervised, QuarantinedSettingIsRefusedImmediately) {
  robust::SupervisorConfig config;
  config.backoff_initial_seconds = 0.001;
  config.backoff_factor = 1.0;
  config.max_retries = 0;
  config.quarantine_strikes = 2;
  robust::Supervisor::instance().configure(config);

  const ExperimentScale scale = micro_scale();
  const BackdooredModel bd =
      prepare_backdoored_model("cifar", "vgg", "badnet", scale, 44);

  // Two failing runs strike the config out...
  robust::FaultInjector::instance().configure("oom_sim@1,oom_sim@2");
  const SettingResult first = run_setting(bd, "clp", 2, scale, 9);
  EXPECT_TRUE(first.degraded);
  EXPECT_EQ(first.attempts, 1);
  const SettingResult second = run_setting(bd, "clp", 2, scale, 9);
  EXPECT_TRUE(second.degraded);
  robust::FaultInjector::instance().reset();

  // ...after which the supervisor refuses the key without running it.
  const SettingResult refused = run_setting(bd, "clp", 2, scale, 9);
  EXPECT_TRUE(refused.degraded);
  EXPECT_EQ(refused.attempts, 0);
  EXPECT_NE(refused.failure.find("quarantined"), std::string::npos);
}

}  // namespace
}  // namespace bd::eval
