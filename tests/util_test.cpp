// Unit tests for util: RNG determinism/statistics, stats accumulators,
// table formatting, env-based configuration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/env.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace bd {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(3, 1), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
  std::vector<int> empty;
  EXPECT_NO_THROW(rng.shuffle(empty));
}

TEST(Rng, ForkIndependence) {
  Rng a(31);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Stats, RunningStatBasics) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, MeanStdString) {
  EXPECT_EQ(mean_std_string({90.0}), "90.00");
  EXPECT_EQ(mean_std_string({1.0, 3.0}, 1), "2.0±1.4");
}

TEST(Table, FormatsAlignedRows) {
  TextTable t({"A", "Blah"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A "), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsBadRows) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommas) {
  TextTable t({"A"});
  t.add_row({"1,2"});
  EXPECT_NE(t.to_csv().find("1;2"), std::string::npos);
}

TEST(Env, IntParsing) {
  setenv("BD_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("BD_TEST_INT").value(), 42);
  setenv("BD_TEST_INT", "nonsense", 1);
  EXPECT_FALSE(env_int("BD_TEST_INT").has_value());
  unsetenv("BD_TEST_INT");
  EXPECT_FALSE(env_int("BD_TEST_INT").has_value());
}

TEST(Stopwatch, MonotoneAndResettable) {
  Stopwatch watch;
  const double t1 = watch.seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t2 = watch.seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(watch.milliseconds(), t2 * 1e3 * 0.5);
  watch.reset();
  EXPECT_LT(watch.seconds(), t2 + 1.0);
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages must not crash (output is suppressed).
  BD_LOG(Debug) << "invisible";
  BD_LOG(Info) << "also invisible";
  set_log_level(original);
}

TEST(Env, ScaledPicksByMode) {
  // In the test environment BDPROTO_MODE is unset -> quick.
  EXPECT_EQ(scaled(1, 2), full_mode() ? 2 : 1);
}

}  // namespace
}  // namespace bd
