// Tests for tools/bdlint: every rule must fire on its bad fixture, stay
// silent on idiomatic code, honor each suppression spelling, and — the
// repo invariant itself — report the real tree as clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

#ifndef BD_LINT_FIXTURE_DIR
#error "BD_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif
#ifndef BD_REPO_SOURCE_DIR
#error "BD_REPO_SOURCE_DIR must point at the repo root"
#endif

namespace {

using bd::lint::Finding;

std::string fixture(const std::string& name) {
  return std::string(BD_LINT_FIXTURE_DIR) + "/" + name;
}

std::set<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintCatalog, ListsEveryRule) {
  std::set<std::string> names;
  for (const auto& info : bd::lint::rule_catalog()) names.insert(info.name);
  const std::set<std::string> expected = {
      "no-nondeterminism",    "no-naked-lock",
      "no-relaxed-atomics",   "no-naked-ofstream",
      "no-swallowed-catch",   "no-unordered-iteration-to-output"};
  EXPECT_EQ(names, expected);
}

TEST(LintRules, NondeterminismFixtureFires) {
  const auto findings = bd::lint::lint_file(fixture("bad_nondeterminism.cpp"));
  EXPECT_GE(count_rule(findings, "no-nondeterminism"), 4)
      << "rand/random_device/time/system_clock should each fire";
  EXPECT_EQ(rules_fired(findings),
            std::set<std::string>{"no-nondeterminism"});
}

TEST(LintRules, NakedLockFixtureFires) {
  const auto findings = bd::lint::lint_file(fixture("bad_naked_lock.cpp"));
  EXPECT_EQ(count_rule(findings, "no-naked-lock"), 2)
      << ".lock() and .unlock() should each fire";
  EXPECT_EQ(rules_fired(findings), std::set<std::string>{"no-naked-lock"});
}

TEST(LintRules, RelaxedAtomicFixtureFires) {
  const auto findings = bd::lint::lint_file(fixture("bad_relaxed_atomic.cpp"));
  EXPECT_EQ(count_rule(findings, "no-relaxed-atomics"), 2);
  EXPECT_EQ(rules_fired(findings),
            std::set<std::string>{"no-relaxed-atomics"});
}

TEST(LintRules, RelaxedAtomicWhitelistedUnderObs) {
  // The same source under src/obs/ is the sanctioned hot path.
  const auto findings = bd::lint::lint_source(
      "src/obs/metrics_hot.cpp",
      "#include <atomic>\n"
      "std::atomic<int> c{0};\n"
      "void f() { c.fetch_add(1, std::memory_order_relaxed); }\n");
  EXPECT_EQ(count_rule(findings, "no-relaxed-atomics"), 0);
}

TEST(LintRules, NakedOfstreamFixtureFires) {
  const auto findings = bd::lint::lint_file(fixture("bad_naked_ofstream.cpp"));
  EXPECT_EQ(count_rule(findings, "no-naked-ofstream"), 2)
      << "ofstream and fopen(, \"w\") should each fire";
}

TEST(LintRules, SwallowedCatchFixtureFires) {
  const auto findings =
      bd::lint::lint_file(fixture("bad_swallowed_catch.cpp"));
  EXPECT_EQ(count_rule(findings, "no-swallowed-catch"), 1);
  EXPECT_EQ(rules_fired(findings),
            std::set<std::string>{"no-swallowed-catch"});
}

TEST(LintRules, UnorderedOutputFixtureFires) {
  const auto findings =
      bd::lint::lint_file(fixture("bad_unordered_output.cpp"));
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration-to-output"), 1);
}

TEST(LintRules, CleanFixtureIsSilent) {
  const auto findings = bd::lint::lint_file(fixture("clean.cpp"));
  EXPECT_TRUE(findings.empty()) << bd::lint::format_finding(findings.front());
}

TEST(LintSuppressions, EverySpellingSilencesItsFinding) {
  const auto findings = bd::lint::lint_file(fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty()) << bd::lint::format_finding(findings.front());
}

TEST(LintSuppressions, AllowOnlyCoversTheNamedRule) {
  const auto findings = bd::lint::lint_source(
      "some/module.cpp",
      "#include <cstdlib>\n"
      "// bdlint:allow(no-naked-lock)\n"
      "int x = std::rand();\n");
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1)
      << "an allow for a different rule must not leak";
}

TEST(LintSuppressions, AllowTwoLinesUpWithCodeBetweenDoesNotApply) {
  const auto findings = bd::lint::lint_source(
      "some/module.cpp",
      "#include <cstdlib>\n"
      "// bdlint:allow(no-nondeterminism)\n"
      "int y = 0;\n"
      "int x = std::rand();\n");
  EXPECT_EQ(count_rule(findings, "no-nondeterminism"), 1)
      << "the comment governs the first code line only";
}

TEST(LintTokenizer, CommentsAndStringsAreNotCode) {
  const auto findings = bd::lint::lint_source(
      "some/module.cpp",
      "// std::rand() in a comment\n"
      "/* mu.lock() in a block comment */\n"
      "const char* s = \"std::rand() memory_order_relaxed\";\n"
      "const char* r = R\"(mu.unlock())\";\n");
  EXPECT_TRUE(findings.empty()) << bd::lint::format_finding(findings.front());
}

TEST(LintTree, RepoIsClean) {
  const std::string root(BD_REPO_SOURCE_DIR);
  const auto findings = bd::lint::lint_tree(
      {root + "/src", root + "/examples", root + "/bench"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << bd::lint::format_finding(f);
  }
}

TEST(LintTree, FixtureCorpusGuard) {
  // CI relies on the bad fixtures to keep firing; if a rule regresses to
  // silence, this catches it at the corpus level too.
  const auto findings =
      bd::lint::lint_tree({std::string(BD_LINT_FIXTURE_DIR)});
  const auto fired = rules_fired(findings);
  for (const auto& info : bd::lint::rule_catalog()) {
    EXPECT_TRUE(fired.count(info.name) == 1)
        << info.name << " no longer fires on the fixture corpus";
  }
}

}  // namespace
