// bd::runtime thread-pool contract: pool lifecycle, exact index coverage,
// grain edge cases, exception propagation to the call site, serial nesting,
// the set_thread_count() hook, and bitwise thread-count-invariance of the
// kernels built on parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/thread_pool.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bd {
namespace {

// Restores the default pool size when a test returns (or fails).
class ThreadCountOverride {
 public:
  explicit ThreadCountOverride(int n) { runtime::set_thread_count(n); }
  ~ThreadCountOverride() { runtime::set_thread_count(0); }
};

TEST(Runtime, PoolConstructionAndTeardown) {
  // Pools of several sizes construct, run a job, and join cleanly.
  for (int threads : {1, 2, 4}) {
    std::vector<int> hits(128, 0);
    {
      runtime::ThreadPool pool(threads);
      EXPECT_EQ(pool.thread_count(), threads);
      auto body = [](void* ctx, std::int64_t lo, std::int64_t hi) {
        auto& v = *static_cast<std::vector<int>*>(ctx);
        for (std::int64_t i = lo; i < hi; ++i) {
          ++v[static_cast<std::size_t>(i)];
        }
      };
      pool.parallel_for(0, 128, 8, body, &hits);
    }  // destructor joins workers
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(Runtime, ThreadCountClampedToOne) {
  runtime::ThreadPool pool(-3);
  EXPECT_EQ(pool.thread_count(), 1);
}

TEST(Runtime, CoversEveryIndexExactlyOnce) {
  ThreadCountOverride threads(4);
  // Deliberately non-round range and grain.
  const std::int64_t n = 10007;
  std::vector<int> hits(static_cast<std::size_t>(n), 0);
  runtime::parallel_for(0, n, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      ++hits[static_cast<std::size_t>(i)];  // disjoint chunks: no race
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
}

TEST(Runtime, NonZeroBeginCoversRange) {
  ThreadCountOverride threads(4);
  std::vector<int> hits(100, 0);
  runtime::parallel_for(37, 91, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], (i >= 37 && i < 91) ? 1 : 0);
  }
}

TEST(Runtime, GrainEdgeCases) {
  ThreadCountOverride threads(4);
  // Empty and inverted ranges: the body must never run.
  std::atomic<int> calls{0};
  auto count = [&](std::int64_t, std::int64_t) { ++calls; };
  runtime::parallel_for(0, 0, 8, count);
  runtime::parallel_for(5, 5, 8, count);
  runtime::parallel_for(9, 3, 8, count);
  EXPECT_EQ(calls.load(), 0);

  // Range smaller than one grain: a single serial call with the full range.
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  runtime::parallel_for(0, 5, 100, [&](std::int64_t lo, std::int64_t hi) {
    chunks.emplace_back(lo, hi);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::int64_t, std::int64_t>{0, 5}));

  // Grain <= 0 is clamped to 1 and still covers everything.
  std::vector<int> hits(16, 0);
  runtime::parallel_for(0, 16, 0, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Runtime, WorkerExceptionRethrownAtCallSite) {
  ThreadCountOverride threads(4);
  EXPECT_THROW(
      runtime::parallel_for(0, 1000, 10,
                            [&](std::int64_t lo, std::int64_t) {
                              if (lo == 500) {
                                throw std::runtime_error("chunk failure");
                              }
                            }),
      std::runtime_error);

  // The pool stays usable after a failed job.
  std::atomic<std::int64_t> visited{0};
  runtime::parallel_for(0, 1000, 10, [&](std::int64_t lo, std::int64_t hi) {
    visited.fetch_add(hi - lo);
  });
  EXPECT_EQ(visited.load(), 1000);
}

TEST(Runtime, NestedParallelForRunsSerial) {
  ThreadCountOverride threads(4);
  EXPECT_FALSE(runtime::in_parallel_region());
  std::atomic<int> nested_violations{0};
  runtime::parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    if (!runtime::in_parallel_region()) ++nested_violations;
    const auto outer_thread = std::this_thread::get_id();
    // The nested call must execute entirely on the calling thread.
    runtime::parallel_for(0, 64, 1, [&](std::int64_t, std::int64_t) {
      if (std::this_thread::get_id() != outer_thread) ++nested_violations;
      if (!runtime::in_parallel_region()) ++nested_violations;
    });
  });
  EXPECT_EQ(nested_violations.load(), 0);
  EXPECT_FALSE(runtime::in_parallel_region());
}

TEST(Runtime, SetThreadCountHook) {
  runtime::set_thread_count(3);
  EXPECT_EQ(runtime::thread_count(), 3);
  runtime::set_thread_count(0);  // reset to environment default
  EXPECT_GE(runtime::thread_count(), 1);
}

TEST(Runtime, KernelsBitwiseInvariantAcrossThreadCounts) {
  Rng rng(42);
  Tensor a({96, 64});
  Tensor b({64, 80});
  Tensor x({4, 6, 10, 10});
  Tensor w({5, 6, 3, 3});
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] = rng.normal();
  for (std::int64_t i = 0; i < b.numel(); ++i) b[i] = rng.normal();
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.normal();
  for (std::int64_t i = 0; i < w.numel(); ++i) w[i] = rng.normal();

  runtime::set_thread_count(1);
  const Tensor mm1 = matmul(a, b);
  const Tensor cv1 = conv2d_forward(x, w, Tensor(), {1, 1});
  runtime::set_thread_count(4);
  const Tensor mm4 = matmul(a, b);
  const Tensor cv4 = conv2d_forward(x, w, Tensor(), {1, 1});
  runtime::set_thread_count(0);

  ASSERT_EQ(mm1.shape(), mm4.shape());
  for (std::int64_t i = 0; i < mm1.numel(); ++i) {
    ASSERT_EQ(mm1[i], mm4[i]) << "matmul diverged at " << i;
  }
  ASSERT_EQ(cv1.shape(), cv4.shape());
  for (std::int64_t i = 0; i < cv1.numel(); ++i) {
    ASSERT_EQ(cv1[i], cv4[i]) << "conv diverged at " << i;
  }
}

}  // namespace
}  // namespace bd
