// Tests for the paper's core contribution: unlearning-gradient filter
// scores (Eq. 3), the arg-max prune selection, stopping-rule bookkeeping,
// and the interaction between pruning masks and the fine-tuning stage.
#include <gtest/gtest.h>

#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "tensor/ops.h"

namespace bd::core {
namespace {

struct Fixture {
  Rng rng{202};
  data::TrainTest data;
  models::ModelSpec spec;
  std::unique_ptr<models::Classifier> model;
  attack::BadNetsTrigger trigger;
  defense::DefenseContext ctx;

  explicit Fixture(std::int64_t per_class = 6)
      : data([this, per_class] {
          data::SynthConfig cfg;
          cfg.height = cfg.width = 10;
          cfg.train_per_class = per_class;
          cfg.test_per_class = 2;
          return data::make_synth_cifar(cfg, rng);
        }()),
        spec{"vgg", 10, 3, 8},
        model(models::make_model(spec, rng)),
        ctx(defense::make_defense_context(data.train, trigger, spec, rng)) {}
};

TEST(ScoreFilters, CoversAllUnprunedFilters) {
  Fixture f;
  const auto scores =
      score_filters(*f.model, f.ctx.backdoor_train, /*batch_size=*/16);
  std::int64_t total_filters = 0;
  for (auto* conv : f.model->modules_of_type<nn::Conv2d>()) {
    total_filters += conv->out_channels();
  }
  EXPECT_EQ(static_cast<std::int64_t>(scores.size()), total_filters);
  for (const auto& s : scores) EXPECT_GE(s.xi, 0.0);
}

TEST(ScoreFilters, SkipsPrunedFilters) {
  Fixture f;
  auto convs = f.model->modules_of_type<nn::Conv2d>();
  convs[0]->prune_filter(0);
  convs[0]->prune_filter(3);
  const auto scores =
      score_filters(*f.model, f.ctx.backdoor_train, 16);
  for (const auto& s : scores) {
    if (s.conv_index == 0) {
      EXPECT_NE(s.filter, 0);
      EXPECT_NE(s.filter, 3);
    }
  }
}

TEST(ScoreFilters, DeterministicAcrossCalls) {
  Fixture f;
  const auto s1 = score_filters(*f.model, f.ctx.backdoor_train, 16);
  const auto s2 = score_filters(*f.model, f.ctx.backdoor_train, 16);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i].xi, s2[i].xi, 1e-9) << i;
  }
}

TEST(ScoreFilters, BatchSizeInvariant) {
  // Eq. 2 is a SUM over the unlearning set, so the accumulated gradient -
  // and therefore xi - must not depend on how the set is batched.
  Fixture f;
  const auto s1 = score_filters(*f.model, f.ctx.backdoor_train, 8);
  const auto s2 = score_filters(*f.model, f.ctx.backdoor_train, 64);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_NEAR(s1[i].xi, s2[i].xi, 1e-3 * (1.0 + s1[i].xi)) << i;
  }
}

TEST(BestFilter, PicksArgMaxAndHandlesEmpty) {
  EXPECT_FALSE(best_filter_to_prune({}).has_value());
  const std::vector<FilterScore> scores{
      {0, 1, 0.5}, {1, 2, 2.5}, {2, 0, 1.0}};
  const auto best = best_filter_to_prune(scores);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->conv_index, 1u);
  EXPECT_EQ(best->filter, 2);
}

TEST(GradPrune, DisabledStagesAreNoOp) {
  Fixture f;
  const auto before = f.model->state_dict();
  GradPruneConfig cfg;
  cfg.prune = false;
  cfg.finetune = false;
  GradPruneDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_EQ(result.pruned_units, 0);
  EXPECT_EQ(result.finetune_epochs, 0);
  const auto after = f.model->state_dict();
  for (const auto& [name, tensor] : before) {
    const auto& other = after.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      ASSERT_EQ(tensor[i], other[i]) << name;
    }
  }
}

TEST(GradPrune, PruneOnlyZeroesReportedFilters) {
  Fixture f;
  GradPruneConfig cfg;
  cfg.finetune = false;
  cfg.max_prune_rounds = 5;
  cfg.prune_patience = 3;
  GradPruneDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);

  std::int64_t flagged = 0;
  for (auto* conv : f.model->modules_of_type<nn::Conv2d>()) {
    flagged += conv->pruned_filter_count();
    const Tensor& w = conv->weight().value();
    const std::int64_t fsz = w.numel() / conv->out_channels();
    for (std::int64_t c = 0; c < conv->out_channels(); ++c) {
      if (!conv->is_filter_pruned(c)) continue;
      for (std::int64_t j = 0; j < fsz; ++j) {
        ASSERT_EQ(w[c * fsz + j], 0.0f);
      }
    }
  }
  EXPECT_EQ(flagged, result.pruned_units);
  EXPECT_LE(result.pruned_units, 5);
}

TEST(GradPrune, MasksSurviveFinetuning) {
  Fixture f;
  GradPruneConfig cfg;
  cfg.max_prune_rounds = 4;
  cfg.prune_patience = 2;
  cfg.finetune_max_epochs = 2;
  GradPruneDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_GT(result.finetune_epochs, 0);

  for (auto* conv : f.model->modules_of_type<nn::Conv2d>()) {
    const Tensor& w = conv->weight().value();
    const std::int64_t fsz = w.numel() / conv->out_channels();
    for (std::int64_t c = 0; c < conv->out_channels(); ++c) {
      if (!conv->is_filter_pruned(c)) continue;
      for (std::int64_t j = 0; j < fsz; ++j) {
        ASSERT_EQ(w[c * fsz + j], 0.0f) << "filter weights resurrected";
      }
    }
  }
}

TEST(GradPrune, AccuracyFloorLimitsPruning) {
  // With alpha = 0 (no tolerated drop) pruning must stop almost
  // immediately; with a huge patience it would otherwise run for many
  // rounds.
  Fixture f;
  GradPruneConfig cfg;
  cfg.alpha = 0.0;
  cfg.prune_patience = 1000;
  cfg.max_prune_rounds = 50;
  cfg.finetune = false;
  GradPruneDefense defense(cfg);
  const auto result = defense.apply(*f.model, f.ctx);
  EXPECT_LT(result.pruned_units, 50);
}

TEST(GradPrune, ConfigDefaultsAreThePaperDefaults) {
  const GradPruneConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.alpha, 0.10);
  EXPECT_EQ(cfg.prune_patience, 10);
  EXPECT_EQ(cfg.finetune_patience, 5);
  EXPECT_TRUE(cfg.prune);
  EXPECT_TRUE(cfg.finetune);
}

}  // namespace
}  // namespace bd::core
