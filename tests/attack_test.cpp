// Attack library tests: trigger properties (locality, blending, bounds,
// idempotence where expected), poisoning ratios/labels, and the ASR/RA
// test-set constructions.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "data/synth.h"
#include "tensor/ops.h"

namespace bd::attack {
namespace {

Tensor mid_gray(const Shape& shape) { return Tensor::full(shape, 0.5f); }

TEST(BadNets, PatchIsLocalizedBottomRight) {
  BadNetsTrigger trigger(0.25);
  const Shape shape{3, 16, 16};
  const Tensor x = mid_gray(shape);
  const Tensor y = trigger.apply(x);

  std::int64_t changed = 0;
  const std::int64_t patch = 4;  // 16 * 0.25
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] != x[i]) ++changed;
  }
  EXPECT_EQ(changed % 3, 0);  // same pattern on every channel
  EXPECT_LE(changed, 3 * patch * patch);
  EXPECT_GT(changed, 0);

  // Only bottom-right patch pixels may differ.
  const std::int64_t hw = 16 * 16;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == x[i]) continue;
    const std::int64_t pos = i % hw;
    EXPECT_GE(pos / 16, 16 - patch);
    EXPECT_GE(pos % 16, 16 - patch);
  }
}

TEST(BadNets, DeterministicAndIdempotent) {
  BadNetsTrigger trigger;
  Rng rng(1);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  const Tensor x = data::render_synth_cifar_image(3, cfg, rng);
  const Tensor y1 = trigger.apply(x);
  const Tensor y2 = trigger.apply(x);
  const Tensor y3 = trigger.apply(y1);
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_EQ(y1[i], y2[i]);
    EXPECT_EQ(y1[i], y3[i]);  // patch overwrite is idempotent
  }
}

TEST(BadNets, RejectsBadConfig) {
  EXPECT_THROW(BadNetsTrigger(0.0), std::invalid_argument);
  EXPECT_THROW(BadNetsTrigger(0.7), std::invalid_argument);
  BadNetsTrigger t;
  EXPECT_THROW(t.apply(Tensor({3, 3})), std::invalid_argument);
}

TEST(Blended, BlendsTowardPattern) {
  const Shape shape{3, 8, 8};
  BlendedTrigger trigger(shape, 0.3f);
  const Tensor x = mid_gray(shape);
  const Tensor y = trigger.apply(x);
  // Every pixel moves toward the pattern: |y - x| <= alpha * 1.
  std::int64_t moved = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_LE(std::fabs(y[i] - x[i]), 0.3f + 1e-5f);
    if (y[i] != x[i]) ++moved;
  }
  EXPECT_GT(moved, y.numel() / 2);  // global trigger touches most pixels
}

TEST(Blended, FixedPatternAcrossInstances) {
  const Shape shape{3, 8, 8};
  BlendedTrigger a(shape), b(shape);
  const Tensor x = mid_gray(shape);
  const Tensor ya = a.apply(x), yb = b.apply(x);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Blended, Validation) {
  EXPECT_THROW(BlendedTrigger({8, 8}, 0.2f), std::invalid_argument);
  EXPECT_THROW(BlendedTrigger({3, 8, 8}, 0.0f), std::invalid_argument);
  EXPECT_THROW(BlendedTrigger({3, 8, 8}, 1.0f), std::invalid_argument);
  BlendedTrigger t({3, 8, 8});
  EXPECT_THROW(t.apply(mid_gray({3, 4, 4})), std::invalid_argument);
}

TEST(LowFrequency, BoundedPerturbationTouchingWholeImage) {
  LowFrequencyTrigger trigger(0.2f, 1);
  const Tensor x = mid_gray({3, 12, 12});
  const Tensor y = trigger.apply(x);
  double total_shift = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_LE(std::fabs(y[i] - x[i]), 0.2f + 1e-5f);
    total_shift += std::fabs(y[i] - x[i]);
  }
  EXPECT_GT(total_shift / static_cast<double>(y.numel()), 0.01);
}

TEST(LowFrequency, SmoothAcrossNeighbours) {
  // The added wave changes slowly: neighbouring deltas differ little.
  LowFrequencyTrigger trigger(0.25f, 1);
  const Tensor x = mid_gray({1, 16, 16});
  const Tensor y = trigger.apply(x);
  for (std::int64_t h = 0; h < 16; ++h) {
    for (std::int64_t w = 0; w + 1 < 16; ++w) {
      const float d1 = y[h * 16 + w] - 0.5f;
      const float d2 = y[h * 16 + w + 1] - 0.5f;
      EXPECT_LT(std::fabs(d1 - d2), 0.12f);
    }
  }
}

TEST(LowFrequency, Validation) {
  EXPECT_THROW(LowFrequencyTrigger(0.0f, 1), std::invalid_argument);
  EXPECT_THROW(LowFrequencyTrigger(0.9f, 1), std::invalid_argument);
  EXPECT_THROW(LowFrequencyTrigger(0.2f, 0), std::invalid_argument);
}

TEST(Bpp, QuantizesToLevels) {
  BppTrigger trigger(4);
  Rng rng(2);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  const Tensor x = data::render_synth_cifar_image(1, cfg, rng);
  const Tensor y = trigger.apply(x);
  // Every output value is one of the 4 quantization levels.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float scaled = y[i] * 3.0f;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-5f);
  }
}

TEST(Bpp, IdempotentOnQuantizedInput) {
  BppTrigger trigger(8);
  const Tensor x = mid_gray({3, 8, 8});
  const Tensor once = trigger.apply(x);
  const Tensor twice = trigger.apply(once);
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1.0f / 7.0f + 1e-5f);
  }
  EXPECT_THROW(BppTrigger(1), std::invalid_argument);
  EXPECT_THROW(BppTrigger(500), std::invalid_argument);
}

TEST(Dynamic, PlacementDependsOnContent) {
  SampleSpecificTrigger trigger;
  // Two images with very different quadrant statistics should (with this
  // construction) hash to placements, and the placement must be one of the
  // four corner anchors.
  Rng rng(21);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  bool saw_different = false;
  SampleSpecificTrigger::Placement first{};
  for (int i = 0; i < 8; ++i) {
    const Tensor img = data::render_synth_cifar_image(i % 10, cfg, rng);
    const auto p = trigger.placement_for(img);
    EXPECT_TRUE(p.y == 0 || p.y == 12 - 3);
    EXPECT_TRUE(p.x == 0 || p.x == 12 - 3);
    if (i == 0) {
      first = p;
    } else if (p.y != first.y || p.x != first.x ||
               p.inverted != first.inverted) {
      saw_different = true;
    }
  }
  EXPECT_TRUE(saw_different) << "trigger should vary across images";
}

TEST(Dynamic, DeterministicPerImage) {
  SampleSpecificTrigger trigger;
  Rng rng(22);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  const Tensor img = data::render_synth_cifar_image(4, cfg, rng);
  const Tensor y1 = trigger.apply(img);
  const Tensor y2 = trigger.apply(img);
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(Dynamic, ChangesOnlyOneCornerPatch) {
  SampleSpecificTrigger trigger;
  const Tensor x = Tensor::full({3, 12, 12}, 0.4f);
  const Tensor y = trigger.apply(x);
  std::int64_t changed = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] != x[i]) ++changed;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 3 * 3 * 3);  // one 3x3 patch across 3 channels
  EXPECT_THROW(SampleSpecificTrigger(0.0), std::invalid_argument);
}

TEST(Factory, MakesAllKnownTriggers) {
  const Shape shape{3, 12, 12};
  for (const char* name : {"badnet", "blended", "lf", "bpp", "dynamic"}) {
    const auto trigger = make_trigger(name, shape);
    ASSERT_NE(trigger, nullptr);
    EXPECT_EQ(trigger->name(), name);
    EXPECT_EQ(trigger->apply(mid_gray(shape)).shape(), shape);
  }
  EXPECT_THROW(make_trigger("unknown", shape), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Poisoning
// ---------------------------------------------------------------------------

data::ImageDataset small_clean_set(std::int64_t per_class) {
  Rng rng(3);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = per_class;
  cfg.test_per_class = 1;
  return data::make_synth_cifar(cfg, rng).train;
}

TEST(Poison, RatioAndTargetLabels) {
  const auto clean = small_clean_set(10);  // 100 examples
  BadNetsTrigger trigger;
  Rng rng(4);
  PoisonConfig cfg;
  cfg.poison_ratio = 0.2;
  cfg.target_class = 0;
  const auto poisoned = poison_training_set(clean, trigger, cfg, rng);

  ASSERT_EQ(poisoned.size(), clean.size());
  std::int64_t changed_labels = 0;
  for (std::size_t i = 0; i < poisoned.size(); ++i) {
    if (poisoned.label(i) != clean.label(i)) {
      ++changed_labels;
      EXPECT_EQ(poisoned.label(i), 0);
    }
  }
  EXPECT_EQ(changed_labels, 20);
}

TEST(Poison, OnlyNonTargetExamplesPoisoned) {
  const auto clean = small_clean_set(10);
  BadNetsTrigger trigger;
  Rng rng(5);
  PoisonConfig cfg;
  const auto poisoned = poison_training_set(clean, trigger, cfg, rng);
  // Target-class examples keep both image and label.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean.label(i) == cfg.target_class) {
      EXPECT_EQ(poisoned.label(i), cfg.target_class);
      EXPECT_TRUE(
          poisoned.image(i).shares_storage_with(clean.image(i)));
    }
  }
}

TEST(Poison, Validation) {
  const auto clean = small_clean_set(2);
  BadNetsTrigger trigger;
  Rng rng(6);
  PoisonConfig bad;
  bad.poison_ratio = 1.0;
  EXPECT_THROW(poison_training_set(clean, trigger, bad, rng),
               std::invalid_argument);
  bad.poison_ratio = 0.95;  // more than the non-target fraction
  EXPECT_THROW(poison_training_set(clean, trigger, bad, rng),
               std::runtime_error);
  bad.poison_ratio = 0.1;
  bad.target_class = 99;
  EXPECT_THROW(poison_training_set(clean, trigger, bad, rng),
               std::invalid_argument);
}

TEST(TestSets, AsrAndRaConstruction) {
  const auto clean = small_clean_set(3);
  BadNetsTrigger trigger;
  const auto asr = make_asr_test_set(clean, trigger, 0);
  const auto ra = make_ra_test_set(clean, trigger, 0);

  // Target-class examples are excluded from both.
  EXPECT_EQ(asr.size(), clean.size() - 3);
  EXPECT_EQ(ra.size(), asr.size());
  for (std::size_t i = 0; i < asr.size(); ++i) {
    EXPECT_EQ(asr.label(i), 0);   // ASR labels are the target
    EXPECT_NE(ra.label(i), 0);    // RA labels are the true classes
  }
}

TEST(AllToAll, RelabelsCyclically) {
  const auto clean = small_clean_set(4);
  BadNetsTrigger trigger;
  Rng rng(8);
  const auto poisoned =
      poison_training_set_all_to_all(clean, trigger, 0.25, rng);
  ASSERT_EQ(poisoned.size(), clean.size());
  std::int64_t changed = 0;
  for (std::size_t i = 0; i < poisoned.size(); ++i) {
    if (poisoned.label(i) != clean.label(i)) {
      ++changed;
      EXPECT_EQ(poisoned.label(i), (clean.label(i) + 1) % 10);
    }
  }
  EXPECT_EQ(changed, static_cast<std::int64_t>(clean.size() / 4));
  EXPECT_THROW(poison_training_set_all_to_all(clean, trigger, 1.0, rng),
               std::invalid_argument);
}

TEST(AllToAll, AsrTestSetCoversEveryClass) {
  const auto clean = small_clean_set(2);
  BadNetsTrigger trigger;
  const auto asr = make_all_to_all_asr_test_set(clean, trigger);
  ASSERT_EQ(asr.size(), clean.size());  // no class excluded in all-to-all
  for (std::size_t i = 0; i < asr.size(); ++i) {
    EXPECT_EQ(asr.label(i), (clean.label(i) + 1) % 10);
  }
}

TEST(TestSets, SynthesizedBackdoorKeepsTrueLabels) {
  const auto clean = small_clean_set(2);
  BadNetsTrigger trigger;
  const auto synth = synthesize_backdoor_set(clean, trigger);
  ASSERT_EQ(synth.size(), clean.size());
  for (std::size_t i = 0; i < synth.size(); ++i) {
    EXPECT_EQ(synth.label(i), clean.label(i));
    // Image must actually carry the trigger (differ from the clean one).
    const Tensor diff = sub(synth.image(i), clean.image(i));
    EXPECT_GT(l1_norm(diff), 0.0f);
  }
}

}  // namespace
}  // namespace bd::attack
