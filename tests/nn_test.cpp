// Unit tests for the nn module: parameter registration, state dicts,
// layer forward semantics, BatchNorm statistics, filter pruning masks,
// ANP hooks, SE block behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/module.h"
#include "nn/summary.h"
#include "tensor/ops.h"
#include "util/stats.h"

namespace bd::nn {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

TEST(Module, ParameterRegistration) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, /*bias=*/true, rng);
  const auto named = conv.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
}

TEST(Module, SequentialHierarchicalNames) {
  Rng rng(2);
  Sequential seq;
  seq.emplace<Conv2d>(3, 4, 3, 1, 1, false, rng);
  seq.emplace<BatchNorm2d>(4);
  const auto named = seq.named_parameters();
  ASSERT_EQ(named.size(), 3u);  // conv weight + bn gamma/beta
  EXPECT_EQ(named[0].first, "layer0.weight");
  EXPECT_EQ(named[1].first, "layer1.gamma");
}

TEST(Module, StateDictRoundTrip) {
  Rng rng(3);
  Sequential a, b;
  a.emplace<Conv2d>(3, 4, 3, 1, 1, true, rng);
  a.emplace<BatchNorm2d>(4);
  b.emplace<Conv2d>(3, 4, 3, 1, 1, true, rng);
  b.emplace<BatchNorm2d>(4);

  const auto state = a.state_dict();
  EXPECT_TRUE(state.count("layer1.running_mean"));  // buffers included
  b.load_state_dict(state);

  const Tensor x = random_tensor({2, 3, 5, 5}, rng);
  b.set_training(false);
  a.set_training(false);
  const Tensor ya = a.forward(ag::Var(x)).value();
  const Tensor yb = b.forward(ag::Var(x)).value();
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(Module, LoadStateDictRejectsMissingAndMismatched) {
  Rng rng(4);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  EXPECT_THROW(conv.load_state_dict({}), std::runtime_error);
  std::map<std::string, Tensor> bad{{"weight", Tensor({1, 2})}};
  EXPECT_THROW(conv.load_state_dict(bad), std::runtime_error);
}

TEST(Module, TrainingModePropagates) {
  Rng rng(5);
  Sequential seq;
  auto& bn = seq.emplace<BatchNorm2d>(4);
  seq.set_training(false);
  EXPECT_FALSE(bn.training());
  seq.set_training(true);
  EXPECT_TRUE(bn.training());
}

TEST(Module, ModulesOfTypeFindsNested) {
  Rng rng(6);
  Sequential outer;
  auto& inner = outer.emplace<Sequential>();
  inner.emplace<Conv2d>(3, 4, 3, 1, 1, false, rng);
  outer.emplace<Conv2d>(4, 8, 3, 1, 1, false, rng);
  EXPECT_EQ(outer.modules_of_type<Conv2d>().size(), 2u);
  EXPECT_EQ(outer.modules_of_type<BatchNorm2d>().size(), 0u);
}

TEST(Linear, ForwardMatchesManual) {
  Rng rng(7);
  Linear fc(3, 2, rng);
  fc.weight().mutable_value() = Tensor({3, 2}, {1, 0, 0, 1, 1, 1});
  fc.bias().mutable_value() = Tensor({2}, {0.5f, -0.5f});
  const Tensor x({1, 3}, {1, 2, 3});
  const Tensor y = fc.forward(ag::Var(x)).value();
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1 + 3 + 0.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 2 + 3 - 0.5f);
}

TEST(Linear, AutoFlattens4d) {
  Rng rng(8);
  Linear fc(12, 2, rng);
  const Tensor x = random_tensor({2, 3, 2, 2}, rng);
  EXPECT_EQ(fc.forward(ag::Var(x)).value().shape(), (Shape{2, 2}));
  EXPECT_THROW(fc.forward(ag::Var(Tensor({2, 5}))), std::invalid_argument);
}

TEST(BatchNorm, NormalizesBatchInTraining) {
  Rng rng(9);
  BatchNorm2d bn(2);
  bn.set_training(true);
  const Tensor x = random_tensor({4, 2, 3, 3}, rng);
  const Tensor y = bn.forward(ag::Var(x)).value();

  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  const Tensor m = reduce_mean(y, {0, 2, 3}, false);
  for (std::int64_t c = 0; c < 2; ++c) EXPECT_NEAR(m[c], 0.0f, 1e-4);
  const Tensor v = reduce_mean(mul(y, y), {0, 2, 3}, false);
  for (std::int64_t c = 0; c < 2; ++c) EXPECT_NEAR(v[c], 1.0f, 1e-2);
}

TEST(BatchNorm, RunningStatsConvergeAndUsedInEval) {
  Rng rng(10);
  BatchNorm2d bn(1, 1e-5f, 0.5f);
  bn.set_training(true);
  // Feed a constant-statistics batch repeatedly: mean 10, tiny variance.
  Tensor x({8, 1, 2, 2});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = 10.0f + 0.01f * static_cast<float>(i % 3);
  }
  for (int it = 0; it < 12; ++it) bn.forward(ag::Var(x));
  EXPECT_NEAR(bn.running_mean()[0], 10.0f, 0.1f);

  bn.set_training(false);
  const Tensor y = bn.forward(ag::Var(x)).value();
  // Eval output should be near zero (input ~ running mean).
  EXPECT_NEAR(y[0], 0.0f, 1.5f);
}

TEST(BatchNorm, ChannelMaskScalesOutput) {
  BatchNorm2d bn(2);
  bn.set_training(false);
  Tensor x = Tensor::ones({1, 2, 1, 1});
  const Tensor base = bn.forward(ag::Var(x)).value();

  ag::Var mask(Tensor({2}, {0.0f, 1.0f}));
  bn.set_channel_mask(mask);
  const Tensor masked = bn.forward(ag::Var(x)).value();
  EXPECT_FLOAT_EQ(masked[0], 0.0f);            // channel 0 silenced
  EXPECT_FLOAT_EQ(masked[1], base[1]);         // channel 1 untouched
  bn.clear_channel_mask();
  const Tensor restored = bn.forward(ag::Var(x)).value();
  EXPECT_FLOAT_EQ(restored[0], base[0]);
}

TEST(BatchNorm, SuppressChannelZeroesOutput) {
  BatchNorm2d bn(2);
  bn.set_training(false);
  bn.suppress_channel(0);
  Tensor x = Tensor::full({1, 2, 1, 1}, 3.0f);
  const Tensor y = bn.forward(ag::Var(x)).value();
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NE(y[1], 0.0f);
  EXPECT_THROW(bn.suppress_channel(5), std::out_of_range);
}

TEST(Conv2d, PruneFilterZeroesAndSticks) {
  Rng rng(11);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  conv.bias().mutable_value() = Tensor({3}, {1, 2, 3});
  conv.prune_filter(1);
  EXPECT_TRUE(conv.is_filter_pruned(1));
  EXPECT_EQ(conv.pruned_filter_count(), 1);

  // Filter 1 weights and bias are zero.
  const Tensor& w = conv.weight().value();
  for (std::int64_t i = 0; i < 2 * 3 * 3; ++i) {
    EXPECT_EQ(w[1 * 2 * 9 + i], 0.0f);
  }
  EXPECT_EQ(conv.bias().value()[1], 0.0f);

  // Simulate an optimizer writing junk back; masks re-zero it.
  conv.weight().mutable_value().fill(7.0f);
  conv.bias().mutable_value().fill(7.0f);
  conv.enforce_filter_masks();
  EXPECT_EQ(conv.weight().value()[1 * 2 * 9], 0.0f);
  EXPECT_EQ(conv.weight().value()[0], 7.0f);  // other filters untouched
  EXPECT_EQ(conv.bias().value()[1], 0.0f);

  // Pruned filter produces an all-zero output channel.
  const Tensor x = random_tensor({1, 2, 4, 4}, rng);
  const Tensor y = conv.forward(ag::Var(x)).value();
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(y[16 + i], 0.0f);

  conv.unprune_filter(1);
  EXPECT_FALSE(conv.is_filter_pruned(1));
  EXPECT_THROW(conv.prune_filter(3), std::out_of_range);
  EXPECT_THROW(conv.unprune_filter(-1), std::out_of_range);
}

TEST(SEBlock, OutputBoundedByInput) {
  Rng rng(12);
  SEBlock se(4, 2, rng);
  const Tensor x = Tensor::full({2, 4, 3, 3}, 2.0f);
  const Tensor y = se.forward(ag::Var(x)).value();
  ASSERT_EQ(y.shape(), x.shape());
  // Hard-sigmoid attention is in [0,1], so |y| <= |x|.
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_LE(std::fabs(y[i]), 2.0f + 1e-5f);
    EXPECT_GE(y[i], 0.0f);
  }
}

TEST(Pooling, ModulesForwardShapes) {
  Rng rng(13);
  const Tensor x = random_tensor({2, 3, 8, 8}, rng);
  MaxPool2d mp({2, 2, 0});
  EXPECT_EQ(mp.forward(ag::Var(x)).value().shape(), (Shape{2, 3, 4, 4}));
  AvgPool2d ap({2, 2, 0});
  EXPECT_EQ(ap.forward(ag::Var(x)).value().shape(), (Shape{2, 3, 4, 4}));
  GlobalAvgPool gp;
  EXPECT_EQ(gp.forward(ag::Var(x)).value().shape(), (Shape{2, 3, 1, 1}));
  Flatten fl;
  EXPECT_EQ(fl.forward(ag::Var(x)).value().shape(), (Shape{2, 192}));
}

TEST(Summary, TreeWithPruneAnnotations) {
  Rng rng(15);
  Sequential seq;
  auto& conv = seq.emplace<Conv2d>(3, 4, 3, 1, 1, false, rng);
  seq.emplace<BatchNorm2d>(4);

  const std::string before = summarize(seq, "net");
  EXPECT_NE(before.find("net: Sequential"), std::string::npos);
  EXPECT_NE(before.find("layer0: Conv2d"), std::string::npos);
  EXPECT_NE(before.find("108 params"), std::string::npos);  // 4*3*9
  EXPECT_EQ(before.find("pruned"), std::string::npos);
  EXPECT_EQ(total_pruned_filters(seq), 0);

  conv.prune_filter(2);
  const std::string after = summarize(seq, "net");
  EXPECT_NE(after.find("[1/4 filters pruned]"), std::string::npos);
  EXPECT_EQ(total_pruned_filters(seq), 1);
}

TEST(Init, KaimingStdDevScalesWithFanIn) {
  Rng rng(14);
  const Tensor w = kaiming_normal({64, 16, 3, 3}, 16 * 9, rng);
  RunningStat s;
  for (std::int64_t i = 0; i < w.numel(); ++i) s.add(w[i]);
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0 / (16.0 * 9.0)), 0.01);
}

}  // namespace
}  // namespace bd::nn
