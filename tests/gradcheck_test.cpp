// Finite-difference gradient verification for the graph-IR autograd.
//
// This is the gate on the src/autograd rewrite: every differentiable op in
// autograd/ops.h is checked against central differences, swept over odd
// shapes, broadcast pairs (including stride-zero stretched dimensions) and
// reduction-axis variants, with per-op mixed absolute/relative tolerances
// in the check_numerical_grads idiom. A stride-zero reference oracle
// cross-checks the broadcast normalization in autograd/shape_infer.h
// against the elementwise kernels bit for bit, and an end-to-end test
// verifies the Grad-Prune unlearning loss (cross-entropy on trigger-stamped
// images through a conv/batchnorm net) so the paper's filter scores (Eq. 3)
// rest on provably correct gradients.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "attack/trigger.h"
#include "autograd/ops.h"
#include "autograd/shape_infer.h"
#include "autograd/variable.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bd::ag {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

/// Moves every element at least `margin` away from each kink so central
/// differences never straddle a non-differentiable point.
Tensor away_from(Tensor t, const std::vector<float>& kinks, float margin) {
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    for (const float k : kinks) {
      if (std::fabs(t[i] - k) < margin) {
        t[i] = k + std::copysign(margin, t[i] - k == 0.0f ? 1.0f : t[i] - k);
      }
    }
  }
  return t;
}

/// Tensor whose elements form a permutation with pairwise gaps >= 0.1 —
/// maxpool argmax selections stay stable under +-eps perturbation.
Tensor distinct_tensor(const Shape& shape, float scale = 0.1f) {
  Tensor t(shape);
  const std::int64_t n = t.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    // 7919 is prime, so i -> i*7919 mod n is a permutation whenever n is
    // not a multiple of it (always true for test-sized tensors).
    t[i] = static_cast<float>((i * 7919) % n) * scale -
           static_cast<float>(n) * scale * 0.5f;
  }
  return t;
}

struct GradCheckOpts {
  float eps = 1e-3f;
  double rtol = 1e-2;
  double atol = 1e-3;
};

/// Central-difference check of d(fn)/d(inputs[k]) for every input element,
/// with the mixed tolerance |analytic - numeric| <= atol + rtol*max(|.|).
void check_numerical_grads(
    const std::function<Var(const std::vector<Var>&)>& fn,
    const std::vector<Tensor>& input_values, const GradCheckOpts& opts = {}) {
  std::vector<Var> inputs;
  inputs.reserve(input_values.size());
  for (const auto& v : input_values) {
    inputs.emplace_back(v.clone(), /*requires_grad=*/true);
  }
  Var out = fn(inputs);
  ASSERT_EQ(shape_numel(out.shape()), 1)
      << "gradient check needs a scalar output";
  out.backward();

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ASSERT_TRUE(inputs[k].has_grad()) << "input " << k << " got no gradient";
    const Tensor& analytic = inputs[k].grad();
    for (std::int64_t i = 0; i < input_values[k].numel(); ++i) {
      const auto eval_at = [&](float delta) {
        std::vector<Var> probe;
        probe.reserve(input_values.size());
        for (std::size_t j = 0; j < input_values.size(); ++j) {
          Tensor t = input_values[j].clone();
          if (j == k) t[i] += delta;
          probe.emplace_back(std::move(t), false);
        }
        NoGradGuard guard;
        return static_cast<double>(fn(probe).value()[0]);
      };
      const double numeric =
          (eval_at(opts.eps) - eval_at(-opts.eps)) / (2.0 * opts.eps);
      const double a = analytic[i];
      const double bound =
          opts.atol + opts.rtol * std::max(std::fabs(a), std::fabs(numeric));
      EXPECT_NEAR(a, numeric, bound)
          << "input " << k << " element " << i << " of shape "
          << shape_string(input_values[k].shape());
    }
  }
}

/// Weighted scalar head: sum(w * x) with a fixed, grad-free weight, so the
/// upstream gradient reaching the op under test is non-uniform.
Var weighted_sum(const Var& x, const Tensor& w) {
  return sum_all(mul(x, Var(w)));
}

// Broadcast pairs: equal shapes, stretched dims on either side, missing
// leading dims, rank-0 against rank-1, and a doubly-stretched pair.
const std::vector<std::pair<Shape, Shape>>& broadcast_pairs() {
  static const std::vector<std::pair<Shape, Shape>> pairs = {
      {{3, 4}, {3, 4}},     {{3, 1}, {1, 4}},  {{2, 3, 4}, {4}},
      {{5}, {}},            {{2, 1, 3}, {4, 1}}, {{1}, {3, 2, 1}},
  };
  return pairs;
}

const std::vector<Shape>& odd_shapes() {
  static const std::vector<Shape> shapes = {{7}, {3, 5}, {2, 3, 5}, {1, 1, 3}};
  return shapes;
}

// ---------------------------------------------------------------------------
// Stride-zero broadcast oracle: shape_infer vs the elementwise kernels
// ---------------------------------------------------------------------------

// Reference elementwise add that reads both operands through the stride
// vectors of shape_infer::broadcast_strides (0 on stretched dims). Must
// match the kernel bit for bit — same pairing, same single float add.
Tensor oracle_broadcast_add(const Tensor& a, const Tensor& b) {
  const Shape out_shape = broadcast_result(a.shape(), b.shape(), "oracle");
  const auto sa = broadcast_strides(a.shape(), out_shape);
  const auto sb = broadcast_strides(b.shape(), out_shape);
  const auto so = contiguous_strides(out_shape);
  Tensor out(out_shape);
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    std::int64_t ia = 0, ib = 0, rem = flat;
    for (std::size_t d = 0; d < out_shape.size(); ++d) {
      const std::int64_t coord = rem / so[d];
      rem %= so[d];
      ia += coord * sa[d];
      ib += coord * sb[d];
    }
    out[flat] = a[ia] + b[ib];
  }
  return out;
}

TEST(BroadcastOracle, StrideZeroReferenceMatchesKernelBitwise) {
  Rng rng(31);
  for (const auto& [sa, sb] : broadcast_pairs()) {
    const Tensor a = random_tensor(sa, rng);
    const Tensor b = random_tensor(sb, rng);
    const Tensor expect = oracle_broadcast_add(a, b);
    const Tensor got = bd::add(a, b);
    ASSERT_EQ(got.shape(), expect.shape());
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << "element " << i << " of "
                                   << shape_string(got.shape());
    }
  }
}

TEST(ShapeInfer, RejectsIncompatibleAndMalformed) {
  EXPECT_THROW(broadcast_result({2, 3}, {4, 3, 2}, "t"),
               std::invalid_argument);
  EXPECT_THROW(broadcast_strides({3, 2}, {3, 4}), std::invalid_argument);
  EXPECT_THROW(matmul_result({2, 3}, {4, 5}), std::invalid_argument);
  EXPECT_THROW(reduce_result({2, 3}, {2}, false), std::invalid_argument);
  EXPECT_EQ(reduce_result({2, 3, 4}, {-1, 0}, false), (Shape{3}));
  EXPECT_EQ(reduce_result({2, 3, 4}, {1}, true), (Shape{2, 1, 4}));
  const Conv2dSpec spec{1, 1};
  EXPECT_THROW(conv2d_result({2, 3, 5, 5}, {4, 2, 3, 3}, nullptr, spec,
                             false),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Elementwise binaries over broadcast pairs
// ---------------------------------------------------------------------------

TEST(GradCheckSweep, AddSubBroadcast) {
  Rng rng(101);
  for (const auto& [sa, sb] : broadcast_pairs()) {
    const Tensor w =
        random_tensor(broadcast_result(sa, sb, "t"), rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(add(in[0], in[1]), w);
        },
        {random_tensor(sa, rng), random_tensor(sb, rng)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(sub(in[0], in[1]), w);
        },
        {random_tensor(sa, rng), random_tensor(sb, rng)});
  }
}

TEST(GradCheckSweep, MulDivBroadcast) {
  Rng rng(102);
  for (const auto& [sa, sb] : broadcast_pairs()) {
    const Tensor w = random_tensor(broadcast_result(sa, sb, "t"), rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(mul(in[0], in[1]), w);
        },
        {random_tensor(sa, rng), random_tensor(sb, rng)});
    // Denominator bounded away from zero.
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(div(in[0], in[1]), w);
        },
        {random_tensor(sa, rng), random_tensor(sb, rng, 0.5f, 1.5f)});
  }
}

// ---------------------------------------------------------------------------
// Scalar-argument and unary elementwise ops over odd shapes
// ---------------------------------------------------------------------------

TEST(GradCheckSweep, ScalarOps) {
  Rng rng(103);
  for (const Shape& s : odd_shapes()) {
    const Tensor w = random_tensor(s, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(add_scalar(in[0], 0.37f), w);
        },
        {random_tensor(s, rng)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(mul_scalar(in[0], -2.5f), w);
        },
        {random_tensor(s, rng)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(neg(in[0]), w);
        },
        {random_tensor(s, rng)});
  }
}

TEST(GradCheckSweep, ExpLogSqrtPow) {
  Rng rng(104);
  for (const Shape& s : odd_shapes()) {
    const Tensor w = random_tensor(s, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(exp(in[0]), w);
        },
        {random_tensor(s, rng)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(log(in[0]), w);
        },
        {random_tensor(s, rng, 0.5f, 2.0f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(sqrt(in[0]), w);
        },
        {random_tensor(s, rng, 0.5f, 2.0f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(pow_scalar(in[0], 2.3f), w);
        },
        {random_tensor(s, rng, 0.5f, 2.0f)});
  }
}

TEST(GradCheckSweep, AbsClamp) {
  Rng rng(105);
  for (const Shape& s : odd_shapes()) {
    const Tensor w = random_tensor(s, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(abs(in[0]), w);
        },
        {away_from(random_tensor(s, rng), {0.0f}, 0.05f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(clamp(in[0], -0.5f, 0.5f), w);
        },
        {away_from(random_tensor(s, rng), {-0.5f, 0.5f}, 0.05f)});
  }
}

TEST(GradCheckSweep, Activations) {
  Rng rng(106);
  for (const Shape& s : odd_shapes()) {
    const Tensor w = random_tensor(s, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(relu(in[0]), w);
        },
        {away_from(random_tensor(s, rng), {0.0f}, 0.05f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(sigmoid(in[0]), w);
        },
        {random_tensor(s, rng, -3.0f, 3.0f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(tanh(in[0]), w);
        },
        {random_tensor(s, rng, -2.0f, 2.0f)});
    // Sweep across both saturation regions and the linear band, keeping
    // clear of the +-3 kinks.
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(hardsigmoid(in[0]), w);
        },
        {away_from(random_tensor(s, rng, -5.0f, 5.0f), {-3.0f, 3.0f},
                   0.05f)});
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(hardswish(in[0]), w);
        },
        {away_from(random_tensor(s, rng, -5.0f, 5.0f), {-3.0f, 3.0f},
                   0.05f)});
  }
}

// ---------------------------------------------------------------------------
// Shape ops and reductions
// ---------------------------------------------------------------------------

TEST(GradCheckSweep, ReshapeFlatten) {
  Rng rng(107);
  const Tensor w = random_tensor({4, 6}, rng);
  check_numerical_grads(
      [&w](const std::vector<Var>& in) {
        return weighted_sum(reshape(in[0], {4, 6}), w);
      },
      {random_tensor({2, 3, 4}, rng)});
  const Tensor wf = random_tensor({2, 12}, rng);
  check_numerical_grads(
      [&wf](const std::vector<Var>& in) {
        return weighted_sum(flatten2d(in[0]), wf);
      },
      {random_tensor({2, 3, 2, 2}, rng)});
}

TEST(GradCheckSweep, ReduceSumAxes) {
  Rng rng(108);
  const Shape s{2, 3, 4};
  const struct {
    std::vector<std::int64_t> axes;
    bool keepdim;
  } cases[] = {
      {{0}, false}, {{1}, false}, {{0, 2}, false},
      {{-1}, false}, {{1}, true}, {{0, 1, 2}, false},
  };
  for (const auto& c : cases) {
    const Tensor w =
        random_tensor(reduce_result(s, c.axes, c.keepdim), rng);
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(reduce_sum(in[0], c.axes, c.keepdim), w);
        },
        {random_tensor(s, rng)});
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(reduce_mean(in[0], c.axes, c.keepdim), w);
        },
        {random_tensor(s, rng)});
  }
}

TEST(GradCheckSweep, SumAllMeanAll) {
  Rng rng(109);
  for (const Shape& s : odd_shapes()) {
    check_numerical_grads(
        [](const std::vector<Var>& in) { return sum_all(in[0]); },
        {random_tensor(s, rng)});
    check_numerical_grads(
        [](const std::vector<Var>& in) { return mean_all(in[0]); },
        {random_tensor(s, rng)});
  }
}

// ---------------------------------------------------------------------------
// Linear algebra, convolution, pooling
// ---------------------------------------------------------------------------

TEST(GradCheckSweep, Matmul) {
  Rng rng(110);
  GradCheckOpts opts;
  opts.rtol = 2e-2;
  const std::vector<std::pair<Shape, Shape>> cases = {
      {{3, 4}, {4, 5}}, {{1, 3}, {3, 2}}, {{5, 1}, {1, 3}}};
  for (const auto& [sa, sb] : cases) {
    const Tensor w = random_tensor({sa[0], sb[1]}, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(matmul(in[0], in[1]), w);
        },
        {random_tensor(sa, rng), random_tensor(sb, rng)}, opts);
  }
}

TEST(GradCheckSweep, Conv2dVariants) {
  Rng rng(111);
  GradCheckOpts opts;
  opts.rtol = 2e-2;
  opts.atol = 5e-3;
  {
    // Stride 1, padding 1, with bias.
    const Conv2dSpec spec{1, 1};
    const Tensor w = random_tensor({2, 4, 5, 5}, rng);
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(conv2d(in[0], in[1], in[2], spec), w);
        },
        {random_tensor({2, 3, 5, 5}, rng), random_tensor({4, 3, 3, 3}, rng),
         random_tensor({4}, rng)},
        opts);
  }
  {
    // Stride 2, no padding, bias-free (undefined bias Var).
    const Conv2dSpec spec{2, 0};
    const Tensor w = random_tensor({1, 2, 2, 2}, rng);
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(conv2d(in[0], in[1], Var(), spec), w);
        },
        {random_tensor({1, 2, 5, 5}, rng), random_tensor({2, 2, 3, 3}, rng)},
        opts);
  }
}

TEST(GradCheckSweep, DepthwiseConv2d) {
  Rng rng(112);
  GradCheckOpts opts;
  opts.rtol = 2e-2;
  opts.atol = 5e-3;
  const Conv2dSpec spec{1, 1};
  const Tensor w = random_tensor({2, 3, 5, 5}, rng);
  check_numerical_grads(
      [&](const std::vector<Var>& in) {
        return weighted_sum(depthwise_conv2d(in[0], in[1], in[2], spec), w);
      },
      {random_tensor({2, 3, 5, 5}, rng), random_tensor({3, 1, 3, 3}, rng),
       random_tensor({3}, rng)},
      opts);
}

TEST(GradCheckSweep, Pooling) {
  Rng rng(113);
  const Pool2dSpec spec{2, 2, 0};
  {
    const Tensor w = random_tensor({1, 2, 2, 2}, rng);
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(maxpool2d(in[0], spec), w);
        },
        {distinct_tensor({1, 2, 5, 5})});
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(avgpool2d(in[0], spec), w);
        },
        {random_tensor({1, 2, 5, 5}, rng)});
  }
  {
    const Tensor w = random_tensor({2, 3, 1, 1}, rng);
    check_numerical_grads(
        [&](const std::vector<Var>& in) {
          return weighted_sum(global_avgpool(in[0]), w);
        },
        {random_tensor({2, 3, 3, 5}, rng)});
  }
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(GradCheckSweep, LogSoftmax) {
  Rng rng(114);
  for (const Shape s : {Shape{3, 5}, Shape{1, 7}, Shape{4, 2}}) {
    const Tensor w = random_tensor(s, rng);
    check_numerical_grads(
        [&w](const std::vector<Var>& in) {
          return weighted_sum(log_softmax(in[0]), w);
        },
        {random_tensor(s, rng, -2.0f, 2.0f)});
  }
}

TEST(GradCheckSweep, NllAndCrossEntropy) {
  Rng rng(115);
  const std::vector<std::int64_t> labels{2, 0, 4};
  check_numerical_grads(
      [&labels](const std::vector<Var>& in) {
        return nll_loss(log_softmax(in[0]), labels);
      },
      {random_tensor({3, 5}, rng, -2.0f, 2.0f)});
  check_numerical_grads(
      [&labels](const std::vector<Var>& in) {
        return cross_entropy(in[0], labels);
      },
      {random_tensor({3, 5}, rng, -2.0f, 2.0f)});
}

TEST(GradCheckSweep, MseLoss) {
  Rng rng(116);
  for (const Shape& s : odd_shapes()) {
    check_numerical_grads(
        [](const std::vector<Var>& in) { return mse_loss(in[0], in[1]); },
        {random_tensor(s, rng), random_tensor(s, rng)});
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the Grad-Prune unlearning loss
// ---------------------------------------------------------------------------

// Numeric gradient of the unlearning loss (batch-size-scaled cross-entropy
// on trigger-stamped images, model in eval mode — exactly what
// core::score_filters differentiates) w.r.t. the first conv's weights.
// Filter scores are the mean |grad| over these entries (Eq. 3), so this
// pins their correctness end to end.
TEST(GradCheckE2E, UnlearnLossFilterGradients) {
  Rng rng(777);
  nn::Conv2d conv(3, 4, 3, 1, 1, /*bias=*/true, rng);
  nn::BatchNorm2d bn(4);
  nn::Linear head(4 * 4 * 4, 10, rng);
  conv.set_training(false);
  bn.set_training(false);
  head.set_training(false);

  // Trigger-stamped batch with true labels, as in the paper's Eq. 2 set.
  const attack::BadNetsTrigger trigger;
  const std::int64_t batch = 3;
  Tensor images({batch, 3, 8, 8});
  for (std::int64_t b = 0; b < batch; ++b) {
    Tensor img = random_tensor({3, 8, 8}, rng, 0.0f, 1.0f);
    const Tensor stamped = trigger.apply(img);
    for (std::int64_t i = 0; i < stamped.numel(); ++i) {
      images[b * stamped.numel() + i] = stamped[i];
    }
  }
  const std::vector<std::int64_t> labels{1, 7, 3};
  const Pool2dSpec pool{2, 2, 0};

  const auto loss_value = [&]() {
    const Var logits = head.forward(
        flatten2d(maxpool2d(relu(bn.forward(conv.forward(Var(images)))),
                            pool)));
    return mul_scalar(cross_entropy(logits, labels),
                      static_cast<float>(batch));
  };

  conv.zero_grad();
  bn.zero_grad();
  head.zero_grad();
  Var loss = loss_value();
  loss.backward();
  ASSERT_TRUE(conv.weight().has_grad());
  const Tensor analytic = conv.weight().grad().clone();

  // Perturbing one conv weight by +-eps can flip a ReLU sign or a maxpool
  // argmax somewhere in the feature map, putting a kink inside the central
  // difference (possibly dead-center, where it corrupts every step size
  // identically). So each probe also records the ReLU sign pattern and the
  // maxpool argmax: when both are identical at +eps and -eps the loss
  // restricted to that coordinate is smooth (affine ops and log-softmax
  // only), the central difference is trustworthy to O(eps^2), and the
  // analytic gradient must match it tightly. Elements that straddle a kink
  // are skipped but counted — too many skips would make the check vacuous.
  struct Probe {
    double loss = 0.0;
    std::vector<char> relu_sign;
    std::vector<std::int64_t> argmax;
  };
  Tensor& w = conv.weight().mutable_value();
  // Small eps: each weight influences ~200 pre-activations, and the chance
  // of one sitting within eps*|x| of a kink scales with eps. At 3e-4 the
  // centered difference still clears float32 rounding noise (loss is O(10),
  // so the quotient noise is ~1e-3) by an order of magnitude.
  const float eps = 3e-4f;
  std::int64_t checked = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    const float saved = w[i];
    const auto probe_at = [&](float delta) {
      w[i] = saved + delta;
      NoGradGuard guard;
      Probe p;
      const Tensor pre = bn.forward(conv.forward(Var(images))).value();
      p.relu_sign.reserve(static_cast<std::size_t>(pre.numel()));
      for (std::int64_t e = 0; e < pre.numel(); ++e) {
        p.relu_sign.push_back(pre[e] > 0.0f ? 1 : 0);
      }
      const MaxPoolResult pooled = maxpool2d_forward(bd::relu(pre), pool);
      p.argmax = pooled.argmax;
      const Var logits = head.forward(flatten2d(Var(pooled.output)));
      p.loss = static_cast<double>(
          mul_scalar(cross_entropy(logits, labels),
                     static_cast<float>(batch))
              .value()[0]);
      return p;
    };
    const Probe hi = probe_at(eps);
    const Probe lo = probe_at(-eps);
    w[i] = saved;
    if (hi.relu_sign != lo.relu_sign || hi.argmax != lo.argmax) continue;
    ++checked;
    const double numeric = (hi.loss - lo.loss) / (2.0 * eps);
    const double bound =
        5e-3 + 2e-2 * std::max(std::fabs(numeric),
                               std::fabs(static_cast<double>(analytic[i])));
    EXPECT_NEAR(analytic[i], numeric, bound) << "conv weight element " << i;
  }
  EXPECT_GE(checked, w.numel() / 2)
      << "too many elements sat on a ReLU/maxpool kink";
}

}  // namespace
}  // namespace bd::ag
