// Tests for the serve subsystem: wire parsing, admission-controlled fair
// queue, backbone LRU cache, the job schema + journal encoding, protocol
// robustness (malformed/oversized/hostile input never crashes the daemon
// core), service lifecycle (cache hits, failure, cancellation) and
// journaled restart semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "nn/checkpoint.h"
#include "models/factory.h"
#include "robust/supervisor.h"
#include "serve/backbone_cache.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace bd {
namespace {

using serve::Admission;
using serve::BackboneCache;
using serve::CancelOutcome;
using serve::FairQueue;
using serve::JobRecord;
using serve::JobSpec;
using serve::JobState;
using serve::Json;
using serve::Protocol;
using serve::ProtocolResult;
using serve::SanitizeService;
using serve::ServiceConfig;

// ---------------------------------------------------------------------------
// wire
// ---------------------------------------------------------------------------

TEST(WireTest, ParsesNestedValues) {
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse(
      R"({"op":"submit","n":-1.5e2,"flag":true,"none":null,)"
      R"("arr":[1,"two",{}],"obj":{"k":"v\n"}})",
      v, error))
      << error;
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("op"), "submit");
  EXPECT_DOUBLE_EQ(v.get_double("n", 0), -150.0);
  EXPECT_TRUE(v.get_bool("flag", false));
  ASSERT_NE(v.find("none"), nullptr);
  EXPECT_TRUE(v.find("none")->is_null());
  ASSERT_NE(v.find("arr"), nullptr);
  EXPECT_EQ(v.find("arr")->items().size(), 3u);
  EXPECT_EQ(v.find("obj")->get_string("k"), "v\n");
}

TEST(WireTest, RejectsMalformedInputWithOffset) {
  Json v;
  std::string error;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1}trailing", "\"unterminated",
        "01", "nul", "{\"a\" 1}", "\"bad\\q\"", "1e999"}) {
    EXPECT_FALSE(Json::parse(bad, v, error)) << bad;
    EXPECT_NE(error.find("byte"), std::string::npos) << error;
  }
}

TEST(WireTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 40; ++i) deep += "[";
  Json v;
  std::string error;
  EXPECT_FALSE(Json::parse(deep, v, error));
}

TEST(WireTest, WrongTypePresentMemberIsNotCoerced) {
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse(R"({"n":"five","s":7})", v, error));
  EXPECT_EQ(v.get_int("n", 3), 3);       // string where number expected
  EXPECT_EQ(v.get_string("s", "x"), "x");  // number where string expected
}

TEST(WireTest, EscapeRoundTrip) {
  const std::string hostile = "a\"b\\c\nd\te\x01f";
  Json v;
  std::string error;
  ASSERT_TRUE(Json::parse("\"" + serve::json_escape(hostile) + "\"", v, error))
      << error;
  EXPECT_EQ(v.as_string(), hostile);
}

// ---------------------------------------------------------------------------
// queue
// ---------------------------------------------------------------------------

TEST(FairQueueTest, AdmissionBoundsDepthAndQuota) {
  FairQueue q(/*capacity=*/2, /*tenant_quota=*/2);
  EXPECT_EQ(q.push("a", "j1"), Admission::kAdmitted);
  EXPECT_EQ(q.push("a", "j2"), Admission::kAdmitted);
  EXPECT_EQ(q.push("b", "j3"), Admission::kQueueFull);
  std::string tenant, id;
  ASSERT_TRUE(q.pop(tenant, id));
  // Popped job still holds its quota slot, but queue depth freed up.
  EXPECT_EQ(q.push("a", "j4"), Admission::kQuotaExceeded);
  EXPECT_EQ(q.push("b", "j5"), Admission::kAdmitted);
  q.release("a");
  // Quota freed, but j2 + j5 still occupy the two depth slots.
  EXPECT_EQ(q.push("a", "j6"), Admission::kQueueFull);
  ASSERT_TRUE(q.pop(tenant, id));  // frees one depth slot
  EXPECT_EQ(q.push("a", "j6"), Admission::kAdmitted);
}

TEST(FairQueueTest, RoundRobinAcrossTenants) {
  FairQueue q(/*capacity=*/16, /*tenant_quota=*/16);
  for (int i = 0; i < 3; ++i) {
    q.push("deep", "deep" + std::to_string(i));
  }
  q.push("shallow", "shallow0");
  std::vector<std::string> order;
  std::string tenant, id;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(tenant, id));
    order.push_back(tenant);
    q.release(tenant);
  }
  // The single-job tenant is served second, not after the deep queue.
  const std::vector<std::string> expected = {"deep", "shallow", "deep",
                                             "deep"};
  EXPECT_EQ(order, expected);
}

TEST(FairQueueTest, RemoveReleasesQuotaAndCloseDrains) {
  FairQueue q(/*capacity=*/4, /*tenant_quota=*/1);
  EXPECT_EQ(q.push("a", "j1"), Admission::kAdmitted);
  EXPECT_EQ(q.push("a", "j2"), Admission::kQuotaExceeded);
  EXPECT_TRUE(q.remove("j1"));
  EXPECT_FALSE(q.remove("j1"));  // already gone
  EXPECT_EQ(q.push("a", "j2"), Admission::kAdmitted);
  q.close();
  EXPECT_EQ(q.push("a", "j3"), Admission::kClosed);
  std::string tenant, id;
  EXPECT_TRUE(q.pop(tenant, id));  // drains j2 after close
  EXPECT_EQ(id, "j2");
  EXPECT_FALSE(q.pop(tenant, id));  // closed and drained
}

// ---------------------------------------------------------------------------
// backbone cache
// ---------------------------------------------------------------------------

BackboneCache::BackbonePtr dummy_backbone() {
  const data::ImageDataset empty({3, 2, 2}, 2);
  eval::BackdooredModel model{"cifar",
                              "badnet",
                              models::ModelSpec{},
                              {},
                              nullptr,
                              empty,
                              empty,
                              empty,
                              empty,
                              {},
                              {}};
  return std::make_shared<const eval::BackdooredModel>(std::move(model));
}

TEST(BackboneCacheTest, LruEvictionAndStats) {
  BackboneCache cache(/*capacity=*/2);
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return dummy_backbone();
  };
  EXPECT_FALSE(cache.get_or_build("a", build).hit);
  EXPECT_FALSE(cache.get_or_build("b", build).hit);
  EXPECT_TRUE(cache.get_or_build("a", build).hit);  // refreshes a
  EXPECT_FALSE(cache.get_or_build("c", build).hit);  // evicts b (LRU)
  EXPECT_TRUE(cache.get_or_build("a", build).hit);
  EXPECT_FALSE(cache.get_or_build("b", build).hit);  // b was evicted
  EXPECT_EQ(builds, 4);
  const serve::BackboneCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.size, 2u);
}

TEST(BackboneCacheTest, CapacityZeroDisablesCaching) {
  BackboneCache cache(0);
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return dummy_backbone();
  };
  EXPECT_FALSE(cache.get_or_build("a", build).hit);
  EXPECT_FALSE(cache.get_or_build("a", build).hit);
  EXPECT_EQ(builds, 2);
}

TEST(BackboneCacheTest, SingleFlightSharesOneBuild) {
  BackboneCache cache(4);
  std::atomic<int> builds{0};
  std::atomic<int> hits{0};
  const auto build = [&builds] {
    ++builds;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return dummy_backbone();
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      if (cache.get_or_build("shared", build).hit) ++hits;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(hits.load(), 3);
}

TEST(BackboneCacheTest, BuilderFailurePropagatesToWaiters) {
  BackboneCache cache(4);
  const auto failing = []() -> BackboneCache::BackbonePtr {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    throw std::runtime_error("boom");
  };
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      try {
        cache.get_or_build("bad", failing);
      } catch (const std::runtime_error&) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 3);
  // The failed build was not cached; the next lookup builds again.
  EXPECT_FALSE(cache.get_or_build("bad", dummy_backbone).hit);
}

// ---------------------------------------------------------------------------
// job schema + journal encoding
// ---------------------------------------------------------------------------

Json parse_ok(const std::string& text) {
  Json v;
  std::string error;
  EXPECT_TRUE(Json::parse(text, v, error)) << error;
  return v;
}

TEST(JobTest, ParseValidatesEveryField) {
  EXPECT_THROW(serve::validate_tenant(""), serve::BadRequest);
  EXPECT_THROW(serve::validate_tenant("a b"), serve::BadRequest);
  EXPECT_NO_THROW(serve::validate_tenant("team-1.prod_x"));

  const auto bad = [](const std::string& body) {
    EXPECT_THROW(serve::parse_job_spec(parse_ok(body), "t"),
                 serve::BadRequest)
        << body;
  };
  bad(R"({"dataset":"imagenet"})");
  bad(R"({"arch":"transformer"})");
  bad(R"({"attack":"wasm"})");
  bad(R"({"defense":"prayer"})");
  bad(R"({"spc":0})");
  bad(R"({"spc":"ten"})");
  bad(R"({"width":100000})");
  bad(R"({"spc":10,"train_per_class":5})");

  const JobSpec spec = serve::parse_job_spec(
      parse_ok(R"({"dataset":"gtsrb","defense":"gradprune","spc":4,)"
               R"("seed":7,"train_per_class":8})"),
      "team");
  EXPECT_EQ(spec.tenant, "team");
  EXPECT_EQ(spec.dataset, "gtsrb");
  EXPECT_EQ(spec.spc, 4);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.train_per_class, 8);
}

TEST(JobTest, CacheKeyReflectsBackboneShapingFieldsOnly) {
  JobSpec a;
  JobSpec b = a;
  EXPECT_EQ(serve::backbone_cache_key(a), serve::backbone_cache_key(b));
  b.defense = "nad";  // defense choice does not shape the backbone
  b.spc = 99;
  EXPECT_EQ(serve::backbone_cache_key(a), serve::backbone_cache_key(b));
  b.seed = a.seed + 1;  // seed does
  EXPECT_NE(serve::backbone_cache_key(a), serve::backbone_cache_key(b));
  JobSpec c = a;
  c.width = 6;
  EXPECT_NE(serve::backbone_cache_key(a), serve::backbone_cache_key(c));
}

TEST(JobTest, CheckpointCacheKeyTracksContent) {
  const std::string path_a = "/tmp/serve_test_ckpt_a.ckpt";
  const std::string path_b = "/tmp/serve_test_ckpt_b.ckpt";
  Rng rng(11);
  models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.in_channels = 3;
  spec.num_classes = 4;
  spec.base_width = 4;
  const auto model_a = models::make_model(spec, rng);
  const auto model_b = models::make_model(spec, rng);  // different init
  nn::save_checkpoint(*model_a, path_a);
  nn::save_checkpoint(*model_b, path_b);

  const std::string key_a =
      serve::checkpoint_cache_key(nn::inspect_checkpoint(path_a));
  const std::string key_b =
      serve::checkpoint_cache_key(nn::inspect_checkpoint(path_b));
  EXPECT_EQ(key_a.size(), 16u);  // FNV-1a hex
  EXPECT_NE(key_a, key_b);  // same shapes, different weights
  // Re-inspection of the same file is stable.
  EXPECT_EQ(key_a,
            serve::checkpoint_cache_key(nn::inspect_checkpoint(path_a)));

  // A job citing the checkpoint folds the content key into the LRU key.
  JobSpec plain;
  JobSpec with_ckpt = plain;
  with_ckpt.model_path = path_a;
  JobSpec with_other = plain;
  with_other.model_path = path_b;
  EXPECT_NE(serve::backbone_cache_key(plain),
            serve::backbone_cache_key(with_ckpt));
  EXPECT_NE(serve::backbone_cache_key(with_ckpt),
            serve::backbone_cache_key(with_other));

  JobSpec missing = plain;
  missing.model_path = "/tmp/serve_test_no_such.ckpt";
  EXPECT_THROW(serve::backbone_cache_key(missing), serve::BadRequest);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(JobTest, JournalEncodingRoundTrips) {
  JobRecord rec;
  rec.id = "j000042";
  rec.spec.tenant = "team";
  rec.spec.dataset = "gtsrb";
  rec.spec.defense = "nad";
  rec.spec.spc = 4;
  rec.spec.seed = 99;
  rec.spec.width = 6;
  rec.spec.out_path = "/tmp/out.ckpt";
  rec.state = JobState::kDone;
  rec.cache_key = "abc123";
  rec.cache_hit = true;
  rec.attempts = 2;
  rec.have_metrics = true;
  rec.metrics.acc = 81.25;
  rec.metrics.asr = 1.5;
  rec.metrics.ra = 63.0;
  rec.seconds = 2.5;
  rec.pruned_units = 7;

  const JobRecord back = serve::decode_job("job|j000042",
                                           serve::encode_job(rec));
  EXPECT_EQ(back.id, rec.id);
  EXPECT_EQ(back.spec.tenant, "team");
  EXPECT_EQ(back.spec.dataset, "gtsrb");
  EXPECT_EQ(back.spec.defense, "nad");
  EXPECT_EQ(back.spec.spc, 4);
  EXPECT_EQ(back.spec.seed, 99u);
  EXPECT_EQ(back.spec.width, 6);
  EXPECT_EQ(back.spec.out_path, "/tmp/out.ckpt");
  EXPECT_EQ(back.state, JobState::kDone);
  EXPECT_EQ(back.cache_key, "abc123");
  EXPECT_TRUE(back.cache_hit);
  EXPECT_EQ(back.attempts, 2);
  ASSERT_TRUE(back.have_metrics);
  EXPECT_DOUBLE_EQ(back.metrics.acc, 81.25);
  EXPECT_DOUBLE_EQ(back.metrics.asr, 1.5);
  EXPECT_DOUBLE_EQ(back.seconds, 2.5);
  EXPECT_EQ(back.pruned_units, 7);
}

// ---------------------------------------------------------------------------
// protocol robustness — none of these may crash or tear the daemon core
// ---------------------------------------------------------------------------

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() {
    config_.workers = 0;  // admission + bookkeeping only; nothing runs
    config_.queue_capacity = 2;
    config_.tenant_quota = 1;
    config_.cache_capacity = 2;
    service_ = std::make_unique<SanitizeService>(config_);
    protocol_ = std::make_unique<Protocol>(*service_);
  }

  Json handle(const std::string& line) {
    const ProtocolResult result = protocol_->handle_line(line);
    return parse_ok(result.response);
  }

  std::string error_code(const std::string& line) {
    const Json response = handle(line);
    EXPECT_FALSE(response.get_bool("ok", true));
    return response.get_string("error");
  }

  ServiceConfig config_;
  std::unique_ptr<SanitizeService> service_;
  std::unique_ptr<Protocol> protocol_;
};

TEST_F(ProtocolTest, MalformedJsonIsStructuredError) {
  EXPECT_EQ(error_code("this is not json"), "bad_json");
  EXPECT_EQ(error_code("{\"op\":"), "bad_json");
  EXPECT_EQ(error_code("\x01\x02\xff"), "bad_json");
  EXPECT_EQ(error_code("42"), "bad_request");  // valid JSON, not an object
  EXPECT_EQ(error_code("{}"), "bad_request");  // missing op
  EXPECT_EQ(error_code("{\"op\":\"frobnicate\"}"), "unknown_op");
}

TEST_F(ProtocolTest, OversizedRequestLineIsRejectedBeforeParsing) {
  std::string huge = "{\"op\":\"submit\",\"pad\":\"";
  huge += std::string(Protocol::kMaxRequestBytes, 'x');
  huge += "\"}";
  EXPECT_EQ(error_code(huge), "oversized_request");
}

TEST_F(ProtocolTest, SubmitValidation) {
  EXPECT_EQ(error_code("{\"op\":\"submit\"}"), "bad_request");
  EXPECT_EQ(error_code(
                R"({"op":"submit","tenant":"bad tenant","job":{}})"),
            "bad_request");
  EXPECT_EQ(error_code(
                R"({"op":"submit","tenant":"t","job":{"dataset":"mnist"}})"),
            "bad_request");

  const Json ok = handle(R"({"op":"submit","tenant":"t","job":{}})");
  EXPECT_TRUE(ok.get_bool("ok", false));
  EXPECT_EQ(ok.get_string("state"), "queued");
  EXPECT_EQ(ok.get_string("id"), "j000001");
}

TEST_F(ProtocolTest, QuotaThenQueueFullRejections) {
  EXPECT_TRUE(handle(R"({"op":"submit","tenant":"a","job":{}})")
                  .get_bool("ok", false));
  // tenant_quota=1: a second job for "a" bounces even though the queue
  // still has room.
  EXPECT_EQ(error_code(R"({"op":"submit","tenant":"a","job":{}})"),
            "quota_exceeded");
  EXPECT_TRUE(handle(R"({"op":"submit","tenant":"b","job":{}})")
                  .get_bool("ok", false));
  // queue_capacity=2: a third tenant bounces on global depth.
  EXPECT_EQ(error_code(R"({"op":"submit","tenant":"c","job":{}})"),
            "queue_full");
}

TEST_F(ProtocolTest, CancelOfQueuedJobAndStatus) {
  const Json submitted = handle(R"({"op":"submit","tenant":"t","job":{}})");
  const std::string id = submitted.get_string("id");

  EXPECT_EQ(error_code(R"({"op":"status","id":"j999999"})"), "unknown_job");
  EXPECT_EQ(error_code(R"({"op":"cancel","id":"j999999"})"), "unknown_job");

  const Json cancelled =
      handle(R"({"op":"cancel","id":")" + id + R"("})");
  EXPECT_TRUE(cancelled.get_bool("ok", false));
  EXPECT_EQ(cancelled.get_string("state"), "cancelled");

  // Terminal now: a second cancel is refused, status shows the state.
  EXPECT_EQ(error_code(R"({"op":"cancel","id":")" + id + R"("})"),
            "not_cancellable");
  const Json status = handle(R"({"op":"status","id":")" + id + R"("})");
  ASSERT_NE(status.find("job"), nullptr);
  EXPECT_EQ(status.find("job")->get_string("state"), "cancelled");
  EXPECT_NE(status.find("job")->get_string("error"), "");

  // The cancelled job released its quota slot: tenant "t" can submit again.
  EXPECT_TRUE(handle(R"({"op":"submit","tenant":"t","job":{}})")
                  .get_bool("ok", false));
}

TEST_F(ProtocolTest, JobsAndStatsRespondWithAggregates) {
  handle(R"({"op":"submit","tenant":"a","job":{}})");
  handle(R"({"op":"submit","tenant":"b","job":{"defense":"nad"}})");
  const Json all = handle(R"({"op":"jobs"})");
  ASSERT_NE(all.find("jobs"), nullptr);
  EXPECT_EQ(all.find("jobs")->items().size(), 2u);
  const Json filtered = handle(R"({"op":"jobs","tenant":"b"})");
  ASSERT_EQ(filtered.find("jobs")->items().size(), 1u);
  EXPECT_EQ(filtered.find("jobs")->items()[0].get_string("defense"), "nad");

  const Json stats = handle(R"({"op":"stats"})");
  EXPECT_EQ(stats.get_int("submitted", -1), 2);
  EXPECT_EQ(stats.get_int("queue_depth", -1), 2);
  ASSERT_NE(stats.find("tenants"), nullptr);
  EXPECT_EQ(stats.find("tenants")->get_int("a", 0), 1);
}

TEST_F(ProtocolTest, ShutdownIsSignalledToTransport) {
  const ProtocolResult result = protocol_->handle_line(R"({"op":"shutdown"})");
  EXPECT_TRUE(result.shutdown);
  EXPECT_TRUE(parse_ok(result.response).get_bool("ok", false));
}

// ---------------------------------------------------------------------------
// service lifecycle (tiny real jobs)
// ---------------------------------------------------------------------------

JobSpec micro_spec(std::uint64_t seed = 2024) {
  JobSpec spec;
  spec.spc = 2;
  spec.seed = seed;
  spec.width = 4;
  spec.attack_epochs = 1;
  spec.prune_rounds = 2;
  spec.finetune_epochs = 1;
  spec.train_per_class = 4;
  spec.test_per_class = 2;
  return spec;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { ::setenv("BDPROTO_MODE", "quick", 1); }
};

TEST_F(ServiceTest, RunsJobsAndHitsBackboneCache) {
  robust::Supervisor supervisor;
  ServiceConfig config;
  config.workers = 2;
  config.cache_capacity = 2;
  config.supervisor = &supervisor;
  SanitizeService service(config);
  service.start();

  const serve::SubmitResult first = service.submit(micro_spec());
  ASSERT_EQ(first.admission, Admission::kAdmitted);
  const serve::SubmitResult second = service.submit(micro_spec());
  ASSERT_EQ(second.admission, Admission::kAdmitted);
  service.drain();

  JobRecord a, b;
  ASSERT_TRUE(service.status(first.id, a));
  ASSERT_TRUE(service.status(second.id, b));
  EXPECT_EQ(a.state, JobState::kDone);
  EXPECT_EQ(b.state, JobState::kDone);
  ASSERT_TRUE(a.have_metrics);
  ASSERT_TRUE(b.have_metrics);
  // Identical specs: deterministic identical reports, one shared backbone.
  EXPECT_EQ(a.metrics.acc, b.metrics.acc);
  EXPECT_EQ(a.metrics.asr, b.metrics.asr);
  EXPECT_EQ(a.cache_key, b.cache_key);
  EXPECT_TRUE(a.cache_hit || b.cache_hit);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.done, 2);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.cache.hits, 1);
  service.stop();
}

TEST_F(ServiceTest, ShapeMismatchedCheckpointFailsJobWithRetries) {
  // A checkpoint whose shapes do not match the job's model spec: the
  // override fails inside the attempt, the supervisor retries, the job
  // lands in kFailed with the journaled attempt count — the daemon
  // survives.
  const std::string path = "/tmp/serve_test_mismatch.ckpt";
  {
    Rng rng(5);
    models::ModelSpec spec;
    spec.arch = "preactresnet";
    spec.in_channels = 3;
    spec.num_classes = 4;
    spec.base_width = 8;  // job below builds width 4
    const auto model = models::make_model(spec, rng);
    nn::save_checkpoint(*model, path);
  }
  robust::SupervisorConfig sup_config;
  sup_config.max_retries = 1;
  sup_config.backoff_initial_seconds = 0.0;
  robust::Supervisor supervisor(sup_config);
  ServiceConfig config;
  config.workers = 1;
  config.supervisor = &supervisor;
  SanitizeService service(config);
  service.start();

  JobSpec spec = micro_spec();
  spec.model_path = path;
  const serve::SubmitResult submitted = service.submit(spec);
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);
  service.drain();

  JobRecord record;
  ASSERT_TRUE(service.status(submitted.id, record));
  EXPECT_EQ(record.state, JobState::kFailed);
  EXPECT_EQ(record.attempts, 2);  // first attempt + one retry
  EXPECT_NE(record.error, "");
  EXPECT_FALSE(record.have_metrics);

  // A healthy job for another configuration still completes.
  const serve::SubmitResult healthy = service.submit(micro_spec(7));
  ASSERT_EQ(healthy.admission, Admission::kAdmitted);
  service.drain();
  ASSERT_TRUE(service.status(healthy.id, record));
  EXPECT_EQ(record.state, JobState::kDone);
  service.stop();
  std::remove(path.c_str());
}

TEST_F(ServiceTest, CancelRunningJobViaExternalToken) {
  robust::Supervisor supervisor;
  ServiceConfig config;
  config.workers = 1;
  config.supervisor = &supervisor;
  SanitizeService service(config);
  service.start();

  // A job long enough to be caught mid-flight.
  JobSpec slow = micro_spec(31);
  slow.attack_epochs = 500;
  const serve::SubmitResult submitted = service.submit(slow);
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);

  JobRecord record;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(service.status(submitted.id, record));
    if (record.state == JobState::kRunning) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(record.state, JobState::kRunning);
  EXPECT_EQ(service.cancel(submitted.id), CancelOutcome::kSignalled);
  ASSERT_EQ(service.wait(submitted.id, /*timeout_seconds=*/30.0),
            serve::WaitOutcome::kTerminal);
  ASSERT_TRUE(service.status(submitted.id, record));
  EXPECT_EQ(record.state, JobState::kCancelled);
  // Externally cancelled: no retry, no strike, counted as cancelled.
  EXPECT_EQ(supervisor.stats().cancelled, 1);
  EXPECT_EQ(supervisor.stats().retries, 0);
  EXPECT_EQ(supervisor.stats().failures, 0);
  service.stop();
}

// ---------------------------------------------------------------------------
// journaled restart
// ---------------------------------------------------------------------------

TEST_F(ServiceTest, RestartReportsInterruptedJobsDeterministically) {
  const std::string journal = "/tmp/serve_test_restart.jsonl";
  std::remove(journal.c_str());

  {
    ServiceConfig config;
    config.workers = 0;  // nothing runs; jobs stay queued
    config.journal_path = journal;
    SanitizeService service(config);
    ASSERT_EQ(service.submit(micro_spec(1)).admission, Admission::kAdmitted);
    ASSERT_EQ(service.submit(micro_spec(2)).admission, Admission::kAdmitted);
    service.stop();  // daemon dies with two queued jobs journaled
  }
  {
    ServiceConfig config;
    config.workers = 0;
    config.journal_path = journal;
    SanitizeService service(config);
    const std::vector<JobRecord> jobs = service.jobs();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].id, "j000001");
    EXPECT_EQ(jobs[1].id, "j000002");
    for (const JobRecord& record : jobs) {
      EXPECT_EQ(record.state, JobState::kInterrupted);
      EXPECT_NE(record.error.find("restarted"), std::string::npos);
    }
    EXPECT_EQ(service.stats().interrupted, 2);
    // Ids keep counting from the journal's high-water mark.
    EXPECT_EQ(service.submit(micro_spec(3)).id, "j000003");
    service.stop();
  }
  std::remove(journal.c_str());
}

TEST_F(ServiceTest, RestartWithResumeRequeuesAndCompletes) {
  const std::string journal = "/tmp/serve_test_resume.jsonl";
  std::remove(journal.c_str());

  {
    ServiceConfig config;
    config.workers = 0;
    config.journal_path = journal;
    SanitizeService service(config);
    ASSERT_EQ(service.submit(micro_spec(8)).admission, Admission::kAdmitted);
    service.stop();
  }
  {
    robust::Supervisor supervisor;
    ServiceConfig config;
    config.workers = 1;
    config.journal_path = journal;
    config.resume_interrupted = true;
    config.supervisor = &supervisor;
    SanitizeService service(config);
    JobRecord record;
    ASSERT_TRUE(service.status("j000001", record));
    EXPECT_EQ(record.state, JobState::kQueued);
    service.start();
    service.drain();
    ASSERT_TRUE(service.status("j000001", record));
    EXPECT_EQ(record.state, JobState::kDone);
    EXPECT_TRUE(record.have_metrics);
    service.stop();
  }
  // Third incarnation sees the resumed job as done, nothing in flight.
  {
    ServiceConfig config;
    config.workers = 0;
    config.journal_path = journal;
    SanitizeService service(config);
    EXPECT_EQ(service.stats().done, 1);
    EXPECT_EQ(service.stats().interrupted, 0);
    service.stop();
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace bd
