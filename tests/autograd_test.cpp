// Autograd engine tests: every differentiable op is validated against
// central finite differences, plus graph-mechanics tests (accumulation,
// no-grad scope, detach, reuse of a node in two branches).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace bd::ag {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

/// Checks d(fn)/d(inputs[k]) against central differences for every input.
void check_gradients(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Tensor> input_values, double tolerance = 2e-2,
    float epsilon = 1e-3f) {
  // Analytic gradients.
  std::vector<Var> inputs;
  inputs.reserve(input_values.size());
  for (auto& v : input_values) {
    inputs.emplace_back(v.clone(), /*requires_grad=*/true);
  }
  Var out = fn(inputs);
  ASSERT_EQ(out.value().numel(), 1) << "gradient check needs scalar output";
  out.backward();

  for (std::size_t k = 0; k < inputs.size(); ++k) {
    ASSERT_TRUE(inputs[k].has_grad()) << "input " << k << " got no gradient";
    const Tensor& analytic = inputs[k].grad();
    for (std::int64_t i = 0; i < input_values[k].numel(); ++i) {
      auto eval_at = [&](float delta) {
        std::vector<Var> probe;
        probe.reserve(input_values.size());
        for (std::size_t j = 0; j < input_values.size(); ++j) {
          Tensor t = input_values[j].clone();
          if (j == k) t[i] += delta;
          probe.emplace_back(std::move(t), false);
        }
        NoGradGuard guard;
        return static_cast<double>(fn(probe).value()[0]);
      };
      const double numeric =
          (eval_at(epsilon) - eval_at(-epsilon)) / (2.0 * epsilon);
      EXPECT_NEAR(analytic[i], numeric, tolerance)
          << "input " << k << " element " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Graph mechanics
// ---------------------------------------------------------------------------

TEST(Graph, LeafWithoutGradSkipsGraph) {
  Var a(Tensor::scalar(2.0f), false);
  Var b(Tensor::scalar(3.0f), false);
  Var c = mul(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(Graph, BackwardRequiresScalar) {
  Var a(Tensor({2}, {1, 2}), true);
  Var b = mul_scalar(a, 2.0f);
  EXPECT_THROW(b.backward(), std::logic_error);
}

TEST(Graph, GradAccumulatesAcrossBranches) {
  Var a(Tensor::scalar(3.0f), true);
  Var out = add(mul(a, a), a);  // a^2 + a -> d/da = 2a + 1 = 7
  out.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 7.0f);
}

TEST(Graph, ZeroGradClears) {
  Var a(Tensor::scalar(2.0f), true);
  mul(a, a).backward();
  EXPECT_TRUE(a.has_grad());
  a.zero_grad();
  EXPECT_FALSE(a.has_grad());
}

TEST(Graph, NoGradGuardBlocksRecording) {
  Var a(Tensor::scalar(2.0f), true);
  NoGradGuard guard;
  Var b = mul(a, a);
  EXPECT_FALSE(b.requires_grad());
}

TEST(Graph, DetachStopsGradient) {
  Var a(Tensor::scalar(2.0f), true);
  Var d = mul(a.detach(), a);  // d/da through one path only = 2
  d.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(Graph, BackwardTwiceAccumulates) {
  Var a(Tensor::scalar(2.0f), true);
  Var b = mul(a, a);
  b.backward();
  const float g1 = a.grad()[0];
  // A second graph accumulates onto the same leaf grad.
  Var c = mul(a, a);
  c.backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f * g1);
}

// ---------------------------------------------------------------------------
// Finite-difference checks: elementwise and scalar ops
// ---------------------------------------------------------------------------

TEST(GradCheck, AddSubMulDiv) {
  Rng rng(1);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(add(in[0], in[1]));
      },
      {random_tensor({2, 3}, rng), random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(sub(in[0], in[1]));
      },
      {random_tensor({2, 3}, rng), random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(mul(in[0], in[1]));
      },
      {random_tensor({2, 3}, rng), random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(div(in[0], in[1]));
      },
      {random_tensor({2, 3}, rng), random_tensor({2, 3}, rng, 1.0f, 2.0f)});
}

TEST(GradCheck, BroadcastBinary) {
  Rng rng(2);
  // (N,C,H,W) * (1,C,1,1): the BatchNorm/SE pattern.
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(mul(in[0], in[1]));
      },
      {random_tensor({2, 3, 2, 2}, rng), random_tensor({1, 3, 1, 1}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(add(in[0], in[1]));
      },
      {random_tensor({2, 3}, rng), random_tensor({3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(div(in[0], in[1]));
      },
      {random_tensor({2, 3, 2, 2}, rng),
       random_tensor({1, 3, 1, 1}, rng, 1.0f, 2.0f)});
}

TEST(GradCheck, UnaryOps) {
  Rng rng(3);
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(exp(in[0])); },
      {random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(log(in[0])); },
      {random_tensor({2, 3}, rng, 0.5f, 2.0f)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(sqrt(in[0])); },
      {random_tensor({2, 3}, rng, 0.5f, 2.0f)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(abs(in[0])); },
      {random_tensor({2, 3}, rng, 0.2f, 1.0f)});  // away from the kink
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(pow_scalar(in[0], 3.0f)); },
      {random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(neg(in[0])); },
      {random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(add_scalar(in[0], 2.5f)); },
      {random_tensor({2, 3}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) { return sum_all(mul_scalar(in[0], -1.5f)); },
      {random_tensor({2, 3}, rng)});
}

TEST(GradCheck, Activations) {
  Rng rng(4);
  // Sample away from activation kinks (|x| in [0.2, 1]).
  Tensor x({3, 3});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float mag = static_cast<float>(rng.uniform(0.2, 1.0));
    x[i] = (i % 2 == 0) ? mag : -mag;
  }
  for (auto op : {relu, sigmoid, tanh, hardsigmoid, hardswish}) {
    check_gradients(
        [op](const std::vector<Var>& in) { return sum_all(op(in[0])); }, {x});
  }
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(clamp(in[0], -0.5f, 0.5f));
      },
      {x});
}

TEST(GradCheck, ReductionsAndReshape) {
  Rng rng(5);
  check_gradients(
      [](const std::vector<Var>& in) { return mean_all(in[0]); },
      {random_tensor({2, 3, 2, 2}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(reduce_mean(in[0], {0, 2, 3}, true));
      },
      {random_tensor({2, 3, 2, 2}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(reduce_sum(in[0], {1}, false));
      },
      {random_tensor({2, 4}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(mul(reshape(in[0], {4, 3}), reshape(in[0], {4, 3})));
      },
      {random_tensor({2, 2, 3}, rng)});
}

TEST(GradCheck, Matmul) {
  Rng rng(6);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(matmul(in[0], in[1]));
      },
      {random_tensor({3, 4}, rng), random_tensor({4, 2}, rng)});
}

TEST(GradCheck, Conv2d) {
  Rng rng(7);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(conv2d(in[0], in[1], in[2], {1, 1}));
      },
      {random_tensor({2, 2, 4, 4}, rng), random_tensor({3, 2, 3, 3}, rng),
       random_tensor({3}, rng)});
}

TEST(GradCheck, Conv2dStrided) {
  Rng rng(8);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(conv2d(in[0], in[1], Var(), {2, 1}));
      },
      {random_tensor({1, 2, 5, 5}, rng), random_tensor({2, 2, 3, 3}, rng)});
}

TEST(GradCheck, DepthwiseConv2d) {
  Rng rng(9);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(depthwise_conv2d(in[0], in[1], in[2], {1, 1}));
      },
      {random_tensor({2, 3, 4, 4}, rng), random_tensor({3, 1, 3, 3}, rng),
       random_tensor({3}, rng)});
}

TEST(GradCheck, Pooling) {
  Rng rng(10);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(avgpool2d(in[0], {2, 2, 0}));
      },
      {random_tensor({2, 2, 4, 4}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(global_avgpool(in[0]));
      },
      {random_tensor({2, 3, 3, 3}, rng)});
  // Maxpool: use well-separated values so argmax is stable under epsilon.
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i * i);
  check_gradients(
      [](const std::vector<Var>& in) {
        return sum_all(maxpool2d(in[0], {2, 2, 0}));
      },
      {x});
}

TEST(GradCheck, LossFunctions) {
  Rng rng(11);
  const std::vector<std::int64_t> labels{1, 0, 2};
  check_gradients(
      [&labels](const std::vector<Var>& in) {
        return cross_entropy(in[0], labels);
      },
      {random_tensor({3, 4}, rng)});
  check_gradients(
      [&labels](const std::vector<Var>& in) {
        return nll_loss(log_softmax(in[0]), labels);
      },
      {random_tensor({3, 4}, rng)});
  check_gradients(
      [](const std::vector<Var>& in) { return mse_loss(in[0], in[1]); },
      {random_tensor({2, 3}, rng), random_tensor({2, 3}, rng)});
}

TEST(Loss, CrossEntropyKnownValue) {
  // Uniform logits over 4 classes -> CE = log(4).
  Var logits(Tensor::zeros({2, 4}));
  Var loss = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.value()[0], std::log(4.0), 1e-5);
}

TEST(Loss, NllRejectsBadLabels) {
  Var lp(Tensor::zeros({2, 3}));
  EXPECT_THROW(nll_loss(lp, {0, 5}), std::invalid_argument);
  EXPECT_THROW(nll_loss(lp, {0}), std::invalid_argument);
}

TEST(Composite, TwoLayerNetworkGradient) {
  // End-to-end check through matmul -> relu -> matmul -> CE.
  Rng rng(12);
  const std::vector<std::int64_t> labels{0, 1};
  check_gradients(
      [&labels](const std::vector<Var>& in) {
        Var h = relu(matmul(in[0], in[1]));
        return cross_entropy(matmul(h, in[2]), labels);
      },
      {random_tensor({2, 3}, rng), random_tensor({3, 4}, rng),
       random_tensor({4, 2}, rng)});
}

}  // namespace
}  // namespace bd::ag
