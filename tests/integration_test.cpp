// End-to-end integration tests across all modules: poison -> train ->
// verify the backdoor implants -> defend -> verify mitigation. Uses a
// deliberately small scale so the whole file stays in CI-friendly time.
#include <gtest/gtest.h>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "defense/finetune.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"

namespace bd {
namespace {

struct Pipeline {
  Rng rng{4242};
  data::TrainTest data;
  attack::BadNetsTrigger trigger;
  attack::PoisonConfig poison_cfg;
  models::ModelSpec spec;
  std::unique_ptr<models::Classifier> model;
  data::ImageDataset asr_set;
  data::ImageDataset ra_set;

  Pipeline()
      : data([this] {
          data::SynthConfig cfg;
          cfg.height = cfg.width = 10;
          cfg.train_per_class = 40;
          cfg.test_per_class = 10;
          return data::make_synth_cifar(cfg, rng);
        }()),
        spec{"vgg", 10, 3, 8},
        model(models::make_model(spec, rng)),
        asr_set(attack::make_asr_test_set(data.test, trigger, 0)),
        ra_set(attack::make_ra_test_set(data.test, trigger, 0)) {
    const auto poisoned =
        attack::poison_training_set(data.train, trigger, poison_cfg, rng);
    eval::TrainConfig train_cfg;
    train_cfg.epochs = 3;
    eval::train_classifier(*model, poisoned, train_cfg, rng);
  }
};

/// One shared pipeline: training it once keeps the suite fast.
Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(EndToEnd, BackdoorImplants) {
  auto& p = pipeline();
  const auto m =
      eval::evaluate_backdoor(*p.model, p.data.test, p.asr_set, p.ra_set);
  EXPECT_GT(m.acc, 70.0) << "main task should be learned";
  EXPECT_GT(m.asr, 80.0) << "backdoor should be implanted";
  EXPECT_LT(m.ra, 30.0);
  EXPECT_LE(m.asr + m.ra, 100.0 + 1e-9);
}

TEST(EndToEnd, GradPruneMitigatesBackdoor) {
  auto& p = pipeline();
  // Fresh copy of the backdoored model for this test.
  Rng rng(99);
  auto model = models::make_model(p.spec, rng);
  model->load_state_dict(p.model->state_dict());

  const auto spc_set = p.data.train.sample_per_class(10, rng);
  const auto ctx =
      defense::make_defense_context(spc_set, p.trigger, p.spec, rng);

  core::GradPruneConfig cfg;
  cfg.max_prune_rounds = 30;
  cfg.finetune_max_epochs = 10;
  core::GradPruneDefense defense(cfg);
  const auto info = defense.apply(*model, ctx);

  const auto before =
      eval::evaluate_backdoor(*p.model, p.data.test, p.asr_set, p.ra_set);
  const auto after =
      eval::evaluate_backdoor(*model, p.data.test, p.asr_set, p.ra_set);

  EXPECT_LT(after.asr, before.asr * 0.5) << "ASR should at least halve";
  EXPECT_GT(after.acc, before.acc - 15.0) << "ACC should survive";
  EXPECT_GT(after.ra, before.ra) << "RA should recover";
  EXPECT_GT(info.finetune_epochs, 0);
}

TEST(EndToEnd, FinetuneDefenseWithEnoughDataAlsoWorks) {
  auto& p = pipeline();
  Rng rng(77);
  auto model = models::make_model(p.spec, rng);
  model->load_state_dict(p.model->state_dict());

  const auto spc_set = p.data.train.sample_per_class(20, rng);
  const auto ctx =
      defense::make_defense_context(spc_set, p.trigger, p.spec, rng);
  defense::FinetuneConfig cfg;
  cfg.max_epochs = 10;
  defense::FinetuneDefense ft(cfg);
  ft.apply(*model, ctx);

  const auto after =
      eval::evaluate_backdoor(*model, p.data.test, p.asr_set, p.ra_set);
  EXPECT_GT(after.acc, 60.0);
}

TEST(EndToEnd, DefendedModelSurvivesSaveLoad) {
  auto& p = pipeline();
  Rng rng(55);
  auto model = models::make_model(p.spec, rng);
  model->load_state_dict(p.model->state_dict());
  auto reloaded = models::make_model(p.spec, rng);
  reloaded->load_state_dict(model->state_dict());
  const auto a =
      eval::evaluate_backdoor(*model, p.data.test, p.asr_set, p.ra_set);
  const auto b =
      eval::evaluate_backdoor(*reloaded, p.data.test, p.asr_set, p.ra_set);
  EXPECT_DOUBLE_EQ(a.acc, b.acc);
  EXPECT_DOUBLE_EQ(a.asr, b.asr);
}

}  // namespace
}  // namespace bd
