// Property-based and parameterized sweeps over the numeric kernels and
// system invariants:
//  * conv/pool/matmul gradient checks across a grid of shapes (TEST_P)
//  * algebraic identities (linearity of conv, im2col/matmul equivalence)
//  * metric invariants (ASR + RA <= 100) under random models
//  * prune-mask invariants under random prune/unprune sequences
//  * serialization round-trips over random shapes
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "autograd/ops.h"
#include "nn/layers.h"
#include "tensor/conv.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/serialize.h"
#include "util/rng.h"

namespace bd {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, float scale = 1.0f) {
  Tensor t(shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal()) * scale;
  }
  return t;
}

// ---------------------------------------------------------------------------
// Conv2d gradient sweep: (channels_in, channels_out, size, stride, padding)
// ---------------------------------------------------------------------------

using ConvCase = std::tuple<int, int, int, int, int>;

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, AnalyticMatchesNumeric) {
  const auto [cin, cout, hw, stride, padding] = GetParam();
  Rng rng(static_cast<std::uint64_t>(cin * 1000 + cout * 100 + hw * 10 +
                                     stride + padding));
  const Tensor x = random_tensor({1, cin, hw, hw}, rng, 0.5f);
  const Tensor w = random_tensor({cout, cin, 3, 3}, rng, 0.5f);
  const Conv2dSpec spec{stride, padding};

  ag::Var vx(x.clone(), true);
  ag::Var vw(w.clone(), true);
  ag::Var out = ag::sum_all(ag::conv2d(vx, vw, ag::Var(), spec));
  out.backward();

  // Spot-check a handful of coordinates against central differences.
  const float eps = 1e-2f;
  auto loss_at = [&](const Tensor& xt, const Tensor& wt) {
    return sum_all(conv2d_forward(xt, wt, Tensor(), spec));
  };
  for (const std::int64_t i :
       {std::int64_t{0}, x.numel() / 2, x.numel() - 1}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_at(xp, w) - loss_at(xm, w)) / (2.0 * eps);
    EXPECT_NEAR(vx.grad()[i], numeric, 2e-2) << "input grad at " << i;
  }
  for (const std::int64_t i :
       {std::int64_t{0}, w.numel() / 2, w.numel() - 1}) {
    Tensor wp = w.clone(), wm = w.clone();
    wp[i] += eps;
    wm[i] -= eps;
    const double numeric = (loss_at(x, wp) - loss_at(x, wm)) / (2.0 * eps);
    EXPECT_NEAR(vw.grad()[i], numeric, 2e-2) << "weight grad at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, ConvGradSweep,
    ::testing::Values(ConvCase{1, 1, 5, 1, 0}, ConvCase{2, 3, 5, 1, 1},
                      ConvCase{3, 2, 6, 2, 1}, ConvCase{4, 4, 7, 1, 1},
                      ConvCase{2, 5, 8, 2, 0}, ConvCase{1, 8, 6, 3, 1}));

// ---------------------------------------------------------------------------
// Conv identities
// ---------------------------------------------------------------------------

class ConvLinearity : public ::testing::TestWithParam<int> {};

TEST_P(ConvLinearity, ConvIsLinearInInput) {
  // conv(a*x1 + x2) == a*conv(x1) + conv(x2) (no bias).
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Tensor x1 = random_tensor({2, 3, 6, 6}, rng);
  const Tensor x2 = random_tensor({2, 3, 6, 6}, rng);
  const Tensor w = random_tensor({4, 3, 3, 3}, rng);
  const Conv2dSpec spec{1, 1};
  const float a = 2.5f;

  const Tensor lhs = conv2d_forward(
      add(mul_scalar(x1, a), x2), w, Tensor(), spec);
  const Tensor rhs = add(mul_scalar(conv2d_forward(x1, w, Tensor(), spec), a),
                         conv2d_forward(x2, w, Tensor(), spec));
  for (std::int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-3f);
  }
}

TEST_P(ConvLinearity, Conv1x1EqualsChannelMatmul) {
  // A 1x1 convolution is a per-pixel matmul over channels.
  Rng rng(static_cast<std::uint64_t>(GetParam() + 100));
  const Tensor x = random_tensor({1, 3, 4, 4}, rng);
  const Tensor w = random_tensor({5, 3, 1, 1}, rng);
  const Tensor y = conv2d_forward(x, w, Tensor(), {1, 0});

  const Tensor wmat = w.reshape({5, 3});
  for (std::int64_t p = 0; p < 16; ++p) {
    for (std::int64_t co = 0; co < 5; ++co) {
      float expected = 0.0f;
      for (std::int64_t ci = 0; ci < 3; ++ci) {
        expected += wmat.at2(co, ci) * x[ci * 16 + p];
      }
      EXPECT_NEAR(y[co * 16 + p], expected, 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvLinearity, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Depthwise conv equals grouped standard conv
// ---------------------------------------------------------------------------

TEST(DepthwiseProperty, MatchesPerChannelStandardConv) {
  Rng rng(77);
  const Tensor x = random_tensor({2, 3, 6, 6}, rng);
  const Tensor w = random_tensor({3, 1, 3, 3}, rng);
  const Conv2dSpec spec{1, 1};
  const Tensor y = depthwise_conv2d_forward(x, w, Tensor(), spec);

  // Each channel processed independently as a 1-channel standard conv.
  for (std::int64_t c = 0; c < 3; ++c) {
    Tensor xc({2, 1, 6, 6});
    for (std::int64_t n = 0; n < 2; ++n) {
      std::copy(x.data() + (n * 3 + c) * 36, x.data() + (n * 3 + c) * 36 + 36,
                xc.data() + n * 36);
    }
    Tensor wc({1, 1, 3, 3});
    std::copy(w.data() + c * 9, w.data() + (c + 1) * 9, wc.data());
    const Tensor yc = conv2d_forward(xc, wc, Tensor(), spec);
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t j = 0; j < 36; ++j) {
        EXPECT_NEAR(y[(n * 3 + c) * 36 + j], yc[n * 36 + j], 1e-4f);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pooling sweeps
// ---------------------------------------------------------------------------

class PoolSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(PoolSweep, MaxDominatesAvgAndShapesAgree) {
  const auto [hw, kernel, stride] = GetParam();
  Rng rng(static_cast<std::uint64_t>(hw * 100 + kernel * 10 + stride));
  const Tensor x = random_tensor({2, 3, hw, hw}, rng);
  const Pool2dSpec spec{kernel, stride, 0};

  const auto mx = maxpool2d_forward(x, spec);
  const Tensor av = avgpool2d_forward(x, spec);
  ASSERT_EQ(mx.output.shape(), av.shape());
  for (std::int64_t i = 0; i < av.numel(); ++i) {
    EXPECT_GE(mx.output[i], av[i] - 1e-5f);
  }

  // Avgpool backward conserves gradient mass when windows tile exactly.
  if ((hw - kernel) % stride == 0 && kernel == stride) {
    const Tensor go = random_tensor(av.shape(), rng);
    const Tensor gi = avgpool2d_backward(x.shape(), go, spec);
    EXPECT_NEAR(sum_all(gi), sum_all(go), 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolSweep,
                         ::testing::Values(std::tuple{4, 2, 2},
                                           std::tuple{6, 2, 2},
                                           std::tuple{6, 3, 3},
                                           std::tuple{8, 2, 2},
                                           std::tuple{5, 3, 2}));

// ---------------------------------------------------------------------------
// Reduction / broadcast properties
// ---------------------------------------------------------------------------

class ReduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReduceSweep, SumOverAxesEqualsSumAll) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Tensor x = random_tensor({3, 4, 2, 5}, rng);
  for (const auto& axes :
       std::vector<std::vector<std::int64_t>>{{0}, {1}, {3}, {0, 2}, {1, 3},
                                              {0, 1, 2, 3}}) {
    const Tensor r = reduce_sum(x, axes, /*keepdim=*/false);
    Tensor rest = r;
    // Summing the remaining axes must give the global sum.
    EXPECT_NEAR(sum_all(rest), sum_all(x), 1e-2f);
  }
}

TEST_P(ReduceSweep, ReduceToShapeIsAdjointOfBroadcast) {
  // <broadcast(a), g> == <a, reduce_to_shape(g)> - the adjoint identity the
  // autograd backward relies on.
  Rng rng(static_cast<std::uint64_t>(GetParam() + 31));
  const Tensor a = random_tensor({1, 4, 1, 1}, rng);
  const Tensor g = random_tensor({2, 4, 3, 3}, rng);
  const Tensor broadcast_a = add(a, Tensor::zeros({2, 4, 3, 3}));
  const Tensor reduced_g = reduce_to_shape(g, a.shape());

  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < g.numel(); ++i) lhs += broadcast_a[i] * g[i];
  for (std::int64_t i = 0; i < a.numel(); ++i) rhs += a[i] * reduced_g[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceSweep, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Matmul properties
// ---------------------------------------------------------------------------

class MatmulSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSweep, TransposeIdentity) {
  // (A B)^T == B^T A^T
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + k * 10 + n));
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor lhs = transpose2d(matmul(a, b));
  const Tensor rhs = matmul(transpose2d(b), transpose2d(a));
  ASSERT_EQ(lhs.shape(), rhs.shape());
  for (std::int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MatmulSweep,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{2, 3, 4},
                                           std::tuple{5, 1, 7},
                                           std::tuple{8, 8, 8},
                                           std::tuple{3, 16, 2}));

// ---------------------------------------------------------------------------
// Softmax / loss properties
// ---------------------------------------------------------------------------

class SoftmaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxSweep, ShiftInvariance) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 7));
  const Tensor x = random_tensor({3, 6}, rng, 3.0f);
  const Tensor shifted = add_scalar(x, 123.0f);
  const Tensor a = log_softmax_rows(x);
  const Tensor b = log_softmax_rows(shifted);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-3f);
  }
}

TEST_P(SoftmaxSweep, CrossEntropyNonNegativeAndCalibrated) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 13));
  const Tensor x = random_tensor({4, 5}, rng, 2.0f);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 4; ++i) {
    labels.push_back(static_cast<std::int64_t>(rng.uniform_index(5)));
  }
  const ag::Var loss = ag::cross_entropy(ag::Var(x), labels);
  EXPECT_GE(loss.value()[0], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxSweep, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Prune-mask invariants under random sequences
// ---------------------------------------------------------------------------

class PruneMaskProperty : public ::testing::TestWithParam<int> {};

TEST_P(PruneMaskProperty, RandomPruneSequencesKeepInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 997));
  nn::Conv2d conv(3, 8, 3, 1, 1, /*bias=*/true, rng);
  std::vector<bool> expected(8, false);
  for (int step = 0; step < 40; ++step) {
    const auto f = static_cast<std::int64_t>(rng.uniform_index(8));
    if (rng.bernoulli(0.7)) {
      conv.prune_filter(f);
      expected[static_cast<std::size_t>(f)] = true;
    } else {
      conv.unprune_filter(f);
      expected[static_cast<std::size_t>(f)] = false;
    }
    // Perturb weights like an optimizer would, then re-assert the mask.
    conv.weight().mutable_value()[0] += 0.1f;
    conv.enforce_filter_masks();

    std::int64_t count = 0;
    for (std::int64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(conv.is_filter_pruned(c), expected[static_cast<std::size_t>(c)]);
      if (expected[static_cast<std::size_t>(c)]) {
        ++count;
        const Tensor& w = conv.weight().value();
        const std::int64_t fsz = 3 * 9;
        for (std::int64_t j = 0; j < fsz; ++j) {
          ASSERT_EQ(w[c * fsz + j], 0.0f);
        }
        ASSERT_EQ(conv.bias().value()[c], 0.0f);
      }
    }
    EXPECT_EQ(conv.pruned_filter_count(), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneMaskProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Serialization round-trip over random shapes
// ---------------------------------------------------------------------------

class SerializeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSweep, RandomShapesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 31337));
  const auto rank = 1 + rng.uniform_index(4);
  Shape shape;
  for (std::uint64_t d = 0; d < rank; ++d) {
    shape.push_back(static_cast<std::int64_t>(1 + rng.uniform_index(6)));
  }
  const Tensor t = random_tensor(shape, rng);
  std::stringstream buffer;
  write_tensor(buffer, t);
  const Tensor back = read_tensor(buffer);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) ASSERT_EQ(back[i], t[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bd
