// Sharded-execution tests: lease ledger edge cases (torn final line,
// duplicate claims racing under the fcntl lock, expiry → steal), the
// multi-writer run journal, cross-process quarantine strikes, and the
// headline crash-resilience property — a worker SIGKILLed at every cell
// boundary of a mini-table never changes the merged output by a byte.
//
// Fork discipline: the test pins the thread pool to one thread before any
// fork so no pool threads (and no locks they might hold) exist in the
// children; children redirect stdout/stderr and _exit.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/table_bench.h"
#include "robust/fault_injector.h"
#include "robust/journal.h"
#include "runtime/thread_pool.h"
#include "shard/coordinator.h"
#include "shard/ledger.h"
#include "shard/lease.h"
#include "shard/worker.h"

namespace bd {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/bd_shard_test_" + name + "_" +
              std::to_string(::getpid())) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

shard::LedgerRecord make_record(shard::LedgerOp op, const std::string& key,
                                const std::string& worker) {
  shard::LedgerRecord r;
  r.op = op;
  r.key = key;
  r.worker = worker;
  r.ts_ms = shard::now_ms();
  return r;
}

// ---------------------------------------------------------------------------
// Lease state machine
// ---------------------------------------------------------------------------

TEST(LeaseTable, ClaimDoneLifecycle) {
  shard::LeaseTable table;
  EXPECT_TRUE(table.claimable("a", 1000, 100));  // never mentioned
  table.apply(make_record(shard::LedgerOp::kClaim, "a", "w1"));
  const shard::LeaseState* state = table.find("a");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->phase, shard::LeaseState::Phase::kLeased);
  EXPECT_EQ(state->holder, "w1");
  table.apply(make_record(shard::LedgerOp::kDone, "a", "w1"));
  EXPECT_TRUE(table.done("a"));
  EXPECT_FALSE(table.claimable("a", shard::now_ms() + 1000000, 1));
}

TEST(LeaseTable, ExpiredLeaseIsClaimableAndStrikes) {
  shard::LeaseTable table;
  shard::LedgerRecord claim =
      make_record(shard::LedgerOp::kClaim, "a", "w1");
  claim.ts_ms = 1000;
  table.apply(claim);
  EXPECT_FALSE(table.claimable("a", 1050, 100));  // lease fresh
  EXPECT_EQ(table.strikes("a", 1050, 100), 0);
  EXPECT_TRUE(table.claimable("a", 1200, 100));  // heartbeat stale
  EXPECT_EQ(table.strikes("a", 1200, 100), 1);   // expired holder counts

  // Heartbeats extend the lease; a stranger's heartbeat does not.
  shard::LedgerRecord beat =
      make_record(shard::LedgerOp::kHeartbeat, "a", "w1");
  beat.ts_ms = 1300;
  table.apply(beat);
  EXPECT_FALSE(table.claimable("a", 1350, 100));
  shard::LedgerRecord stranger =
      make_record(shard::LedgerOp::kHeartbeat, "a", "w9");
  stranger.ts_ms = 5000;
  table.apply(stranger);
  EXPECT_EQ(table.find("a")->last_beat_ms, 1300);
}

TEST(LeaseTable, AbandonReopensAndCountsStrikes) {
  shard::LeaseTable table;
  table.apply(make_record(shard::LedgerOp::kClaim, "a", "w1"));
  table.apply(make_record(shard::LedgerOp::kAbandon, "a", "w1"));
  EXPECT_EQ(table.find("a")->phase, shard::LeaseState::Phase::kOpen);
  EXPECT_TRUE(table.claimable("a", shard::now_ms(), 100000));
  EXPECT_EQ(table.strikes("a", shard::now_ms(), 100000), 1);

  shard::LedgerRecord steal = make_record(shard::LedgerOp::kClaim, "a", "w2");
  steal.steal = true;
  table.apply(steal);
  table.apply(make_record(shard::LedgerOp::kAbandon, "a", "w2"));
  EXPECT_EQ(table.strikes("a", shard::now_ms(), 100000), 3);  // steal + 2 abandons
}

TEST(LeaseTable, RecordsAgainstDoneCellIgnored) {
  shard::LeaseTable table;
  table.apply(make_record(shard::LedgerOp::kClaim, "a", "w1"));
  table.apply(make_record(shard::LedgerOp::kDone, "a", "w1"));
  // A raced-out holder's late records must not resurrect the cell.
  table.apply(make_record(shard::LedgerOp::kClaim, "a", "w2"));
  table.apply(make_record(shard::LedgerOp::kAbandon, "a", "w2"));
  EXPECT_TRUE(table.done("a"));
  EXPECT_EQ(table.find("a")->done_worker, "w1");
}

TEST(LeaseTable, RecordFieldsRoundTrip) {
  shard::LedgerRecord r = make_record(shard::LedgerOp::kClaim, "cell7", "w3");
  r.steal = true;
  r.note = "stolen from w1";
  shard::LedgerRecord back;
  ASSERT_TRUE(
      shard::record_from_fields("cell7", shard::record_to_fields(r), back));
  EXPECT_EQ(back.op, shard::LedgerOp::kClaim);
  EXPECT_EQ(back.worker, "w3");
  EXPECT_EQ(back.ts_ms, r.ts_ms);
  EXPECT_TRUE(back.steal);
  EXPECT_EQ(back.note, "stolen from w1");

  shard::LedgerRecord bad;
  EXPECT_FALSE(shard::record_from_fields(
      "k", {{"op", "launder"}, {"worker", "w1"}, {"ts", "0"}}, bad));
  EXPECT_FALSE(shard::record_from_fields("k", {{"worker", "w1"}}, bad));
}

// ---------------------------------------------------------------------------
// Lease ledger file behavior
// ---------------------------------------------------------------------------

TEST(LeaseLedger, PersistsAndReplays) {
  TempFile file("replay");
  {
    shard::LeaseLedger ledger(file.path());
    ledger.append(make_record(shard::LedgerOp::kClaim, "a", "w1"));
    ledger.append(make_record(shard::LedgerOp::kDone, "a", "w1"));
    ledger.append(make_record(shard::LedgerOp::kClaim, "b", "w1"));
  }
  shard::LeaseLedger reopened(file.path());
  EXPECT_TRUE(reopened.done("a"));
  EXPECT_FALSE(reopened.done("b"));
  const shard::LedgerSummary s = reopened.summarize(1000000);
  EXPECT_EQ(s.cells, 2u);
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.claims_by_worker.at("w1"), 2);
}

TEST(LeaseLedger, TornFinalLineStaysPendingUntilTerminated) {
  TempFile file("torn");
  {
    shard::LeaseLedger ledger(file.path());
    ledger.append(make_record(shard::LedgerOp::kClaim, "a", "w1"));
  }
  // Simulate a writer killed mid-append: half a record, no newline.
  std::string content = slurp(file.path());
  content += "{\"key\":\"b\",\"fields\":{\"op\":\"cl";
  spit(file.path(), content);

  shard::LeaseLedger ledger(file.path());
  EXPECT_EQ(ledger.summarize(1000000).cells, 1u);
  const shard::LedgerInspection inspection =
      shard::inspect_ledger(file.path());
  EXPECT_TRUE(inspection.torn_tail);
  EXPECT_EQ(inspection.records, 1u);

  // Another writer appends after the torn tail: the fused line is skipped
  // with a warning, the fresh record lands. Self-healing, not fatal.
  shard::LeaseLedger writer(file.path());
  writer.append(make_record(shard::LedgerOp::kClaim, "c", "w2"));
  const shard::LedgerInspection healed = shard::inspect_ledger(file.path());
  EXPECT_EQ(healed.malformed, 1u);
  EXPECT_FALSE(healed.table.claimable("c", shard::now_ms(), 1000000));
}

TEST(LeaseLedger, PollSeesOtherProcessAppends) {
  TempFile file("poll");
  shard::LeaseLedger reader(file.path());
  shard::LeaseLedger writer(file.path());  // stands in for another process
  writer.append(make_record(shard::LedgerOp::kClaim, "a", "w2"));
  writer.append(make_record(shard::LedgerOp::kDone, "a", "w2"));
  EXPECT_FALSE(reader.done("a"));  // not yet polled
  reader.poll();
  EXPECT_TRUE(reader.done("a"));
}

TEST(LeaseLedger, TryClaimRefusesHeldAndStealsExpired) {
  TempFile file("steal");
  shard::LeaseLedger w1(file.path());
  shard::LeaseLedger w2(file.path());

  bool stole = true;
  ASSERT_TRUE(w1.try_claim("a", "w1", /*ttl_ms=*/50, &stole));
  EXPECT_FALSE(stole);
  EXPECT_FALSE(w2.try_claim("a", "w2", 50, &stole));  // held, fresh

  // No heartbeats arrive (the holder is "dead"): after the TTL the lease
  // is stealable and the claim carries the steal flag.
  ::usleep(80 * 1000);
  ASSERT_TRUE(w2.try_claim("a", "w2", 50, &stole));
  EXPECT_TRUE(stole);
  EXPECT_EQ(w2.strikes("a", 50), 1);

  w2.append(make_record(shard::LedgerOp::kDone, "a", "w2"));
  w1.poll();
  EXPECT_TRUE(w1.done("a"));
  EXPECT_FALSE(w1.try_claim("a", "w1", 50, &stole));  // done is terminal
}

// Duplicate claims racing from separate processes: fcntl locks are
// per-process, so only a real fork exercises the claim serialization.
TEST(LeaseLedger, ForkedClaimRaceAdmitsExactlyOneWinner) {
  runtime::set_thread_count(1);
  TempFile file("race");
  {
    shard::LeaseLedger init(file.path());  // create the file
  }

  constexpr int kRacers = 4;
  std::vector<pid_t> children;
  for (int i = 0; i < kRacers; ++i) {
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: claim the same key as fast as possible, then exit with a
      // code encoding whether the claim was won.
      int won = 0;
      {
        shard::LeaseLedger ledger(file.path());
        bool stole = false;
        won = ledger.try_claim("contested", "w" + std::to_string(i + 1),
                               /*ttl_ms=*/60 * 1000, &stole)
                  ? 1
                  : 0;
      }
      ::_exit(won);
    }
    children.push_back(pid);
  }
  int winners = 0;
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    winners += WEXITSTATUS(status);
  }
  EXPECT_EQ(winners, 1);

  const shard::LedgerInspection inspection =
      shard::inspect_ledger(file.path());
  const shard::LeaseState* state = inspection.table.find("contested");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->claims, 1);
  EXPECT_EQ(state->steals, 0);
}

// ---------------------------------------------------------------------------
// Multi-writer run journal (satellite: O_APPEND + single write per entry)
// ---------------------------------------------------------------------------

TEST(JournalMultiWriter, ConcurrentAppendsFromForksAllSurvive) {
  runtime::set_thread_count(1);
  TempFile file("journal_mw");
  constexpr int kWriters = 4;
  constexpr int kEntries = 25;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      robust::RunJournal journal(file.path());
      for (int i = 0; i < kEntries; ++i) {
        journal.record(
            "w" + std::to_string(w) + "_" + std::to_string(i),
            {{"writer", std::to_string(w)}, {"seq", std::to_string(i)}});
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Every line parses (no interleaved partial lines) and every entry from
  // every writer is present.
  robust::RunJournal merged(file.path());
  EXPECT_EQ(merged.size(), static_cast<std::size_t>(kWriters * kEntries));
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kEntries; ++i) {
      const robust::JournalFields* fields =
          merged.find("w" + std::to_string(w) + "_" + std::to_string(i));
      ASSERT_NE(fields, nullptr);
      EXPECT_EQ(fields->at("seq"), std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded table execution
// ---------------------------------------------------------------------------

eval::ExperimentScale micro_scale() {
  eval::ExperimentScale s;
  s.data.height = s.data.width = 8;
  s.data.train_per_class = 8;
  s.data.test_per_class = 2;
  s.attack_train.epochs = 1;
  s.base_width = 8;
  s.spc_settings = {2, 5};
  s.trials = 1;
  s.defense_max_epochs = 2;
  s.prune_max_rounds = 3;
  s.anp_iterations = 2;
  s.nad_teacher_epochs = 1;
  s.nad_distill_epochs = 1;
  return s;
}

eval::TableSpec mini_spec(const std::string& journal) {
  eval::TableSpec spec;
  spec.title = "shard mini";
  spec.dataset = "cifar";
  spec.arch = "preactresnet";
  spec.attacks = {"badnet"};
  spec.defenses = {"ft", "clp", "gradprune"};
  spec.scale = micro_scale();  // 2 SPC x 3 defenses = 6 cells + baseline
  spec.journal_path = journal;
  spec.resume = false;
  return spec;
}

shard::ShardConfig worker_config(const std::string& ledger,
                                 const std::string& id, double ttl) {
  shard::ShardConfig config;
  config.ledger_path = ledger;
  config.worker_id = id;
  config.lease_ttl_seconds = ttl;
  config.poll_interval_seconds = 0.01;
  return config;
}

/// Forks a shard worker over `spec`; stdout/stderr go to /dev/null. The
/// optional fault spec arms the injector in the child only.
pid_t fork_worker(const eval::TableSpec& spec,
                  const shard::ShardConfig& config,
                  const std::string& fault_spec = "") {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int null_fd = ::open("/dev/null", O_WRONLY);
  if (null_fd >= 0) {
    ::dup2(null_fd, STDOUT_FILENO);
    ::dup2(null_fd, STDERR_FILENO);
    if (null_fd > STDERR_FILENO) ::close(null_fd);
  }
  if (!fault_spec.empty()) {
    robust::FaultInjector::instance().configure(fault_spec);
  }
  eval::TableSpec child_spec = spec;
  child_spec.shard = config;
  int rc = 0;
  try {
    eval::run_table(child_spec);
  } catch (...) {
    rc = 1;
  }
  ::_exit(rc);
}

/// Renders the merged table from the journal (resume run, sharding off)
/// and returns stdout with the timing footer stripped.
std::string merged_output(const eval::TableSpec& spec) {
  eval::TableSpec merge_spec = spec;
  merge_spec.resume = true;
  ::testing::internal::CaptureStdout();
  eval::run_table(merge_spec);
  const std::string out = ::testing::internal::GetCapturedStdout();
  std::string stripped;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t end = out.find('\n', pos);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(pos, end - pos);
    if (line.rfind("total:", 0) != 0) {
      stripped += line;
      stripped += '\n';
    }
    pos = end + 1;
  }
  return stripped;
}

class ShardTable : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::set_thread_count(1);
    robust::FaultInjector::instance().reset();
  }
  void TearDown() override { robust::FaultInjector::instance().reset(); }
};

TEST_F(ShardTable, SingleWorkerMatchesUnshardedRun) {
  TempFile ref_journal("ref_journal");
  const std::string reference = merged_output(mini_spec(ref_journal.path()));
  ASSERT_NE(reference.find("Baseline"), std::string::npos);

  TempFile journal("single_journal");
  TempFile ledger("single_ledger");
  const eval::TableSpec spec = mini_spec(journal.path());
  eval::TableSpec worker_spec = spec;
  worker_spec.shard = worker_config(ledger.path(), "w1", 5.0);
  ::testing::internal::CaptureStdout();
  const eval::TableRun run = eval::run_table(worker_spec);
  const std::string worker_out = ::testing::internal::GetCapturedStdout();
  ASSERT_TRUE(run.worker_stats.has_value());
  EXPECT_EQ(run.worker_stats->claimed, 7);  // baseline + 6 cells
  EXPECT_EQ(run.worker_stats->stolen, 0);
  EXPECT_NE(worker_out.find("shard worker w1:"), std::string::npos);
  EXPECT_EQ(run.settings.size(), 0u);  // worker mode prints no table

  EXPECT_EQ(merged_output(spec), reference);
}

TEST_F(ShardTable, WorkerKilledAtEveryCellBoundaryNeverChangesOutput) {
  TempFile ref_journal("chaos_ref_journal");
  const std::string reference =
      merged_output(mini_spec(ref_journal.path()));

  // 7 work items (baseline + 6 cells): kill the first worker on its n-th
  // claim for every n, let a second worker steal and finish, and demand a
  // byte-identical merged table every time.
  for (int n = 1; n <= 7; ++n) {
    TempFile journal("chaos_journal_" + std::to_string(n));
    TempFile ledger("chaos_ledger_" + std::to_string(n));
    const eval::TableSpec spec = mini_spec(journal.path());
    const double ttl = 0.3;

    const pid_t victim =
        fork_worker(spec, worker_config(ledger.path(), "w1", ttl),
                    "crash_worker@" + std::to_string(n));
    ASSERT_GE(victim, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status)) << "kill point " << n;
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // Survivor: steals the orphaned lease after the TTL and finishes.
    eval::TableSpec survivor_spec = spec;
    survivor_spec.shard = worker_config(ledger.path(), "w2", ttl);
    ::testing::internal::CaptureStdout();
    const eval::TableRun survivor = eval::run_table(survivor_spec);
    ::testing::internal::GetCapturedStdout();
    ASSERT_TRUE(survivor.worker_stats.has_value());
    EXPECT_EQ(survivor.worker_stats->stolen, 1) << "kill point " << n;

    const shard::LedgerInspection inspection =
        shard::inspect_ledger(ledger.path());
    const shard::LedgerSummary summary =
        inspection.table.summarize(shard::now_ms(),
                                   static_cast<std::int64_t>(ttl * 1000));
    EXPECT_EQ(summary.steals, 1u) << "kill point " << n;
    EXPECT_EQ(summary.done, 7u) << "kill point " << n;
    EXPECT_EQ(summary.leased, 0u) << "kill point " << n;

    EXPECT_EQ(merged_output(spec), reference) << "kill point " << n;
  }
}

TEST_F(ShardTable, QuarantineAfterRepeatedLostLeases) {
  TempFile journal("quarantine_journal");
  TempFile ledger("quarantine_ledger");
  const eval::TableSpec spec = mini_spec(journal.path());

  // Kill a fresh worker on its first claim three times: the first victim
  // claims the cell, the next two steal it and die too. Three strikes.
  const double ttl = 0.2;
  for (int round = 0; round < 3; ++round) {
    const pid_t victim = fork_worker(
        spec, worker_config(ledger.path(), "v" + std::to_string(round), ttl),
        "crash_worker@1");
    ASSERT_GE(victim, 0);
    int status = 0;
    ASSERT_EQ(::waitpid(victim, &status, 0), victim);
    ASSERT_TRUE(WIFSIGNALED(status));
    ::usleep(250 * 1000);  // let the lease expire before the next victim
  }

  eval::TableSpec survivor_spec = spec;
  survivor_spec.shard = worker_config(ledger.path(), "surv", ttl);
  survivor_spec.shard->quarantine_strikes = 3;
  ::testing::internal::CaptureStdout();
  const eval::TableRun survivor = eval::run_table(survivor_spec);
  ::testing::internal::GetCapturedStdout();
  ASSERT_TRUE(survivor.worker_stats.has_value());
  EXPECT_EQ(survivor.worker_stats->quarantined, 1);
  EXPECT_EQ(survivor.worker_stats->stolen, 1);  // took over the 3rd victim's lease

  // The merged table renders the quarantined cell as degraded.
  const std::string merged = merged_output(spec);
  EXPECT_NE(merged.find("degraded"), std::string::npos);
  EXPECT_NE(merged.find("quarantined after 3 lost leases"),
            std::string::npos);
}

}  // namespace
}  // namespace bd
