// Fixture: catch (...) that neither rethrows, captures, nor logs.
int risky();

int swallow() {
  try {
    return risky();
  } catch (...) {
  }
  return -1;
}
