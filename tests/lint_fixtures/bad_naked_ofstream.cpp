// Fixture: raw output file outside the atomic-write helpers — a crash
// mid-write leaves a torn file.
#include <cstdio>
#include <fstream>
#include <string>

bool dump(const std::string& path) {
  std::ofstream os(path);
  os << "{}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::fclose(f);
  return static_cast<bool>(os);
}
