// Fixture: every banned entropy/wall-clock source in code claiming to be
// part of the deterministic engine (path does not hit a whitelist).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int hidden_entropy() {
  std::srand(42);
  int x = std::rand();
  std::random_device rd;
  x += static_cast<int>(rd());
  x += static_cast<int>(std::time(nullptr));
  auto now = std::chrono::system_clock::now();
  (void)now;
  return x;
}
