// Fixture: idiomatic code that every rule must stay silent on — RAII
// guards, seeded engines, steady_clock, ordered emission, logged catch.
#include <chrono>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <unordered_map>

std::mutex g_mutex;
int g_counter = 0;

void bump() {
  std::lock_guard lk(g_mutex);
  ++g_counter;
}

int seeded_draw(std::uint64_t seed) {
  std::mt19937_64 engine(seed);
  return static_cast<int>(engine() & 0xff);
}

long long elapsed_ns(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void emit_sorted(const std::unordered_map<std::string, int>& counts) {
  std::map<std::string, int> ordered(counts.begin(), counts.end());
  for (const auto& [name, value] : ordered) {
    std::cout << name << "=" << value << "\n";
  }
}

int risky();

int logged() {
  try {
    return risky();
  } catch (...) {
    std::cerr << "risky() threw; rethrowing\n";
    throw;
  }
}
