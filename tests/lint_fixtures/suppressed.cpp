// Fixture: findings silenced through every suppression spelling bdlint
// supports — same line, line above, a multi-line comment block above a
// statement, and a whole-file allow.
//
// bdlint:allow-file(no-unordered-iteration-to-output): this fixture
// verifies whole-file suppression.
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <unordered_map>

std::mutex g_mutex;
std::atomic<int> g_flag{0};

void same_line() {
  g_mutex.lock();  // bdlint:allow(no-naked-lock)
  g_mutex.unlock();  // bdlint:allow(no-naked-lock)
}

void line_above() {
  // bdlint:allow(no-nondeterminism)
  int x = std::rand();
  (void)x;
}

void comment_block() {
  // bdlint:allow(no-relaxed-atomics): a justification that spans more
  // than one comment line still reaches the statement below, including
  // its continuation lines.
  g_flag.store(1,
               std::memory_order_relaxed);
}

void whole_file(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, value] : counts) {
    std::cout << name << "=" << value << "\n";
  }
}
