// Fixture: memory_order_relaxed outside the sanctioned src/obs/ hot path.
#include <atomic>

std::atomic<int> g_flag{0};

void publish() { g_flag.store(1, std::memory_order_relaxed); }
int observe() { return g_flag.load(std::memory_order_relaxed); }
