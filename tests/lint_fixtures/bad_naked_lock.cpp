// Fixture: manual lock()/unlock() member calls instead of a RAII guard.
#include <mutex>

std::mutex g_mutex;
int g_counter = 0;

void bump() {
  g_mutex.lock();
  ++g_counter;
  g_mutex.unlock();
}
