// Fixture: hash-order iteration feeding an output sink — the emitted
// report differs run to run.
#include <iostream>
#include <string>
#include <unordered_map>

void emit(const std::unordered_map<std::string, int>& counts) {
  for (const auto& [name, value] : counts) {
    std::cout << name << "=" << value << "\n";
  }
}
