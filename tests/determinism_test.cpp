// Reproducibility guarantees: the whole pipeline is a deterministic
// function of the seed. These tests pin that property at every stage -
// data synthesis, poisoning, training, and defenses - because the
// experiment harness depends on it (same seed => same table row).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/table_bench.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "shard/worker.h"
#include "tensor/ops.h"

namespace bd {
namespace {

void expect_identical(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverged at " << i;
  }
}

data::TrainTest make_data(std::uint64_t seed) {
  Rng rng(seed);
  data::SynthConfig cfg;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 6;
  cfg.test_per_class = 2;
  return data::make_synth_cifar(cfg, rng);
}

TEST(Determinism, DataSynthesis) {
  const auto a = make_data(5);
  const auto b = make_data(5);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(a.train.label(i), b.train.label(i));
    expect_identical(a.train.image(i), b.train.image(i), "train image");
  }
  // Different seed -> different images.
  const auto c = make_data(6);
  EXPECT_GT(l1_norm(sub(a.train.image(0), c.train.image(0))), 0.0f);
}

TEST(Determinism, PoisoningSelection) {
  const auto data = make_data(7);
  attack::BadNetsTrigger trigger;
  attack::PoisonConfig cfg;
  Rng r1(11), r2(11);
  const auto p1 = attack::poison_training_set(data.train, trigger, cfg, r1);
  const auto p2 = attack::poison_training_set(data.train, trigger, cfg, r2);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1.label(i), p2.label(i));
    expect_identical(p1.image(i), p2.image(i), "poisoned image");
  }
}

TEST(Determinism, TrainingRun) {
  const auto data = make_data(9);
  models::ModelSpec spec{"vgg", 10, 3, 8};

  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = models::make_model(spec, rng);
    eval::TrainConfig cfg;
    cfg.epochs = 2;
    eval::train_classifier(*model, data.train, cfg, rng);
    return model->state_dict();
  };
  const auto s1 = run(13);
  const auto s2 = run(13);
  for (const auto& [name, tensor] : s1) {
    expect_identical(tensor, s2.at(name), name.c_str());
  }
}

TEST(Determinism, GradPruneDefense) {
  const auto data = make_data(15);
  models::ModelSpec spec{"vgg", 10, 3, 8};
  attack::BadNetsTrigger trigger;

  // One shared backdoored model.
  Rng train_rng(17);
  auto base = models::make_model(spec, train_rng);
  attack::PoisonConfig pcfg;
  const auto poisoned =
      attack::poison_training_set(data.train, trigger, pcfg, train_rng);
  eval::TrainConfig tc;
  tc.epochs = 2;
  eval::train_classifier(*base, poisoned, tc, train_rng);
  const auto base_state = base->state_dict();

  auto defend = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto model = models::make_model(spec, rng);
    model->load_state_dict(base_state);
    const auto spc = data.train.sample_per_class(3, rng);
    const auto ctx = defense::make_defense_context(spc, trigger, spec, rng);
    core::GradPruneConfig cfg;
    cfg.max_prune_rounds = 4;
    cfg.finetune_max_epochs = 2;
    core::GradPruneDefense defense(cfg);
    defense.apply(*model, ctx);
    return model->state_dict();
  };
  const auto s1 = defend(23);
  const auto s2 = defend(23);
  for (const auto& [name, tensor] : s1) {
    expect_identical(tensor, s2.at(name), name.c_str());
  }
}

// The parallel runtime must not change a single bit of any result: a small
// train-and-eval run on 1 thread and on 4 threads produces identical
// weights and metrics. Uses the set_thread_count() hook (not env mutation)
// so the test is hermetic.
TEST(Determinism, ThreadCountInvariance) {
  const auto data = make_data(21);
  models::ModelSpec spec{"vgg", 10, 3, 8};

  auto run = [&] {
    Rng rng(31);
    auto model = models::make_model(spec, rng);
    eval::TrainConfig cfg;
    cfg.epochs = 2;
    eval::train_classifier(*model, data.train, cfg, rng);
    const double acc = eval::accuracy(*model, data.test);
    return std::make_pair(model->state_dict(), acc);
  };

  runtime::set_thread_count(1);
  const auto [serial_state, serial_acc] = run();
  runtime::set_thread_count(4);
  const auto [parallel_state, parallel_acc] = run();
  runtime::set_thread_count(0);

  EXPECT_DOUBLE_EQ(serial_acc, parallel_acc);
  for (const auto& [name, tensor] : serial_state) {
    expect_identical(tensor, parallel_state.at(name), name.c_str());
  }
}

// Observability must be a pure observer: with both pillars forced on, the
// instrumented pipeline (training AND the full Grad-Prune defense) produces
// bitwise-identical weights to an uninstrumented run. Instruments never
// read or advance any RNG and never feed back into computation, so this
// holds exactly - not approximately. Uses the set_*_enabled() hooks (not
// env mutation) so the test is hermetic.
TEST(Determinism, ObservabilityInvariance) {
  const auto data = make_data(25);
  models::ModelSpec spec{"vgg", 10, 3, 8};
  attack::BadNetsTrigger trigger;

  auto run = [&] {
    Rng train_rng(37);
    auto model = models::make_model(spec, train_rng);
    attack::PoisonConfig pcfg;
    const auto poisoned =
        attack::poison_training_set(data.train, trigger, pcfg, train_rng);
    eval::TrainConfig tc;
    tc.epochs = 2;
    eval::train_classifier(*model, poisoned, tc, train_rng);

    Rng defend_rng(41);
    const auto spc = data.train.sample_per_class(3, defend_rng);
    const auto ctx =
        defense::make_defense_context(spc, trigger, spec, defend_rng);
    core::GradPruneConfig cfg;
    cfg.max_prune_rounds = 3;
    cfg.finetune_max_epochs = 1;
    core::GradPruneDefense defense(cfg);
    defense.apply(*model, ctx);
    return model->state_dict();
  };

  const auto plain = run();

  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  const auto observed = run();
  obs::set_metrics_enabled(false);
  obs::set_trace_enabled(false);

  // The instrumented run really recorded something...
  EXPECT_GT(obs::snapshot_trace().size(), 0u);
  obs::clear_trace();
  obs::registry().reset_values();

  // ...and changed nothing.
  ASSERT_EQ(plain.size(), observed.size());
  for (const auto& [name, tensor] : plain) {
    expect_identical(tensor, observed.at(name), name.c_str());
  }
}

// The graph-IR rewrite of src/autograd (lazy building, topological
// scheduling, arena-backed backward buffers) is pinned to the eager tape it
// replaced: this golden FNV-1a hash of a full poison -> train -> Grad-Prune
// -> evaluate pipeline was captured from the pre-refactor engine and must
// keep reproducing bit for bit, at every thread count. If any scheduling,
// recycling or arena change perturbs a single bit of any weight, the
// accuracy, or the pruned-unit count, this fails.
TEST(Determinism, GraphIRInvariance) {
  constexpr std::uint64_t kGoldenHash = 0xe9a3c98b7dbcddf3ull;

  const auto fnv1a_mix = [](std::uint64_t h, const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
    return h;
  };

  const auto pipeline_hash = [&fnv1a_mix] {
    Rng rng(55);
    data::SynthConfig dcfg;
    dcfg.height = dcfg.width = 8;
    dcfg.train_per_class = 6;
    dcfg.test_per_class = 2;
    const auto data = data::make_synth_cifar(dcfg, rng);

    models::ModelSpec spec{"vgg", 10, 3, 8};
    attack::BadNetsTrigger trigger;

    Rng train_rng(59);
    auto model = models::make_model(spec, train_rng);
    attack::PoisonConfig pcfg;
    const auto poisoned =
        attack::poison_training_set(data.train, trigger, pcfg, train_rng);
    eval::TrainConfig tc;
    tc.epochs = 2;
    eval::train_classifier(*model, poisoned, tc, train_rng);

    Rng defend_rng(61);
    const auto spc = data.train.sample_per_class(3, defend_rng);
    const auto ctx =
        defense::make_defense_context(spc, trigger, spec, defend_rng);
    core::GradPruneConfig cfg;
    cfg.max_prune_rounds = 3;
    cfg.finetune_max_epochs = 1;
    core::GradPruneDefense defense(cfg);
    const auto result = defense.apply(*model, ctx);

    const double acc = eval::accuracy(*model, data.test);

    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [name, tensor] : model->state_dict()) {
      h = fnv1a_mix(h, name.data(), name.size());
      for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        const float v = tensor[i];
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        h = fnv1a_mix(h, &bits, sizeof(bits));
      }
    }
    std::uint64_t acc_bits;
    std::memcpy(&acc_bits, &acc, sizeof(acc_bits));
    h = fnv1a_mix(h, &acc_bits, sizeof(acc_bits));
    h = fnv1a_mix(h, &result.pruned_units, sizeof(result.pruned_units));
    return h;
  };

  for (const int threads : {1, 2, 4, 8}) {
    runtime::set_thread_count(threads);
    EXPECT_EQ(pipeline_hash(), kGoldenHash) << threads << " threads";
  }
  runtime::set_thread_count(0);
}

TEST(Determinism, EvaluationIsPure) {
  const auto data = make_data(19);
  models::ModelSpec spec{"vgg", 10, 3, 8};
  Rng rng(29);
  auto model = models::make_model(spec, rng);
  const double a1 = eval::accuracy(*model, data.test);
  const double a2 = eval::accuracy(*model, data.test);
  EXPECT_DOUBLE_EQ(a1, a2);
}

// The sharded-execution contract: the merged table is a pure function of
// the spec and seed, invariant to how many worker processes split the
// cells (and to which worker ran which cell).
TEST(Determinism, ProcessCountInvariance) {
  runtime::set_thread_count(1);

  eval::ExperimentScale scale;
  scale.data.height = scale.data.width = 8;
  scale.data.train_per_class = 8;
  scale.data.test_per_class = 2;
  scale.attack_train.epochs = 1;
  scale.base_width = 8;
  scale.spc_settings = {2, 5};
  scale.trials = 1;
  scale.defense_max_epochs = 2;
  scale.prune_max_rounds = 3;
  scale.anp_iterations = 2;
  scale.nad_teacher_epochs = 1;
  scale.nad_distill_epochs = 1;

  const auto make_spec = [&scale](const std::string& journal) {
    eval::TableSpec spec;
    spec.title = "process invariance";
    spec.dataset = "cifar";
    spec.arch = "preactresnet";
    spec.attacks = {"badnet"};
    spec.defenses = {"ft", "clp", "gradprune"};
    spec.scale = scale;
    spec.journal_path = journal;
    spec.resume = false;
    return spec;
  };
  const auto merged_output = [](eval::TableSpec spec) {
    spec.resume = true;
    ::testing::internal::CaptureStdout();
    eval::run_table(spec);
    const std::string out = ::testing::internal::GetCapturedStdout();
    std::string stripped;
    std::size_t pos = 0;
    while (pos < out.size()) {
      std::size_t end = out.find('\n', pos);
      if (end == std::string::npos) end = out.size();
      const std::string line = out.substr(pos, end - pos);
      if (line.rfind("total:", 0) != 0) {
        stripped += line;
        stripped += '\n';
      }
      pos = end + 1;
    }
    return stripped;
  };

  const std::string dir = "/tmp/bd_determinism_shard_" +
                          std::to_string(::getpid());
  const auto cleanup = [&dir](int workers) {
    std::remove((dir + "_j" + std::to_string(workers)).c_str());
    std::remove((dir + "_l" + std::to_string(workers)).c_str());
  };

  std::string reference;
  for (const int workers : {1, 2, 4}) {
    cleanup(workers);
    const std::string journal = dir + "_j" + std::to_string(workers);
    const std::string ledger = dir + "_l" + std::to_string(workers);
    const eval::TableSpec spec = make_spec(journal);

    std::vector<pid_t> fleet;
    for (int w = 1; w <= workers; ++w) {
      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        const int null_fd = ::open("/dev/null", O_WRONLY);
        if (null_fd >= 0) {
          ::dup2(null_fd, STDOUT_FILENO);
          ::dup2(null_fd, STDERR_FILENO);
          if (null_fd > STDERR_FILENO) ::close(null_fd);
        }
        eval::TableSpec worker_spec = spec;
        shard::ShardConfig config;
        config.ledger_path = ledger;
        config.worker_id = "w" + std::to_string(w);
        config.lease_ttl_seconds = 5.0;
        config.poll_interval_seconds = 0.01;
        worker_spec.shard = config;
        int rc = 0;
        try {
          eval::run_table(worker_spec);
        } catch (...) {
          rc = 1;
        }
        ::_exit(rc);
      }
      fleet.push_back(pid);
    }
    for (const pid_t pid : fleet) {
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFEXITED(status)) << workers << " workers";
      ASSERT_EQ(WEXITSTATUS(status), 0) << workers << " workers";
    }

    const std::string merged = merged_output(spec);
    ASSERT_NE(merged.find("Baseline"), std::string::npos);
    if (reference.empty()) {
      reference = merged;
    } else {
      EXPECT_EQ(merged, reference) << workers << " workers";
    }
    cleanup(workers);
  }
}

}  // namespace
}  // namespace bd
