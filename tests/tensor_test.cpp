// Unit tests for the tensor substrate: shapes, broadcasting, reductions,
// matmul, convolution and pooling kernels, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "tensor/conv.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace bd {
namespace {

TEST(TensorBasics, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorBasics, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorBasics, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorBasics, FullAndScalar) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  Tensor s = Tensor::scalar(7.0f);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s[0], 7.0f);
}

TEST(TensorBasics, ReshapeSharesStorage) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v = t.reshape({3, 2});
  EXPECT_TRUE(t.shares_storage_with(v));
  v[0] = 42.0f;
  EXPECT_EQ(t[0], 42.0f);
}

TEST(TensorBasics, ReshapeRejectsBadNumel) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(TensorBasics, CloneIsDeep) {
  Tensor t({2}, {1, 2});
  Tensor c = t.clone();
  c[0] = 9.0f;
  EXPECT_EQ(t[0], 1.0f);
  EXPECT_FALSE(t.shares_storage_with(c));
}

TEST(TensorBasics, SizeNegativeIndexing) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::out_of_range);
}

TEST(TensorBasics, At4Accessor) {
  Tensor t({1, 2, 2, 2});
  t.at4(0, 1, 1, 0) = 5.0f;
  EXPECT_EQ(t[(0 * 2 + 1) * 4 + 2], 5.0f);
}

// ---------------------------------------------------------------------------
// Broadcasting
// ---------------------------------------------------------------------------

TEST(Broadcast, ShapeRules) {
  EXPECT_EQ(broadcast_shape({2, 3}, {2, 3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_THROW(broadcast_shape({2, 3}, {4}), std::invalid_argument);
}

TEST(Broadcast, AddPerChannel) {
  Tensor x({2, 3, 1, 1}, {1, 2, 3, 4, 5, 6});
  Tensor b({1, 3, 1, 1}, {10, 20, 30});
  Tensor y = add(x, b);
  EXPECT_EQ(y[0], 11.0f);
  EXPECT_EQ(y[4], 25.0f);
}

TEST(Broadcast, ReduceToShapeInvertsBroadcast) {
  Tensor g({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = reduce_to_shape(g, {3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_EQ(r[0], 5.0f);   // 1+4
  EXPECT_EQ(r[2], 9.0f);   // 3+6
}

TEST(Broadcast, ReduceToShapeIdentity) {
  Tensor g({2, 2}, {1, 2, 3, 4});
  Tensor r = reduce_to_shape(g, {2, 2});
  EXPECT_EQ(r[3], 4.0f);
}

TEST(Broadcast, ScalarFastPath) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::scalar(2.0f);
  Tensor y = mul(a, s);
  EXPECT_EQ(y[3], 8.0f);
  Tensor z = sub(s, a);
  EXPECT_EQ(z[0], 1.0f);
}

// ---------------------------------------------------------------------------
// Elementwise / reductions
// ---------------------------------------------------------------------------

TEST(Elementwise, UnaryOps) {
  Tensor a({3}, {-1.0f, 0.0f, 4.0f});
  EXPECT_EQ(abs(a)[0], 1.0f);
  EXPECT_EQ(sign(a)[0], -1.0f);
  EXPECT_EQ(sign(a)[1], 0.0f);
  EXPECT_EQ(relu(a)[0], 0.0f);
  EXPECT_EQ(relu(a)[2], 4.0f);
  EXPECT_FLOAT_EQ(sqrt(a)[2], 2.0f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 2.0f)[0], -0.5f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 2.0f)[2], 2.0f);
}

TEST(Elementwise, DivByTensor) {
  Tensor a({2}, {6, 9});
  Tensor b({2}, {2, 3});
  Tensor y = div(a, b);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
}

TEST(Reductions, SumMeanNorms) {
  Tensor a({2, 2}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum_all(a), -2.0f);
  EXPECT_FLOAT_EQ(mean_all(a), -0.5f);
  EXPECT_FLOAT_EQ(l1_norm(a), 10.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), std::sqrt(30.0f));
  EXPECT_FLOAT_EQ(max_all(a), 3.0f);
}

TEST(Reductions, ReduceSumAxes) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rows = reduce_sum(a, {1}, /*keepdim=*/false);
  EXPECT_EQ(rows.shape(), (Shape{2}));
  EXPECT_EQ(rows[0], 6.0f);
  EXPECT_EQ(rows[1], 15.0f);

  Tensor cols = reduce_sum(a, {0}, /*keepdim=*/true);
  EXPECT_EQ(cols.shape(), (Shape{1, 3}));
  EXPECT_EQ(cols[2], 9.0f);
}

TEST(Reductions, ReduceMeanChannels) {
  // (N=1, C=2, H=2, W=1): per-channel mean over N,H,W.
  Tensor a({1, 2, 2, 1}, {1, 3, 10, 30});
  Tensor m = reduce_mean(a, {0, 2, 3}, /*keepdim=*/true);
  EXPECT_EQ(m.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(m[0], 2.0f);
  EXPECT_FLOAT_EQ(m[1], 20.0f);
}

// ---------------------------------------------------------------------------
// Matmul / classification helpers
// ---------------------------------------------------------------------------

TEST(Matmul, Basic) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, RejectsMismatch) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
}

TEST(Matmul, Transpose) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at2(2, 1), 6.0f);
}

TEST(Classify, ArgmaxRows) {
  Tensor a({2, 3}, {0.1f, 0.9f, 0.3f, 2.0f, -1.0f, 0.0f});
  const auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Classify, LogSoftmaxRowsSumsToOne) {
  Tensor a({2, 4}, {1, 2, 3, 4, -1, 0, 1, 100});
  Tensor lp = log_softmax_rows(a);
  for (std::int64_t r = 0; r < 2; ++r) {
    double total = 0.0;
    for (std::int64_t c = 0; c < 4; ++c) total += std::exp(lp.at2(r, c));
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  // Numerical stability with a huge logit.
  EXPECT_NEAR(lp.at2(1, 3), 0.0, 1e-5);
}

// ---------------------------------------------------------------------------
// Convolution kernels
// ---------------------------------------------------------------------------

TEST(Conv, OutSize) {
  EXPECT_EQ(conv_out_size(8, 3, 1, 1), 8);
  EXPECT_EQ(conv_out_size(8, 3, 2, 1), 4);
  EXPECT_THROW(conv_out_size(2, 5, 1, 0), std::invalid_argument);
}

TEST(Conv, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::ones({1, 1, 1, 1});
  Tensor y = conv2d_forward(x, w, Tensor(), {1, 0});
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv, KnownAnswer3x3) {
  // All-ones 3x3 kernel, padding 1: each output = sum of 3x3 neighbourhood.
  Tensor x({1, 1, 3, 3}, {1, 1, 1, 1, 1, 1, 1, 1, 1});
  Tensor w = Tensor::ones({1, 1, 3, 3});
  Tensor y = conv2d_forward(x, w, Tensor(), {1, 1});
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 9.0f);  // centre sees all 9
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0f);  // corner sees 4
}

TEST(Conv, BiasAdded) {
  Tensor x = Tensor::zeros({1, 1, 2, 2});
  Tensor w = Tensor::ones({2, 1, 1, 1});
  Tensor b({2}, {1.0f, -2.0f});
  Tensor y = conv2d_forward(x, w, b, {1, 0});
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -2.0f);
}

TEST(Conv, StrideTwoShape) {
  Tensor x = Tensor::zeros({2, 3, 8, 8});
  Tensor w = Tensor::zeros({4, 3, 3, 3});
  Tensor y = conv2d_forward(x, w, Tensor(), {2, 1});
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 4}));
}

TEST(Conv, RejectsChannelMismatch) {
  Tensor x = Tensor::zeros({1, 2, 4, 4});
  Tensor w = Tensor::zeros({1, 3, 3, 3});
  EXPECT_THROW(conv2d_forward(x, w, Tensor(), {1, 1}), std::invalid_argument);
}

TEST(Conv, DepthwiseKnownAnswer) {
  // Each channel convolved with its own 1x1 kernel.
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w({2, 1, 1, 1}, {2.0f, 3.0f});
  Tensor y = depthwise_conv2d_forward(x, w, Tensor(), {1, 0});
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), 24.0f);
}

TEST(Conv, Im2ColRoundTripGradient) {
  // col2im(im2col(x)) with an all-ones cols gradient accumulates the patch
  // multiplicity at each pixel.
  Tensor x = Tensor::ones({1, 1, 3, 3});
  Conv2dSpec spec{1, 0};
  Tensor cols = im2col(x, 0, 2, 2, spec);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
  Tensor grad = Tensor::zeros({1, 1, 3, 3});
  col2im_accumulate(Tensor::ones({4, 4}), grad, 0, 2, 2, spec);
  EXPECT_FLOAT_EQ(grad.at4(0, 0, 1, 1), 4.0f);  // centre in 4 patches
  EXPECT_FLOAT_EQ(grad.at4(0, 0, 0, 0), 1.0f);  // corner in 1 patch
}

// ---------------------------------------------------------------------------
// Pooling kernels
// ---------------------------------------------------------------------------

TEST(Pool, MaxPoolForwardAndIndices) {
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const auto res = maxpool2d_forward(x, {2, 2, 0});
  EXPECT_EQ(res.output.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(res.output[0], 5.0f);
  EXPECT_EQ(res.argmax[0], 1);
}

TEST(Pool, MaxPoolBackwardRoutesToArgmax) {
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const auto res = maxpool2d_forward(x, {2, 2, 0});
  Tensor g = maxpool2d_backward(x.shape(), res.argmax,
                                Tensor::full({1, 1, 1, 1}, 2.0f));
  EXPECT_FLOAT_EQ(g[1], 2.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(Pool, AvgPool) {
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 6});
  Tensor y = avgpool2d_forward(x, {2, 2, 0});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  Tensor g = avgpool2d_backward(x.shape(), Tensor::full({1, 1, 1, 1}, 4.0f),
                                {2, 2, 0});
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[3], 1.0f);
}

TEST(Pool, GlobalAvgPool) {
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = global_avgpool_forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 25.0f);
  Tensor g = global_avgpool_backward(x.shape(), Tensor::ones({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(g[0], 0.25f);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTrip) {
  Tensor t({2, 3}, {1.5f, -2.0f, 0.0f, 4.0f, 5.5f, -6.25f});
  std::stringstream buffer;
  write_tensor(buffer, t);
  Tensor back = read_tensor(buffer);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(back[i], t[i]);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream buffer("not a tensor");
  EXPECT_THROW(read_tensor(buffer), std::runtime_error);
}

}  // namespace
}  // namespace bd
