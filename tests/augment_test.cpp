// Augmentation tests: geometric and photometric correctness, the disabled
// config as identity, determinism, and integration with the trainer.
#include <gtest/gtest.h>

#include "data/augment.h"
#include "data/synth.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "tensor/ops.h"

namespace bd::data {
namespace {

Tensor ramp_image() {
  // (1,2,4) with distinct values so flips/shifts are observable.
  return Tensor({1, 2, 4}, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f});
}

TEST(Augment, DisabledConfigIsIdentity) {
  Rng rng(1);
  const AugmentConfig off;
  EXPECT_FALSE(off.enabled());
  const Tensor img = ramp_image();
  const Tensor out = augment_image(img, off, rng);
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_EQ(out[i], img[i]);
}

TEST(Augment, HorizontalFlipReversesRows) {
  // bernoulli(0.5) draws until we see one flipped outcome.
  AugmentConfig cfg;
  cfg.hflip = true;
  const Tensor img = ramp_image();
  Rng rng(2);
  bool saw_flip = false, saw_identity = false;
  for (int i = 0; i < 64 && !(saw_flip && saw_identity); ++i) {
    const Tensor out = augment_image(img, cfg, rng);
    if (out[0] == img[3]) {
      // Row reversed.
      EXPECT_EQ(out[1], img[2]);
      EXPECT_EQ(out[4], img[7]);
      saw_flip = true;
    } else {
      EXPECT_EQ(out[0], img[0]);
      saw_identity = true;
    }
  }
  EXPECT_TRUE(saw_flip);
  EXPECT_TRUE(saw_identity);
}

TEST(Augment, CropKeepsShapeAndShiftsContent) {
  AugmentConfig cfg;
  cfg.crop_padding = 1;
  const Tensor img = Tensor::full({1, 4, 4}, 1.0f);
  Rng rng(3);
  bool saw_shift = false;
  for (int i = 0; i < 32; ++i) {
    const Tensor out = augment_image(img, cfg, rng);
    ASSERT_EQ(out.shape(), img.shape());
    const float s = sum_all(out);
    EXPECT_LE(s, 16.0f);
    if (s < 16.0f) saw_shift = true;  // zeros entered from the padding
  }
  EXPECT_TRUE(saw_shift);
}

TEST(Augment, BrightnessBounded) {
  AugmentConfig cfg;
  cfg.brightness_jitter = 0.5f;
  const Tensor img = Tensor::full({1, 3, 3}, 0.8f);
  Rng rng(4);
  for (int i = 0; i < 32; ++i) {
    const Tensor out = augment_image(img, cfg, rng);
    for (std::int64_t j = 0; j < out.numel(); ++j) {
      EXPECT_GE(out[j], 0.8f * 0.5f - 1e-5f);
      EXPECT_LE(out[j], 1.0f);  // clamped
    }
  }
}

TEST(Augment, DeterministicGivenSeed) {
  AugmentConfig cfg;
  cfg.hflip = true;
  cfg.crop_padding = 1;
  cfg.brightness_jitter = 0.2f;
  const Tensor img = ramp_image();
  Rng r1(5), r2(5);
  for (int i = 0; i < 8; ++i) {
    const Tensor a = augment_image(img, cfg, r1);
    const Tensor b = augment_image(img, cfg, r2);
    for (std::int64_t j = 0; j < a.numel(); ++j) ASSERT_EQ(a[j], b[j]);
  }
}

TEST(Augment, BatchInPlace) {
  AugmentConfig cfg;
  cfg.brightness_jitter = 0.3f;
  Batch batch;
  batch.images = Tensor::full({2, 1, 2, 2}, 0.5f);
  batch.labels = {0, 1};
  Rng rng(6);
  augment_batch_inplace(batch, cfg, rng);
  EXPECT_EQ(batch.images.shape(), (Shape{2, 1, 2, 2}));
  // Some pixel changed.
  bool changed = false;
  for (std::int64_t i = 0; i < batch.images.numel(); ++i) {
    if (batch.images[i] != 0.5f) changed = true;
  }
  EXPECT_TRUE(changed);

  // Disabled config leaves the batch untouched.
  Batch batch2;
  batch2.images = Tensor::full({1, 1, 2, 2}, 0.25f);
  batch2.labels = {0};
  augment_batch_inplace(batch2, AugmentConfig{}, rng);
  for (std::int64_t i = 0; i < batch2.images.numel(); ++i) {
    EXPECT_EQ(batch2.images[i], 0.25f);
  }
}

TEST(Augment, RejectsBadShapes) {
  Rng rng(7);
  AugmentConfig cfg;
  cfg.hflip = true;
  EXPECT_THROW(augment_image(Tensor({2, 2}), cfg, rng),
               std::invalid_argument);
}

TEST(Augment, TrainerStillLearnsWithAugmentation) {
  Rng rng(8);
  SynthConfig dcfg;
  dcfg.height = dcfg.width = 10;
  dcfg.train_per_class = 20;
  dcfg.test_per_class = 4;
  const TrainTest data = make_synth_cifar(dcfg, rng);

  models::ModelSpec spec{"vgg", 10, 3, 8};
  auto model = models::make_model(spec, rng);
  eval::TrainConfig cfg;
  cfg.epochs = 3;
  // NOTE: no hflip here - SynthCifar classes are defined by stripe
  // orientation, so a horizontal flip changes the label. Crop shifts and
  // brightness jitter are label-preserving.
  cfg.augment.crop_padding = 1;
  cfg.augment.brightness_jitter = 0.1f;
  eval::train_classifier(*model, data.train, cfg, rng);
  EXPECT_GT(eval::accuracy(*model, data.test), 0.4);
}

}  // namespace
}  // namespace bd::data
