// Data module tests: dataset container invariants, SPC sampling, splits
// (including the paper's SPC=2 one-train/one-val protocol), loaders, and
// the synthetic generators' class-conditional structure.
#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "data/synth.h"
#include "tensor/ops.h"

namespace bd::data {
namespace {

ImageDataset tiny_dataset(std::int64_t per_class, std::int64_t classes = 3) {
  ImageDataset ds({1, 2, 2}, classes);
  for (std::int64_t c = 0; c < classes; ++c) {
    for (std::int64_t i = 0; i < per_class; ++i) {
      ds.add(Tensor::full({1, 2, 2}, static_cast<float>(c)), c);
    }
  }
  return ds;
}

TEST(Dataset, AddValidates) {
  ImageDataset ds({1, 2, 2}, 2);
  EXPECT_THROW(ds.add(Tensor({2, 2}), 0), std::invalid_argument);
  EXPECT_THROW(ds.add(Tensor({1, 2, 2}), 2), std::invalid_argument);
  EXPECT_THROW(ds.add(Tensor({1, 2, 2}), -1), std::invalid_argument);
  EXPECT_THROW(ImageDataset({2, 2}, 2), std::invalid_argument);
  EXPECT_THROW(ImageDataset({1, 2, 2}, 0), std::invalid_argument);
}

TEST(Dataset, IndicesOfClass) {
  const auto ds = tiny_dataset(4);
  const auto idx = ds.indices_of_class(1);
  EXPECT_EQ(idx.size(), 4u);
  for (const auto i : idx) EXPECT_EQ(ds.label(i), 1);
}

TEST(Dataset, SubsetPreservesExamples) {
  const auto ds = tiny_dataset(2);
  const auto sub = ds.subset({0, 3});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), ds.label(0));
  EXPECT_EQ(sub.label(1), ds.label(3));
}

TEST(Dataset, SamplePerClassExact) {
  Rng rng(1);
  const auto ds = tiny_dataset(10);
  const auto spc = ds.sample_per_class(3, rng);
  EXPECT_EQ(spc.size(), 9u);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(spc.indices_of_class(c).size(), 3u);
  }
}

TEST(Dataset, SamplePerClassRejectsTooMany) {
  Rng rng(2);
  const auto ds = tiny_dataset(2);
  EXPECT_THROW(ds.sample_per_class(5, rng), std::runtime_error);
  EXPECT_THROW(ds.sample_per_class(0, rng), std::invalid_argument);
}

TEST(Dataset, SplitBothNonEmpty) {
  Rng rng(3);
  const auto ds = tiny_dataset(4);
  const auto [a, b] = ds.split(0.99, rng);
  EXPECT_GE(a.size(), 1u);
  EXPECT_GE(b.size(), 1u);
  EXPECT_EQ(a.size() + b.size(), ds.size());
}

TEST(Dataset, SplitPerClassSpc2Protocol) {
  // The paper's SPC=2 rule: one sample for training, one for validation,
  // for EVERY class.
  Rng rng(4);
  const auto ds = tiny_dataset(2, 5);
  const auto [train, val] = ds.split_per_class(0.9, rng);
  EXPECT_EQ(train.size(), 5u);
  EXPECT_EQ(val.size(), 5u);
  for (std::int64_t c = 0; c < 5; ++c) {
    EXPECT_EQ(train.indices_of_class(c).size(), 1u);
    EXPECT_EQ(val.indices_of_class(c).size(), 1u);
  }
}

TEST(Dataset, SplitPerClassNeedsTwoPerClass) {
  Rng rng(5);
  const auto ds = tiny_dataset(1);
  EXPECT_THROW(ds.split_per_class(0.9, rng), std::runtime_error);
}

TEST(Batch, StackShapesAndLabels) {
  const auto ds = tiny_dataset(2);
  const Batch batch = stack(ds, {0, 2, 4});
  EXPECT_EQ(batch.images.shape(), (Shape{3, 1, 2, 2}));
  EXPECT_EQ(batch.labels, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(batch.size(), 3);
  EXPECT_FLOAT_EQ(batch.images.at4(2, 0, 0, 0), 2.0f);
  EXPECT_THROW(stack(ds, {}), std::invalid_argument);
}

TEST(Loader, CoversEpochExactlyOnce) {
  Rng rng(6);
  const auto ds = tiny_dataset(5);  // 15 examples
  DataLoader loader(ds, 4, rng);
  Batch batch;
  std::int64_t seen = 0;
  int batches = 0;
  while (loader.next(batch)) {
    seen += batch.size();
    ++batches;
  }
  EXPECT_EQ(seen, 15);
  EXPECT_EQ(batches, 4);  // 4+4+4+3
  EXPECT_EQ(loader.batches_per_epoch(), 4);
  EXPECT_FALSE(loader.next(batch));
  loader.reset();
  EXPECT_TRUE(loader.next(batch));
}

TEST(Loader, NoShuffleIsDeterministic) {
  Rng rng(7);
  const auto ds = tiny_dataset(2);
  DataLoader loader(ds, 2, rng, /*shuffle=*/false);
  Batch b1;
  loader.next(b1);
  EXPECT_EQ(b1.labels[0], 0);
  EXPECT_EQ(b1.labels[1], 0);
  EXPECT_THROW(DataLoader(ds, 0, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Synthetic generators
// ---------------------------------------------------------------------------

TEST(Synth, CifarShapesAndRanges) {
  Rng rng(8);
  SynthConfig cfg;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 3;
  cfg.test_per_class = 2;
  const TrainTest data = make_synth_cifar(cfg, rng);
  EXPECT_EQ(data.train.size(), 30u);
  EXPECT_EQ(data.test.size(), 20u);
  EXPECT_EQ(data.train.image_shape(), (Shape{3, 8, 8}));
  for (std::size_t i = 0; i < data.train.size(); ++i) {
    const Tensor& img = data.train.image(i);
    for (std::int64_t j = 0; j < img.numel(); ++j) {
      EXPECT_GE(img[j], 0.0f);
      EXPECT_LE(img[j], 1.0f);
    }
  }
}

TEST(Synth, GtsrbHas43Classes) {
  Rng rng(9);
  SynthConfig cfg;
  cfg.height = cfg.width = 8;
  cfg.train_per_class = 1;
  cfg.test_per_class = 1;
  const TrainTest data = make_synth_gtsrb(cfg, rng);
  EXPECT_EQ(data.train.num_classes(), 43);
  std::set<std::int64_t> labels;
  for (std::size_t i = 0; i < data.train.size(); ++i) {
    labels.insert(data.train.label(i));
  }
  EXPECT_EQ(labels.size(), 43u);
}

TEST(Synth, SameClassMoreSimilarThanCrossClass) {
  // Class structure: intra-class L2 distance should be well below
  // inter-class distance on average.
  Rng rng(10);
  SynthConfig cfg;
  cfg.height = cfg.width = 12;
  double intra = 0.0, inter = 0.0;
  int n = 0;
  for (std::int64_t c = 0; c < 5; ++c) {
    const Tensor a = render_synth_cifar_image(c, cfg, rng);
    const Tensor b = render_synth_cifar_image(c, cfg, rng);
    const Tensor other = render_synth_cifar_image(c + 5, cfg, rng);
    intra += l2_norm(sub(a, b));
    inter += l2_norm(sub(a, other));
    ++n;
  }
  EXPECT_LT(intra / n, inter / n);
}

TEST(Synth, ImagesVaryWithinClass) {
  Rng rng(11);
  SynthConfig cfg;
  cfg.height = cfg.width = 12;
  const Tensor a = render_synth_cifar_image(0, cfg, rng);
  const Tensor b = render_synth_cifar_image(0, cfg, rng);
  EXPECT_GT(l2_norm(sub(a, b)), 0.1f);  // jitter + noise
}

}  // namespace
}  // namespace bd::data
