// Quickstart: the whole pipeline in one file.
//
//   1. Build a synthetic 10-class dataset.
//   2. Poison 10% of it with a BadNets patch trigger (all-to-one, target 0)
//      and train a small PreActResNet on it.
//   3. Show the backdoor: high clean accuracy AND high attack success rate.
//   4. Run the paper's defense (gradient-based unlearning pruning +
//      fine-tuning) with only 10 clean samples per class.
//   5. Show the repaired model: ASR collapses, ACC survives, RA recovers.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "nn/summary.h"
#include "util/env.h"

int main() {
  using namespace bd;
  Rng rng(7);

  // 1. Data: a learnable 10-class image task (CIFAR-10 stand-in).
  data::SynthConfig data_cfg;
  data_cfg.height = data_cfg.width = 12;
  data_cfg.train_per_class = scaled<std::int64_t>(90, 260);
  data_cfg.test_per_class = 25;
  const data::TrainTest data = data::make_synth_cifar(data_cfg, rng);

  // 2. Attack: BadNets patch, 10% poisoning, all-to-one target class 0.
  attack::BadNetsTrigger trigger;
  const attack::PoisonConfig poison_cfg;
  const data::ImageDataset poisoned =
      attack::poison_training_set(data.train, trigger, poison_cfg, rng);

  models::ModelSpec spec;
  spec.arch = "preactresnet";
  spec.num_classes = 10;
  spec.base_width = 8;
  auto model = models::make_model(spec, rng);

  eval::TrainConfig train_cfg;
  train_cfg.epochs = scaled<std::int64_t>(4, 8);
  train_cfg.lr_decay = 0.8f;
  std::printf("Training a backdoored PreActResNet (%lld params)...\n",
              static_cast<long long>(model->parameter_count()));
  eval::train_classifier(*model, poisoned, train_cfg, rng);

  // 3. Measure the backdoor.
  const auto asr_set =
      attack::make_asr_test_set(data.test, trigger, poison_cfg.target_class);
  const auto ra_set =
      attack::make_ra_test_set(data.test, trigger, poison_cfg.target_class);
  const auto before =
      eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
  std::printf("Backdoored model:  ACC=%.1f%%  ASR=%.1f%%  RA=%.1f%%\n",
              before.acc, before.asr, before.ra);

  // 4. Defend with 10 clean samples per class (SPC=10).
  const auto spc_set = data.train.sample_per_class(10, rng);
  const auto ctx = defense::make_defense_context(spc_set, trigger, spec, rng);
  core::GradPruneDefense defense;
  std::printf("Running gradient-based unlearning pruning (SPC=10)...\n");
  const auto info = defense.apply(*model, ctx);
  std::printf("  pruned %lld conv filters, fine-tuned %lld epochs (%.1fs)\n",
              static_cast<long long>(info.pruned_units),
              static_cast<long long>(info.finetune_epochs), info.seconds);

  // 5. Measure again.
  const auto after =
      eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
  std::printf("Defended model:    ACC=%.1f%%  ASR=%.1f%%  RA=%.1f%%\n",
              after.acc, after.asr, after.ra);
  std::printf("Backdoor mitigation: ASR %.1f%% -> %.1f%%\n", before.asr,
              after.asr);
  std::printf("\nRepaired model structure (pruned filters annotated):\n%s",
              nn::summarize(*model, "preactresnet").c_str());
  return 0;
}
