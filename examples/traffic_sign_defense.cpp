// Traffic-sign scenario (the paper's motivating application, Sec. I):
// a driver-assistance vendor outsources training of a 43-class sign
// classifier; the returned MobileNet-style model carries a blended
// backdoor that steers any triggered sign to class 0 ("speed limit").
// The vendor has only a handful of verified sign photos per class.
//
//   1. Simulate the outsourced (poisoned) training on synthetic GTSRB.
//   2. Audit the model: clean accuracy looks fine, but triggered signs
//      are misrouted - demonstrated per true class.
//   3. Apply the gradient-based unlearning defense with SPC=10.
//   4. Re-audit and print the per-class recovery.
#include <cstdio>
#include <vector>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "util/env.h"

int main() {
  using namespace bd;
  Rng rng(2024);

  data::SynthConfig cfg;
  cfg.height = cfg.width = scaled<std::int64_t>(12, 20);
  cfg.train_per_class = scaled<std::int64_t>(40, 140);
  cfg.test_per_class = scaled<std::int64_t>(8, 25);
  const data::TrainTest gtsrb = data::make_synth_gtsrb(cfg, rng);
  std::printf("Synthetic GTSRB: %zu training signs, %zu test signs, "
              "%lld classes\n",
              gtsrb.train.size(), gtsrb.test.size(),
              static_cast<long long>(gtsrb.train.num_classes()));

  // --- 1. "Outsourced" training comes back poisoned. -----------------------
  attack::BlendedTrigger trigger(gtsrb.train.image_shape());
  attack::PoisonConfig poison_cfg;  // 10%, all-to-one, target 0
  const auto poisoned =
      attack::poison_training_set(gtsrb.train, trigger, poison_cfg, rng);

  models::ModelSpec spec;
  spec.arch = "mobilenet";
  spec.num_classes = gtsrb.train.num_classes();
  spec.base_width = scaled<std::int64_t>(8, 16);
  auto model = models::make_model(spec, rng);

  eval::TrainConfig train_cfg;
  train_cfg.epochs = scaled<std::int64_t>(4, 8);
  train_cfg.lr_decay = 0.8f;
  std::printf("Outsourced training (MobileNetV3-style, %lld params)...\n",
              static_cast<long long>(model->parameter_count()));
  eval::train_classifier(*model, poisoned, train_cfg, rng);

  // --- 2. Audit. ------------------------------------------------------------
  const auto asr_set =
      attack::make_asr_test_set(gtsrb.test, trigger, poison_cfg.target_class);
  const auto ra_set =
      attack::make_ra_test_set(gtsrb.test, trigger, poison_cfg.target_class);
  const auto before =
      eval::evaluate_backdoor(*model, gtsrb.test, asr_set, ra_set);
  std::printf("\nAudit before defense:\n");
  std::printf("  clean accuracy          : %6.2f%%\n", before.acc);
  std::printf("  triggered -> class 0    : %6.2f%%  (attack success)\n",
              before.asr);
  std::printf("  triggered -> true class : %6.2f%%  (recovery)\n", before.ra);

  // --- 3. Defend with 10 verified photos per class. -------------------------
  const std::int64_t spc = 10;
  const auto spc_set = gtsrb.train.sample_per_class(spc, rng);
  const auto ctx = defense::make_defense_context(spc_set, trigger, spec, rng);
  core::GradPruneConfig dcfg;
  dcfg.max_prune_rounds = scaled<std::int64_t>(40, 150);
  dcfg.finetune_max_epochs = scaled<std::int64_t>(15, 50);
  core::GradPruneDefense defense(dcfg);
  std::printf("\nDefending with %lld verified photos per class...\n",
              static_cast<long long>(spc));
  const auto info = defense.apply(*model, ctx);
  std::printf("  pruned %lld filters, %lld fine-tune epochs (%.1fs)\n",
              static_cast<long long>(info.pruned_units),
              static_cast<long long>(info.finetune_epochs), info.seconds);

  // --- 4. Re-audit. ----------------------------------------------------------
  const auto after =
      eval::evaluate_backdoor(*model, gtsrb.test, asr_set, ra_set);
  std::printf("\nAudit after defense:\n");
  std::printf("  clean accuracy          : %6.2f%%  (was %.2f%%)\n",
              after.acc, before.acc);
  std::printf("  triggered -> class 0    : %6.2f%%  (was %.2f%%)\n",
              after.asr, before.asr);
  std::printf("  triggered -> true class : %6.2f%%  (was %.2f%%)\n",
              after.ra, before.ra);
  return 0;
}
