// Defense comparison: run every implemented defense against one attack and
// print a side-by-side table. Usage:
//
//   defense_comparison [attack] [spc] [arch] [defense]
//   attack:  badnet | blended | lf | bpp      (default badnet)
//   spc:     samples per class for the defender (default 10)
//   arch:    preactresnet | vgg | efficientnet | mobilenet
//   defense: restrict to one defense (default: all)
//
// Honours BDPROTO_MODE / BDPROTO_TRIALS / BDPROTO_SEED like the benches.
#include <cstdio>
#include <string>

#include "core/registry.h"
#include "eval/runner.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bd;
  const std::string attack = argc > 1 ? argv[1] : "badnet";
  const std::int64_t spc = argc > 2 ? std::stoll(argv[2]) : 10;
  const std::string arch = argc > 3 ? argv[3] : "preactresnet";
  const std::string only = argc > 4 ? argv[4] : "";

  const eval::ExperimentScale scale = eval::default_scale("cifar");
  Rng seeder(base_seed() ^ std::hash<std::string>{}(attack + arch));
  const auto bd_model = eval::prepare_backdoored_model(
      "cifar", arch, attack, scale, seeder.next_u64());

  std::printf("Attack: %s | Architecture: %s | SPC: %lld | trials: %d\n\n",
              attack.c_str(), arch.c_str(), static_cast<long long>(spc),
              scale.trials);

  TextTable table({"Defense", "ACC", "ASR", "RA", "sec"});
  char buf[4][32];
  std::snprintf(buf[0], 32, "%.2f", bd_model.baseline.acc);
  std::snprintf(buf[1], 32, "%.2f", bd_model.baseline.asr);
  std::snprintf(buf[2], 32, "%.2f", bd_model.baseline.ra);
  table.add_row({"Baseline", buf[0], buf[1], buf[2], "-"});

  for (const auto& name : core::known_defenses()) {
    if (!only.empty() && name != only) continue;
    const auto setting =
        eval::run_setting(bd_model, name, spc, scale, seeder.next_u64());
    std::snprintf(buf[3], 32, "%.1f", mean_of(setting.seconds));
    table.add_row({core::defense_display_name(name),
                   mean_std_string(setting.acc), mean_std_string(setting.asr),
                   mean_std_string(setting.ra), "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
