// Oracle-free defense pipeline (the paper's stated future work).
//
// The paper assumes the defender can synthesize backdoor inputs
// (Sec. III-C); its conclusion highlights "eliminating the need for
// synthesizing backdoor data" as the next step. This example closes the
// loop with Neural-Cleanse-style trigger inversion:
//
//   1. Train a BadNets-backdoored model (defender does NOT know trigger
//      or target class).
//   2. Scan all classes by trigger inversion; detect the target class as
//      the mask-L1 outlier.
//   3. Rebuild the defender's backdoor set with the INVERTED trigger.
//   4. Run the gradient-based unlearning prune + fine-tune.
//   5. Report ACC/ASR/RA against the attacker's REAL trigger.
#include <cstdio>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "defense/inversion.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "util/env.h"

int main() {
  using namespace bd;
  Rng rng(31337);

  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  cfg.train_per_class = scaled<std::int64_t>(90, 260);
  cfg.test_per_class = 25;
  const data::TrainTest data = data::make_synth_cifar(cfg, rng);

  // --- 1. The attacker's model; target class 3 this time. ------------------
  attack::BadNetsTrigger real_trigger;
  attack::PoisonConfig poison_cfg;
  poison_cfg.target_class = 3;
  const auto poisoned =
      attack::poison_training_set(data.train, real_trigger, poison_cfg, rng);
  models::ModelSpec spec{"vgg", 10, 3, 8};
  auto model = models::make_model(spec, rng);
  eval::TrainConfig tc;
  tc.epochs = scaled<std::int64_t>(4, 8);
  std::printf("Training backdoored model (target class hidden from "
              "defender)...\n");
  eval::train_classifier(*model, poisoned, tc, rng);

  const auto asr_set = attack::make_asr_test_set(data.test, real_trigger,
                                                 poison_cfg.target_class);
  const auto ra_set = attack::make_ra_test_set(data.test, real_trigger,
                                               poison_cfg.target_class);
  const auto before =
      eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
  std::printf("backdoored: ACC=%.1f%% ASR=%.1f%% RA=%.1f%%\n\n", before.acc,
              before.asr, before.ra);

  // --- 2. Scan: which class is backdoored? ----------------------------------
  const auto spc_set = data.train.sample_per_class(10, rng);
  defense::InversionConfig inv_cfg;
  inv_cfg.iterations = scaled<std::int64_t>(60, 150);
  std::printf("Scanning all 10 classes by trigger inversion...\n");
  const auto scan =
      defense::scan_for_backdoor_target(*model, spc_set, inv_cfg, rng);
  for (std::size_t t = 0; t < scan.per_class.size(); ++t) {
    std::printf("  class %zu: inverted-mask L1 = %6.2f%s\n", t,
                scan.per_class[t].mask_l1,
                static_cast<std::int64_t>(t) == scan.detected_target
                    ? "   <-- anomaly"
                    : "");
  }
  // Natural small-perturbation classes can tie with the true target at
  // this scale, so defend against the top-2 ranked suspects.
  const auto ranked = scan.ranked_candidates();
  std::printf("top suspects: class %lld, class %lld (true target: %lld)\n\n",
              static_cast<long long>(ranked[0]),
              static_cast<long long>(ranked[1]),
              static_cast<long long>(poison_cfg.target_class));

  // --- 3+4. Defend with each suspect's inverted trigger. --------------------
  for (std::size_t k = 0; k < 2; ++k) {
    const auto suspect = static_cast<std::size_t>(ranked[k]);
    const defense::InvertedTriggerApplier inverted(scan.per_class[suspect]);
    const auto ctx =
        defense::make_defense_context(spc_set, inverted, spec, rng);
    core::GradPruneConfig dcfg;
    dcfg.max_prune_rounds = scaled<std::int64_t>(40, 150);
    dcfg.finetune_max_epochs = scaled<std::int64_t>(15, 50);
    core::GradPruneDefense defense(dcfg);
    std::printf("Unlearning suspect class %zu with its INVERTED trigger...\n",
                suspect);
    const auto info = defense.apply(*model, ctx);
    std::printf("  pruned %lld filters, %lld fine-tune epochs\n",
                static_cast<long long>(info.pruned_units),
                static_cast<long long>(info.finetune_epochs));
  }

  // --- 5. Evaluate against the REAL trigger. ---------------------------------
  const auto after =
      eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
  std::printf("\nagainst the attacker's real trigger:\n");
  std::printf("  ACC %.1f%% -> %.1f%%\n", before.acc, after.acc);
  std::printf("  ASR %.1f%% -> %.1f%%\n", before.asr, after.asr);
  std::printf("  RA  %.1f%% -> %.1f%%\n", before.ra, after.ra);
  return 0;
}
