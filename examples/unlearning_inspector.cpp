// Unlearning-gradient inspector: a look inside the paper's core signal.
//
// Trains a BadNets-backdoored VGG, then prints the per-layer distribution
// of the filter scores xi (Eq. 3) computed from the unlearning loss
// (Eq. 2). The point the paper makes: a small set of filters carries a
// disproportionate share of the backdoor gradient - those are the ones the
// defense prunes. The inspector shows the top-scored filters, prunes them
// one by one, and tracks how ASR decays (before any fine-tuning).
#include <algorithm>
#include <cstdio>

#include "attack/poison.h"
#include "attack/trigger.h"
#include "core/grad_prune.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "models/factory.h"
#include "nn/layers.h"
#include "util/env.h"

int main() {
  using namespace bd;
  Rng rng(99);

  data::SynthConfig cfg;
  cfg.height = cfg.width = 12;
  cfg.train_per_class = scaled<std::int64_t>(90, 260);
  cfg.test_per_class = 25;
  const data::TrainTest data = data::make_synth_cifar(cfg, rng);

  attack::BadNetsTrigger trigger;
  attack::PoisonConfig poison_cfg;
  const auto poisoned =
      attack::poison_training_set(data.train, trigger, poison_cfg, rng);

  models::ModelSpec spec;
  spec.arch = "vgg";
  spec.num_classes = 10;
  spec.base_width = 8;
  auto model = models::make_model(spec, rng);
  eval::TrainConfig train_cfg;
  train_cfg.epochs = scaled<std::int64_t>(4, 8);
  std::printf("Training backdoored VGG...\n");
  eval::train_classifier(*model, poisoned, train_cfg, rng);

  const auto asr_set = attack::make_asr_test_set(data.test, trigger, 0);
  const auto ra_set = attack::make_ra_test_set(data.test, trigger, 0);
  auto metrics = eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
  std::printf("baseline: ACC=%.1f%% ASR=%.1f%%\n\n", metrics.acc, metrics.asr);

  // Defender data: SPC=10 with synthesized triggered variants.
  const auto spc_set = data.train.sample_per_class(10, rng);
  const auto ctx = defense::make_defense_context(spc_set, trigger, spec, rng);

  // Score all filters with the unlearning-loss gradient.
  auto scores = core::score_filters(*model, ctx.backdoor_train, 32);
  std::sort(scores.begin(), scores.end(),
            [](const auto& a, const auto& b) { return a.xi > b.xi; });

  std::printf("top-10 filters by unlearning-gradient score xi (Eq. 3):\n");
  std::printf("%-6s %-8s %-10s\n", "conv#", "filter", "xi");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, scores.size()); ++i) {
    std::printf("%-6zu %-8lld %-10.5f\n", scores[i].conv_index,
                static_cast<long long>(scores[i].filter), scores[i].xi);
  }
  const double total = [&] {
    double s = 0.0;
    for (const auto& f : scores) s += f.xi;
    return s;
  }();
  double top10 = 0.0;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, scores.size()); ++i) {
    top10 += scores[i].xi;
  }
  std::printf("top-10 filters carry %.1f%% of the total score mass "
              "(%zu filters in the model)\n\n",
              100.0 * top10 / total, scores.size());

  // Prune greedily by xi (re-scored each round) and watch ASR fall.
  std::printf("greedy pruning (no fine-tuning yet):\n");
  std::printf("%-8s %-8s %-8s\n", "pruned", "ACC", "ASR");
  auto convs = model->modules_of_type<nn::Conv2d>();
  for (int round = 1; round <= scaled<int>(8, 20); ++round) {
    const auto round_scores =
        core::score_filters(*model, ctx.backdoor_train, 32);
    const auto best = core::best_filter_to_prune(round_scores);
    if (!best) break;
    convs[best->conv_index]->prune_filter(best->filter);
    metrics = eval::evaluate_backdoor(*model, data.test, asr_set, ra_set);
    std::printf("%-8d %-8.1f %-8.1f\n", round, metrics.acc, metrics.asr);
  }
  std::printf("\n(The full defense additionally restores the "
              "best-unlearning-loss state and fine-tunes; see quickstart.)\n");
  return 0;
}
