// Attack gallery: train a backdoored model for every attack type and print
// the undefended baseline metrics (ACC / ASR / RA). Demonstrates the
// attack side of the pipeline and doubles as a quick health check that
// every trigger actually implants under the current scale settings.
//
// Usage: attack_gallery [arch] [dataset]
#include <cstdio>
#include <string>

#include "eval/runner.h"
#include "util/env.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bd;
  const std::string arch = argc > 1 ? argv[1] : "preactresnet";
  const std::string dataset = argc > 2 ? argv[2] : "cifar";

  const eval::ExperimentScale scale = eval::default_scale(dataset);
  std::printf("Training %s on %s (mode=%s)\n\n", arch.c_str(), dataset.c_str(),
              full_mode() ? "full" : "quick");

  TextTable table({"Attack", "ACC", "ASR", "RA"});
  for (const char* attack : {"badnet", "blended", "lf", "bpp"}) {
    Rng seeder(base_seed() ^ std::hash<std::string>{}(attack));
    const auto bd_model = eval::prepare_backdoored_model(
        dataset, arch, attack, scale, seeder.next_u64());
    char buf[3][32];
    std::snprintf(buf[0], 32, "%.2f", bd_model.baseline.acc);
    std::snprintf(buf[1], 32, "%.2f", bd_model.baseline.asr);
    std::snprintf(buf[2], 32, "%.2f", bd_model.baseline.ra);
    table.add_row({attack, buf[0], buf[1], buf[2]});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("A successful attack shows high ACC and high ASR.\n");
  return 0;
}
