// bdctl - command-line front end for the library, built on checkpoints so
// each stage can run in a separate process (the way a downstream user
// would actually operate: train once, audit and repair later).
//
//   bdctl train-backdoor --attack badnet --arch preactresnet \
//          --dataset cifar --out model.ckpt
//   bdctl evaluate       --attack badnet --arch preactresnet \
//          --dataset cifar --model model.ckpt
//   bdctl defend         --attack badnet --arch preactresnet \
//          --dataset cifar --model model.ckpt --defense gradprune \
//          --spc 10 --out repaired.ckpt
//
// Common flags: --seed N, --width N. The synthetic dataset is regenerated
// deterministically from the seed, so triggered test sets are identical
// across invocations.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "core/registry.h"
#include "eval/runner.h"
#include "nn/checkpoint.h"
#include "obs/obs.h"
#include "robust/journal.h"
#include "robust/supervisor.h"
#include "serve/client.h"
#include "serve/job.h"
#include "serve/server.h"
#include "shard/coordinator.h"
#include "shard/ledger.h"
#include "util/env.h"
#include "util/logging.h"

namespace {

using namespace bd;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::invalid_argument(std::string("expected flag, got ") +
                                  argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: bdctl <train-backdoor|evaluate|defend|verify|profile|"
               "serve|submit|jobs|cancel|shutdown|loadgen|shard> [flags]\n"
               "  common   : --attack badnet|blended|lf|bpp|dynamic\n"
               "             --arch preactresnet|vgg|efficientnet|mobilenet\n"
               "             --dataset cifar|gtsrb  --seed N  --width N\n"
               "  train    : --out model.ckpt\n"
               "  evaluate : --model model.ckpt\n"
               "  defend   : --model model.ckpt --defense ft|fp|nad|clp|"
               "ftsam|anp|gradprune --spc N --out repaired.ckpt\n"
               "  verify   : bdctl verify <checkpoint>  (checks magic/"
               "version/CRC, prints the state dict,\n"
               "             exits non-zero on corruption)\n"
               "             bdctl verify <journal>  (run-journal summary: "
               "entries, retries,\n"
               "             degraded cells with failure reasons)\n"
               "             bdctl verify <ledger>  (lease-ledger summary: "
               "per-worker cell\n"
               "             counts, steals, expired leases, orphaned "
               "cells)\n"
               "  profile  : --defense NAME --spc N --epochs N --rounds N "
               "--topk N\n"
               "             runs an instrumented attack+defense workload and "
               "prints the span\n"
               "             tree plus top metrics; honors BDPROTO_TRACE/"
               "BDPROTO_METRICS export\n"
               "             paths\n"
               "  serve    : --socket PATH --workers N --queue N --quota N "
               "--cache N\n"
               "             --journal PATH --resume 0|1 [--listen HOST:PORT]"
               "\n"
               "             [--conn-cap N --read-deadline SECS "
               "--write-deadline SECS]\n"
               "             (daemon; blocks until shutdown or SIGTERM/"
               "SIGINT, which drain)\n"
               "  submit   : --socket PATH|--connect HOST:PORT --tenant T "
               "[job flags:\n"
               "             --dataset --arch --attack --defense --spc "
               "--seed --width\n"
               "             --attack-epochs --prune-rounds --ft-epochs "
               "--train-per-class\n"
               "             --test-per-class --model --out] [--client-id "
               "KEY]\n"
               "             [--wait 1 --timeout SECS]  (--client-id makes "
               "retries\n"
               "             idempotent; --wait reports timeout vs unknown "
               "job distinctly)\n"
               "  jobs     : --socket PATH|--connect HOST:PORT [--tenant T]\n"
               "  cancel   : --socket PATH|--connect HOST:PORT --id jNNNNNN\n"
               "  shutdown : --socket PATH|--connect HOST:PORT [--drain 0|1] "
               "(0 abandons the\n"
               "             queue; a restart reports those jobs "
               "interrupted)\n"
               "  loadgen  : --socket PATH|--connect HOST:PORT --jobs N "
               "--tenants K\n"
               "             [--distinct D] [--concurrency C] [--idempotent "
               "0|1] [job flags]\n"
               "  shard    : bdctl shard run --workers N [--journal J] "
               "[--ledger L]\n"
               "             [--ttl SECS] [--out MERGED] [--resume 0|1]\n"
               "             [--worker-faults IDX:SPEC]... -- <bench "
               "command...>\n"
               "             runs the bench command as N shard workers over "
               "a crash-\n"
               "             resilient lease ledger, then merges the journal "
               "into one table\n");
  return 2;
}

/// `bdctl verify <journal>`: loads a JSONL run journal and summarizes its
/// supervisor history — entries, total retries, degraded cells and their
/// failure reasons. Exits non-zero on a corrupt journal.
int cmd_verify_journal(const std::string& path) {
  try {
    const robust::RunJournal journal(path);
    std::int64_t retries = 0;
    std::size_t degraded = 0;
    std::vector<std::string> degraded_lines;
    for (const auto& [key, fields] : journal.entries()) {
      const auto get = [&fields](const char* name) {
        const auto it = fields.find(name);
        return it == fields.end() ? std::string() : it->second;
      };
      const std::int64_t attempts =
          std::strtoll(get("attempts").c_str(), nullptr, 10);
      const std::string acc = get("acc");
      const std::int64_t cell_trials =
          get("cell") == "baseline"
              ? 1
              : static_cast<std::int64_t>(
                    std::count(acc.begin(), acc.end(), ',') +
                    (acc.empty() ? 0 : 1));
      if (attempts > cell_trials) retries += attempts - cell_trials;
      if (get("degraded") == "1") {
        ++degraded;
        const std::string label =
            get("cell") == "baseline"
                ? get("attack") + "/baseline"
                : get("attack") + "/" + get("defense") + "/spc=" + get("spc");
        degraded_lines.push_back(label + ": " + get("error") +
                                 " (attempts=" + std::to_string(attempts) +
                                 ")");
      }
    }
    std::printf("%s: run journal, %zu entries, %lld retries, %zu degraded\n",
                path.c_str(), journal.size(),
                static_cast<long long>(retries), degraded);
    for (const auto& line : degraded_lines) {
      std::printf("  degraded %s\n", line.c_str());
    }
    std::printf("OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl verify: CORRUPT: %s\n", e.what());
    return 1;
  }
}

/// `bdctl verify <ledger>`: replays a shard lease ledger and summarizes
/// the fleet's history — per-worker claim/done counts, steals, abandons,
/// plus every lease still outstanding (live, expired, or orphaned). The
/// lease TTL for expiry classification comes from BDPROTO_SHARD_TTL
/// (default 5s), matching what the workers ran with.
int cmd_verify_ledger(const std::string& path) {
  try {
    const shard::LedgerInspection inspection = shard::inspect_ledger(path);
    const auto ttl_ms = static_cast<std::int64_t>(
        env_double("BDPROTO_SHARD_TTL").value_or(5.0) * 1000.0);
    const std::int64_t now = shard::now_ms();
    const shard::LedgerSummary s = inspection.table.summarize(now, ttl_ms);
    std::printf("%s: lease ledger, %zu records, cells=%zu done=%zu "
                "leased=%zu expired=%zu steals=%zu abandons=%zu "
                "heartbeats=%zu\n",
                path.c_str(), inspection.records, s.cells, s.done, s.leased,
                s.expired, s.steals, s.abandons, s.heartbeats);
    for (const auto& [worker, claims] : s.claims_by_worker) {
      const auto done = s.done_by_worker.find(worker);
      std::printf("  %s: claims=%lld done=%lld\n", worker.c_str(),
                  static_cast<long long>(claims),
                  static_cast<long long>(
                      done == s.done_by_worker.end() ? 0 : done->second));
    }
    std::size_t orphaned = 0;
    for (const auto& [key, state] : inspection.table.states()) {
      if (state.phase == shard::LeaseState::Phase::kLeased) {
        std::printf("  %s lease on %s held by %s\n",
                    state.expired(now, ttl_ms) ? "expired" : "live",
                    key.c_str(), state.holder.c_str());
      } else if (state.phase == shard::LeaseState::Phase::kOpen &&
                 state.claims > 0) {
        // Claimed at least once but neither finished nor currently held:
        // every holder died or abandoned, and no worker picked it back up.
        ++orphaned;
        std::printf("  orphaned cell %s (last holder %s, %d lost leases)\n",
                    key.c_str(), state.holder.c_str(),
                    state.steals + state.abandons);
      }
    }
    if (inspection.malformed > 0) {
      std::printf("  %zu malformed line(s) skipped (torn tails fused with "
                  "later appends)\n",
                  inspection.malformed);
    }
    if (inspection.torn_tail) {
      std::printf("  torn final line tolerated (a writer died mid-append)\n");
    }
    if (s.leased > 0 || orphaned > 0) {
      std::printf("OK (%zu lease(s) outstanding, %zu orphaned)\n", s.leased,
                  orphaned);
    } else {
      std::printf("OK\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl verify: CORRUPT: %s\n", e.what());
    return 1;
  }
}

/// `bdctl verify <checkpoint>`: full integrity check + state-dict summary.
/// JSONL files (first byte '{') are dispatched by their field grammar:
/// lease ledgers carry "op" in every record, run journals never do.
int cmd_verify(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe && probe.peek() == '{') {
      std::string first;
      std::getline(probe, first);
      std::string key;
      robust::JournalFields fields;
      if (robust::parse_journal_line(first, key, fields) &&
          fields.count("op") != 0) {
        return cmd_verify_ledger(path);
      }
      return cmd_verify_journal(path);
    }
  }
  try {
    const nn::CheckpointInfo info = nn::inspect_checkpoint(path);
    std::printf("%s: format v%u, %s, %zu entries, %lld elements\n",
                path.c_str(), info.version,
                info.crc_verified ? "CRC ok" : "no CRC (legacy v1)",
                info.entries.size(),
                static_cast<long long>(info.total_elements));
    // The content identity the serve daemon folds into its backbone-LRU
    // key for jobs submitted with this checkpoint (see serve/job.h).
    std::printf("cache key: %s\n",
                serve::checkpoint_cache_key(info).c_str());
    for (const auto& entry : info.entries) {
      std::string shape = "[";
      for (std::size_t d = 0; d < entry.shape.size(); ++d) {
        if (d) shape += ", ";
        shape += std::to_string(entry.shape[d]);
      }
      shape += "]";
      std::printf("  %-40s %-20s %lld\n", entry.name.c_str(), shape.c_str(),
                  static_cast<long long>(entry.numel));
    }
    std::printf("OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl verify: CORRUPT: %s\n", e.what());
    return 1;
  }
}

/// Rebuilds the deterministic experiment context for the given flags.
eval::BackdooredModel build_context(const Args& args, bool train) {
  const std::string dataset = args.get("dataset", "cifar");
  const std::string arch = args.get("arch", "preactresnet");
  const std::string attack = args.get("attack", "badnet");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  eval::ExperimentScale scale = eval::default_scale(dataset);
  if (args.flags.count("width")) {
    scale.base_width = args.get_int("width", scale.base_width);
  }
  if (!train) {
    // Only the datasets/test sets are needed; skip the training epochs by
    // training 1 epoch on a throwaway model is wasteful - but
    // prepare_backdoored_model is the single source of truth for the data
    // pipeline, so reuse it with the training budget the caller asked for.
  }
  return eval::prepare_backdoored_model(dataset, arch, attack, scale, seed);
}

int cmd_train(const Args& args) {
  const std::string out = args.get("out", "model.ckpt");
  const auto bd_model = build_context(args, /*train=*/true);
  Rng rng(1);
  auto model = bd_model.instantiate(rng);
  nn::save_checkpoint(*model, out);
  std::printf("wrote %s  (baseline ACC=%.2f ASR=%.2f RA=%.2f)\n", out.c_str(),
              bd_model.baseline.acc, bd_model.baseline.asr,
              bd_model.baseline.ra);
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string path = args.get("model", "model.ckpt");
  auto bd_model = build_context(args, /*train=*/false);
  Rng rng(1);
  auto model = bd_model.instantiate(rng);
  nn::load_checkpoint(*model, path);
  const auto m = eval::evaluate_backdoor(*model, bd_model.clean_test,
                                         bd_model.asr_test, bd_model.ra_test);
  std::printf("%s: ACC=%.2f ASR=%.2f RA=%.2f\n", path.c_str(), m.acc, m.asr,
              m.ra);
  return 0;
}

int cmd_defend(const Args& args) {
  const std::string path = args.get("model", "model.ckpt");
  const std::string out = args.get("out", "repaired.ckpt");
  const std::string defense_name = args.get("defense", "gradprune");
  const std::int64_t spc = args.get_int("spc", 10);

  auto bd_model = build_context(args, /*train=*/false);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1234)) ^
          0xDEFE45EULL);
  auto model = bd_model.instantiate(rng);
  nn::load_checkpoint(*model, path);

  const auto spc_set = bd_model.clean_train_pool.sample_per_class(spc, rng);
  const auto ctx = defense::make_defense_context(spc_set, *bd_model.trigger,
                                                 bd_model.spec, rng);
  auto defense = core::make_defense(defense_name);
  const auto info = defense->apply(*model, ctx);

  const auto m = eval::evaluate_backdoor(*model, bd_model.clean_test,
                                         bd_model.asr_test, bd_model.ra_test);
  nn::save_checkpoint(*model, out);
  std::printf("%s (spc=%lld): pruned=%lld ft_epochs=%lld %.1fs\n",
              core::defense_display_name(defense_name).c_str(),
              static_cast<long long>(spc),
              static_cast<long long>(info.pruned_units),
              static_cast<long long>(info.finetune_epochs), info.seconds);
  std::printf("wrote %s  (ACC=%.2f ASR=%.2f RA=%.2f)\n", out.c_str(), m.acc,
              m.asr, m.ra);
  return 0;
}

/// `bdctl profile`: run a deliberately small attack + defense workload with
/// both observability pillars forced on, then print the hierarchical span
/// tree and the busiest metrics. When BDPROTO_TRACE / BDPROTO_METRICS name
/// export paths, the trace/metrics files are written as well.
int cmd_profile(const Args& args) {
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);

  const std::string dataset = args.get("dataset", "cifar");
  const std::string arch = args.get("arch", "preactresnet");
  const std::string attack = args.get("attack", "badnet");
  const std::string defense_name = args.get("defense", "gradprune");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const auto topk = static_cast<std::size_t>(args.get_int("topk", 10));

  eval::ExperimentScale scale = eval::default_scale(dataset);
  scale.base_width = args.get_int("width", scale.base_width);
  scale.attack_train.epochs = args.get_int("epochs", 2);
  scale.prune_max_rounds = args.get_int("rounds", 6);
  scale.defense_max_epochs = args.get_int("ft-epochs", 3);

  const auto bd_model =
      eval::prepare_backdoored_model(dataset, arch, attack, scale, seed);

  // Profile the trial the way the bench harness runs it: supervised, so
  // the watchdog/retry machinery shows up in the stats section below.
  auto& supervisor = robust::Supervisor::instance();
  eval::TrialResult trial;
  const robust::RunReport report = supervisor.run(
      "profile|" + attack + "|" + defense_name, [&] {
        trial = eval::run_defense_trial(bd_model, defense_name,
                                        args.get_int("spc", 10), scale,
                                        seed ^ 0xBDC71EULL);
      });
  if (!report.ok()) {
    std::fprintf(stderr, "bdctl profile: trial failed: %s\n",
                 report.failure.c_str());
    return 1;
  }

  std::printf("profiled %s + %s on %s/%s: ACC=%.2f ASR=%.2f RA=%.2f "
              "pruned=%lld (%.1fs)\n",
              attack.c_str(), defense_name.c_str(), dataset.c_str(),
              arch.c_str(), trial.metrics.acc, trial.metrics.asr,
              trial.metrics.ra,
              static_cast<long long>(trial.info.pruned_units),
              trial.info.seconds);
  const robust::SupervisorStats stats = supervisor.stats();
  std::printf("\n-- supervisor --\n"
              "runs=%lld retries=%lld timeouts=%lld quarantines=%lld "
              "degraded_attempts=%lld\n",
              static_cast<long long>(stats.runs),
              static_cast<long long>(stats.retries),
              static_cast<long long>(stats.timeouts),
              static_cast<long long>(stats.quarantines),
              static_cast<long long>(stats.failures));
  std::printf("\n-- span tree --\n%s", obs::render_span_tree().c_str());
  std::printf("\n-- metrics --\n%s", obs::registry().summary(topk).c_str());
  obs::flush_env_exports();
  return 0;
}

std::string serve_socket(const Args& args) {
  return args.get("socket", "bdserve.sock");
}

/// Client for the daemon: --connect host:port selects TCP, otherwise the
/// --socket Unix path. Retry/deadline policy comes from the environment
/// (BDPROTO_RETRY_BUDGET etc.); `jitter_salt` decorrelates backoff across
/// concurrent clients (loadgen workers).
serve::Client make_client(const Args& args, std::uint64_t jitter_salt = 0) {
  serve::ClientConfig config = serve::ClientConfig::from_env();
  config.jitter_seed ^= jitter_salt;
  if (args.flags.count("connect")) {
    return serve::Client(serve::tcp_endpoint(args.get("connect", "")),
                         config);
  }
  return serve::Client(serve::unix_endpoint(serve_socket(args)), config);
}

/// Builds the submit request's "job" object from the CLI's job flags. Only
/// flags the caller actually passed are emitted, so daemon-side defaults
/// apply to everything else. `seed_override` >= 0 replaces --seed (the
/// load generator uses it to spread jobs across distinct backbones).
std::string job_object_from_flags(const Args& args,
                                  std::int64_t seed_override = -1,
                                  const std::string& client_id_override = "") {
  serve::JsonObject job;
  const auto set_str = [&args, &job](const char* flag, const char* member) {
    if (args.flags.count(flag)) job.set(member, args.get(flag, ""));
  };
  const auto set_int = [&args, &job](const char* flag, const char* member) {
    if (args.flags.count(flag)) job.set_int(member, args.get_int(flag, 0));
  };
  set_str("dataset", "dataset");
  set_str("arch", "arch");
  set_str("attack", "attack");
  set_str("defense", "defense");
  set_int("spc", "spc");
  if (seed_override >= 0) {
    job.set_int("seed", seed_override);
  } else {
    set_int("seed", "seed");
  }
  set_int("width", "width");
  set_int("attack-epochs", "attack_epochs");
  set_int("prune-rounds", "prune_rounds");
  set_int("ft-epochs", "finetune_epochs");
  set_int("train-per-class", "train_per_class");
  set_int("test-per-class", "test_per_class");
  set_str("model", "model");
  set_str("out", "out");
  if (!client_id_override.empty()) {
    job.set("client_id", client_id_override);
  } else {
    set_str("client-id", "client_id");
  }
  return job.str();
}

void print_job(const serve::Json& job) {
  std::printf("%-8s %-11s %-10s %s/%s/%s %s spc=%lld attempts=%lld%s",
              job.get_string("id").c_str(), job.get_string("state").c_str(),
              job.get_string("tenant").c_str(),
              job.get_string("dataset").c_str(),
              job.get_string("arch").c_str(), job.get_string("attack").c_str(),
              job.get_string("defense").c_str(),
              static_cast<long long>(job.get_int("spc", 0)),
              static_cast<long long>(job.get_int("attempts", 0)),
              job.get_bool("cache_hit", false) ? " cache=hit" : "");
  if (job.find("acc") != nullptr) {
    std::printf("  ACC=%.2f ASR=%.2f RA=%.2f pruned=%lld %.1fs",
                job.get_double("acc", 0), job.get_double("asr", 0),
                job.get_double("ra", 0),
                static_cast<long long>(job.get_int("pruned", 0)),
                job.get_double("seconds", 0));
  }
  const std::string error = job.get_string("error");
  if (!error.empty()) std::printf("  error=%s", error.c_str());
  std::printf("\n");
}

/// Blocks until `id` reaches a terminal state via the server-side wait op
/// (re-issued in <= 30s slices: the daemon clamps each wait), printing the
/// final record. Reports "timed out" and "unknown job" distinctly — the
/// daemon's WaitOutcome keeps them apart.
int wait_for_job(const serve::Client& client, const std::string& id,
                 double timeout_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    double slice = 30.0;
    if (timeout_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - t0;
      const double remaining = timeout_seconds - elapsed.count();
      if (remaining <= 0) {
        std::fprintf(stderr,
                     "bdctl: timed out waiting for %s (job still in flight; "
                     "check later with bdctl jobs)\n",
                     id.c_str());
        return 1;
      }
      slice = remaining < slice ? remaining : slice;
    }
    const serve::Json response = client.request_json_retry(
        serve::JsonObject()
            .set("op", "wait")
            .set("id", id)
            .set_double("timeout", slice)
            .str());
    if (response.get_bool("ok", false)) {
      const serve::Json* job = response.find("job");
      if (job == nullptr) return 1;
      print_job(*job);
      return job->get_string("state") == "done" ? 0 : 1;
    }
    const std::string code = response.get_string("error");
    if (code == "wait_timeout") continue;  // still in flight; next slice
    if (code == "unknown_job") {
      std::fprintf(stderr, "bdctl: no job with id %s on this daemon\n",
                   id.c_str());
      return 1;
    }
    std::fprintf(stderr, "bdctl: wait %s: %s\n", id.c_str(),
                 response.get_string("message").c_str());
    return 1;
  }
}

int cmd_serve(const Args& args) {
  serve::ServerConfig config;
  config.socket_path = serve_socket(args);
  config.listen_address =
      args.get("listen", env_string("BDPROTO_LISTEN").value_or(""));
  config.max_connections = static_cast<std::size_t>(args.get_int(
      "conn-cap", env_int("BDPROTO_CONN_CAP").value_or(64)));
  config.read_deadline_seconds = std::stod(args.get(
      "read-deadline",
      std::to_string(env_double("BDPROTO_READ_DEADLINE").value_or(30.0))));
  config.write_deadline_seconds = std::stod(args.get(
      "write-deadline",
      std::to_string(env_double("BDPROTO_WRITE_DEADLINE").value_or(30.0))));
  config.install_signal_handlers = true;  // SIGTERM/SIGINT = graceful drain
  config.service.workers =
      static_cast<std::size_t>(args.get_int("workers", 2));
  config.service.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue", 16));
  config.service.tenant_quota =
      static_cast<std::size_t>(args.get_int("quota", 4));
  config.service.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 4));
  config.service.journal_path = args.get("journal", "");
  config.service.resume_interrupted = args.get_int("resume", 0) != 0;

  serve::SocketServer server(config);
  const serve::ServiceStats loaded = server.service().stats();
  if (loaded.submitted > 0) {
    std::printf("journal: %lld jobs (%lld done, %lld failed, %lld cancelled, "
                "%lld interrupted)\n",
                static_cast<long long>(loaded.submitted),
                static_cast<long long>(loaded.done),
                static_cast<long long>(loaded.failed),
                static_cast<long long>(loaded.cancelled),
                static_cast<long long>(loaded.interrupted));
  }
  std::printf("serving on %s%s%s (workers=%zu queue=%zu quota=%zu cache=%zu "
              "conn-cap=%zu)\n",
              config.socket_path.c_str(),
              config.listen_address.empty() ? "" : " + tcp ",
              config.listen_address.c_str(), config.service.workers,
              config.service.queue_capacity, config.service.tenant_quota,
              config.service.cache_capacity, config.max_connections);
  std::fflush(stdout);
  server.run();
  std::printf("shut down cleanly\n");
  return 0;
}

int cmd_submit(const Args& args) {
  const serve::Client client = make_client(args);
  const std::string tenant = args.get("tenant", "default");
  serve::JsonObject request;
  request.set("op", "submit")
      .set("tenant", tenant)
      .set_raw("job", job_object_from_flags(args));
  // Retried submits are only duplicate-safe with --client-id; without one
  // a transport failure after the daemon enqueued would re-enqueue.
  const serve::Json response =
      args.flags.count("client-id") != 0
          ? client.request_json_retry(request.str())
          : client.request_json(request.str());
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "bdctl submit: %s: %s\n",
                 response.get_string("error", "error").c_str(),
                 response.get_string("message").c_str());
    return 1;
  }
  const std::string id = response.get_string("id");
  if (response.get_bool("dedup", false)) {
    std::printf("deduplicated to %s (tenant=%s, state=%s)\n", id.c_str(),
                tenant.c_str(), response.get_string("state").c_str());
  } else {
    std::printf("submitted %s (tenant=%s)\n", id.c_str(), tenant.c_str());
  }
  if (args.get_int("wait", 0) == 0) return 0;
  return wait_for_job(client, id,
                      static_cast<double>(args.get_int("timeout", 600)));
}

int cmd_jobs(const Args& args) {
  const serve::Client client = make_client(args);
  serve::JsonObject request;
  request.set("op", "jobs");
  if (args.flags.count("tenant")) request.set("tenant", args.get("tenant", ""));
  const serve::Json response = client.request_json(request.str());
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "bdctl jobs: %s\n",
                 response.get_string("message").c_str());
    return 1;
  }
  const serve::Json* jobs = response.find("jobs");
  if (jobs == nullptr || !jobs->is_array()) return 1;
  for (const serve::Json& job : jobs->items()) print_job(job);
  std::printf("%zu job(s)\n", jobs->items().size());
  return 0;
}

int cmd_cancel(const Args& args) {
  const serve::Client client = make_client(args);
  const std::string id = args.get("id", "");
  const serve::Json response = client.request_json(
      serve::JsonObject().set("op", "cancel").set("id", id).str());
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "bdctl cancel: %s: %s\n",
                 response.get_string("error", "error").c_str(),
                 response.get_string("message").c_str());
    return 1;
  }
  std::printf("%s %s\n", id.c_str(), response.get_string("state").c_str());
  return 0;
}

int cmd_shutdown(const Args& args) {
  const serve::Client client = make_client(args);
  const bool drain = args.get_int("drain", 1) != 0;
  serve::JsonObject request;
  request.set("op", "shutdown");
  request.set_bool("drain", drain);
  const serve::Json response = client.request_json(request.str());
  if (!response.get_bool("ok", false)) {
    std::fprintf(stderr, "bdctl shutdown: %s\n",
                 response.get_string("message").c_str());
    return 1;
  }
  std::printf("daemon shutting down (%s)\n",
              drain ? "draining queued jobs"
                    : "abandoning queued jobs; a restart reports them "
                      "interrupted");
  return 0;
}

/// Load generator: submits --jobs jobs round-robin across --tenants
/// synthetic tenants from --concurrency client threads, backing off on
/// admission rejections and retrying transport faults/sheds through the
/// resilient client, then waits for every job and reports throughput plus
/// retry/dedup counts and the daemon's cache stats. --idempotent 1
/// (default) stamps each job with a deterministic client_id derived from
/// --seed and the job index, so retried submits (and a rerun of the same
/// loadgen against a restarted daemon) dedup instead of duplicating.
int cmd_loadgen(const Args& args) {
  const std::int64_t total = args.get_int("jobs", 8);
  const std::int64_t tenants =
      std::max<std::int64_t>(args.get_int("tenants", 2), 1);
  const std::int64_t distinct =
      std::max<std::int64_t>(args.get_int("distinct", 1), 1);
  const std::int64_t base_seed = args.get_int("seed", 1234);
  const std::int64_t concurrency = std::min<std::int64_t>(
      std::max<std::int64_t>(args.get_int("concurrency", 1), 1), 64);
  const bool idempotent = args.get_int("idempotent", 1) != 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> ids(static_cast<std::size_t>(total));
  std::atomic<std::int64_t> rejections{0};
  std::atomic<std::int64_t> transport_retries{0};
  std::atomic<std::int64_t> dedups{0};
  std::atomic<bool> failed{false};

  const auto submit_range = [&](std::int64_t worker) {
    const serve::Client client =
        make_client(args, static_cast<std::uint64_t>(worker) + 1);
    for (std::int64_t i = worker; i < total && !failed.load();
         i += concurrency) {
      // Deterministic idempotency key: stable across retries AND across
      // reruns of the same loadgen invocation against one journal.
      const std::string client_id =
          idempotent ? "lg-" + std::to_string(base_seed) + "-" +
                           std::to_string(i)
                     : "";
      const std::string raw =
          job_object_from_flags(args, base_seed + i % distinct, client_id);
      serve::JsonObject request;
      request.set("op", "submit")
          .set("tenant", "tenant" + std::to_string(i % tenants))
          .set_raw("job", raw);
      for (;;) {
        int retries = 0;
        serve::Json response;
        try {
          response = client.request_json_retry(request.str(), &retries);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bdctl loadgen: job %lld: %s\n",
                       static_cast<long long>(i), e.what());
          failed.store(true);
          return;
        }
        transport_retries.fetch_add(retries);
        if (response.get_bool("ok", false)) {
          ids[static_cast<std::size_t>(i)] = response.get_string("id");
          if (response.get_bool("dedup", false)) dedups.fetch_add(1);
          break;
        }
        const std::string code = response.get_string("error");
        if (code == "queue_full" || code == "quota_exceeded") {
          rejections.fetch_add(1);  // admission pushback: expected
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          continue;
        }
        std::fprintf(stderr, "bdctl loadgen: %s: %s\n", code.c_str(),
                     response.get_string("message").c_str());
        failed.store(true);
        return;
      }
    }
  };

  std::vector<std::thread> submitters;
  for (std::int64_t w = 0; w < concurrency; ++w) {
    submitters.emplace_back(submit_range, w);
  }
  for (auto& t : submitters) t.join();
  if (failed.load()) return 1;

  const serve::Client client = make_client(args);
  std::map<std::string, std::int64_t> states;
  for (const std::string& id : ids) {
    for (;;) {
      const serve::Json response = client.request_json_retry(
          serve::JsonObject().set("op", "status").set("id", id).str());
      const serve::Json* job = response.find("job");
      if (job == nullptr) return 1;
      const std::string state = job->get_string("state");
      if (state != "queued" && state != "running") {
        ++states[state];
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::string breakdown;
  for (const auto& [state, count] : states) {
    breakdown += " " + state + "=" + std::to_string(count);
  }
  std::printf("loadgen: %lld jobs in %.1fs (%.1f jobs/min),%s, "
              "%lld admission rejections (retried)\n",
              static_cast<long long>(total), elapsed.count(),
              elapsed.count() > 0 ? 60.0 * static_cast<double>(total) /
                                        elapsed.count()
                                  : 0.0,
              breakdown.c_str(),
              static_cast<long long>(rejections.load()));
  std::printf("client: transport_retries=%lld dedup=%lld concurrency=%lld\n",
              static_cast<long long>(transport_retries.load()),
              static_cast<long long>(dedups.load()),
              static_cast<long long>(concurrency));

  const serve::Json stats =
      client.request_json_retry(serve::JsonObject().set("op", "stats").str());
  const serve::Json* cache = stats.find("cache");
  if (cache != nullptr) {
    std::printf("cache: hits=%lld misses=%lld evictions=%lld size=%lld\n",
                static_cast<long long>(cache->get_int("hits", 0)),
                static_cast<long long>(cache->get_int("misses", 0)),
                static_cast<long long>(cache->get_int("evictions", 0)),
                static_cast<long long>(cache->get_int("size", 0)));
  }
  return 0;
}

/// `bdctl shard run ... -- <bench command>`: parsed by hand because the
/// trailing `--` introduces a free-form argv the flag grammar must not
/// swallow.
int cmd_shard(int argc, char** argv) {
  if (argc < 3 || std::strcmp(argv[2], "run") != 0) return usage();
  shard::CoordinatorOptions options;
  int i = 3;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--") {
      ++i;
      break;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bdctl shard run: flag %s needs a value\n",
                   flag.c_str());
      return 2;
    }
    const std::string value = argv[++i];
    if (flag == "--workers") {
      options.workers = static_cast<int>(std::stoll(value));
    } else if (flag == "--journal") {
      options.journal_path = value;
    } else if (flag == "--ledger") {
      options.ledger_path = value;
    } else if (flag == "--ttl") {
      options.lease_ttl_seconds = std::stod(value);
    } else if (flag == "--out") {
      options.merged_out = value;
    } else if (flag == "--resume") {
      options.resume = std::stoll(value) != 0;
    } else if (flag == "--worker-faults") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr,
                     "bdctl shard run: --worker-faults wants IDX:SPEC "
                     "(e.g. 2:crash_worker@1), got %s\n",
                     value.c_str());
        return 2;
      }
      options.worker_faults[static_cast<int>(
          std::stoll(value.substr(0, colon)))] = value.substr(colon + 1);
    } else {
      std::fprintf(stderr, "bdctl shard run: unknown flag %s\n",
                   flag.c_str());
      return 2;
    }
  }
  for (; i < argc; ++i) options.command.push_back(argv[i]);
  if (options.command.empty()) {
    std::fprintf(stderr,
                 "bdctl shard run: missing '-- <bench command...>'\n");
    return 2;
  }
  const shard::CoordinatorReport report = shard::run_sharded(options);
  return report.exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
      if (argc != 3) return usage();
      return cmd_verify(argv[2]);
    }
    if (argc >= 2 && std::strcmp(argv[1], "shard") == 0) {
      return cmd_shard(argc, argv);
    }
    const Args args = parse_args(argc, argv);
    if (args.command == "train-backdoor") return cmd_train(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "defend") return cmd_defend(args);
    if (args.command == "profile") return cmd_profile(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "submit") return cmd_submit(args);
    if (args.command == "jobs") return cmd_jobs(args);
    if (args.command == "cancel") return cmd_cancel(args);
    if (args.command == "shutdown") return cmd_shutdown(args);
    if (args.command == "loadgen") return cmd_loadgen(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl: %s\n", e.what());
    return 1;
  }
}
