// bdctl - command-line front end for the library, built on checkpoints so
// each stage can run in a separate process (the way a downstream user
// would actually operate: train once, audit and repair later).
//
//   bdctl train-backdoor --attack badnet --arch preactresnet \
//          --dataset cifar --out model.ckpt
//   bdctl evaluate       --attack badnet --arch preactresnet \
//          --dataset cifar --model model.ckpt
//   bdctl defend         --attack badnet --arch preactresnet \
//          --dataset cifar --model model.ckpt --defense gradprune \
//          --spc 10 --out repaired.ckpt
//
// Common flags: --seed N, --width N. The synthetic dataset is regenerated
// deterministically from the seed, so triggered test sets are identical
// across invocations.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/registry.h"
#include "eval/runner.h"
#include "nn/checkpoint.h"
#include "obs/obs.h"
#include "robust/journal.h"
#include "robust/supervisor.h"
#include "util/env.h"
#include "util/logging.h"

namespace {

using namespace bd;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw std::invalid_argument(std::string("expected flag, got ") +
                                  argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: bdctl <train-backdoor|evaluate|defend|verify|profile>"
               " [flags]\n"
               "  common   : --attack badnet|blended|lf|bpp|dynamic\n"
               "             --arch preactresnet|vgg|efficientnet|mobilenet\n"
               "             --dataset cifar|gtsrb  --seed N  --width N\n"
               "  train    : --out model.ckpt\n"
               "  evaluate : --model model.ckpt\n"
               "  defend   : --model model.ckpt --defense ft|fp|nad|clp|"
               "ftsam|anp|gradprune --spc N --out repaired.ckpt\n"
               "  verify   : bdctl verify <checkpoint>  (checks magic/"
               "version/CRC, prints the state dict,\n"
               "             exits non-zero on corruption)\n"
               "             bdctl verify <journal>  (run-journal summary: "
               "entries, retries,\n"
               "             degraded cells with failure reasons)\n"
               "  profile  : --defense NAME --spc N --epochs N --rounds N "
               "--topk N\n"
               "             runs an instrumented attack+defense workload and "
               "prints the span\n"
               "             tree plus top metrics; honors BDPROTO_TRACE/"
               "BDPROTO_METRICS export\n"
               "             paths\n");
  return 2;
}

/// `bdctl verify <journal>`: loads a JSONL run journal and summarizes its
/// supervisor history — entries, total retries, degraded cells and their
/// failure reasons. Exits non-zero on a corrupt journal.
int cmd_verify_journal(const std::string& path) {
  try {
    const robust::RunJournal journal(path);
    std::int64_t retries = 0;
    std::size_t degraded = 0;
    std::vector<std::string> degraded_lines;
    for (const auto& [key, fields] : journal.entries()) {
      const auto get = [&fields](const char* name) {
        const auto it = fields.find(name);
        return it == fields.end() ? std::string() : it->second;
      };
      const std::int64_t attempts =
          std::strtoll(get("attempts").c_str(), nullptr, 10);
      const std::string acc = get("acc");
      const std::int64_t cell_trials =
          get("cell") == "baseline"
              ? 1
              : static_cast<std::int64_t>(
                    std::count(acc.begin(), acc.end(), ',') +
                    (acc.empty() ? 0 : 1));
      if (attempts > cell_trials) retries += attempts - cell_trials;
      if (get("degraded") == "1") {
        ++degraded;
        const std::string label =
            get("cell") == "baseline"
                ? get("attack") + "/baseline"
                : get("attack") + "/" + get("defense") + "/spc=" + get("spc");
        degraded_lines.push_back(label + ": " + get("error") +
                                 " (attempts=" + std::to_string(attempts) +
                                 ")");
      }
    }
    std::printf("%s: run journal, %zu entries, %lld retries, %zu degraded\n",
                path.c_str(), journal.size(),
                static_cast<long long>(retries), degraded);
    for (const auto& line : degraded_lines) {
      std::printf("  degraded %s\n", line.c_str());
    }
    std::printf("OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl verify: CORRUPT: %s\n", e.what());
    return 1;
  }
}

/// `bdctl verify <checkpoint>`: full integrity check + state-dict summary.
/// Journals (first byte '{') are dispatched to the journal summary above.
int cmd_verify(const std::string& path) {
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe && probe.peek() == '{') return cmd_verify_journal(path);
  }
  try {
    const nn::CheckpointInfo info = nn::inspect_checkpoint(path);
    std::printf("%s: format v%u, %s, %zu entries, %lld elements\n",
                path.c_str(), info.version,
                info.crc_verified ? "CRC ok" : "no CRC (legacy v1)",
                info.entries.size(),
                static_cast<long long>(info.total_elements));
    for (const auto& entry : info.entries) {
      std::string shape = "[";
      for (std::size_t d = 0; d < entry.shape.size(); ++d) {
        if (d) shape += ", ";
        shape += std::to_string(entry.shape[d]);
      }
      shape += "]";
      std::printf("  %-40s %-20s %lld\n", entry.name.c_str(), shape.c_str(),
                  static_cast<long long>(entry.numel));
    }
    std::printf("OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl verify: CORRUPT: %s\n", e.what());
    return 1;
  }
}

/// Rebuilds the deterministic experiment context for the given flags.
eval::BackdooredModel build_context(const Args& args, bool train) {
  const std::string dataset = args.get("dataset", "cifar");
  const std::string arch = args.get("arch", "preactresnet");
  const std::string attack = args.get("attack", "badnet");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  eval::ExperimentScale scale = eval::default_scale(dataset);
  if (args.flags.count("width")) {
    scale.base_width = args.get_int("width", scale.base_width);
  }
  if (!train) {
    // Only the datasets/test sets are needed; skip the training epochs by
    // training 1 epoch on a throwaway model is wasteful - but
    // prepare_backdoored_model is the single source of truth for the data
    // pipeline, so reuse it with the training budget the caller asked for.
  }
  return eval::prepare_backdoored_model(dataset, arch, attack, scale, seed);
}

int cmd_train(const Args& args) {
  const std::string out = args.get("out", "model.ckpt");
  const auto bd_model = build_context(args, /*train=*/true);
  Rng rng(1);
  auto model = bd_model.instantiate(rng);
  nn::save_checkpoint(*model, out);
  std::printf("wrote %s  (baseline ACC=%.2f ASR=%.2f RA=%.2f)\n", out.c_str(),
              bd_model.baseline.acc, bd_model.baseline.asr,
              bd_model.baseline.ra);
  return 0;
}

int cmd_evaluate(const Args& args) {
  const std::string path = args.get("model", "model.ckpt");
  auto bd_model = build_context(args, /*train=*/false);
  Rng rng(1);
  auto model = bd_model.instantiate(rng);
  nn::load_checkpoint(*model, path);
  const auto m = eval::evaluate_backdoor(*model, bd_model.clean_test,
                                         bd_model.asr_test, bd_model.ra_test);
  std::printf("%s: ACC=%.2f ASR=%.2f RA=%.2f\n", path.c_str(), m.acc, m.asr,
              m.ra);
  return 0;
}

int cmd_defend(const Args& args) {
  const std::string path = args.get("model", "model.ckpt");
  const std::string out = args.get("out", "repaired.ckpt");
  const std::string defense_name = args.get("defense", "gradprune");
  const std::int64_t spc = args.get_int("spc", 10);

  auto bd_model = build_context(args, /*train=*/false);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1234)) ^
          0xDEFE45EULL);
  auto model = bd_model.instantiate(rng);
  nn::load_checkpoint(*model, path);

  const auto spc_set = bd_model.clean_train_pool.sample_per_class(spc, rng);
  const auto ctx = defense::make_defense_context(spc_set, *bd_model.trigger,
                                                 bd_model.spec, rng);
  auto defense = core::make_defense(defense_name);
  const auto info = defense->apply(*model, ctx);

  const auto m = eval::evaluate_backdoor(*model, bd_model.clean_test,
                                         bd_model.asr_test, bd_model.ra_test);
  nn::save_checkpoint(*model, out);
  std::printf("%s (spc=%lld): pruned=%lld ft_epochs=%lld %.1fs\n",
              core::defense_display_name(defense_name).c_str(),
              static_cast<long long>(spc),
              static_cast<long long>(info.pruned_units),
              static_cast<long long>(info.finetune_epochs), info.seconds);
  std::printf("wrote %s  (ACC=%.2f ASR=%.2f RA=%.2f)\n", out.c_str(), m.acc,
              m.asr, m.ra);
  return 0;
}

/// `bdctl profile`: run a deliberately small attack + defense workload with
/// both observability pillars forced on, then print the hierarchical span
/// tree and the busiest metrics. When BDPROTO_TRACE / BDPROTO_METRICS name
/// export paths, the trace/metrics files are written as well.
int cmd_profile(const Args& args) {
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);

  const std::string dataset = args.get("dataset", "cifar");
  const std::string arch = args.get("arch", "preactresnet");
  const std::string attack = args.get("attack", "badnet");
  const std::string defense_name = args.get("defense", "gradprune");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  const auto topk = static_cast<std::size_t>(args.get_int("topk", 10));

  eval::ExperimentScale scale = eval::default_scale(dataset);
  scale.base_width = args.get_int("width", scale.base_width);
  scale.attack_train.epochs = args.get_int("epochs", 2);
  scale.prune_max_rounds = args.get_int("rounds", 6);
  scale.defense_max_epochs = args.get_int("ft-epochs", 3);

  const auto bd_model =
      eval::prepare_backdoored_model(dataset, arch, attack, scale, seed);

  // Profile the trial the way the bench harness runs it: supervised, so
  // the watchdog/retry machinery shows up in the stats section below.
  auto& supervisor = robust::Supervisor::instance();
  eval::TrialResult trial;
  const robust::RunReport report = supervisor.run(
      "profile|" + attack + "|" + defense_name, [&] {
        trial = eval::run_defense_trial(bd_model, defense_name,
                                        args.get_int("spc", 10), scale,
                                        seed ^ 0xBDC71EULL);
      });
  if (!report.ok()) {
    std::fprintf(stderr, "bdctl profile: trial failed: %s\n",
                 report.failure.c_str());
    return 1;
  }

  std::printf("profiled %s + %s on %s/%s: ACC=%.2f ASR=%.2f RA=%.2f "
              "pruned=%lld (%.1fs)\n",
              attack.c_str(), defense_name.c_str(), dataset.c_str(),
              arch.c_str(), trial.metrics.acc, trial.metrics.asr,
              trial.metrics.ra,
              static_cast<long long>(trial.info.pruned_units),
              trial.info.seconds);
  const robust::SupervisorStats stats = supervisor.stats();
  std::printf("\n-- supervisor --\n"
              "runs=%lld retries=%lld timeouts=%lld quarantines=%lld "
              "degraded_attempts=%lld\n",
              static_cast<long long>(stats.runs),
              static_cast<long long>(stats.retries),
              static_cast<long long>(stats.timeouts),
              static_cast<long long>(stats.quarantines),
              static_cast<long long>(stats.failures));
  std::printf("\n-- span tree --\n%s", obs::render_span_tree().c_str());
  std::printf("\n-- metrics --\n%s", obs::registry().summary(topk).c_str());
  obs::flush_env_exports();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
      if (argc != 3) return usage();
      return cmd_verify(argv[2]);
    }
    const Args args = parse_args(argc, argv);
    if (args.command == "train-backdoor") return cmd_train(args);
    if (args.command == "evaluate") return cmd_evaluate(args);
    if (args.command == "defend") return cmd_defend(args);
    if (args.command == "profile") return cmd_profile(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bdctl: %s\n", e.what());
    return 1;
  }
}
