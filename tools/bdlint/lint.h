// bdlint — repo-invariant static analysis for the backdoor-unlearning
// engine.
//
// The engine's correctness story rests on conventions the compiler cannot
// check: bitwise determinism across thread counts, byte-identical resume,
// cooperative cancellation, atomic tmp+rename output files, and a global
// lock-rank order. bdlint is a lightweight, libclang-free analyzer (a
// comment/string-aware tokenizer plus per-rule matchers) that turns those
// conventions into machine-enforced rules over `src/ examples/ bench/`.
//
// Rules (each individually suppressible):
//
//   no-nondeterminism       rand()/srand()/random_device, wall-clock time
//                           sources (system_clock, time(), clock(), ...)
//                           outside the whitelisted util/obs/robust timing
//                           sites. Hidden entropy breaks the thread-count
//                           and resume byte-identity contracts.
//   no-naked-lock           manual .lock()/.unlock() member calls; every
//                           mutex must be held through a RAII guard
//                           (lock_guard/unique_lock/scoped_lock) so no
//                           exception path leaks a held lock.
//   no-relaxed-atomics      memory_order_relaxed outside src/obs/ (the
//                           metrics hot path is the one sanctioned user);
//                           elsewhere relaxed ordering needs a justified
//                           suppression.
//   no-naked-ofstream       std::ofstream/fopen outside the atomic-write
//                           helpers in util/ and robust/; everything else
//                           must go through bd::write_file_atomic or the
//                           checkpoint/journal writers so a crash never
//                           leaves a torn output file.
//   no-swallowed-catch      catch (...) must rethrow, capture
//                           (current_exception) or log; silently eating an
//                           unknown exception hides watchdog cancellations
//                           and simulated crashes. The Supervisor/serve
//                           job boundary is exempt by path.
//   no-unordered-iteration-to-output
//                           range-for over an unordered_map/unordered_set
//                           feeding an output sink (stream <<, append,
//                           push_back, printf); hash-order iteration makes
//                           emitted tables/JSON nondeterministic.
//
// Suppressions:
//   // bdlint:allow(rule)          on the finding's line, the line above,
//                                  or in the comment block directly above
//                                  the statement (multi-line justifications
//                                  reach the first code line that follows)
//   // bdlint:allow(rule1,rule2)   multiple rules at once
//   // bdlint:allow-file(rule): why ...   anywhere: whole-file suppression
#pragma once

#include <string>
#include <vector>

namespace bd::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// Every rule bdlint knows, in reporting order.
const std::vector<RuleInfo>& rule_catalog();

/// Lints in-memory source. `path` is used for reporting and for the
/// per-rule path whitelists (substring match, so absolute and relative
/// spellings behave the same).
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content);

/// Lints one file from disk. Unreadable files yield a single "io" finding.
std::vector<Finding> lint_file(const std::string& path);

/// Recursively lints every C++ source/header under each root (or the root
/// itself when it is a file). Results are sorted by file, then line.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

/// "file:line: [rule] message" — clickable in editors and CI logs.
std::string format_finding(const Finding& finding);

}  // namespace bd::lint
