// bdlint CLI — lints the repo's invariant-bearing trees and exits nonzero
// when any finding survives suppression. CI runs `bdlint` from the repo
// root; developers can lint a subtree or a single file:
//
//   bdlint                         # lint src/ examples/ bench/
//   bdlint --root src/serve        # one subtree
//   bdlint src/serve/service.cpp   # specific files
//   bdlint --list-rules            # the rule catalog
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage(int code) {
  std::cerr << "usage: bdlint [--list-rules] [--root <dir>]... [file...]\n"
            << "default roots: src examples bench\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : bd::lint::rule_catalog()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(2);
      roots.push_back(argv[++i]);
      continue;
    }
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg.rfind("--", 0) == 0) return usage(2);
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "examples", "bench"};

  const std::vector<bd::lint::Finding> findings = bd::lint::lint_tree(roots);
  for (const auto& finding : findings) {
    std::cout << bd::lint::format_finding(finding) << "\n";
  }
  if (findings.empty()) {
    std::cout << "bdlint: clean\n";
    return 0;
  }
  std::cout << "bdlint: " << findings.size() << " finding(s)\n";
  return 1;
}
