#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace bd::lint {

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Comment/string-stripped view of one translation unit: `code` mirrors the
/// input byte-for-byte with comment bodies and literal contents blanked to
/// spaces (newlines kept, so offsets and line numbers survive), and
/// `comments` collects the raw comment text per line for suppressions.
struct StrippedSource {
  std::string code;
  std::vector<std::string> comments;  // 1-based line -> comment text
  std::vector<std::size_t> line_starts;

  int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }
};

StrippedSource strip(const std::string& src) {
  StrippedSource out;
  out.code.assign(src.size(), ' ');
  const int total_lines =
      1 + static_cast<int>(std::count(src.begin(), src.end(), '\n'));
  out.comments.assign(static_cast<std::size_t>(total_lines) + 2, "");
  out.line_starts.push_back(0);

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_terminator;  // )delim" for the active raw string
  int line = 1;

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      out.line_starts.push_back(i + 1);
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.comments[static_cast<std::size_t>(line)] += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"' && i >= 1 && src[i - 1] == 'R') {
          // Raw string literal: R"delim( ... )delim"
          std::size_t j = i + 1;
          std::string delim;
          while (j < src.size() && src[j] != '(' && delim.size() < 16) {
            delim += src[j++];
          }
          raw_terminator = ")" + delim + "\"";
          out.code[i] = '"';
          state = State::kRawString;
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kString;
        } else if (c == '\'' && !(i >= 1 && is_word_char(src[i - 1]))) {
          // A digit separator (1'000'000) is not a char literal.
          out.code[i] = '\'';
          state = State::kChar;
        } else {
          out.code[i] = c;
        }
        break;
      case State::kLineComment:
        out.comments[static_cast<std::size_t>(line)] += c;
        break;
      case State::kBlockComment:
        out.comments[static_cast<std::size_t>(line)] += c;
        if (c == '*' && next == '/') {
          out.comments[static_cast<std::size_t>(line)] += '/';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character (newlines handled above)
        } else if (c == '"') {
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_terminator[0] &&
            src.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          out.code[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::size_t find_token(const std::string& code, const std::string& token,
                       std::size_t from = 0) {
  for (std::size_t pos = code.find(token, from); pos != std::string::npos;
       pos = code.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !is_word_char(code[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::size_t skip_ws_back(const std::string& code, std::size_t pos) {
  // Returns the index of the last non-space char strictly before pos, or
  // npos when none exists.
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(code[pos])) == 0) return pos;
  }
  return std::string::npos;
}

/// Matches a bracket pair starting at `open_pos` (which must hold `open`);
/// returns the offset of the closing bracket or npos.
std::size_t match_bracket(const std::string& code, std::size_t open_pos,
                          char open, char close) {
  int depth = 0;
  for (std::size_t i = open_pos; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    else if (code[i] == close && --depth == 0) return i;
  }
  return std::string::npos;
}

bool path_contains(const std::string& path,
                   std::initializer_list<const char*> needles) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  for (const char* needle : needles) {
    if (normalized.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Parses every "bdlint:allow(...)" / "bdlint:allow-file(...)" list in
/// `text` and appends the named rules to `rules`.
void parse_allow_lists(const std::string& text, const std::string& marker,
                       std::set<std::string>& rules) {
  for (std::size_t pos = text.find(marker); pos != std::string::npos;
       pos = text.find(marker, pos + 1)) {
    const std::size_t open = pos + marker.size();
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    std::string list = text.substr(open, close - open);
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const std::size_t a = rule.find_first_not_of(" \t");
      const std::size_t b = rule.find_last_not_of(" \t");
      if (a != std::string::npos) rules.insert(rule.substr(a, b - a + 1));
    }
  }
}

class Suppressions {
 public:
  Suppressions(const StrippedSource& stripped) {
    per_line_.assign(stripped.comments.size(), {});
    for (std::size_t i = 0; i < stripped.comments.size(); ++i) {
      const std::string& text = stripped.comments[i];
      if (text.find("bdlint:") == std::string::npos) continue;
      parse_allow_lists(text, "bdlint:allow(", per_line_[i]);
      parse_allow_lists(text, "bdlint:allow-file(", whole_file_);
    }
    // An allow written in a comment block governs the statement below it,
    // even when the justification spans several comment lines or the
    // statement wraps: propagate rules on code-free lines down to the first
    // line carrying code and through that statement's continuation lines
    // (until a line ends in ';', '{' or '}'). Propagated allows live in a
    // separate map so they never leak past the governed statement the way
    // the literal line-above rule would.
    propagated_.assign(per_line_.size(), {});
    const std::size_t total = stripped.line_starts.size();
    for (std::size_t i = 1; i < per_line_.size() && i <= total; ++i) {
      if (per_line_[i].empty() || line_has_code(stripped, i)) continue;
      std::size_t j = i + 1;
      while (j <= total && !line_has_code(stripped, j)) ++j;
      for (int span = 0; j <= total && j < propagated_.size() && span < 8;
           ++j, ++span) {
        propagated_[j].insert(per_line_[i].begin(), per_line_[i].end());
        if (statement_ends_on(stripped, j)) break;
      }
    }
  }

  bool allowed(const std::string& rule, int line) const {
    if (whole_file_.count(rule) != 0) return true;
    const auto at = [&](const std::vector<std::set<std::string>>& map,
                       int l) {
      return l >= 0 && static_cast<std::size_t>(l) < map.size() &&
             map[static_cast<std::size_t>(l)].count(rule) != 0;
    };
    return at(per_line_, line) || at(per_line_, line - 1) ||
           at(propagated_, line);
  }

 private:
  static bool line_has_code(const StrippedSource& stripped, std::size_t line) {
    const std::size_t begin = stripped.line_starts[line - 1];
    const std::size_t end = line < stripped.line_starts.size()
                                ? stripped.line_starts[line]
                                : stripped.code.size();
    for (std::size_t i = begin; i < end; ++i) {
      if (std::isspace(static_cast<unsigned char>(stripped.code[i])) == 0) {
        return true;
      }
    }
    return false;
  }

  static bool statement_ends_on(const StrippedSource& stripped,
                                std::size_t line) {
    const std::size_t begin = stripped.line_starts[line - 1];
    const std::size_t end = line < stripped.line_starts.size()
                                ? stripped.line_starts[line]
                                : stripped.code.size();
    for (std::size_t i = end; i > begin; --i) {
      const char c = stripped.code[i - 1];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
      return c == ';' || c == '{' || c == '}';
    }
    return false;
  }

  std::vector<std::set<std::string>> per_line_;
  std::vector<std::set<std::string>> propagated_;
  std::set<std::string> whole_file_;
};

struct LintContext {
  const std::string& path;
  const StrippedSource& stripped;
  const Suppressions& suppressions;
  std::vector<Finding>& findings;

  void report(const std::string& rule, std::size_t offset,
              const std::string& message) {
    const int line = stripped.line_of(offset);
    if (suppressions.allowed(rule, line)) return;
    findings.push_back({path, line, rule, message});
  }
};

// ---------------------------------------------------------------------------
// no-nondeterminism

void rule_no_nondeterminism(LintContext& ctx) {
  if (path_contains(ctx.path, {"src/util/", "src/obs/", "src/robust/"})) {
    return;  // whitelisted timing/entropy sites (rng, stopwatch, watchdog)
  }
  const std::string& code = ctx.stripped.code;
  static const char* kBannedAnywhere[] = {
      "random_device", "system_clock", "high_resolution_clock",
      "gettimeofday", "localtime", "drand48"};
  for (const char* token : kBannedAnywhere) {
    for (std::size_t pos = find_token(code, token); pos != std::string::npos;
         pos = find_token(code, token, pos + 1)) {
      ctx.report("no-nondeterminism", pos,
                 std::string(token) +
                     " breaks the bitwise thread-count/resume determinism "
                     "contract; derive from bd::Rng seeds or steady_clock");
    }
  }
  static const char* kBannedCalls[] = {"rand", "srand", "rand_r", "time",
                                       "clock"};
  for (const char* token : kBannedCalls) {
    for (std::size_t pos = find_token(code, token); pos != std::string::npos;
         pos = find_token(code, token, pos + 1)) {
      const std::size_t after = skip_ws(code, pos + std::string(token).size());
      if (after >= code.size() || code[after] != '(') continue;
      ctx.report("no-nondeterminism", pos,
                 std::string(token) +
                     "() is hidden entropy/wall-clock state; use bd::Rng "
                     "with a journaled seed or steady_clock");
    }
  }
}

// ---------------------------------------------------------------------------
// no-naked-lock

void rule_no_naked_lock(LintContext& ctx) {
  const std::string& code = ctx.stripped.code;
  for (const char* token : {"lock", "unlock"}) {
    for (std::size_t pos = find_token(code, token); pos != std::string::npos;
         pos = find_token(code, token, pos + 1)) {
      // Member call: receiver '.' or '->' on the left...
      const std::size_t before = skip_ws_back(code, pos);
      const bool member =
          before != std::string::npos &&
          (code[before] == '.' ||
           (code[before] == '>' && before >= 1 && code[before - 1] == '-'));
      if (!member) continue;
      // ...and an empty argument list on the right.
      std::size_t after = skip_ws(code, pos + std::string(token).size());
      if (after >= code.size() || code[after] != '(') continue;
      after = skip_ws(code, after + 1);
      if (after >= code.size() || code[after] != ')') continue;
      ctx.report("no-naked-lock", pos,
                 std::string("manual .") + token +
                     "() — hold mutexes through lock_guard/unique_lock/"
                     "scoped_lock so no exception path leaks the lock");
    }
  }
}

// ---------------------------------------------------------------------------
// no-relaxed-atomics

void rule_no_relaxed_atomics(LintContext& ctx) {
  if (path_contains(ctx.path, {"src/obs/"})) return;
  const std::string& code = ctx.stripped.code;
  for (std::size_t pos = find_token(code, "memory_order_relaxed");
       pos != std::string::npos;
       pos = find_token(code, "memory_order_relaxed", pos + 1)) {
    ctx.report("no-relaxed-atomics", pos,
               "memory_order_relaxed outside src/obs/ — default to seq_cst "
               "or acquire/release, or suppress with a justification");
  }
}

// ---------------------------------------------------------------------------
// no-naked-ofstream

void rule_no_naked_ofstream(LintContext& ctx) {
  if (path_contains(ctx.path, {"src/util/", "src/robust/"})) return;
  const std::string& code = ctx.stripped.code;
  for (std::size_t pos = find_token(code, "ofstream");
       pos != std::string::npos; pos = find_token(code, "ofstream", pos + 1)) {
    ctx.report("no-naked-ofstream", pos,
               "raw ofstream can leave a torn file on crash; use "
               "bd::write_file_atomic (util/atomic_file.h) or the "
               "checkpoint/journal writers");
  }
  for (std::size_t pos = find_token(code, "fopen"); pos != std::string::npos;
       pos = find_token(code, "fopen", pos + 1)) {
    const std::size_t after = skip_ws(code, pos + 5);
    if (after >= code.size() || code[after] != '(') continue;
    ctx.report("no-naked-ofstream", pos,
               "raw fopen() can leave a torn file on crash; use "
               "bd::write_file_atomic (util/atomic_file.h)");
  }
}

// ---------------------------------------------------------------------------
// no-swallowed-catch

void rule_no_swallowed_catch(LintContext& ctx) {
  if (path_contains(ctx.path, {"robust/supervisor.", "serve/service."})) {
    return;  // the sanctioned job boundary: failures become RunReports
  }
  const std::string& code = ctx.stripped.code;
  for (std::size_t pos = find_token(code, "catch"); pos != std::string::npos;
       pos = find_token(code, "catch", pos + 1)) {
    std::size_t open = skip_ws(code, pos + 5);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_bracket(code, open, '(', ')');
    if (close == std::string::npos) continue;
    std::string params = code.substr(open + 1, close - open - 1);
    params.erase(std::remove_if(params.begin(), params.end(),
                                [](unsigned char c) {
                                  return std::isspace(c) != 0;
                                }),
                 params.end());
    if (params != "...") continue;
    const std::size_t brace = skip_ws(code, close + 1);
    if (brace >= code.size() || code[brace] != '{') continue;
    const std::size_t end = match_bracket(code, brace, '{', '}');
    if (end == std::string::npos) continue;
    const std::string body = code.substr(brace, end - brace + 1);
    const bool handled = find_token(body, "throw") != std::string::npos ||
                         find_token(body, "rethrow_exception") !=
                             std::string::npos ||
                         find_token(body, "current_exception") !=
                             std::string::npos ||
                         find_token(body, "BD_LOG") != std::string::npos ||
                         find_token(body, "abort") != std::string::npos ||
                         find_token(body, "terminate") != std::string::npos;
    if (handled) continue;
    ctx.report("no-swallowed-catch", pos,
               "catch (...) swallows the exception — rethrow, capture via "
               "current_exception, or BD_LOG it (silent loss hides watchdog "
               "cancellations and injected faults)");
  }
}

// ---------------------------------------------------------------------------
// no-unordered-iteration-to-output

std::string identifier_after_template(const std::string& code,
                                      std::size_t pos) {
  // `pos` points just past "unordered_map"/"unordered_set"; skip the
  // template argument list and read the declared identifier, if any.
  std::size_t i = skip_ws(code, pos);
  if (i >= code.size() || code[i] != '<') return "";
  int depth = 0;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    else if (code[i] == '>' && --depth == 0) { ++i; break; }
    else if (code[i] == ';') return "";  // e.g. `using X = unordered_map<..>;`
  }
  i = skip_ws(code, i);
  while (i < code.size() && (code[i] == '&' || code[i] == '*')) {
    i = skip_ws(code, i + 1);
  }
  std::string name;
  while (i < code.size() && is_word_char(code[i])) name += code[i++];
  return name;
}

std::string first_identifier(const std::string& expr) {
  std::size_t i = 0;
  while (i < expr.size()) {
    if (is_word_char(expr[i]) &&
        std::isdigit(static_cast<unsigned char>(expr[i])) == 0) {
      std::string name;
      while (i < expr.size() && is_word_char(expr[i])) name += expr[i++];
      if (name == "const" || name == "auto" || name == "this" ||
          name == "std" || name == "as_const") {
        continue;  // qualifiers and wrappers; keep scanning
      }
      return name;
    }
    ++i;
  }
  return "";
}

void rule_no_unordered_iteration(LintContext& ctx) {
  const std::string& code = ctx.stripped.code;

  std::set<std::string> unordered_names;
  for (const char* container : {"unordered_map", "unordered_set",
                                "unordered_multimap", "unordered_multiset"}) {
    for (std::size_t pos = find_token(code, container);
         pos != std::string::npos;
         pos = find_token(code, container, pos + 1)) {
      const std::string name = identifier_after_template(
          code, pos + std::string(container).size());
      if (!name.empty()) unordered_names.insert(name);
    }
  }
  if (unordered_names.empty()) return;

  for (std::size_t pos = find_token(code, "for"); pos != std::string::npos;
       pos = find_token(code, "for", pos + 1)) {
    const std::size_t open = skip_ws(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_bracket(code, open, '(', ')');
    if (close == std::string::npos) continue;
    const std::string header = code.substr(open + 1, close - open - 1);
    // Range-for: a top-level ':' that is not part of '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
      const char c = header[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        const bool dbl = (i + 1 < header.size() && header[i + 1] == ':') ||
                         (i >= 1 && header[i - 1] == ':');
        if (!dbl) { colon = i; break; }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = first_identifier(header.substr(colon + 1));
    if (range.empty() || unordered_names.count(range) == 0) continue;

    // The loop body: braced block or single statement.
    std::size_t body_begin = skip_ws(code, close + 1);
    std::string body;
    if (body_begin < code.size() && code[body_begin] == '{') {
      const std::size_t body_end = match_bracket(code, body_begin, '{', '}');
      if (body_end == std::string::npos) continue;
      body = code.substr(body_begin, body_end - body_begin + 1);
    } else {
      const std::size_t semi = code.find(';', body_begin);
      if (semi == std::string::npos) continue;
      body = code.substr(body_begin, semi - body_begin + 1);
    }
    const bool sinks = body.find("<<") != std::string::npos ||
                       body.find("+=") != std::string::npos ||
                       find_token(body, "append") != std::string::npos ||
                       find_token(body, "push_back") != std::string::npos ||
                       find_token(body, "emplace_back") !=
                           std::string::npos ||
                       find_token(body, "printf") != std::string::npos ||
                       find_token(body, "snprintf") != std::string::npos ||
                       find_token(body, "write") != std::string::npos;
    if (!sinks) continue;
    ctx.report("no-unordered-iteration-to-output", pos,
               "iterating '" + range +
                   "' (unordered container) into an output sink — hash "
                   "order is nondeterministic; use std::map or sort first");
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"no-nondeterminism",
       "rand()/random_device/wall-clock time outside util|obs|robust"},
      {"no-naked-lock",
       "manual .lock()/.unlock(); require RAII guards"},
      {"no-relaxed-atomics",
       "memory_order_relaxed outside src/obs/"},
      {"no-naked-ofstream",
       "ofstream/fopen outside the util|robust atomic-write helpers"},
      {"no-swallowed-catch",
       "catch (...) must rethrow, capture or log"},
      {"no-unordered-iteration-to-output",
       "unordered container iteration feeding an output sink"},
  };
  return catalog;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content) {
  const StrippedSource stripped = strip(content);
  const Suppressions suppressions(stripped);
  std::vector<Finding> findings;
  LintContext ctx{path, stripped, suppressions, findings};
  rule_no_nondeterminism(ctx);
  rule_no_naked_lock(ctx);
  rule_no_relaxed_atomics(ctx);
  rule_no_naked_ofstream(ctx);
  rule_no_swallowed_catch(ctx);
  rule_no_unordered_iteration(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str());
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExtensions = {".h", ".hpp", ".cpp",
                                                    ".cc", ".cxx"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      if (kExtensions.count(it->path().extension().string()) == 0) continue;
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> file_findings = lint_file(file);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ':' << finding.line << ": [" << finding.rule << "] "
     << finding.message;
  return os.str();
}

}  // namespace bd::lint
