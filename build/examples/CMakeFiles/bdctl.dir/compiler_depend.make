# Empty compiler generated dependencies file for bdctl.
# This may be replaced when dependencies are built.
