file(REMOVE_RECURSE
  "CMakeFiles/bdctl.dir/bdctl.cpp.o"
  "CMakeFiles/bdctl.dir/bdctl.cpp.o.d"
  "bdctl"
  "bdctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
