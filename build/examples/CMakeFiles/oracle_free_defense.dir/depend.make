# Empty dependencies file for oracle_free_defense.
# This may be replaced when dependencies are built.
