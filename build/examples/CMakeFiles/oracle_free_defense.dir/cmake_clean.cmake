file(REMOVE_RECURSE
  "CMakeFiles/oracle_free_defense.dir/oracle_free_defense.cpp.o"
  "CMakeFiles/oracle_free_defense.dir/oracle_free_defense.cpp.o.d"
  "oracle_free_defense"
  "oracle_free_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_free_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
