# Empty compiler generated dependencies file for unlearning_inspector.
# This may be replaced when dependencies are built.
