file(REMOVE_RECURSE
  "CMakeFiles/unlearning_inspector.dir/unlearning_inspector.cpp.o"
  "CMakeFiles/unlearning_inspector.dir/unlearning_inspector.cpp.o.d"
  "unlearning_inspector"
  "unlearning_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unlearning_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
