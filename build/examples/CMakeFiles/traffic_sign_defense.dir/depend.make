# Empty dependencies file for traffic_sign_defense.
# This may be replaced when dependencies are built.
