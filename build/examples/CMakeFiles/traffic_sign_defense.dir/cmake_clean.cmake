file(REMOVE_RECURSE
  "CMakeFiles/traffic_sign_defense.dir/traffic_sign_defense.cpp.o"
  "CMakeFiles/traffic_sign_defense.dir/traffic_sign_defense.cpp.o.d"
  "traffic_sign_defense"
  "traffic_sign_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_sign_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
