file(REMOVE_RECURSE
  "CMakeFiles/layer_grad_test.dir/layer_grad_test.cpp.o"
  "CMakeFiles/layer_grad_test.dir/layer_grad_test.cpp.o.d"
  "layer_grad_test"
  "layer_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
