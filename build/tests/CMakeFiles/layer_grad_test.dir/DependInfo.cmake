
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/layer_grad_test.cpp" "tests/CMakeFiles/layer_grad_test.dir/layer_grad_test.cpp.o" "gcc" "tests/CMakeFiles/layer_grad_test.dir/layer_grad_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/bd_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/bd_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/bd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/bd_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/bd_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/bd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
