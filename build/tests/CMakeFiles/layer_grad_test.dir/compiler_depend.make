# Empty compiler generated dependencies file for layer_grad_test.
# This may be replaced when dependencies are built.
