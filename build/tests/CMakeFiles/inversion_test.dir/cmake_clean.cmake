file(REMOVE_RECURSE
  "CMakeFiles/inversion_test.dir/inversion_test.cpp.o"
  "CMakeFiles/inversion_test.dir/inversion_test.cpp.o.d"
  "inversion_test"
  "inversion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
