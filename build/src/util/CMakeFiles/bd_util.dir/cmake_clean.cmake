file(REMOVE_RECURSE
  "CMakeFiles/bd_util.dir/env.cpp.o"
  "CMakeFiles/bd_util.dir/env.cpp.o.d"
  "CMakeFiles/bd_util.dir/logging.cpp.o"
  "CMakeFiles/bd_util.dir/logging.cpp.o.d"
  "CMakeFiles/bd_util.dir/rng.cpp.o"
  "CMakeFiles/bd_util.dir/rng.cpp.o.d"
  "CMakeFiles/bd_util.dir/stats.cpp.o"
  "CMakeFiles/bd_util.dir/stats.cpp.o.d"
  "CMakeFiles/bd_util.dir/table.cpp.o"
  "CMakeFiles/bd_util.dir/table.cpp.o.d"
  "libbd_util.a"
  "libbd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
