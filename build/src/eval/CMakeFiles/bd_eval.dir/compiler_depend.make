# Empty compiler generated dependencies file for bd_eval.
# This may be replaced when dependencies are built.
