file(REMOVE_RECURSE
  "CMakeFiles/bd_eval.dir/metrics.cpp.o"
  "CMakeFiles/bd_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/bd_eval.dir/trainer.cpp.o"
  "CMakeFiles/bd_eval.dir/trainer.cpp.o.d"
  "libbd_eval.a"
  "libbd_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
