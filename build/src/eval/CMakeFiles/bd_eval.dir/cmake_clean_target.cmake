file(REMOVE_RECURSE
  "libbd_eval.a"
)
