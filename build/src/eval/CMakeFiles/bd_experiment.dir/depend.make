# Empty dependencies file for bd_experiment.
# This may be replaced when dependencies are built.
