file(REMOVE_RECURSE
  "libbd_experiment.a"
)
