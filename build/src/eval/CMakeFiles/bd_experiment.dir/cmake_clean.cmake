file(REMOVE_RECURSE
  "CMakeFiles/bd_experiment.dir/runner.cpp.o"
  "CMakeFiles/bd_experiment.dir/runner.cpp.o.d"
  "CMakeFiles/bd_experiment.dir/table_bench.cpp.o"
  "CMakeFiles/bd_experiment.dir/table_bench.cpp.o.d"
  "libbd_experiment.a"
  "libbd_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
