
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/anp.cpp" "src/defense/CMakeFiles/bd_defense.dir/anp.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/anp.cpp.o.d"
  "/root/repo/src/defense/clp.cpp" "src/defense/CMakeFiles/bd_defense.dir/clp.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/clp.cpp.o.d"
  "/root/repo/src/defense/defense.cpp" "src/defense/CMakeFiles/bd_defense.dir/defense.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/defense.cpp.o.d"
  "/root/repo/src/defense/fine_pruning.cpp" "src/defense/CMakeFiles/bd_defense.dir/fine_pruning.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/fine_pruning.cpp.o.d"
  "/root/repo/src/defense/finetune.cpp" "src/defense/CMakeFiles/bd_defense.dir/finetune.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/finetune.cpp.o.d"
  "/root/repo/src/defense/ftsam.cpp" "src/defense/CMakeFiles/bd_defense.dir/ftsam.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/ftsam.cpp.o.d"
  "/root/repo/src/defense/inversion.cpp" "src/defense/CMakeFiles/bd_defense.dir/inversion.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/inversion.cpp.o.d"
  "/root/repo/src/defense/nad.cpp" "src/defense/CMakeFiles/bd_defense.dir/nad.cpp.o" "gcc" "src/defense/CMakeFiles/bd_defense.dir/nad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/bd_models.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/bd_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/bd_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bd_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/bd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/bd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
