# Empty compiler generated dependencies file for bd_defense.
# This may be replaced when dependencies are built.
