file(REMOVE_RECURSE
  "libbd_defense.a"
)
