file(REMOVE_RECURSE
  "CMakeFiles/bd_defense.dir/anp.cpp.o"
  "CMakeFiles/bd_defense.dir/anp.cpp.o.d"
  "CMakeFiles/bd_defense.dir/clp.cpp.o"
  "CMakeFiles/bd_defense.dir/clp.cpp.o.d"
  "CMakeFiles/bd_defense.dir/defense.cpp.o"
  "CMakeFiles/bd_defense.dir/defense.cpp.o.d"
  "CMakeFiles/bd_defense.dir/fine_pruning.cpp.o"
  "CMakeFiles/bd_defense.dir/fine_pruning.cpp.o.d"
  "CMakeFiles/bd_defense.dir/finetune.cpp.o"
  "CMakeFiles/bd_defense.dir/finetune.cpp.o.d"
  "CMakeFiles/bd_defense.dir/ftsam.cpp.o"
  "CMakeFiles/bd_defense.dir/ftsam.cpp.o.d"
  "CMakeFiles/bd_defense.dir/inversion.cpp.o"
  "CMakeFiles/bd_defense.dir/inversion.cpp.o.d"
  "CMakeFiles/bd_defense.dir/nad.cpp.o"
  "CMakeFiles/bd_defense.dir/nad.cpp.o.d"
  "libbd_defense.a"
  "libbd_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
