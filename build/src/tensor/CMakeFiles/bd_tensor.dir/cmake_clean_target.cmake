file(REMOVE_RECURSE
  "libbd_tensor.a"
)
