file(REMOVE_RECURSE
  "CMakeFiles/bd_tensor.dir/conv.cpp.o"
  "CMakeFiles/bd_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/bd_tensor.dir/ops.cpp.o"
  "CMakeFiles/bd_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/bd_tensor.dir/pool.cpp.o"
  "CMakeFiles/bd_tensor.dir/pool.cpp.o.d"
  "CMakeFiles/bd_tensor.dir/serialize.cpp.o"
  "CMakeFiles/bd_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/bd_tensor.dir/tensor.cpp.o"
  "CMakeFiles/bd_tensor.dir/tensor.cpp.o.d"
  "libbd_tensor.a"
  "libbd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
