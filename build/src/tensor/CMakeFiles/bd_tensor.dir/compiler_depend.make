# Empty compiler generated dependencies file for bd_tensor.
# This may be replaced when dependencies are built.
