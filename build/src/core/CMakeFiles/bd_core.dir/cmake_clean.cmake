file(REMOVE_RECURSE
  "CMakeFiles/bd_core.dir/grad_prune.cpp.o"
  "CMakeFiles/bd_core.dir/grad_prune.cpp.o.d"
  "CMakeFiles/bd_core.dir/registry.cpp.o"
  "CMakeFiles/bd_core.dir/registry.cpp.o.d"
  "libbd_core.a"
  "libbd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
