# Empty compiler generated dependencies file for bd_optim.
# This may be replaced when dependencies are built.
