file(REMOVE_RECURSE
  "CMakeFiles/bd_optim.dir/optim.cpp.o"
  "CMakeFiles/bd_optim.dir/optim.cpp.o.d"
  "libbd_optim.a"
  "libbd_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
