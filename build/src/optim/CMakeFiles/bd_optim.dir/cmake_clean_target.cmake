file(REMOVE_RECURSE
  "libbd_optim.a"
)
