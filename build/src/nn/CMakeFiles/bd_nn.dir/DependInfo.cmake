
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/bd_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/bd_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/bd_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/bd_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/bd_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/bd_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/nn/CMakeFiles/bd_nn.dir/summary.cpp.o" "gcc" "src/nn/CMakeFiles/bd_nn.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/bd_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bd_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
