file(REMOVE_RECURSE
  "libbd_nn.a"
)
