file(REMOVE_RECURSE
  "CMakeFiles/bd_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/bd_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/bd_nn.dir/layers.cpp.o"
  "CMakeFiles/bd_nn.dir/layers.cpp.o.d"
  "CMakeFiles/bd_nn.dir/module.cpp.o"
  "CMakeFiles/bd_nn.dir/module.cpp.o.d"
  "CMakeFiles/bd_nn.dir/summary.cpp.o"
  "CMakeFiles/bd_nn.dir/summary.cpp.o.d"
  "libbd_nn.a"
  "libbd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
