# Empty compiler generated dependencies file for bd_nn.
# This may be replaced when dependencies are built.
