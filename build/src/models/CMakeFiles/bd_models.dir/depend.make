# Empty dependencies file for bd_models.
# This may be replaced when dependencies are built.
