file(REMOVE_RECURSE
  "CMakeFiles/bd_models.dir/efficientnet.cpp.o"
  "CMakeFiles/bd_models.dir/efficientnet.cpp.o.d"
  "CMakeFiles/bd_models.dir/factory.cpp.o"
  "CMakeFiles/bd_models.dir/factory.cpp.o.d"
  "CMakeFiles/bd_models.dir/mbconv.cpp.o"
  "CMakeFiles/bd_models.dir/mbconv.cpp.o.d"
  "CMakeFiles/bd_models.dir/mobilenet.cpp.o"
  "CMakeFiles/bd_models.dir/mobilenet.cpp.o.d"
  "CMakeFiles/bd_models.dir/preact_resnet.cpp.o"
  "CMakeFiles/bd_models.dir/preact_resnet.cpp.o.d"
  "CMakeFiles/bd_models.dir/vgg.cpp.o"
  "CMakeFiles/bd_models.dir/vgg.cpp.o.d"
  "libbd_models.a"
  "libbd_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
