file(REMOVE_RECURSE
  "libbd_models.a"
)
