file(REMOVE_RECURSE
  "CMakeFiles/bd_attack.dir/poison.cpp.o"
  "CMakeFiles/bd_attack.dir/poison.cpp.o.d"
  "CMakeFiles/bd_attack.dir/trigger.cpp.o"
  "CMakeFiles/bd_attack.dir/trigger.cpp.o.d"
  "libbd_attack.a"
  "libbd_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
