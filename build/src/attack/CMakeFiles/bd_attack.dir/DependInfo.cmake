
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/poison.cpp" "src/attack/CMakeFiles/bd_attack.dir/poison.cpp.o" "gcc" "src/attack/CMakeFiles/bd_attack.dir/poison.cpp.o.d"
  "/root/repo/src/attack/trigger.cpp" "src/attack/CMakeFiles/bd_attack.dir/trigger.cpp.o" "gcc" "src/attack/CMakeFiles/bd_attack.dir/trigger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/bd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/bd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
