file(REMOVE_RECURSE
  "libbd_attack.a"
)
