# Empty compiler generated dependencies file for bd_attack.
# This may be replaced when dependencies are built.
