# Empty compiler generated dependencies file for bd_autograd.
# This may be replaced when dependencies are built.
