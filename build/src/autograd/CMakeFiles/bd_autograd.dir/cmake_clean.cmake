file(REMOVE_RECURSE
  "CMakeFiles/bd_autograd.dir/ops.cpp.o"
  "CMakeFiles/bd_autograd.dir/ops.cpp.o.d"
  "CMakeFiles/bd_autograd.dir/variable.cpp.o"
  "CMakeFiles/bd_autograd.dir/variable.cpp.o.d"
  "libbd_autograd.a"
  "libbd_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
