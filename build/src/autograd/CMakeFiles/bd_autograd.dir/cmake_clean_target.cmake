file(REMOVE_RECURSE
  "libbd_autograd.a"
)
