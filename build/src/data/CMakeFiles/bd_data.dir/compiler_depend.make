# Empty compiler generated dependencies file for bd_data.
# This may be replaced when dependencies are built.
