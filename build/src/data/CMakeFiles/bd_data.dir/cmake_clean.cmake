file(REMOVE_RECURSE
  "CMakeFiles/bd_data.dir/augment.cpp.o"
  "CMakeFiles/bd_data.dir/augment.cpp.o.d"
  "CMakeFiles/bd_data.dir/dataset.cpp.o"
  "CMakeFiles/bd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/bd_data.dir/synth.cpp.o"
  "CMakeFiles/bd_data.dir/synth.cpp.o.d"
  "libbd_data.a"
  "libbd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
