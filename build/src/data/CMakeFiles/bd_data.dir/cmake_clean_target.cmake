file(REMOVE_RECURSE
  "libbd_data.a"
)
