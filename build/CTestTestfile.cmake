# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/util")
subdirs("src/tensor")
subdirs("src/autograd")
subdirs("src/nn")
subdirs("src/optim")
subdirs("src/data")
subdirs("src/attack")
subdirs("src/models")
subdirs("src/defense")
subdirs("src/core")
subdirs("src/eval")
subdirs("tests")
subdirs("bench")
subdirs("examples")
