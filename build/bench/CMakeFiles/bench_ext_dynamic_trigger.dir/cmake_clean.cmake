file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dynamic_trigger.dir/bench_ext_dynamic_trigger.cpp.o"
  "CMakeFiles/bench_ext_dynamic_trigger.dir/bench_ext_dynamic_trigger.cpp.o.d"
  "bench_ext_dynamic_trigger"
  "bench_ext_dynamic_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
