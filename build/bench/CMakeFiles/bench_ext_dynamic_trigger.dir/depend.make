# Empty dependencies file for bench_ext_dynamic_trigger.
# This may be replaced when dependencies are built.
