# Empty dependencies file for bench_table2_cifar_vgg.
# This may be replaced when dependencies are built.
