file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cifar_vgg.dir/bench_table2_cifar_vgg.cpp.o"
  "CMakeFiles/bench_table2_cifar_vgg.dir/bench_table2_cifar_vgg.cpp.o.d"
  "bench_table2_cifar_vgg"
  "bench_table2_cifar_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cifar_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
