# Empty dependencies file for bench_ext_inversion.
# This may be replaced when dependencies are built.
