file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_inversion.dir/bench_ext_inversion.cpp.o"
  "CMakeFiles/bench_ext_inversion.dir/bench_ext_inversion.cpp.o.d"
  "bench_ext_inversion"
  "bench_ext_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
