# Empty dependencies file for bench_ablation_finetune.
# This may be replaced when dependencies are built.
