file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prune_vs_descend.dir/bench_ablation_prune_vs_descend.cpp.o"
  "CMakeFiles/bench_ablation_prune_vs_descend.dir/bench_ablation_prune_vs_descend.cpp.o.d"
  "bench_ablation_prune_vs_descend"
  "bench_ablation_prune_vs_descend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prune_vs_descend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
