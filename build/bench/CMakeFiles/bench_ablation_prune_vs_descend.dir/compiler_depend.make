# Empty compiler generated dependencies file for bench_ablation_prune_vs_descend.
# This may be replaced when dependencies are built.
