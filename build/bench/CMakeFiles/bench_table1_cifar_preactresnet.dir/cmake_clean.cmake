file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cifar_preactresnet.dir/bench_table1_cifar_preactresnet.cpp.o"
  "CMakeFiles/bench_table1_cifar_preactresnet.dir/bench_table1_cifar_preactresnet.cpp.o.d"
  "bench_table1_cifar_preactresnet"
  "bench_table1_cifar_preactresnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cifar_preactresnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
