# Empty compiler generated dependencies file for bench_table1_cifar_preactresnet.
# This may be replaced when dependencies are built.
