#include "obs/metrics.h"

#include "util/atomic_file.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bd::obs {

namespace {

/// Round-trippable JSON number, or null for non-finite values (JSON has no
/// NaN/Inf literals; a diverged loss gauge must not corrupt the export).
std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Span names and metric names are code-controlled identifiers, but escape
/// defensively so the export is valid JSON no matter what.
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: empty bucket layout");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& duration_ns_buckets() {
  static const std::vector<double> buckets = {1e3, 1e4, 1e5, 1e6, 1e7,
                                              1e8, 1e9, 1e10};
  return buckets;
}

const std::vector<double>& seconds_buckets() {
  static const std::vector<double> buckets = {1e-3, 1e-2, 1e-1, 1.0,
                                              1e1,  1e2,  1e3};
  return buckets;
}

Registry& Registry::instance() {
  // Leaked so instrument references stay valid during static destruction.
  static Registry* g_registry = new Registry();
  return *g_registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lk(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lk(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard lk(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void Registry::write_jsonl(std::ostream& os) const {
  std::lock_guard lk(mutex_);
  for (const auto& [name, c] : counters_) {
    os << "{\"type\":\"counter\",\"name\":" << json_string(name)
       << ",\"value\":" << c->value() << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "{\"type\":\"gauge\",\"name\":" << json_string(name)
       << ",\"value\":" << json_double(g->value()) << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "{\"type\":\"histogram\",\"name\":" << json_string(name)
       << ",\"count\":" << h->count()
       << ",\"sum\":" << json_double(h->sum()) << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i) os << ',';
      os << "{\"le\":";
      if (i < bounds.size()) {
        os << json_double(bounds[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h->bucket_count(i) << '}';
    }
    os << "]}\n";
  }
}

bool Registry::write_jsonl_file(const std::string& path) const {
  std::ostringstream os;
  write_jsonl(os);
  return write_file_atomic(path, os.str());
}

std::string Registry::summary(std::size_t top_k) const {
  std::lock_guard lk(mutex_);
  std::ostringstream os;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  for (const auto& [name, c] : counters_) counters.emplace_back(name, c->value());
  std::stable_sort(counters.begin(), counters.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  os << "counters (top " << std::min(top_k, counters.size()) << " of "
     << counters.size() << ")\n";
  for (std::size_t i = 0; i < counters.size() && i < top_k; ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-36s %20llu\n",
                  counters[i].first.c_str(),
                  static_cast<unsigned long long>(counters[i].second));
    os << line;
  }

  os << "gauges (" << gauges_.size() << ")\n";
  std::size_t shown = 0;
  for (const auto& [name, g] : gauges_) {
    if (shown++ >= top_k) break;
    char line[160];
    std::snprintf(line, sizeof(line), "  %-36s %20.6g\n", name.c_str(),
                  g->value());
    os << line;
  }

  std::vector<std::pair<std::string, const Histogram*>> hists;
  for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
  std::stable_sort(hists.begin(), hists.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->count() > b.second->count();
                   });
  os << "histograms (top " << std::min(top_k, hists.size()) << " of "
     << hists.size() << ")\n";
  for (std::size_t i = 0; i < hists.size() && i < top_k; ++i) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  %-36s count=%-10llu sum=%-14.6g mean=%.6g\n",
                  hists[i].first.c_str(),
                  static_cast<unsigned long long>(hists[i].second->count()),
                  hists[i].second->sum(), hists[i].second->mean());
    os << line;
  }
  return os.str();
}

void Registry::reset_values() {
  std::lock_guard lk(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace bd::obs
