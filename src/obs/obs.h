// bd::obs — umbrella header + instrumentation macros.
//
// All macros are no-ops-after-one-atomic-load when the matching pillar is
// disabled (the default). See gate.h for the knobs, metrics.h / trace.h for
// the primitives, and DESIGN.md "Observability" for the naming convention.
#pragma once

#include <cstdint>

#include "obs/gate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bd::obs {

/// Pre-registered instruments for one kernel call site: `<name>.calls`,
/// `<name>.items` (work units, e.g. MACs) and `<name>.ns` (duration
/// histogram on the fixed duration layout).
struct KernelStats {
  Counter& calls;
  Counter& items;
  Histogram& duration_ns;
};

/// Registers (once) and returns the instruments for `name`. The reference
/// is cached in a function-local static by BD_OBS_KERNEL.
KernelStats& kernel_stats(const char* name);

/// RAII kernel probe: trace span (when tracing) plus calls/items counters
/// and a duration-histogram sample (when metrics are on). Off cost: one
/// relaxed atomic load.
class KernelScope {
 public:
  KernelScope(const char* name, KernelStats& stats, std::int64_t items)
      : stats_(stats) {
    const std::uint32_t f = detail::flags();
    if (f == 0) return;
    if ((f & kTraceBit) != 0) {
      span_name_ = name;
      record_span_event(name, 'B', items);
    }
    if ((f & kMetricsBit) != 0) {
      items_ = items;
      start_ns_ = trace_now_ns();
      timing_ = true;
    }
  }
  ~KernelScope() {
    if (span_name_ != nullptr) record_span_event(span_name_, 'E', kNoArg);
    if (timing_) {
      stats_.calls.add(1);
      if (items_ > 0) stats_.items.add(static_cast<std::uint64_t>(items_));
      stats_.duration_ns.observe(
          static_cast<double>(trace_now_ns() - start_ns_));
    }
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  KernelStats& stats_;
  const char* span_name_ = nullptr;
  std::int64_t items_ = 0;
  std::uint64_t start_ns_ = 0;
  bool timing_ = false;
};

}  // namespace bd::obs

#define BD_OBS_CONCAT_INNER(a, b) a##b
#define BD_OBS_CONCAT(a, b) BD_OBS_CONCAT_INNER(a, b)

/// Scoped trace span; `name` must be a string literal.
#define BD_OBS_SPAN(name) \
  ::bd::obs::Span BD_OBS_CONCAT(bd_obs_span_, __LINE__)(name)
#define BD_OBS_SPAN_ARG(name, arg) \
  ::bd::obs::Span BD_OBS_CONCAT(bd_obs_span_, __LINE__)(name, (arg))

/// Scoped kernel probe (span + counters + duration histogram).
#define BD_OBS_KERNEL(name, items)                                     \
  static ::bd::obs::KernelStats& BD_OBS_CONCAT(bd_obs_ks_, __LINE__) = \
      ::bd::obs::kernel_stats(name);                                   \
  ::bd::obs::KernelScope BD_OBS_CONCAT(bd_obs_kscope_, __LINE__)(      \
      name, BD_OBS_CONCAT(bd_obs_ks_, __LINE__), (items))

/// Counter increment / gauge sample, active only when metrics are on.
#define BD_OBS_COUNT(name, n)                                        \
  do {                                                               \
    if (::bd::obs::metrics_enabled()) {                              \
      ::bd::obs::registry().counter(name).add(                       \
          static_cast<std::uint64_t>(n));                            \
    }                                                                \
  } while (0)
#define BD_OBS_GAUGE(name, v)                                        \
  do {                                                               \
    if (::bd::obs::metrics_enabled()) {                              \
      ::bd::obs::registry().gauge(name).set(static_cast<double>(v)); \
    }                                                                \
  } while (0)
#define BD_OBS_OBSERVE(name, v, bounds)                              \
  do {                                                               \
    if (::bd::obs::metrics_enabled()) {                              \
      ::bd::obs::registry()                                          \
          .histogram(name, bounds)                                   \
          .observe(static_cast<double>(v));                          \
    }                                                                \
  } while (0)
