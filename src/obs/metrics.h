// bd::obs metrics — process-wide registry of counters, gauges and
// histograms with fixed bucket layouts.
//
// All mutation paths are lock-free (relaxed atomics; the histogram sum uses
// a CAS loop), so instruments can be hammered from inside parallel_for
// workers without serializing them. Registration (name -> instrument) takes
// a mutex but happens once per name; hot call sites cache the returned
// reference, which stays valid for the life of the process — reset_values()
// zeroes instruments in place and never invalidates references.
//
// Instruments record plain observations (durations, counts, losses); they
// never read or advance any RNG and never feed back into computation, so
// enabling metrics cannot perturb training or pruning results.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/gate.h"
#include "runtime/ordered_mutex.h"

namespace bd::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over a fixed, ascending list of upper bounds plus an implicit
/// overflow bucket. Bucket counts are NON-cumulative: bucket i counts
/// observations v with bounds[i-1] < v <= bounds[i] (bucket 0: v <=
/// bounds[0]; the last bucket: v > bounds.back()).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]; the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Fixed bucket layouts shared by all call sites, so every exported
/// histogram of the same kind is directly comparable across runs.
const std::vector<double>& duration_ns_buckets();  // 1us .. 10s, decades
const std::vector<double>& seconds_buckets();      // 1ms .. 1000s, decades

class Registry {
 public:
  static Registry& instance();

  /// Get-or-create; the returned reference is valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first registration of `name`.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           duration_ns_buckets());

  /// One JSON object per line:
  ///   {"type":"counter","name":...,"value":N}
  ///   {"type":"gauge","name":...,"value":X}
  ///   {"type":"histogram","name":...,"count":N,"sum":X,
  ///    "buckets":[{"le":B,"count":N},...,{"le":"+Inf","count":N}]}
  void write_jsonl(std::ostream& os) const;
  bool write_jsonl_file(const std::string& path) const;

  /// Human-readable top-k listing (counters by value, histograms by count,
  /// all gauges), for `bdctl profile`.
  std::string summary(std::size_t top_k = 10) const;

  /// Test hook: zeroes every instrument in place (references stay valid).
  void reset_values();

 private:
  Registry() = default;

  // Innermost rank: BD_OBS_* instruments fire from under every other
  // subsystem's lock, and registration never calls back out.
  mutable runtime::OrderedMutex<runtime::LockRank::kObsRegistry> mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace bd::obs
