#include "obs/trace.h"

#include "util/atomic_file.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace bd::obs {

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

/// One buffer per recording thread. `mutex` is uncontended on the hot path
/// (only the owning thread pushes); snapshot/clear take it from outside so
/// exports taken at a quiescent point are race-free even if a pool worker
/// is mid-teardown.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::uint64_t dropped = 0;
  // Depth of the currently-dropped subtree: a 'B' that does not fit (or
  // whose ancestor was dropped) increments it; the matching 'E' decrements
  // it. Keeps every exported per-thread stream balanced.
  std::uint64_t drop_depth = 0;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<std::size_t> capacity{kDefaultCapacity};
};

TraceState& state() {
  // Leaked: spans may still close during static destruction.
  static TraceState* g_state = new TraceState();
  return *g_state;
}

const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

thread_local std::shared_ptr<ThreadBuffer> t_buffer;

ThreadBuffer& buffer_for_this_thread() {
  if (!t_buffer) {
    auto buf = std::make_shared<ThreadBuffer>();
    TraceState& st = state();
    std::lock_guard<std::mutex> lk(st.mutex);
    buf->tid = static_cast<std::uint32_t>(st.buffers.size());
    st.buffers.push_back(buf);
    t_buffer = std::move(buf);
  }
  return *t_buffer;
}

std::string escape_name(const char* name) {
  std::string out;
  for (const char* p = name; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
  return out;
}

}  // namespace

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

void record_span_event(const char* name, char phase, std::int64_t arg) {
  ThreadBuffer& buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lk(buf.mutex);
  if (phase == 'B') {
    if (buf.drop_depth > 0 ||
        buf.events.size() >=
            state().capacity.load(std::memory_order_relaxed)) {
      ++buf.drop_depth;
      ++buf.dropped;
      return;
    }
  } else {
    if (buf.drop_depth > 0) {
      --buf.drop_depth;
      ++buf.dropped;
      return;
    }
  }
  buf.events.push_back(TraceEvent{name, arg, trace_now_ns(), buf.tid, phase});
}

std::vector<TraceEvent> snapshot_trace() {
  TraceState& st = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mutex);
    buffers = st.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void clear_trace() {
  TraceState& st = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mutex);
    buffers = st.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
    buf->drop_depth = 0;
  }
}

std::uint64_t trace_dropped_count() {
  TraceState& st = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mutex);
    buffers = st.buffers;
  }
  std::uint64_t total = 0;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void set_trace_capacity_for_test(std::size_t per_thread) {
  state().capacity.store(per_thread > 0 ? per_thread : kDefaultCapacity,
                         std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = snapshot_trace();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const auto& e : events) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":\"" << escape_name(e.name)
       << "\",\"cat\":\"bd\",\"ph\":\"" << e.phase << "\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);
    os << buf << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.arg != kNoArg) {
      os << ",\"args\":{\"v\":" << e.arg << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ostringstream os;
  write_chrome_trace(os);
  return write_file_atomic(path, os.str());
}

namespace {

struct SpanNode {
  const char* name = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* child(const char* child_name) {
    for (auto& c : children) {
      if (c->name == child_name ||
          std::string_view(c->name) == child_name) {
        return c.get();
      }
    }
    children.push_back(std::make_unique<SpanNode>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

void render_node(const SpanNode& node, std::size_t depth,
                 std::size_t max_depth, std::ostringstream& os) {
  if (max_depth != 0 && depth > max_depth) return;
  char line[200];
  std::snprintf(line, sizeof(line), "%*s%-*s %8llu x %12.3f ms\n",
                static_cast<int>(2 * depth), "",
                static_cast<int>(40 - std::min<std::size_t>(2 * depth, 38)),
                node.name,
                static_cast<unsigned long long>(node.count),
                static_cast<double>(node.total_ns) / 1e6);
  os << line;
  for (const auto& c : node.children) {
    render_node(*c, depth + 1, max_depth, os);
  }
}

}  // namespace

std::string render_span_tree(std::size_t max_depth) {
  const std::vector<TraceEvent> events = snapshot_trace();

  // Per-tid reconstruction: a begin/end stack rebuilt in record order.
  std::map<std::uint32_t, SpanNode> roots;
  std::map<std::uint32_t, std::vector<std::pair<SpanNode*, std::uint64_t>>>
      stacks;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const auto& e : events) {
    SpanNode& root = roots[e.tid];
    if (root.name == nullptr) root.name = "(root)";
    auto& stack = stacks[e.tid];
    last_ts[e.tid] = e.ts_ns;
    if (e.phase == 'B') {
      SpanNode* parent = stack.empty() ? &root : stack.back().first;
      SpanNode* node = parent->child(e.name);
      stack.emplace_back(node, e.ts_ns);
    } else if (!stack.empty()) {
      auto [node, start] = stack.back();
      stack.pop_back();
      ++node->count;
      node->total_ns += e.ts_ns - start;
    }
  }
  // Close any spans still open at snapshot time at the last seen timestamp.
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) {
      auto [node, start] = stack.back();
      stack.pop_back();
      ++node->count;
      const std::uint64_t end = std::max(last_ts[tid], start);
      node->total_ns += end - start;
    }
  }

  std::ostringstream os;
  for (auto& [tid, root] : roots) {
    if (root.children.empty()) continue;
    os << "tid " << tid << (tid == 0 ? " (main)" : "") << '\n';
    for (const auto& c : root.children) {
      render_node(*c, 1, max_depth, os);
    }
  }
  if (os.str().empty()) return "(no spans recorded)\n";
  return os.str();
}

}  // namespace bd::obs
