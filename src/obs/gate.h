// bd::obs gate — the on/off switch for the whole observability subsystem.
//
// Both pillars (metrics and trace spans) are gated by one process-wide
// atomic word so the disabled path of every instrumentation macro compiles
// down to a single relaxed load plus a branch. The flags initialize from
// the BDPROTO_METRICS / BDPROTO_TRACE environment knobs on first use:
//
//   unset, "", "0", "off", "false"  -> disabled (the default)
//   "1", "on", "true"               -> enabled, default export path
//   anything else                   -> enabled, value IS the export path
//
// When either knob enables a pillar from the environment, the matching
// exporter (JSONL metrics / Chrome trace) runs automatically at process
// exit. The set_*_enabled() hooks override the environment for tests and
// for `bdctl profile`; they never register exit exporters on their own.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace bd::obs {

inline constexpr std::uint32_t kMetricsBit = 1u;
inline constexpr std::uint32_t kTraceBit = 2u;

namespace detail {

// Starts with the uninit bit set; the first flags() call replaces it with
// the environment-resolved value (constant-initialized, so there is no
// static-initialization-order hazard).
inline constexpr std::uint32_t kUninitBit = 0x8000'0000u;
extern std::atomic<std::uint32_t> g_flags;

/// Cold path: resolves the knobs, stores and returns the flag word.
std::uint32_t init_flags();

inline std::uint32_t flags() {
  const std::uint32_t f = g_flags.load(std::memory_order_relaxed);
  return (f & kUninitBit) != 0 ? init_flags() : f;
}

}  // namespace detail

/// One relaxed atomic load; safe to call from any thread at any time.
inline bool metrics_enabled() {
  return (detail::flags() & kMetricsBit) != 0;
}
inline bool trace_enabled() { return (detail::flags() & kTraceBit) != 0; }
inline bool enabled() {
  return (detail::flags() & (kMetricsBit | kTraceBit)) != 0;
}

/// Test/tool hooks: override the environment-resolved state.
void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);

/// Test hook: forget the cached flags and re-read the environment on the
/// next flags() call (also re-resolves the export paths).
void reinit_from_env_for_test();

/// Pure knob parsers (exposed for unit tests).
bool knob_enables(const std::string& value);
std::string knob_path(const std::string& value, const std::string& fallback);

/// Export destinations resolved from the environment knobs; empty when the
/// matching knob did not enable the pillar.
std::string metrics_export_path();
std::string trace_export_path();

/// Writes the JSONL metrics / Chrome trace files for every pillar whose
/// environment knob is on. Runs automatically at exit; callable earlier
/// (e.g. by `bdctl profile`) — later calls simply overwrite.
void flush_env_exports();

}  // namespace bd::obs
