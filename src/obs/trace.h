// bd::obs trace — RAII spans with hierarchical nesting, thread-id tagging
// and a Chrome `chrome://tracing` exporter.
//
// Span names MUST be string literals (or otherwise outlive the process):
// events store the pointer, not a copy, so recording costs one timestamp
// and one buffered push. Use the span's integer `arg` for per-instance
// payload (epoch index, round number, ...) instead of building dynamic
// names.
//
// Every recording thread owns a buffer tagged with a dense trace thread id
// (0 = first thread that ever recorded, usually main). Buffers are bounded:
// past the per-thread capacity, whole subtrees are dropped atomically (a
// dropped 'B' suppresses everything until its matching 'E'), so exported
// traces always have balanced begin/end pairs per thread.
//
// Naming convention (documented in DESIGN.md): dot-separated
// `<layer>.<what>` — `kernel.*` tensor kernels, `train.*` / `finetune.*`
// training loops, `gradprune.*` the paper's defense, `defense.<name>` other
// defense phases, `eval.*` metric passes, `runner.*` / `bench.*` the
// experiment harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "obs/gate.h"

namespace bd::obs {

inline constexpr std::int64_t kNoArg =
    std::numeric_limits<std::int64_t>::min();

struct TraceEvent {
  const char* name;   // static-lifetime span name
  std::int64_t arg;   // numeric payload, kNoArg when absent
  std::uint64_t ts_ns;  // nanoseconds since the process trace epoch
  std::uint32_t tid;  // dense trace thread id
  char phase;         // 'B' (begin) or 'E' (end)
};

/// Nanoseconds since the process-wide trace epoch (steady clock).
std::uint64_t trace_now_ns();

/// Appends one event to the calling thread's buffer (cold path — callers
/// must check trace_enabled() first).
void record_span_event(const char* name, char phase, std::int64_t arg);

/// RAII span. Disabled cost: one relaxed atomic load in the constructor
/// and one pointer test in the destructor.
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = kNoArg) {
    if (trace_enabled()) {
      name_ = name;
      record_span_event(name, 'B', arg);
    }
  }
  ~Span() {
    if (name_ != nullptr) record_span_event(name_, 'E', kNoArg);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
};

/// All events recorded so far, ordered by (tid, record order). Call from a
/// quiescent point (no spans being opened/closed concurrently).
std::vector<TraceEvent> snapshot_trace();

/// Drops recorded events; thread ids and capacities are preserved.
void clear_trace();

/// Events discarded because a per-thread buffer hit its capacity.
std::uint64_t trace_dropped_count();

/// Test hook: per-thread event capacity; 0 restores the default (1M).
void set_trace_capacity_for_test(std::size_t per_thread);

/// Chrome trace format: {"traceEvents":[{name,cat,ph,ts,pid,tid,args},...]}
/// with ts/us relative to the trace epoch. Load via chrome://tracing or
/// https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& os);
bool write_chrome_trace_file(const std::string& path);

/// Aggregated per-thread span tree ("name count total-ms" per node), for
/// `bdctl profile`. `max_depth` 0 means unlimited.
std::string render_span_tree(std::size_t max_depth = 0);

}  // namespace bd::obs
