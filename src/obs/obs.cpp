#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <string>

#include "util/env.h"
#include "util/logging.h"

namespace bd::obs {

namespace detail {

std::atomic<std::uint32_t> g_flags{kUninitBit};

}  // namespace detail

namespace {

std::mutex g_init_mutex;
std::string g_metrics_path;  // resolved env export paths; guarded by
std::string g_trace_path;    // g_init_mutex
bool g_atexit_installed = false;

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

void atexit_flush() { flush_env_exports(); }

}  // namespace

bool knob_enables(const std::string& value) {
  const std::string v = lowercase(value);
  return !(v.empty() || v == "0" || v == "off" || v == "false");
}

std::string knob_path(const std::string& value, const std::string& fallback) {
  const std::string v = lowercase(value);
  if (v == "1" || v == "on" || v == "true") return fallback;
  return value;
}

namespace detail {

std::uint32_t init_flags() {
  std::lock_guard<std::mutex> lk(g_init_mutex);
  std::uint32_t f = g_flags.load(std::memory_order_relaxed);
  if ((f & kUninitBit) == 0) return f;  // raced with another initializer

  f = 0;
  g_metrics_path.clear();
  g_trace_path.clear();
  if (const auto v = env_string("BDPROTO_METRICS");
      v && knob_enables(*v)) {
    f |= kMetricsBit;
    g_metrics_path = knob_path(*v, "bdproto_metrics.jsonl");
  }
  if (const auto v = env_string("BDPROTO_TRACE"); v && knob_enables(*v)) {
    f |= kTraceBit;
    g_trace_path = knob_path(*v, "bdproto_trace.json");
  }
  if (f != 0 && !g_atexit_installed) {
    g_atexit_installed = true;
    std::atexit(atexit_flush);
  }
  g_flags.store(f, std::memory_order_relaxed);
  return f;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  const std::uint32_t base = detail::flags();  // force env resolution first
  detail::g_flags.store(on ? (base | kMetricsBit) : (base & ~kMetricsBit),
                        std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  const std::uint32_t base = detail::flags();
  detail::g_flags.store(on ? (base | kTraceBit) : (base & ~kTraceBit),
                        std::memory_order_relaxed);
}

void reinit_from_env_for_test() {
  detail::g_flags.store(detail::kUninitBit, std::memory_order_relaxed);
}

std::string metrics_export_path() {
  detail::flags();
  std::lock_guard<std::mutex> lk(g_init_mutex);
  return g_metrics_path;
}

std::string trace_export_path() {
  detail::flags();
  std::lock_guard<std::mutex> lk(g_init_mutex);
  return g_trace_path;
}

void flush_env_exports() {
  const std::string metrics_path = metrics_export_path();
  const std::string trace_path = trace_export_path();
  if (!metrics_path.empty()) {
    if (registry().write_jsonl_file(metrics_path)) {
      BD_LOG(Info) << "obs: wrote metrics to " << metrics_path;
    } else {
      BD_LOG(Warn) << "obs: failed to write metrics to " << metrics_path;
    }
  }
  if (!trace_path.empty()) {
    if (write_chrome_trace_file(trace_path)) {
      BD_LOG(Info) << "obs: wrote trace to " << trace_path;
    } else {
      BD_LOG(Warn) << "obs: failed to write trace to " << trace_path;
    }
  }
}

KernelStats& kernel_stats(const char* name) {
  // Leaked on purpose: references handed to function-local statics must
  // outlive every kernel call, including ones during static destruction.
  const std::string base(name);
  auto* stats = new KernelStats{
      registry().counter(base + ".calls"),
      registry().counter(base + ".items"),
      registry().histogram(base + ".ns", duration_ns_buckets())};
  return *stats;
}

}  // namespace bd::obs
