// TCP transport for the serve protocol: endpoint grammar, listener and
// deadline-bounded client connect.
//
// The daemon side is a plain listening socket (`--listen host:port`,
// SO_REUSEADDR, port 0 = kernel-assigned, reported via port()); accepted
// connections speak the exact same NDJSON protocol as the AF_UNIX path —
// the transport feeds Protocol::handle_line unchanged, and all lifecycle
// hardening (deadlines, caps, shedding, SIGPIPE-safe writes) lives in the
// shared serve/net.h layer, so the two transports cannot drift apart.
//
// Endpoint grammar (shared with clients): "host:port" where host is an
// IPv4 dotted quad, "localhost", or empty/"*"/"0.0.0.0" for any-address
// listening. Clients resolve "localhost"/empty to 127.0.0.1. No DNS — the
// daemon fronts a trusted LAN/loopback, and a resolver dependency would
// buy nondeterminism for nothing.
#pragma once

#include <cstdint>
#include <string>

namespace bd::serve {

struct TcpEndpoint {
  std::string host;  // dotted quad, "localhost", or "" (any/loopback)
  std::uint16_t port = 0;
};

/// Parses "host:port" (also accepts ":port" and bare "port"). False with
/// `error` set on a malformed spec; port 0 is legal for listeners only.
bool parse_tcp_endpoint(const std::string& spec, TcpEndpoint& out,
                        std::string& error);

/// Listening TCP socket. Not copyable; closes on destruction unless
/// release()d (the server takes ownership of the fd for its poll loop).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds + listens. False with `error` set when the address is taken or
  /// malformed. Reopening an open listener is an error.
  bool open(const TcpEndpoint& endpoint, std::string& error);

  int fd() const { return fd_; }
  /// The actual bound port (resolves a requested port of 0).
  std::uint16_t port() const { return port_; }

  /// Hands the fd to the caller and forgets it.
  int release();
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to `endpoint` within `timeout_seconds` (non-blocking connect +
/// poll, so an unreachable host costs the budget, not a kernel default of
/// minutes). Returns a blocking-mode fd, or -1 with `error` set.
int connect_tcp(const TcpEndpoint& endpoint, double timeout_seconds,
                std::string& error);

}  // namespace bd::serve
