// SanitizeService: the daemon core behind `bdctl serve`, independent of
// any transport so tests and the saturation bench drive it in-process.
//
// A submitted job passes admission control (FairQueue: bounded depth +
// per-tenant in-flight quota), is journaled as `queued`, and waits for a
// worker. Each worker runs its job under the robust::Supervisor — the same
// watchdog/retry/quarantine policy as batch benches — with a per-job
// external cancel token so clients can cancel running work cooperatively.
// The expensive backbone (poisoned training run) is shared across jobs
// through a single-flight LRU cache keyed by the FNV-1a config hash.
//
// Every state transition (queued → running → done/failed/cancelled) is
// appended to the run journal under "job|<id>", latest record wins. A
// restarted daemon reloads the journal: terminal jobs are reported as-is,
// jobs a previous incarnation left queued/running are either marked
// `interrupted` (default: report, don't silently redo side effects) or
// deterministically requeued in submit order (resume_interrupted).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "robust/cancel.h"
#include "robust/journal.h"
#include "robust/supervisor.h"
#include "serve/backbone_cache.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "runtime/ordered_mutex.h"

namespace bd::serve {

struct ServiceConfig {
  std::size_t workers = 2;
  std::size_t queue_capacity = 16;  // queued jobs, globally
  std::size_t tenant_quota = 4;     // queued + running jobs per tenant
  std::size_t cache_capacity = 4;   // cached backbones (0 = no cache)
  /// Journal path ("" disables journaling; restart then reports nothing).
  std::string journal_path;
  /// Requeue jobs a previous incarnation left queued/running instead of
  /// marking them interrupted.
  bool resume_interrupted = false;
  /// Supervisor running every job (nullptr = Supervisor::instance(),
  /// configured from BDPROTO_DEADLINE / BDPROTO_STALL / BDPROTO_RETRIES).
  robust::Supervisor* supervisor = nullptr;
};

struct SubmitResult {
  Admission admission = Admission::kAdmitted;
  std::string id;            // set when admitted (or deduplicated)
  bool deduplicated = false; // an idempotent retry matched an existing job
};

/// How a stop winds down outstanding work. kDrain finishes every queued
/// job before returning; kAbandon stops the workers after their current
/// job, leaving queued jobs journaled as `queued` so a restart reports
/// them `interrupted` — byte-identical to what a crash would leave.
enum class StopMode { kDrain, kAbandon };

enum class CancelOutcome {
  kCancelledQueued,  // removed before a worker picked it up
  kSignalled,        // running; cooperative cancellation requested
  kUnknownJob,
  kAlreadyTerminal,
};

/// Result of a bounded wait for a job's terminal state.
enum class WaitOutcome {
  kTerminal,  // the job reached done/failed/cancelled/interrupted
  kTimeout,   // known job, still in flight when the budget expired
  kUnknown,   // no such job id
};
const char* wait_outcome_name(WaitOutcome outcome);

struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t done = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t interrupted = 0;  // loaded from a previous incarnation
  std::int64_t deduplicated = 0; // idempotent retries matched to a job
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  BackboneCacheStats cache;
};

class SanitizeService {
 public:
  explicit SanitizeService(const ServiceConfig& config);
  ~SanitizeService();

  SanitizeService(const SanitizeService&) = delete;
  SanitizeService& operator=(const SanitizeService&) = delete;

  /// Spawns the worker pool (idempotent). The constructor does NOT start
  /// workers, so restart state can be inspected before any job runs.
  void start();

  /// Validates + admits `spec`. Throws BadRequest on invalid content
  /// (including an unreadable model_path checkpoint).
  SubmitResult submit(const JobSpec& spec);

  CancelOutcome cancel(const std::string& id);

  /// Snapshot of one job; false when the id is unknown.
  bool status(const std::string& id, JobRecord& out) const;

  /// All jobs in submit order, optionally filtered by tenant.
  std::vector<JobRecord> jobs(const std::string& tenant = "") const;

  /// Blocks until `id` reaches a terminal state, the timeout expires, or
  /// the service stops (reported as kTimeout so transport threads never
  /// hang a shutdown). timeout_seconds <= 0 waits without a bound.
  WaitOutcome wait(const std::string& id, double timeout_seconds = 0.0) const;

  /// Blocks until no job is queued or running.
  void drain() const;

  /// Stops admission and joins the workers. kDrain finishes every queued
  /// job first; kAbandon clears the queue (jobs stay journaled as
  /// `queued`, so a restart reports them `interrupted` — exactly the
  /// states a crash would have left).
  void stop(StopMode mode = StopMode::kDrain);

  ServiceStats stats() const;
  std::map<std::string, std::size_t> tenant_load() const {
    return queue_.in_flight_by_tenant();
  }

 private:
  void load_journal();
  void worker_loop(std::size_t worker_index);
  void process_job(const std::string& id);
  void finish(const std::string& id, const robust::RunReport& report,
              const JobRecord& update);
  void journal_locked(const JobRecord& record);

  ServiceConfig config_;
  robust::Supervisor* supervisor_;
  FairQueue queue_;
  BackboneCache cache_;
  robust::RunJournal journal_;

  mutable runtime::OrderedMutex<runtime::LockRank::kServeService> mutex_;
  mutable std::condition_variable_any terminal_cv_;
  std::map<std::string, JobRecord> records_;  // id -> latest state
  /// Idempotency index: "tenant|client_id" -> job id, rebuilt from the
  /// journal on load (terminal jobs included, so a retry after restart
  /// returns the finished job instead of re-enqueueing it).
  std::map<std::string, std::string> dedup_;
  std::map<std::string, robust::CancelSource> cancels_;
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  ServiceStats counters_;

  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
  bool stop_complete_ = false;  // workers joined; waiters must not block
};

}  // namespace bd::serve
