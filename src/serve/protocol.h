// The serve request protocol, independent of any transport: one JSON
// request object in, one JSON response line out.
//
// Requests:  {"op":"submit","tenant":"t","job":{...}}
//            {"op":"status","id":"j000001"}      {"op":"jobs","tenant":"t"?}
//            {"op":"cancel","id":"j000001"}      {"op":"stats"}
//            {"op":"wait","id":"j000001","timeout":30?}
//            {"op":"ping"}                       {"op":"shutdown","drain":b?}
// Responses: {"ok":true, ...} on success, else
//            {"ok":false,"error":"<code>","message":"<detail>"} with codes
//            bad_json | oversized_request | bad_request | unknown_op |
//            unknown_job | quota_exceeded | queue_full | closed |
//            not_cancellable | wait_timeout, plus two codes produced by
//            the transport layer rather than here: `overloaded` (the
//            connection cap sheds this connection; retryable with
//            backoff) and `timeout` (no complete request within the read
//            deadline).
//
// submit accepts an optional job.client_id idempotency key: a resubmit
// with the same (tenant, client_id) answers {"ok":true,"dedup":true} with
// the existing job's id and current state instead of enqueueing twice.
// wait blocks server-side (timeout clamped to 60s) until the job is
// terminal, answering like status; a still-running job is `wait_timeout`.
// shutdown drains by default; {"drain":false} abandons queued jobs (they
// stay journaled and surface as `interrupted` after a restart).
//
// Every malformed, oversized or otherwise hostile line maps to a
// structured error response — nothing a client sends can crash the daemon
// or tear another tenant's job.
#pragma once

#include <cstddef>
#include <string>

#include "serve/service.h"

namespace bd::serve {

struct ProtocolResult {
  std::string response;  // one JSON line, no trailing newline
  bool shutdown = false;  // the request asked the daemon to exit
  bool drain = true;      // shutdown only: false = abandon queued jobs
};

class Protocol {
 public:
  /// Longest request line accepted; longer input is rejected with an
  /// `oversized_request` error before any parsing happens.
  static constexpr std::size_t kMaxRequestBytes = 64 * 1024;

  explicit Protocol(SanitizeService& service) : service_(service) {}

  /// Handles one request line (without its trailing newline). Never
  /// throws; every failure becomes a structured error response.
  ProtocolResult handle_line(const std::string& line);

 private:
  SanitizeService& service_;
};

/// {"ok":false,"error":code,"message":message} — shared with the server's
/// transport-level failures (e.g. a line that arrives over the limit).
std::string protocol_error(const std::string& code,
                           const std::string& message);

}  // namespace bd::serve
