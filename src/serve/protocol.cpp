#include "serve/protocol.h"

#include "obs/obs.h"

namespace bd::serve {

namespace {

std::string ok_line(const JsonObject& body) { return body.str(); }

std::string stats_json(const SanitizeService& service) {
  const ServiceStats s = service.stats();
  JsonObject cache;
  cache.set_int("hits", s.cache.hits)
      .set_int("misses", s.cache.misses)
      .set_int("evictions", s.cache.evictions)
      .set_int("size", static_cast<std::int64_t>(s.cache.size))
      .set_int("capacity", static_cast<std::int64_t>(s.cache.capacity));
  JsonObject tenants;
  for (const auto& [tenant, load] : service.tenant_load()) {
    tenants.set_int(tenant, static_cast<std::int64_t>(load));
  }
  JsonObject body;
  body.set_bool("ok", true)
      .set_int("submitted", s.submitted)
      .set_int("done", s.done)
      .set_int("failed", s.failed)
      .set_int("cancelled", s.cancelled)
      .set_int("interrupted", s.interrupted)
      .set_int("deduplicated", s.deduplicated)
      .set_int("queue_depth", static_cast<std::int64_t>(s.queue_depth))
      .set_int("running", static_cast<std::int64_t>(s.running))
      .set_raw("cache", cache.str())
      .set_raw("tenants", tenants.str());
  return body.str();
}

}  // namespace

std::string protocol_error(const std::string& code,
                           const std::string& message) {
  JsonObject body;
  body.set_bool("ok", false).set("error", code).set("message", message);
  return body.str();
}

ProtocolResult Protocol::handle_line(const std::string& line) {
  ProtocolResult out;
  BD_OBS_COUNT("serve.requests", 1);

  if (line.size() > kMaxRequestBytes) {
    out.response = protocol_error(
        "oversized_request",
        "request line exceeds " + std::to_string(kMaxRequestBytes) +
            " bytes (got " + std::to_string(line.size()) + ")");
    return out;
  }

  Json request;
  std::string parse_error;
  if (!Json::parse(line, request, parse_error)) {
    out.response = protocol_error("bad_json", parse_error);
    return out;
  }
  if (!request.is_object()) {
    out.response = protocol_error("bad_request", "request must be an object");
    return out;
  }

  const std::string op = request.get_string("op");
  try {
    if (op == "ping") {
      JsonObject body;
      body.set_bool("ok", true).set("pong", "serve");
      out.response = ok_line(body);
    } else if (op == "submit") {
      const std::string tenant = request.get_string("tenant", "default");
      validate_tenant(tenant);
      const Json* job = request.find("job");
      if (job == nullptr || !job->is_object()) {
        throw BadRequest("submit requires a \"job\" object");
      }
      const JobSpec spec = parse_job_spec(*job, tenant);
      const SubmitResult result = service_.submit(spec);
      switch (result.admission) {
        case Admission::kAdmitted: {
          JsonObject body;
          body.set_bool("ok", true).set("id", result.id);
          if (result.deduplicated) {
            // Idempotent retry: report the existing job's current state
            // so the client can go straight to wait/status.
            JobRecord record;
            body.set("state", service_.status(result.id, record)
                                  ? job_state_name(record.state)
                                  : "queued");
            body.set_bool("dedup", true);
          } else {
            body.set("state", "queued");
          }
          out.response = ok_line(body);
          break;
        }
        case Admission::kQueueFull:
          out.response = protocol_error(
              "queue_full", "job queue is at capacity; retry with backoff");
          break;
        case Admission::kQuotaExceeded:
          out.response = protocol_error(
              "quota_exceeded",
              "tenant \"" + tenant + "\" is at its in-flight quota");
          break;
        case Admission::kClosed:
          out.response =
              protocol_error("closed", "daemon is shutting down");
          break;
      }
    } else if (op == "status") {
      const std::string id = request.get_string("id");
      JobRecord record;
      if (!service_.status(id, record)) {
        out.response =
            protocol_error("unknown_job", "no job with id \"" + id + "\"");
      } else {
        JsonObject body;
        body.set_bool("ok", true).set_raw("job", job_json(record));
        out.response = ok_line(body);
      }
    } else if (op == "jobs") {
      const std::string tenant = request.get_string("tenant");
      std::string array = "[";
      bool first = true;
      for (const JobRecord& record : service_.jobs(tenant)) {
        if (!first) array += ",";
        first = false;
        array += job_json(record);
      }
      array += "]";
      JsonObject body;
      body.set_bool("ok", true).set_raw("jobs", array);
      out.response = ok_line(body);
    } else if (op == "cancel") {
      const std::string id = request.get_string("id");
      switch (service_.cancel(id)) {
        case CancelOutcome::kCancelledQueued: {
          JsonObject body;
          body.set_bool("ok", true).set("id", id).set("state", "cancelled");
          out.response = ok_line(body);
          break;
        }
        case CancelOutcome::kSignalled: {
          JsonObject body;
          body.set_bool("ok", true).set("id", id).set("state", "cancelling");
          out.response = ok_line(body);
          break;
        }
        case CancelOutcome::kUnknownJob:
          out.response =
              protocol_error("unknown_job", "no job with id \"" + id + "\"");
          break;
        case CancelOutcome::kAlreadyTerminal:
          out.response = protocol_error(
              "not_cancellable", "job \"" + id + "\" is already terminal");
          break;
      }
    } else if (op == "wait") {
      const std::string id = request.get_string("id");
      // Server-side wait is clamped so a connection thread can never
      // outlive the transport's patience by much; clients needing longer
      // waits poll or re-issue.
      double timeout = 30.0;
      if (const Json* t = request.find("timeout"); t != nullptr) {
        if (!t->is_number()) throw BadRequest("wait.timeout must be a number");
        timeout = t->as_number();
      }
      if (timeout <= 0.0 || timeout > 60.0) timeout = 60.0;
      switch (service_.wait(id, timeout)) {
        case WaitOutcome::kTerminal: {
          JobRecord record;
          if (service_.status(id, record)) {
            JsonObject body;
            body.set_bool("ok", true).set_raw("job", job_json(record));
            out.response = ok_line(body);
          } else {
            out.response = protocol_error("unknown_job",
                                          "no job with id \"" + id + "\"");
          }
          break;
        }
        case WaitOutcome::kTimeout:
          out.response = protocol_error(
              "wait_timeout",
              "job \"" + id + "\" not terminal within the wait budget");
          break;
        case WaitOutcome::kUnknown:
          out.response =
              protocol_error("unknown_job", "no job with id \"" + id + "\"");
          break;
      }
    } else if (op == "stats") {
      out.response = stats_json(service_);
    } else if (op == "shutdown") {
      const bool drain = request.get_bool("drain", true);
      JsonObject body;
      body.set_bool("ok", true).set("state", "shutting_down");
      body.set_bool("drain", drain);
      out.response = ok_line(body);
      out.shutdown = true;
      out.drain = drain;
    } else if (op.empty()) {
      out.response = protocol_error("bad_request", "missing \"op\"");
    } else {
      out.response =
          protocol_error("unknown_op", "unknown op \"" + op + "\"");
    }
  } catch (const BadRequest& e) {
    out.response = protocol_error("bad_request", e.what());
  } catch (const std::exception& e) {
    // Belt and braces: no request may take the daemon down.
    out.response = protocol_error("bad_request", e.what());
  }
  return out;
}

}  // namespace bd::serve
