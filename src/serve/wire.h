// Wire format for the serve protocol: a minimal JSON value plus an object
// writer, sized for newline-delimited request/response lines.
//
// The parser is strict (complete values only, no trailing bytes, bounded
// nesting depth) and never throws on malformed input — Json::parse()
// returns false with a byte-offset error message, which the protocol layer
// turns into a structured `bad_json` response instead of a dead daemon.
// The run journal keeps its own specialized one-line parser; this one
// exists for untrusted client input, where arbitrary nesting, numbers and
// booleans must be rejected gracefully rather than assumed away.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bd::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  /// Empty for non-strings.
  const std::string& as_string() const { return string_; }
  const std::map<std::string, Json>& members() const { return object_; }
  const std::vector<Json>& items() const { return array_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& name) const;

  /// Convenience accessors over object members, with fallbacks for absent
  /// members. A present member of the wrong type is NOT silently coerced:
  /// callers that must distinguish use find() and check the type.
  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Parses exactly one JSON value spanning all of `text` (surrounding
  /// whitespace allowed). On failure returns false and sets `error` to a
  /// reason with the byte offset. Nesting is limited to depth 16.
  static bool parse(const std::string& text, Json& out, std::string& error);

 private:
  friend class Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::map<std::string, Json> object_;
  std::vector<Json> array_;
};

/// `s` escaped for embedding inside a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

/// Builds one JSON object string field by field, in insertion order.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set_int(const std::string& key, std::int64_t value);
  JsonObject& set_double(const std::string& key, double value);
  JsonObject& set_bool(const std::string& key, bool value);
  /// Inserts `json` verbatim (a pre-serialized object/array/value).
  JsonObject& set_raw(const std::string& key, const std::string& json);

  std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObject& raw_value(const std::string& key, const std::string& value);
  std::string body_;
};

}  // namespace bd::serve
