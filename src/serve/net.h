// Shared connection-lifecycle primitives for the serve transports.
//
// Every byte the daemon or a client moves over a socket goes through this
// layer, which owns the three invariants the transports must never violate:
//
//   1. No SIGPIPE, ever. A peer that dies mid-write turns into an EPIPE
//      return, not a process-killing signal: send_all() passes MSG_NOSIGNAL
//      on every send(2) and loops over EINTR and short writes the way
//      robust's journal appends do.
//   2. Every blocking I/O step has a deadline. recv_ready()/send_all() poll
//      with the caller's budget, so a slow or stalled peer (slowloris) costs
//      one connection slot for a bounded time, never a thread forever.
//   3. Buffers are bounded. LineFramer reassembles newline-delimited frames
//      from arbitrary chunkings (byte-at-a-time, split at any boundary,
//      several frames in one read) but refuses to buffer a line beyond its
//      limit, which rides Protocol::kMaxRequestBytes.
//
// Deterministic network faults (robust::FaultInjector specs) fire inside
// this layer so every transport failure mode is reproducible in tests:
// `short_write@n` degrades the n-th send_all() to one-byte syscalls (the
// loop must reassemble), `accept_fail@n` fails the n-th accept, and the
// client-side `conn_reset@n` / `slow_peer@n` live in serve/client.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bd::serve::net {

/// Outcome of one I/O step. kReset covers ECONNRESET/EPIPE — the peer is
/// gone; kTimeout means the deadline expired with the fd not ready.
enum class IoStatus { kOk, kClosed, kTimeout, kReset, kError };
const char* io_status_name(IoStatus status);

/// Sends all `len` bytes with MSG_NOSIGNAL, looping over EINTR, EAGAIN and
/// short writes; blocks at most `deadline_seconds` total (<= 0: no bound).
/// Returns kOk only when every byte is out. `err` (optional) receives the
/// errno of a kReset/kError outcome.
IoStatus send_all(int fd, const char* data, std::size_t len,
                  double deadline_seconds, int* err = nullptr);
IoStatus send_all(int fd, const std::string& data, double deadline_seconds,
                  int* err = nullptr);

/// Waits up to `deadline_seconds` for `fd` to become readable (<= 0: no
/// bound). kOk means readable (possibly EOF — the recv decides).
IoStatus recv_ready(int fd, double deadline_seconds);

/// One deadline-bounded recv of at most `max_chunk` bytes appended to
/// `out`. kClosed on orderly EOF, kReset on ECONNRESET, kTimeout when the
/// peer sent nothing within the budget.
IoStatus recv_some(int fd, std::string& out, std::size_t max_chunk,
                   double deadline_seconds, int* err = nullptr);

/// Reassembles newline-delimited frames from adversarial chunk delivery.
/// append() buffers bytes; next() yields complete lines (without the '\n',
/// tolerating a trailing '\r') in arrival order. A partial line growing
/// past `max_line` trips overflowed() — the caller answers with the
/// structured oversized error and drops the connection, bounding the
/// memory any client can pin.
class LineFramer {
 public:
  explicit LineFramer(std::size_t max_line) : max_line_(max_line) {}

  /// False (and overflowed() latches) when the unterminated tail would
  /// exceed max_line. Complete lines already in `data` are still yielded.
  bool append(const char* data, std::size_t n);

  /// Pops the next complete line; false when none is buffered. Empty
  /// lines are skipped (keep-alive newlines are legal NDJSON padding).
  bool next(std::string& line);

  bool overflowed() const { return overflowed_; }
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::size_t max_line_;
  std::string buffer_;
  bool overflowed_ = false;
};

/// Binds and listens on an AF_UNIX stream socket, unlinking a stale file
/// first. Returns the listening fd, or -1 with `error` set.
int listen_unix(const std::string& path, std::string& error);

/// Connects to an AF_UNIX socket within `timeout_seconds`. -1 + error.
int connect_unix(const std::string& path, double timeout_seconds,
                 std::string& error);

/// The port a bound TCP socket actually got (resolves port 0); 0 on error.
std::uint16_t bound_port(int fd);

}  // namespace bd::serve::net
