#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace bd::serve {

std::string Client::request(const std::string& line) const {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("connect(" + socket_path_ +
                             "): " + std::strerror(err) +
                             " (is the daemon running?)");
  }

  const std::string payload = line + "\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("send(): ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string response;
  char chunk[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error(std::string("recv(): ") + std::strerror(err));
    }
    if (n == 0) {
      ::close(fd);
      throw std::runtime_error("daemon closed the connection mid-response");
    }
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response.substr(0, response.find('\n'));
}

Json Client::request_json(const std::string& line) const {
  const std::string response = request(line);
  Json parsed;
  std::string error;
  if (!Json::parse(response, parsed, error)) {
    throw std::runtime_error("malformed response from daemon: " + error +
                             " in: " + response);
  }
  return parsed;
}

bool Client::alive() const {
  try {
    const Json response = request_json("{\"op\":\"ping\"}");
    return response.get_bool("ok", false);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace bd::serve
