#include "serve/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "serve/net.h"
#include "util/env.h"
#include "util/rng.h"

namespace bd::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Endpoint unix_endpoint(std::string socket_path) {
  Endpoint e;
  e.kind = Endpoint::Kind::kUnix;
  e.socket_path = std::move(socket_path);
  return e;
}

Endpoint tcp_endpoint(const std::string& host_port) {
  Endpoint e;
  e.kind = Endpoint::Kind::kTcp;
  std::string error;
  if (!parse_tcp_endpoint(host_port, e.tcp, error)) {
    throw std::invalid_argument(error);
  }
  if (e.tcp.port == 0) {
    throw std::invalid_argument("bad endpoint '" + host_port +
                                "': clients must name a nonzero port");
  }
  return e;
}

std::string endpoint_name(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    return "unix:" + endpoint.socket_path;
  }
  return "tcp:" +
         (endpoint.tcp.host.empty() ? "localhost" : endpoint.tcp.host) + ":" +
         std::to_string(endpoint.tcp.port);
}

ClientConfig ClientConfig::from_env() {
  ClientConfig c;
  if (const auto v = env_double("BDPROTO_CONNECT_TIMEOUT")) {
    c.connect_timeout_seconds = *v;
  }
  if (const auto v = env_double("BDPROTO_IO_TIMEOUT")) {
    c.io_timeout_seconds = *v;
  }
  if (const auto v = env_double("BDPROTO_CLIENT_DEADLINE")) {
    c.overall_deadline_seconds = *v;
  }
  if (const auto v = env_int("BDPROTO_RETRY_BUDGET")) {
    c.retry_budget = *v < 0 ? 0 : static_cast<int>(*v);
  }
  return c;
}

Client::Client(Endpoint endpoint, ClientConfig config)
    : endpoint_(std::move(endpoint)), config_(config) {}

int Client::connect_fd() const {
  std::string error;
  int fd = -1;
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    fd = net::connect_unix(endpoint_.socket_path,
                           config_.connect_timeout_seconds, error);
  } else {
    fd = connect_tcp(endpoint_.tcp, config_.connect_timeout_seconds, error);
  }
  if (fd < 0) throw TransportError(error, /*retryable=*/true);
  return fd;
}

std::string Client::request(const std::string& line) const {
  const int fd = connect_fd();
  const std::string payload = line + "\n";
  auto& faults = robust::FaultInjector::instance();

  if (faults.fire_slow_peer()) {
    // Slowloris this request: one byte per send with small gaps. The
    // server's framing must reassemble it, and its read deadline must
    // tolerate a peer that is slow but making progress.
    for (std::size_t i = 0; i < payload.size(); ++i) {
      const net::IoStatus status = net::send_all(
          fd, payload.data() + i, 1, config_.io_timeout_seconds);
      if (status != net::IoStatus::kOk) {
        ::close(fd);
        throw TransportError(
            std::string("send(): ") + net::io_status_name(status),
            /*retryable=*/true);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } else {
    int err = 0;
    const net::IoStatus status =
        net::send_all(fd, payload, config_.io_timeout_seconds, &err);
    if (status != net::IoStatus::kOk) {
      ::close(fd);
      throw TransportError(
          std::string("send(): ") + net::io_status_name(status),
          /*retryable=*/true);
    }
  }

  if (faults.fire_conn_reset()) {
    // SO_LINGER{on, 0}: close() sends a real RST instead of FIN, so the
    // daemon sees the mid-exchange reset a crashing client produces. The
    // client cannot know whether the request was processed — exactly the
    // ambiguity the idempotent-retry contract exists for.
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    (void)::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
    throw TransportError(
        "injected connection reset after send (BDPROTO_FAULTS conn_reset@n)",
        /*retryable=*/true);
  }

  std::string response;
  while (response.find('\n') == std::string::npos) {
    const net::IoStatus status =
        net::recv_some(fd, response, 4096, config_.io_timeout_seconds);
    if (status == net::IoStatus::kClosed) {
      ::close(fd);
      throw TransportError("daemon closed the connection mid-response",
                           /*retryable=*/true);
    }
    if (status != net::IoStatus::kOk) {
      ::close(fd);
      throw TransportError(
          std::string("recv(): ") + net::io_status_name(status),
          /*retryable=*/true);
    }
  }
  ::close(fd);
  return response.substr(0, response.find('\n'));
}

Json Client::request_json(const std::string& line) const {
  const std::string response = request(line);
  Json parsed;
  std::string error;
  if (!Json::parse(response, parsed, error)) {
    throw std::runtime_error("malformed response from daemon: " + error +
                             " in: " + response);
  }
  return parsed;
}

Json Client::request_json_retry(const std::string& line,
                                int* retries_out) const {
  const auto start = Clock::now();
  int retries = 0;
  double delay = config_.backoff_initial_seconds;
  for (int attempt = 0;; ++attempt) {
    try {
      const Json response = request_json(line);
      if (!response.get_bool("ok", true) &&
          response.get_string("error") == "overloaded") {
        // The daemon shed this connection on purpose; treat like a
        // retryable transport fault so the backoff below applies.
        throw TransportError("daemon overloaded: " +
                                 response.get_string("message"),
                             /*retryable=*/true);
      }
      if (retries_out != nullptr) *retries_out = retries;
      return response;
    } catch (const TransportError& e) {
      if (!e.retryable() || attempt >= config_.retry_budget) throw;
      const double jitter =
          Rng(config_.jitter_seed ^ static_cast<std::uint64_t>(attempt + 1))
              .uniform(0.5, 1.0);
      const double sleep_seconds = delay * jitter;
      if (config_.overall_deadline_seconds > 0.0 &&
          seconds_since(start) + sleep_seconds >
              config_.overall_deadline_seconds) {
        throw TransportError(std::string("overall deadline exhausted after ") +
                                 std::to_string(retries) +
                                 " retries; last error: " + e.what(),
                             /*retryable=*/false);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_seconds));
      delay = delay * 2.0 > config_.backoff_max_seconds
                  ? config_.backoff_max_seconds
                  : delay * 2.0;
      ++retries;
      BD_OBS_COUNT("serve.client.retries", 1);
    }
  }
}

bool Client::alive() const {
  try {
    const Json response = request_json("{\"op\":\"ping\"}");
    return response.get_bool("ok", false);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace bd::serve
