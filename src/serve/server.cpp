#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "serve/net.h"
#include "serve/transport_tcp.h"
#include "util/logging.h"

namespace bd::serve {

namespace {

/// Write end of the running server's wake pipe, published for the signal
/// handler. One daemon per process installs handlers (bdctl serve), so a
/// single slot suffices; -1 means no handler is active.
std::atomic<int> g_signal_wake_fd{-1};

void handle_stop_signal(int /*signo*/) {
  // Async-signal-safe: one lock-free load + one write(2). The byte value
  // tells the poll loop this wake is a signal (drain), not request_stop.
  const int fd = g_signal_wake_fd.load();
  if (fd >= 0) {
    const char byte = 'S';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

SocketServer::SocketServer(const ServerConfig& config)
    : config_(config), service_(config.service), protocol_(service_) {
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(std::string("pipe(): ") + std::strerror(errno));
  }
  set_cloexec(wake_pipe_[0]);
  set_cloexec(wake_pipe_[1]);
  // The signal handler must never block on a full pipe.
  const int flags = ::fcntl(wake_pipe_[1], F_GETFL, 0);
  (void)::fcntl(wake_pipe_[1], F_SETFL, flags | O_NONBLOCK);
}

SocketServer::~SocketServer() {
  request_stop();
  interrupt_connections();
  reap_connections(/*join_all=*/true);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void SocketServer::wake() {
  const int fd = wake_pipe_[1];
  if (fd < 0) return;
  const char byte = 'W';
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
}

void SocketServer::request_stop(StopMode mode) {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true)) {
    stop_mode_.store(static_cast<int>(mode));  // first stop wins the mode
  }
  wake();
}

void SocketServer::run() {
  if (config_.socket_path.empty() && config_.listen_address.empty()) {
    throw std::runtime_error(
        "serve: no transport configured (need a socket path or --listen)");
  }

  int unix_fd = -1;
  TcpListener tcp;
  std::string error;
  if (!config_.socket_path.empty()) {
    unix_fd = net::listen_unix(config_.socket_path, error);
    if (unix_fd < 0) throw std::runtime_error(error);
  }
  if (!config_.listen_address.empty()) {
    TcpEndpoint endpoint;
    if (!parse_tcp_endpoint(config_.listen_address, endpoint, error) ||
        !tcp.open(endpoint, error)) {
      if (unix_fd >= 0) {
        ::close(unix_fd);
        ::unlink(config_.socket_path.c_str());
      }
      throw std::runtime_error(error);
    }
    tcp_port_.store(tcp.port());
  }

  struct sigaction old_term {};
  struct sigaction old_int {};
  bool signals_installed = false;
  if (config_.install_signal_handlers) {
    g_signal_wake_fd.store(wake_pipe_[1]);
    struct sigaction sa {};
    sa.sa_handler = handle_stop_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, &old_term);
    ::sigaction(SIGINT, &sa, &old_int);
    signals_installed = true;
  }

  service_.start();
  if (unix_fd >= 0) {
    BD_LOG(Info) << "serve: listening on " << config_.socket_path;
  }
  if (tcp.fd() >= 0) {
    BD_LOG(Info) << "serve: listening on tcp port " << tcp.port();
  }

  while (!stop_.load()) {
    pollfd pfds[3];
    nfds_t nfds = 0;
    pfds[nfds].fd = wake_pipe_[0];
    pfds[nfds].events = POLLIN;
    const nfds_t wake_slot = nfds++;
    nfds_t unix_slot = 0;
    nfds_t tcp_slot = 0;
    if (unix_fd >= 0) {
      pfds[nfds].fd = unix_fd;
      pfds[nfds].events = POLLIN;
      unix_slot = nfds++;
    }
    if (tcp.fd() >= 0) {
      pfds[nfds].fd = tcp.fd();
      pfds[nfds].events = POLLIN;
      tcp_slot = nfds++;
    }
    const int n = ::poll(pfds, nfds, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      BD_LOG(Warn) << "serve: poll(): " << std::strerror(errno);
      break;
    }
    if (pfds[wake_slot].revents != 0) {
      char buf[64];
      const ssize_t got = ::read(wake_pipe_[0], buf, sizeof(buf));
      for (ssize_t i = 0; i < got; ++i) {
        if (buf[i] == 'S') request_stop(StopMode::kDrain);  // signal
      }
    }
    if (unix_fd >= 0 && pfds[unix_slot].revents != 0 && !stop_.load()) {
      accept_on(unix_fd, "unix");
    }
    if (tcp.fd() >= 0 && pfds[tcp_slot].revents != 0 && !stop_.load()) {
      accept_on(tcp.fd(), "tcp");
    }
    reap_connections(/*join_all=*/false);
  }

  // Stop accepting first, then cut connection reads (responses in flight
  // still go out) and join the connection threads so every accepted
  // request has either been answered or abandoned before the service
  // winds down its workers.
  if (unix_fd >= 0) ::close(unix_fd);
  tcp.close();
  interrupt_connections();
  reap_connections(/*join_all=*/true);

  const auto mode = static_cast<StopMode>(stop_mode_.load());
  service_.stop(mode);
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());

  if (signals_installed) {
    g_signal_wake_fd.store(-1);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGINT, &old_int, nullptr);
  }
  BD_LOG(Info) << "serve: shut down cleanly ("
               << (mode == StopMode::kDrain ? "drained" : "abandoned queue")
               << ")";
}

void SocketServer::accept_on(int listener_fd, const char* transport) {
  const int conn = ::accept(listener_fd, nullptr, nullptr);
  if (conn < 0) return;  // transient (EINTR/ECONNABORTED): poll re-arms
  if (robust::FaultInjector::instance().fire_accept_fail()) {
    BD_LOG(Warn) << "fault injector: dropping accepted " << transport
                 << " connection";
    BD_OBS_COUNT("serve.conn.accept_fail", 1);
    ::close(conn);
    return;
  }
  if (active_connections_.load() >= config_.max_connections) {
    BD_OBS_COUNT("serve.conn.shed", 1);
    // Best-effort structured refusal with a tight cap so a zombie peer
    // cannot stall the accept loop; then close. Clients treat
    // `overloaded` as retryable and back off.
    net::send_all(conn,
                  protocol_error("overloaded",
                                 "connection cap (" +
                                     std::to_string(config_.max_connections) +
                                     ") reached; retry with backoff") +
                      "\n",
                  1.0);
    ::close(conn);
    return;
  }
  BD_OBS_COUNT("serve.conn.accepted", 1);
  const std::size_t active = active_connections_.fetch_add(1) + 1;
  BD_OBS_GAUGE("serve.conn.active", active);
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::lock_guard lock(threads_mutex_);
  Connection c;
  c.fd = conn;
  c.done = done;
  c.thread = std::thread([this, conn, transport, done] {
    serve_connection(conn, transport, done);
  });
  connections_.push_back(std::move(c));
}

void SocketServer::serve_connection(int fd, const char* transport,
                                    std::shared_ptr<std::atomic<bool>> done) {
  BD_OBS_SPAN("serve.conn");
  net::LineFramer framer(Protocol::kMaxRequestBytes);
  std::string line;
  bool open = true;
  while (open && !stop_.load()) {
    std::string data;
    const net::IoStatus status =
        net::recv_some(fd, data, 4096, config_.read_deadline_seconds);
    if (status == net::IoStatus::kTimeout) {
      BD_OBS_COUNT("serve.conn.read_timeout", 1);
      BD_LOG(Warn) << "serve: dropping idle/slow " << transport
                   << " connection (read deadline)";
      // Best-effort notice; the slow peer may never read it.
      net::send_all(fd,
                    protocol_error("timeout",
                                   "no complete request within the read "
                                   "deadline") +
                        "\n",
                    1.0);
      break;
    }
    if (status == net::IoStatus::kReset) {
      BD_OBS_COUNT("serve.conn.reset", 1);
      break;
    }
    if (status != net::IoStatus::kOk) break;  // orderly EOF or hard error
    if (!framer.append(data.data(), data.size())) {
      // Bound the memory a newline-less client can pin: answer with the
      // structured error and drop the connection.
      net::send_all(fd,
                    protocol_error("oversized_request",
                                   "request line exceeds " +
                                       std::to_string(
                                           Protocol::kMaxRequestBytes) +
                                       " bytes") +
                        "\n",
                    config_.write_deadline_seconds);
      break;
    }
    while (framer.next(line)) {
      const ProtocolResult result = protocol_.handle_line(line);
      const net::IoStatus wrote = net::send_all(
          fd, result.response + "\n", config_.write_deadline_seconds);
      if (wrote != net::IoStatus::kOk) {
        if (wrote == net::IoStatus::kReset) {
          BD_OBS_COUNT("serve.conn.reset", 1);
        } else if (wrote == net::IoStatus::kTimeout) {
          BD_OBS_COUNT("serve.conn.write_timeout", 1);
        }
        open = false;
        break;
      }
      if (result.shutdown) {
        request_stop(result.drain ? StopMode::kDrain : StopMode::kAbandon);
        open = false;
        break;
      }
    }
  }
  // The fd stays open (the Connection owns it) so a stopping server can
  // shutdown(2) it without racing fd reuse; reap_connections closes it.
  active_connections_.fetch_sub(1);
  done->store(true);
  wake();  // let the accept loop reap this thread promptly
}

void SocketServer::interrupt_connections() {
  std::lock_guard lock(threads_mutex_);
  for (auto& c : connections_) {
    // SHUT_RD only: blocked reads wake with EOF, responses in flight
    // still reach the peer.
    ::shutdown(c.fd, SHUT_RD);
  }
}

void SocketServer::reap_connections(bool join_all) {
  std::vector<Connection> finished;
  {
    std::lock_guard lock(threads_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if (join_all || it->done->load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished) {
    if (c.thread.joinable()) c.thread.join();
    if (c.fd >= 0) ::close(c.fd);
  }
}

}  // namespace bd::serve
