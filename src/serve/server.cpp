#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.h"

namespace bd::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(const ServerConfig& config)
    : config_(config), service_(config.service), protocol_(service_) {}

SocketServer::~SocketServer() {
  request_stop();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::close_listener() {
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void SocketServer::request_stop() {
  stop_.store(true);
  close_listener();
}

void SocketServer::run() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + config_.socket_path);
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(config_.socket_path.c_str());  // stale socket from a prior run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("bind(" + config_.socket_path +
                             "): " + std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("listen(): ") + std::strerror(err));
  }
  listen_fd_.store(fd);

  service_.start();
  BD_LOG(Info) << "serve: listening on " << config_.socket_path;

  while (!stop_.load()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (stop_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener closed under us
    }
    std::lock_guard lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, conn] { serve_connection(conn); });
  }

  close_listener();
  {
    // Join finished/draining connections before stopping the service so
    // in-flight submits land in the queue and get drained deterministically.
    std::vector<std::thread> threads;
    {
      std::lock_guard lock(threads_mutex_);
      threads.swap(connection_threads_);
    }
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
  service_.stop();
  ::unlink(config_.socket_path.c_str());
  BD_LOG(Info) << "serve: shut down cleanly";
}

void SocketServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stop_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const ProtocolResult result = protocol_.handle_line(line);
      if (!send_all(fd, result.response + "\n")) {
        ::close(fd);
        return;
      }
      if (result.shutdown) {
        ::close(fd);
        request_stop();
        return;
      }
    }
    // Bound the memory a newline-less client can pin: answer with the
    // structured error and drop the connection.
    if (buffer.size() > Protocol::kMaxRequestBytes) {
      send_all(fd, protocol_error("oversized_request",
                                  "request line exceeds " +
                                      std::to_string(
                                          Protocol::kMaxRequestBytes) +
                                      " bytes") +
                       "\n");
      break;
    }
  }
  ::close(fd);
}

}  // namespace bd::serve
