// Minimal client for the serve socket: one request line in, one response
// line out, one connection per call. Backs `bdctl submit` / `bdctl jobs` /
// the load generator; stateless so concurrent callers never share a fd.
#pragma once

#include <string>

#include "serve/wire.h"

namespace bd::serve {

class Client {
 public:
  explicit Client(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  /// Sends `line` (newline appended) and returns the daemon's response
  /// line. Throws std::runtime_error on connect/send/receive failure —
  /// i.e. on transport problems; protocol errors come back as normal
  /// {"ok":false,...} responses.
  std::string request(const std::string& line) const;

  /// request() + parse; throws std::runtime_error when the response is not
  /// valid JSON (a daemon bug, not a client mistake).
  Json request_json(const std::string& line) const;

  /// True when a daemon answers {"op":"ping"} on the socket.
  bool alive() const;

 private:
  std::string socket_path_;
};

}  // namespace bd::serve
