// Resilient client for the serve daemon, over AF_UNIX or TCP.
//
// One request line in, one response line out, one connection per call —
// stateless, so concurrent callers never share a fd. On top of that the
// retrying entry point (request_json_retry) adds the failure policy a
// client of a minutes-per-job service needs:
//
//   - every step is deadline-bounded (connect / per-I/O / overall);
//   - transport failures (refused, reset, timeout, daemon closed
//     mid-response) and explicit `overloaded` shed replies are retried
//     with jittered exponential backoff within a retry budget;
//   - retries are only safe because submits carry a client-supplied
//     idempotency key (job.client_id): a resubmit after a reset — the
//     client cannot know whether the daemon enqueued the job before the
//     connection died — answers with the existing job, never a duplicate.
//
// Backoff jitter draws from a deterministically seeded bd::Rng (no wall
// clock, no random_device), so fault-injection tests replay exactly.
//
// Client-side network faults fire here when armed (robust::FaultInjector):
// `conn_reset@n` RSTs the connection after the n-th request is sent
// (SO_LINGER{1,0} + close), `slow_peer@n` trickles the n-th request one
// byte at a time against the server's read deadline.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/transport_tcp.h"
#include "serve/wire.h"

namespace bd::serve {

/// Where the daemon lives: a filesystem socket or a TCP endpoint.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string socket_path;  // kUnix
  TcpEndpoint tcp;          // kTcp
};

Endpoint unix_endpoint(std::string socket_path);
/// Parses "host:port"; throws std::invalid_argument on a malformed spec
/// or port 0 (clients must name a real port).
Endpoint tcp_endpoint(const std::string& host_port);
/// "unix:<path>" or "tcp:<host>:<port>" for logs and errors.
std::string endpoint_name(const Endpoint& endpoint);

/// A transport-level failure (vs a protocol {"ok":false,...} reply).
/// `retryable` distinguishes faults worth re-attempting (refused, reset,
/// timeout, truncated response) from caller bugs (bad endpoint spec).
class TransportError : public std::runtime_error {
 public:
  TransportError(const std::string& what, bool retryable)
      : std::runtime_error(what), retryable_(retryable) {}
  bool retryable() const { return retryable_; }

 private:
  bool retryable_;
};

struct ClientConfig {
  double connect_timeout_seconds = 5.0;
  /// Budget for each send/recv step of one request (<= 0: unbounded).
  double io_timeout_seconds = 30.0;
  /// Cap on one request_json_retry call including backoff sleeps
  /// (<= 0: only the retry budget bounds it).
  double overall_deadline_seconds = 120.0;
  /// Retries after the first attempt (0 = single attempt).
  int retry_budget = 4;
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  /// Seed for backoff jitter; fixed default keeps tests deterministic,
  /// loadgen varies it per worker so a thundering herd still spreads.
  std::uint64_t jitter_seed = 0xBDC7C11EULL;

  /// Defaults overridden by BDPROTO_CONNECT_TIMEOUT / BDPROTO_IO_TIMEOUT /
  /// BDPROTO_CLIENT_DEADLINE / BDPROTO_RETRY_BUDGET (see util/env.h).
  static ClientConfig from_env();
};

class Client {
 public:
  /// Unix-socket client with default config (the common bdctl path).
  explicit Client(std::string socket_path)
      : Client(unix_endpoint(std::move(socket_path))) {}
  explicit Client(Endpoint endpoint, ClientConfig config = ClientConfig());

  /// Sends `line` (newline appended) and returns the daemon's response
  /// line. One attempt: throws TransportError on connect/send/receive
  /// failure; protocol errors come back as normal {"ok":false,...}
  /// responses.
  std::string request(const std::string& line) const;

  /// request() + parse; throws std::runtime_error when the response is not
  /// valid JSON (a daemon bug, not a client mistake).
  Json request_json(const std::string& line) const;

  /// request_json() with the retry policy: retryable TransportErrors and
  /// `overloaded` replies are re-attempted with jittered exponential
  /// backoff until the retry budget or overall deadline runs out (the
  /// last error is rethrown). `retries_out` (optional) receives the
  /// number of retries performed. Submits retried through here must
  /// carry job.client_id — see the header comment.
  Json request_json_retry(const std::string& line,
                          int* retries_out = nullptr) const;

  /// True when a daemon answers {"op":"ping"} at the endpoint.
  bool alive() const;

  const Endpoint& endpoint() const { return endpoint_; }
  const ClientConfig& config() const { return config_; }

 private:
  int connect_fd() const;  // throws TransportError

  Endpoint endpoint_;
  ClientConfig config_;
};

}  // namespace bd::serve
