#include "serve/net.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "robust/fault_injector.h"

namespace bd::serve::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in whole milliseconds for poll(2); -1 = unbounded,
/// 0 = already expired (poll returns immediately).
int remaining_ms(double deadline_seconds, Clock::time_point start) {
  if (deadline_seconds <= 0.0) return -1;
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  const double left = deadline_seconds - elapsed.count();
  if (left <= 0.0) return 0;
  const double ms = left * 1000.0;
  return ms > 2147483000.0 ? 2147483000 : static_cast<int>(ms) + 1;
}

IoStatus wait_for(int fd, short events, double deadline_seconds,
                  Clock::time_point start) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int timeout = remaining_ms(deadline_seconds, start);
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return IoStatus::kOk;  // ready (or HUP/ERR — the I/O decides)
    if (n == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

bool is_reset(int err) {
  return err == ECONNRESET || err == EPIPE || err == ECONNABORTED;
}

}  // namespace

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kReset: return "reset";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

IoStatus send_all(int fd, const char* data, std::size_t len,
                  double deadline_seconds, int* err) {
  const auto start = Clock::now();
  // Armed short_write fault: degrade this whole call to one-byte syscalls
  // so the partial-write loop below is what delivers the payload.
  const std::size_t max_chunk =
      robust::FaultInjector::instance().fire_short_write() ? 1 : len;
  std::size_t sent = 0;
  while (sent < len) {
    const std::size_t chunk =
        len - sent < max_chunk ? len - sent : max_chunk;
    const ssize_t n = ::send(fd, data + sent, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const IoStatus ready = wait_for(fd, POLLOUT, deadline_seconds, start);
      if (ready != IoStatus::kOk) return ready;
      continue;
    }
    if (err != nullptr) *err = errno;
    return is_reset(errno) ? IoStatus::kReset : IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus send_all(int fd, const std::string& data, double deadline_seconds,
                  int* err) {
  return send_all(fd, data.data(), data.size(), deadline_seconds, err);
}

IoStatus recv_ready(int fd, double deadline_seconds) {
  return wait_for(fd, POLLIN, deadline_seconds, Clock::now());
}

IoStatus recv_some(int fd, std::string& out, std::size_t max_chunk,
                   double deadline_seconds, int* err) {
  const auto start = Clock::now();
  const IoStatus ready = wait_for(fd, POLLIN, deadline_seconds, start);
  if (ready != IoStatus::kOk) return ready;
  char chunk[4096];
  const std::size_t want =
      max_chunk < sizeof(chunk) ? max_chunk : sizeof(chunk);
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // poll said readable but the kernel changed its mind (spurious
      // wakeup); re-arm with the remaining budget.
      const IoStatus again = wait_for(fd, POLLIN, deadline_seconds, start);
      if (again != IoStatus::kOk) return again;
      continue;
    }
    if (err != nullptr) *err = errno;
    return is_reset(errno) ? IoStatus::kReset : IoStatus::kError;
  }
}

bool LineFramer::append(const char* data, std::size_t n) {
  buffer_.append(data, n);
  // Only the unterminated tail counts against the bound: a burst of
  // complete pipelined frames may legitimately exceed one line's limit.
  const std::size_t last_newline = buffer_.rfind('\n');
  const std::size_t tail = last_newline == std::string::npos
                               ? buffer_.size()
                               : buffer_.size() - last_newline - 1;
  if (tail > max_line_) overflowed_ = true;
  return !overflowed_;
}

bool LineFramer::next(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline == std::string::npos) return false;
    line.assign(buffer_, 0, newline);
    buffer_.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // bare keep-alive newline
    return true;
  }
}

int listen_unix(const std::string& path, std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a prior run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error = "bind(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    error = std::string("listen(): ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, double timeout_seconds,
                 std::string& error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  // AF_UNIX connect either succeeds or fails immediately (the backlog is
  // the only wait, and the kernel handles it); the timeout parameter
  // exists for signature symmetry with the TCP path.
  (void)timeout_seconds;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error = "connect(" + path + "): " + std::strerror(errno) +
            " (is the daemon running?)";
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage ss{};
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&ss), &len) != 0) {
    return 0;
  }
  if (ss.ss_family != AF_INET) return 0;
  sockaddr_in addr{};
  std::memcpy(&addr, &ss, sizeof(addr));
  return ntohs(addr.sin_port);
}

}  // namespace bd::serve::net
