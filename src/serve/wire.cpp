#include "serve/wire.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bd::serve {

namespace {

constexpr int kMaxDepth = 16;

}  // namespace

const Json* Json::find(const std::string& name) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(name);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Json::get_string(const std::string& name,
                             const std::string& fallback) const {
  const Json* v = find(name);
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

std::int64_t Json::get_int(const std::string& name,
                           std::int64_t fallback) const {
  const Json* v = find(name);
  if (v == nullptr || !v->is_number()) return fallback;
  return static_cast<std::int64_t>(v->as_number());
}

double Json::get_double(const std::string& name, double fallback) const {
  const Json* v = find(name);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

bool Json::get_bool(const std::string& name, bool fallback) const {
  const Json* v = find(name);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

/// Recursive-descent parser over the full input string. All failure paths
/// record the byte offset where parsing stopped.
class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : s_(text), error_(error) {}

  bool parse(Json& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing bytes after value");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    error_ = why + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r' ||
            s_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting deeper than 16");
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type_ = Json::Type::kString;
        return parse_string(out.string_);
      case 't': return parse_literal("true", out, Json::Type::kBool, true);
      case 'f': return parse_literal("false", out, Json::Type::kBool, false);
      case 'n': return parse_literal("null", out, Json::Type::kNull, false);
      default: return parse_number(out);
    }
  }

  bool parse_literal(const char* word, Json& out, Json::Type type,
                     bool value) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return fail(std::string("expected '") + word + "'");
      }
    }
    out.type_ = type;
    out.bool_ = value;
    return true;
  }

  bool parse_number(Json& out) {
    // strtod is laxer than JSON (hex floats, "inf", leading zeros), so
    // vet the prefix against the JSON number grammar first.
    std::size_t p = pos_;
    if (p < s_.size() && s_[p] == '-') ++p;
    if (p >= s_.size() || s_[p] < '0' || s_[p] > '9') {
      return fail("expected a value");
    }
    if (s_[p] == '0' && p + 1 < s_.size() && s_[p + 1] >= '0' &&
        s_[p + 1] <= '9') {
      return fail("number has a leading zero");
    }
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start || !std::isfinite(v)) return fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    out.type_ = Json::Type::kNumber;
    out.number_ = v;
    return true;
  }

  bool parse_string(std::string& out) {
    out.clear();
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (!parse_unicode_escape(out)) return false;
          break;
        }
        default:
          pos_ -= 1;
          return fail("unsupported string escape");
      }
    }
    return fail("unterminated string");
  }

  // \uXXXX (already consumed through the 'u'). Decodes the code point to
  // UTF-8; surrogate halves are rejected rather than paired, since the
  // escaper only emits \u00XX for control bytes.
  bool parse_unicode_escape(std::string& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_ + static_cast<std::size_t>(i)];
      unsigned nibble = 0;
      if (h >= '0' && h <= '9') {
        nibble = static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        nibble = static_cast<unsigned>(h - 'a') + 10;
      } else if (h >= 'A' && h <= 'F') {
        nibble = static_cast<unsigned>(h - 'A') + 10;
      } else {
        return fail("non-hex digit in \\u escape");
      }
      code = (code << 4) | nibble;
    }
    pos_ += 4;
    if (code >= 0xD800 && code <= 0xDFFF) {
      return fail("surrogate \\u escape");
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return true;
  }

  bool parse_object(Json& out, int depth) {
    out.type_ = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return fail("expected object member name");
      }
      std::string name;
      if (!parse_string(name)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.object_[name] = std::move(value);
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json& out, int depth) {
    out.type_ = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.array_.push_back(std::move(value));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const std::string& s_;
  std::string& error_;
  std::size_t pos_ = 0;
};

bool Json::parse(const std::string& text, Json& out, std::string& error) {
  out = Json();
  return Parser(text, error).parse(out);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

JsonObject& JsonObject::raw_value(const std::string& key,
                                  const std::string& value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  body_ += value;
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  // Built piecewise: `"\"" + json_escape(v) + "\""` trips GCC 12's
  // -Wrestrict false positive (PR 105651) under -Werror.
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += json_escape(value);
  quoted += '"';
  return raw_value(key, quoted);
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set_int(const std::string& key, std::int64_t value) {
  return raw_value(key, std::to_string(value));
}

JsonObject& JsonObject::set_double(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return raw_value(key, buf);
}

JsonObject& JsonObject::set_bool(const std::string& key, bool value) {
  return raw_value(key, value ? "true" : "false");
}

JsonObject& JsonObject::set_raw(const std::string& key,
                                const std::string& json) {
  return raw_value(key, json);
}

}  // namespace bd::serve
