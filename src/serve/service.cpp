#include "serve/service.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "nn/checkpoint.h"
#include "obs/obs.h"
#include "util/logging.h"

namespace bd::serve {

namespace {

std::string format_job_id(std::uint64_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "j%06llu",
                static_cast<unsigned long long>(n));
  return buf;
}

}  // namespace

const char* wait_outcome_name(WaitOutcome outcome) {
  switch (outcome) {
    case WaitOutcome::kTerminal: return "terminal";
    case WaitOutcome::kTimeout: return "timeout";
    case WaitOutcome::kUnknown: return "unknown";
  }
  return "unknown";
}

SanitizeService::SanitizeService(const ServiceConfig& config)
    : config_(config),
      supervisor_(config.supervisor != nullptr ? config.supervisor
                                               : &robust::Supervisor::instance()),
      queue_(config.queue_capacity, config.tenant_quota),
      cache_(config.cache_capacity) {
  if (!config_.journal_path.empty()) {
    journal_ = robust::RunJournal(config_.journal_path);
    load_journal();
  }
}

SanitizeService::~SanitizeService() { stop(); }

void SanitizeService::load_journal() {
  // std::map iteration = sorted keys; ids are zero-padded, so jobs replay
  // in submit order and a resumed queue is deterministic.
  for (const auto& [key, fields] : journal_.entries()) {
    if (key.rfind("job|", 0) != 0) continue;
    JobRecord rec = decode_job(key, fields);
    if (rec.id.empty()) continue;
    if (!rec.spec.client_job_id.empty()) {
      // Terminal jobs included: a retried submit after restart must get
      // the finished job back, not a fresh enqueue of the same work.
      dedup_[rec.spec.tenant + "|" + rec.spec.client_job_id] = rec.id;
    }
    if (rec.id[0] == 'j') {
      const std::uint64_t n = std::strtoull(rec.id.c_str() + 1, nullptr, 10);
      if (n >= next_id_) next_id_ = n + 1;
    }
    ++counters_.submitted;
    if (job_state_terminal(rec.state)) {
      if (rec.state == JobState::kDone) ++counters_.done;
      else if (rec.state == JobState::kFailed) ++counters_.failed;
      else if (rec.state == JobState::kCancelled) ++counters_.cancelled;
      else ++counters_.interrupted;
      records_[rec.id] = std::move(rec);
      continue;
    }
    // Left queued/running by a previous incarnation.
    const std::string was = job_state_name(rec.state);
    if (config_.resume_interrupted) {
      const Admission admission = queue_.push(rec.spec.tenant, rec.id);
      if (admission == Admission::kAdmitted) {
        rec.state = JobState::kQueued;
        rec.error.clear();
        cancels_.emplace(rec.id, robust::CancelSource());
        BD_LOG(Info) << "serve: requeued " << rec.id << " (was " << was << ")";
      } else {
        rec.state = JobState::kInterrupted;
        rec.error = std::string("requeue rejected: ") +
                    admission_name(admission);
        ++counters_.interrupted;
      }
    } else {
      rec.state = JobState::kInterrupted;
      rec.error = "daemon restarted while " + was;
      ++counters_.interrupted;
      BD_LOG(Warn) << "serve: " << rec.id << " interrupted (was " << was
                      << ")";
    }
    journal_locked(rec);
    records_[rec.id] = std::move(rec);
  }
}

void SanitizeService::start() {
  std::lock_guard lock(mutex_);
  if (started_ || stopped_) return;
  started_ = true;
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

SubmitResult SanitizeService::submit(const JobSpec& spec) {
  validate_tenant(spec.tenant);
  // Throws BadRequest for an unreadable/corrupt model_path checkpoint.
  const std::string cache_key = backbone_cache_key(spec);

  std::lock_guard lock(mutex_);
  if (!spec.client_job_id.empty()) {
    const auto hit = dedup_.find(spec.tenant + "|" + spec.client_job_id);
    if (hit != dedup_.end()) {
      ++counters_.deduplicated;
      BD_OBS_COUNT("serve.jobs.deduplicated", 1);
      SubmitResult result{Admission::kAdmitted, hit->second};
      result.deduplicated = true;
      return result;
    }
  }
  if (stopped_) return {Admission::kClosed, ""};
  const std::string id = format_job_id(next_id_);
  const Admission admission = queue_.push(spec.tenant, id);
  if (admission != Admission::kAdmitted) {
    BD_OBS_COUNT("serve.jobs.rejected", 1);
    return {admission, ""};
  }
  ++next_id_;
  if (!spec.client_job_id.empty()) {
    dedup_[spec.tenant + "|" + spec.client_job_id] = id;
  }
  JobRecord rec;
  rec.id = id;
  rec.spec = spec;
  rec.state = JobState::kQueued;
  rec.cache_key = cache_key;
  cancels_.emplace(id, robust::CancelSource());
  ++counters_.submitted;
  journal_locked(rec);
  records_[id] = std::move(rec);
  BD_OBS_COUNT("serve.jobs.submitted", 1);
  BD_OBS_GAUGE("serve.queue.depth", static_cast<double>(queue_.depth()));
  return {Admission::kAdmitted, id};
}

CancelOutcome SanitizeService::cancel(const std::string& id) {
  std::lock_guard lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return CancelOutcome::kUnknownJob;
  JobRecord& rec = it->second;
  if (job_state_terminal(rec.state)) return CancelOutcome::kAlreadyTerminal;
  if (rec.state == JobState::kQueued && queue_.remove(id)) {
    rec.state = JobState::kCancelled;
    rec.error = "cancelled by client while queued";
    cancels_.erase(id);
    ++counters_.cancelled;
    journal_locked(rec);
    terminal_cv_.notify_all();
    BD_OBS_COUNT("serve.jobs.cancelled", 1);
    return CancelOutcome::kCancelledQueued;
  }
  // Already popped (or running): cooperative cancellation through the
  // supervisor's external token; the job lands in kCancelled via finish().
  const auto c = cancels_.find(id);
  if (c != cancels_.end()) c->second.cancel("cancelled by client");
  return CancelOutcome::kSignalled;
}

bool SanitizeService::status(const std::string& id, JobRecord& out) const {
  std::lock_guard lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  out = it->second;
  return true;
}

std::vector<JobRecord> SanitizeService::jobs(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) {
    if (!tenant.empty() && rec.spec.tenant != tenant) continue;
    out.push_back(rec);
  }
  return out;
}

WaitOutcome SanitizeService::wait(const std::string& id,
                                  double timeout_seconds) const {
  std::unique_lock lock(mutex_);
  if (records_.find(id) == records_.end()) return WaitOutcome::kUnknown;
  const auto terminal = [&] {
    const auto it = records_.find(id);
    return it != records_.end() && job_state_terminal(it->second.state);
  };
  // stop_complete_ also satisfies the wait: an abandoned job will never
  // turn terminal, and a transport thread blocked here must not hang the
  // daemon's shutdown.
  const auto pred = [&] { return stop_complete_ || terminal(); };
  if (timeout_seconds <= 0.0) {
    terminal_cv_.wait(lock, pred);
  } else {
    terminal_cv_.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), pred);
  }
  return terminal() ? WaitOutcome::kTerminal : WaitOutcome::kTimeout;
}

void SanitizeService::drain() const {
  std::unique_lock lock(mutex_);
  terminal_cv_.wait(lock, [this] {
    if (stop_complete_) return true;  // abandoned jobs never turn terminal
    for (const auto& [id, rec] : records_) {
      if (!job_state_terminal(rec.state)) return false;
    }
    return true;
  });
}

void SanitizeService::stop(StopMode mode) {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (mode == StopMode::kAbandon) {
    // Clear the queue; workers finish their current job and exit. The
    // discarded jobs stay journaled as `queued`, so the next incarnation
    // reports them `interrupted` — the same states a crash would leave.
    const std::vector<std::string> discarded = queue_.abandon();
    if (!discarded.empty()) {
      BD_LOG(Warn) << "serve: abandoning " << discarded.size()
                   << " queued job(s); a restart reports them interrupted";
    }
  } else {
    queue_.close();  // workers drain the remaining queued jobs, then exit
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard lock(mutex_);
    stop_complete_ = true;
  }
  terminal_cv_.notify_all();
}

ServiceStats SanitizeService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(mutex_);
    out = counters_;
    out.running = running_;
  }
  out.queue_depth = queue_.depth();
  out.cache = cache_.stats();
  return out;
}

void SanitizeService::journal_locked(const JobRecord& record) {
  journal_.record("job|" + record.id, encode_job(record));
}

void SanitizeService::worker_loop(std::size_t worker_index) {
  (void)worker_index;
  std::string tenant;
  std::string id;
  while (queue_.pop(tenant, id)) {
    process_job(id);
    queue_.release(tenant);
    BD_OBS_GAUGE("serve.queue.depth", static_cast<double>(queue_.depth()));
  }
}

void SanitizeService::process_job(const std::string& id) {
  JobSpec spec;
  std::string cache_key;
  robust::CancelToken token;
  {
    std::lock_guard lock(mutex_);
    const auto it = records_.find(id);
    if (it == records_.end() || it->second.state != JobState::kQueued) return;
    JobRecord& rec = it->second;
    rec.state = JobState::kRunning;
    ++running_;
    journal_locked(rec);
    spec = rec.spec;
    cache_key = rec.cache_key;
    const auto c = cancels_.find(id);
    if (c != cancels_.end()) token = c->second.token();
  }
  BD_OBS_COUNT("serve.jobs.dispatched", 1);
  BD_OBS_SPAN_ARG("serve.job", static_cast<std::int64_t>(std::strtoull(
                                   id.c_str() + 1, nullptr, 10)));

  const eval::ExperimentScale scale = job_scale(spec);
  // Quarantine key: the configuration, not the job — repeated failures of
  // one (backbone, defense, spc) combination strike it out, fresh jobs for
  // other configurations keep running.
  const std::string run_key = "serve|" + cache_key + "|" + spec.defense +
                              "|" + std::to_string(spec.spc);

  bool cache_hit = false;
  eval::BackdoorMetrics metrics;
  defense::DefenseResult info;

  const auto attempt = [&] {
    const BackboneCache::Lookup lookup = cache_.get_or_build(
        cache_key,
        [&]() -> BackboneCache::BackbonePtr {
          return std::make_shared<const eval::BackdooredModel>(
              eval::prepare_backdoored_model(spec.dataset, spec.arch,
                                             spec.attack, scale, spec.seed));
        },
        [] { robust::poll_cancellation("serve.cache.wait"); });
    cache_hit = lookup.hit;

    std::map<std::string, Tensor> override_state;
    eval::SanitizeRequest req;
    req.defense = spec.defense;
    req.spc = spec.spc;
    // Trial-seed convention shared with the bdctl profile path: jobs with
    // identical specs produce bit-identical reports.
    req.seed = spec.seed ^ 0xBDC71EULL;
    req.keep_model = !spec.out_path.empty();
    if (!spec.model_path.empty()) {
      override_state = nn::load_state(spec.model_path);
      req.state_override = &override_state;
    }
    eval::SanitizeOutcome out =
        eval::run_sanitization(*lookup.backbone, req, scale);
    if (!spec.out_path.empty() && out.model != nullptr) {
      nn::save_checkpoint(*out.model, spec.out_path);
    }
    metrics = out.metrics;
    info = out.info;
  };

  robust::RunReport report;
  try {
    report = supervisor_->run(run_key, attempt, token);
  } catch (const std::exception& e) {
    // A simulated crash (or any non-retryable escape) must not take the
    // daemon down with it; the job fails, the pool keeps serving.
    report.status = robust::RunStatus::kFailed;
    report.attempts = report.attempts > 0 ? report.attempts : 1;
    report.failure = e.what();
  }

  {
    std::lock_guard lock(mutex_);
    const auto it = records_.find(id);
    if (it == records_.end()) return;
    JobRecord& rec = it->second;
    --running_;
    rec.attempts = report.attempts;
    rec.cache_hit = cache_hit;
    if (report.ok()) {
      rec.state = JobState::kDone;
      rec.have_metrics = true;
      rec.metrics = metrics;
      rec.seconds = info.seconds;
      rec.pruned_units = info.pruned_units;
      ++counters_.done;
      BD_OBS_COUNT("serve.jobs.done", 1);
    } else if (report.externally_cancelled) {
      rec.state = JobState::kCancelled;
      rec.error = report.failure.empty() ? "cancelled by client"
                                         : report.failure;
      ++counters_.cancelled;
      BD_OBS_COUNT("serve.jobs.cancelled", 1);
    } else {
      rec.state = JobState::kFailed;
      rec.error = report.failure.empty() ? "failed" : report.failure;
      ++counters_.failed;
      BD_OBS_COUNT("serve.jobs.failed", 1);
    }
    cancels_.erase(id);
    journal_locked(rec);
  }
  terminal_cv_.notify_all();
}

}  // namespace bd::serve
