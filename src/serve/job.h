// Sanitization jobs: the request schema, its validation, backbone cache
// keying, lifecycle states and the journal encoding that makes a restarted
// daemon report (or resume) in-flight jobs deterministically.
//
// Backbone cache keying: every field of a JobSpec that shapes the trained
// backbone (dataset, arch, attack, seed, data sizes, attack-training
// budget, width) is folded into a canonical signature string and hashed
// with the PR 2 FNV-1a stable hash — the same mechanism that keys the run
// journal, so cache keys are stable across processes and platforms. Jobs
// that supply a poisoned checkpoint additionally fold in the checkpoint's
// content identity (entry names/shapes + content CRC) so two different
// weight files never collide on one cache entry. `bdctl verify` prints the
// same checkpoint key, letting operators correlate daemon cache traffic
// with files on disk.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "eval/runner.h"
#include "nn/checkpoint.h"
#include "robust/journal.h"
#include "serve/wire.h"

namespace bd::serve {

/// Invalid request content (unknown enum value, out-of-range budget,
/// unreadable checkpoint). The protocol layer maps it to a structured
/// `bad_request` error; it never escapes the daemon.
class BadRequest : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One sanitization request: which backdoored backbone to (re)use, which
/// defense to run against it, and the clean-data budget. Zero-valued
/// budget fields defer to default_scale(dataset).
struct JobSpec {
  std::string tenant = "default";
  /// Optional client-supplied idempotency key ("client_id" in the submit
  /// request). A resubmit with the same (tenant, client_id) returns the
  /// existing job instead of enqueueing a duplicate — journaled, so the
  /// dedup survives a daemon restart. Empty = no dedup.
  std::string client_job_id;
  std::string dataset = "cifar";
  std::string arch = "preactresnet";
  std::string attack = "badnet";
  std::string defense = "gradprune";
  std::int64_t spc = 10;
  std::uint64_t seed = 1234;
  // Backbone/defense budget overrides (0 = scale default).
  std::int64_t width = 0;
  std::int64_t attack_epochs = 0;
  std::int64_t prune_rounds = 0;
  std::int64_t finetune_epochs = 0;
  std::int64_t train_per_class = 0;
  std::int64_t test_per_class = 0;
  /// Optional poisoned checkpoint whose weights replace the synthetic
  /// backbone's trained state (the "here is a poisoned checkpoint" mode).
  std::string model_path;
  /// Optional path the sanitized checkpoint is written to on success.
  std::string out_path;
};

/// Parses and validates the "job" object of a submit request; `tenant` is
/// the (already validated) top-level tenant. Throws BadRequest.
JobSpec parse_job_spec(const Json& job, const std::string& tenant);

/// Validates a tenant name (non-empty, <= 64 chars, [A-Za-z0-9._-]).
/// Throws BadRequest.
void validate_tenant(const std::string& tenant);

/// The experiment scale a job runs at: default_scale(dataset) with the
/// spec's non-zero budget overrides applied and trials forced to 1.
eval::ExperimentScale job_scale(const JobSpec& spec);

/// Canonical signature of everything that shapes the trained backbone.
std::string backbone_signature(const JobSpec& spec);

/// FNV-1a cache key for the backbone LRU. For specs with a model_path the
/// checkpoint is inspected (throws BadRequest when missing/corrupt) and
/// its content key is folded in.
std::string backbone_cache_key(const JobSpec& spec);

/// Content identity of a checkpoint file: FNV-1a over the entry names,
/// shapes and the content CRC. Printed by `bdctl verify` and folded into
/// backbone_cache_key() for checkpoint-backed jobs.
std::string checkpoint_cache_key(const nn::CheckpointInfo& info);

enum class JobState {
  kQueued = 0,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  /// Journaled as queued/running by a previous daemon incarnation that
  /// never got to finish it (reported on restart unless resumed).
  kInterrupted,
};

const char* job_state_name(JobState state);
/// False (leaving `out` untouched) on an unknown name.
bool parse_job_state(const std::string& name, JobState& out);
bool job_state_terminal(JobState state);

/// Everything the daemon knows about one job; journaled on every state
/// transition under key "job|<id>" (the latest record wins on reload).
struct JobRecord {
  std::string id;  // zero-padded ("j000042") so map order == submit order
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string cache_key;  // backbone LRU key
  bool cache_hit = false;
  std::int64_t attempts = 0;
  std::string error;  // failure/cancellation/interruption reason
  bool have_metrics = false;
  eval::BackdoorMetrics metrics;
  double seconds = 0.0;  // defense wall-clock
  std::int64_t pruned_units = 0;
};

robust::JournalFields encode_job(const JobRecord& record);
/// Tolerant decode (missing fields keep their defaults); `key` must be the
/// journal key the fields were stored under ("job|<id>").
JobRecord decode_job(const std::string& key,
                     const robust::JournalFields& fields);

/// Job as a JSON object for status/jobs responses.
std::string job_json(const JobRecord& record);

}  // namespace bd::serve
