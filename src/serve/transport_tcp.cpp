#include "serve/transport_tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/net.h"

namespace bd::serve {

namespace {

/// Resolves the endpoint's host to an in_addr. `for_listen` maps the
/// wildcard spellings to INADDR_ANY; clients map them to loopback.
bool resolve_host(const std::string& host, bool for_listen, in_addr& out,
                  std::string& error) {
  if (host.empty() || host == "*" || host == "0.0.0.0") {
    out.s_addr = htonl(for_listen ? INADDR_ANY : INADDR_LOOPBACK);
    return true;
  }
  if (host == "localhost") {
    out.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  if (::inet_pton(AF_INET, host.c_str(), &out) == 1) return true;
  error = "bad host '" + host + "' (use a dotted quad or 'localhost')";
  return false;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

}  // namespace

bool parse_tcp_endpoint(const std::string& spec, TcpEndpoint& out,
                        std::string& error) {
  std::string host;
  std::string port_text;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    port_text = spec;  // bare "port"
  } else {
    host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  if (port_text.empty()) {
    error = "bad endpoint '" + spec + "': missing port";
    return false;
  }
  long port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      error = "bad endpoint '" + spec + "': port is not a number";
      return false;
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      error = "bad endpoint '" + spec + "': port out of range";
      return false;
    }
  }
  // Validate the host spelling eagerly so `bdctl serve --listen garbage:1`
  // fails at flag parse, not at bind.
  in_addr probe{};
  if (!resolve_host(host, /*for_listen=*/true, probe, error)) return false;
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

TcpListener::~TcpListener() { close(); }

bool TcpListener::open(const TcpEndpoint& endpoint, std::string& error) {
  if (fd_ >= 0) {
    error = "listener already open";
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (!resolve_host(endpoint.host, /*for_listen=*/true, addr.sin_addr,
                    error)) {
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  // Restart-after-drain must not lose the address to TIME_WAIT.
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error = "bind(" + (endpoint.host.empty() ? "*" : endpoint.host) + ":" +
            std::to_string(endpoint.port) + "): " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    error = std::string("listen(): ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  port_ = endpoint.port != 0 ? endpoint.port : net::bound_port(fd);
  return true;
}

int TcpListener::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int connect_tcp(const TcpEndpoint& endpoint, double timeout_seconds,
                std::string& error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (!resolve_host(endpoint.host, /*for_listen=*/false, addr.sin_addr,
                    error)) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  const std::string where = (endpoint.host.empty() ? "localhost"
                                                   : endpoint.host) +
                            ":" + std::to_string(endpoint.port);
  // Non-blocking connect + poll: an unreachable peer costs the caller's
  // budget, not the kernel's multi-minute SYN retry default.
  if (!set_nonblocking(fd, true)) {
    error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    error = "connect(" + where + "): " + std::strerror(errno) +
            " (is the daemon running?)";
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int timeout_ms = -1;
      if (timeout_seconds > 0.0) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const double left = timeout_seconds - elapsed.count();
        timeout_ms = left <= 0.0 ? 0 : static_cast<int>(left * 1000.0) + 1;
      }
      const int n = ::poll(&pfd, 1, timeout_ms);
      if (n > 0) break;
      if (n == 0) {
        error = "connect(" + where + "): timed out";
        ::close(fd);
        return -1;
      }
      if (errno == EINTR) continue;
      error = std::string("poll(): ") + std::strerror(errno);
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      error = "connect(" + where + "): " +
              std::strerror(soerr != 0 ? soerr : errno) +
              " (is the daemon running?)";
      ::close(fd);
      return -1;
    }
  }
  if (!set_nonblocking(fd, false)) {
    error = std::string("fcntl(~O_NONBLOCK): ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  // Request/response protocol: latency beats Nagle batching.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace bd::serve
