// Admission-controlled, multi-tenant job queue with round-robin fairness.
//
// Admission enforces two bounds at submit time, before any work is
// enqueued: a global capacity on queued jobs (protects daemon memory) and
// a per-tenant quota on *in-flight* jobs (queued + running), so one noisy
// tenant cannot starve the pool. Both rejections are cheap structured
// errors the client can back off on.
//
// Dispatch is fair, not FIFO: workers pop tenants in sorted order,
// round-robin from a rotating cursor, taking the oldest job of the chosen
// tenant. A tenant with 50 queued jobs and a tenant with 1 therefore
// alternate instead of the deep queue draining first. A popped job keeps
// holding its tenant's quota slot until release(tenant) — quota covers the
// running phase too.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/ordered_mutex.h"

namespace bd::serve {

enum class Admission { kAdmitted, kQueueFull, kQuotaExceeded, kClosed };
const char* admission_name(Admission a);

class FairQueue {
 public:
  FairQueue(std::size_t capacity, std::size_t tenant_quota);

  /// Admission-checked enqueue of `job_id` for `tenant`.
  Admission push(const std::string& tenant, const std::string& job_id);

  /// Blocks until a job is available or the queue is closed and drained
  /// (returns false). The popped job still holds its tenant's quota slot;
  /// call release(tenant) once it reaches a terminal state.
  bool pop(std::string& tenant, std::string& job_id);

  /// Removes a still-queued job (client cancel) and releases its quota
  /// slot. False when the job is no longer queued (already popped).
  bool remove(const std::string& job_id);

  /// Releases the quota slot of one popped job of `tenant`.
  void release(const std::string& tenant);

  std::size_t depth() const;
  std::size_t in_flight(const std::string& tenant) const;
  std::map<std::string, std::size_t> in_flight_by_tenant() const;

  /// Stops admission; blocked pop() calls drain the remaining jobs and
  /// then return false.
  void close();

  /// Closes the queue AND discards every still-queued job (their quota
  /// slots are released; running jobs are unaffected). Blocked pop()
  /// calls return false immediately. Returns the discarded job ids — the
  /// abandoning stop leaves them journaled as `queued`, which is exactly
  /// the state a crash would have left.
  std::vector<std::string> abandon();

 private:
  mutable runtime::OrderedMutex<runtime::LockRank::kServeQueue> mutex_;
  std::condition_variable_any cv_;
  const std::size_t capacity_;
  const std::size_t quota_;
  bool closed_ = false;
  std::size_t depth_ = 0;
  std::map<std::string, std::deque<std::string>> queued_;  // tenant -> ids
  std::map<std::string, std::size_t> in_flight_;  // tenant -> queued+running
  std::string cursor_;  // tenant served last (fair scan starts after it)
};

}  // namespace bd::serve
