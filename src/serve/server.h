// AF_UNIX stream transport for the serve protocol.
//
// The daemon listens on a filesystem socket; each connection is served by
// its own thread speaking newline-delimited JSON (one request line in, one
// response line out, connection stays open for more). A partial line that
// grows past the protocol's request limit is answered with a structured
// `oversized_request` error and the connection is dropped, bounding the
// memory any client can pin. A `shutdown` request stops the accept loop,
// drains the queue through the workers and joins everything before run()
// returns — journaled state makes the next incarnation pick up cleanly.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ordered_mutex.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace bd::serve {

struct ServerConfig {
  std::string socket_path = "bdserve.sock";
  ServiceConfig service;
};

class SocketServer {
 public:
  explicit SocketServer(const ServerConfig& config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the socket, starts the worker pool and serves until a client
  /// sends {"op":"shutdown"} (or request_stop() is called). Returns after
  /// the queue has drained and all threads are joined. Throws
  /// std::runtime_error when the socket cannot be bound.
  void run();

  /// Asks a running run() to stop accepting and wind down (thread-safe).
  void request_stop();

  /// The service behind the transport (restart inspection, tests).
  SanitizeService& service() { return service_; }

 private:
  void serve_connection(int fd);
  void close_listener();

  ServerConfig config_;
  SanitizeService service_;
  Protocol protocol_;
  std::atomic<bool> stop_{false};
  std::atomic<int> listen_fd_{-1};
  runtime::OrderedMutex<runtime::LockRank::kServeServer> threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace bd::serve
