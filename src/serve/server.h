// Socket transports for the serve protocol: AF_UNIX and TCP in front of
// the same Protocol::handle_line.
//
// The daemon listens on a filesystem socket, a TCP endpoint, or both; each
// accepted connection is served by its own thread speaking newline-
// delimited JSON (one request line in, one response line out, connection
// stays open for more). The connection lifecycle is hardened end to end:
//
//   accept → [cap check: shed with `overloaded`] → serve loop
//     serve: read (deadline) → frame (bounded) → handle → write (deadline)
//   exit on: EOF | reset | deadline | oversized | shutdown | server stop
//
// Reads and writes each carry a per-connection deadline so a slowloris
// peer costs one slot for a bounded time; all writes go through
// net::send_all (MSG_NOSIGNAL + partial-write looping), so a peer dying
// mid-response can never SIGPIPE the daemon. Past `max_connections`
// concurrent clients, new connections get a best-effort structured
// `overloaded` error and an immediate close — clients back off and retry
// rather than hang.
//
// Shutdown has two modes. A drain (`{"op":"shutdown"}`, SIGTERM, or
// request_stop(StopMode::kDrain)) stops accepting, finishes every queued
// job through the workers, then exits. An abandon
// (`{"op":"shutdown","drain":false}`) stops the workers after their
// current job and leaves queued jobs journaled as `queued`, so the next
// incarnation reports exactly the states a crash would have left.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/ordered_mutex.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace bd::serve {

struct ServerConfig {
  /// AF_UNIX listener path ("" disables the Unix transport).
  std::string socket_path = "bdserve.sock";
  /// TCP listener endpoint "host:port" ("" disables TCP; port 0 binds an
  /// ephemeral port, readable via tcp_port()).
  std::string listen_address;
  /// Hard cap on concurrent connections; excess connections are shed
  /// with a structured `overloaded` error.
  std::size_t max_connections = 64;
  /// Per-connection I/O deadlines (seconds; <= 0 disables the bound).
  /// The read deadline doubles as the idle keep-alive limit.
  double read_deadline_seconds = 30.0;
  double write_deadline_seconds = 30.0;
  /// Install SIGTERM/SIGINT handlers that trigger a graceful drain.
  /// bdctl serve enables this; in-process tests leave it off.
  bool install_signal_handlers = false;
  ServiceConfig service;
};

class SocketServer {
 public:
  explicit SocketServer(const ServerConfig& config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the configured listeners, starts the worker pool and serves
  /// until a client sends {"op":"shutdown"}, a handled signal arrives, or
  /// request_stop() is called. Returns after outstanding work is wound
  /// down per the stop mode and all threads are joined. Throws
  /// std::runtime_error when no listener can be bound.
  void run();

  /// Asks a running run() to stop accepting and wind down (thread-safe,
  /// async-signal-unsafe — signals go through the internal self-pipe).
  void request_stop(StopMode mode = StopMode::kDrain);

  /// The TCP port actually bound (resolves a requested port of 0);
  /// 0 until run() has opened the TCP listener or when TCP is disabled.
  std::uint16_t tcp_port() const { return tcp_port_.load(); }

  /// The service behind the transports (restart inspection, tests).
  SanitizeService& service() { return service_; }

 private:
  struct Connection {
    std::thread thread;
    int fd = -1;  // owned here: closed after join, so a stop can
                  // shutdown(2) it without racing a close/reuse
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_on(int listener_fd, const char* transport);
  void serve_connection(int fd, const char* transport,
                        std::shared_ptr<std::atomic<bool>> done);
  void interrupt_connections();
  void reap_connections(bool join_all);
  void wake();

  ServerConfig config_;
  SanitizeService service_;
  Protocol protocol_;
  std::atomic<bool> stop_{false};
  std::atomic<int> stop_mode_{static_cast<int>(StopMode::kDrain)};
  std::atomic<std::uint16_t> tcp_port_{0};
  std::atomic<std::size_t> active_connections_{0};
  int wake_pipe_[2] = {-1, -1};  // self-pipe: request_stop + signals
  runtime::OrderedMutex<runtime::LockRank::kServeServer> threads_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace bd::serve
