#include "serve/job.h"

#include <algorithm>
#include <cstdio>

#include "core/registry.h"

namespace bd::serve {

namespace {

bool one_of(const std::string& value,
            std::initializer_list<const char*> allowed) {
  return std::any_of(allowed.begin(), allowed.end(),
                     [&value](const char* a) { return value == a; });
}

/// Reads an optional integer member, enforcing [lo, hi]; `fallback` when
/// absent. A non-number member is a BadRequest, not a silent default.
std::int64_t bounded_int(const Json& job, const char* name,
                         std::int64_t fallback, std::int64_t lo,
                         std::int64_t hi) {
  const Json* v = job.find(name);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    throw BadRequest(std::string("job.") + name + " must be a number");
  }
  const auto value = static_cast<std::int64_t>(v->as_number());
  if (value < lo || value > hi) {
    throw BadRequest(std::string("job.") + name + " must be in [" +
                     std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::string optional_string(const Json& job, const char* name) {
  const Json* v = job.find(name);
  if (v == nullptr) return "";
  if (!v->is_string()) {
    throw BadRequest(std::string("job.") + name + " must be a string");
  }
  return v->as_string();
}

}  // namespace

void validate_tenant(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 64) {
    throw BadRequest("tenant must be 1..64 characters");
  }
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      throw BadRequest("tenant may only contain [A-Za-z0-9._-]");
    }
  }
}

JobSpec parse_job_spec(const Json& job, const std::string& tenant) {
  if (!job.is_object()) throw BadRequest("submit needs a \"job\" object");
  JobSpec spec;
  spec.tenant = tenant;

  spec.dataset = job.get_string("dataset", spec.dataset);
  if (!one_of(spec.dataset, {"cifar", "gtsrb"})) {
    throw BadRequest("job.dataset must be cifar|gtsrb");
  }
  spec.arch = job.get_string("arch", spec.arch);
  if (!one_of(spec.arch,
              {"preactresnet", "vgg", "efficientnet", "mobilenet"})) {
    throw BadRequest(
        "job.arch must be preactresnet|vgg|efficientnet|mobilenet");
  }
  spec.attack = job.get_string("attack", spec.attack);
  if (!one_of(spec.attack, {"badnet", "blended", "lf", "bpp", "dynamic"})) {
    throw BadRequest("job.attack must be badnet|blended|lf|bpp|dynamic");
  }
  spec.defense = job.get_string("defense", spec.defense);
  const auto known = core::known_defenses();
  if (std::find(known.begin(), known.end(), spec.defense) == known.end()) {
    std::string allowed;
    for (const auto& name : known) {
      if (!allowed.empty()) allowed += '|';
      allowed += name;
    }
    throw BadRequest("job.defense must be " + allowed);
  }

  spec.spc = bounded_int(job, "spc", spec.spc, 1, 1000);
  spec.seed = static_cast<std::uint64_t>(
      bounded_int(job, "seed", static_cast<std::int64_t>(spec.seed), 0,
                  std::int64_t{1} << 62));
  spec.width = bounded_int(job, "width", 0, 0, 256);
  spec.attack_epochs = bounded_int(job, "attack_epochs", 0, 0, 10000);
  spec.prune_rounds = bounded_int(job, "prune_rounds", 0, 0, 10000);
  spec.finetune_epochs = bounded_int(job, "finetune_epochs", 0, 0, 10000);
  spec.train_per_class = bounded_int(job, "train_per_class", 0, 0, 100000);
  spec.test_per_class = bounded_int(job, "test_per_class", 0, 0, 100000);
  spec.model_path = optional_string(job, "model");
  spec.out_path = optional_string(job, "out");
  spec.client_job_id = optional_string(job, "client_id");
  if (spec.client_job_id.size() > 128) {
    throw BadRequest("job.client_id must be <= 128 characters");
  }
  for (const char c : spec.client_job_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      throw BadRequest("job.client_id may only contain [A-Za-z0-9._-]");
    }
  }
  // The defender needs at least SPC clean samples per class to draw.
  if (spec.train_per_class > 0 && spec.train_per_class < spec.spc) {
    throw BadRequest("job.train_per_class must be >= job.spc");
  }
  return spec;
}

eval::ExperimentScale job_scale(const JobSpec& spec) {
  eval::ExperimentScale s = eval::default_scale(spec.dataset);
  s.trials = 1;
  if (spec.width > 0) s.base_width = spec.width;
  if (spec.attack_epochs > 0) s.attack_train.epochs = spec.attack_epochs;
  if (spec.prune_rounds > 0) s.prune_max_rounds = spec.prune_rounds;
  if (spec.finetune_epochs > 0) {
    s.defense_max_epochs = spec.finetune_epochs;
    s.nad_distill_epochs = spec.finetune_epochs;
  }
  if (spec.train_per_class > 0) s.data.train_per_class = spec.train_per_class;
  if (spec.test_per_class > 0) s.data.test_per_class = spec.test_per_class;
  return s;
}

std::string backbone_signature(const JobSpec& spec) {
  const eval::ExperimentScale s = job_scale(spec);
  std::string sig = "backbone|" + spec.dataset + '|' + spec.arch + '|' +
                    spec.attack + '|' + std::to_string(spec.seed);
  const auto add_i = [&sig](std::int64_t v) {
    sig += '|';
    sig += std::to_string(v);
  };
  const auto add_d = [&sig](double v) {
    sig += '|';
    sig += robust::exact_double(v);
  };
  add_i(s.data.height);
  add_i(s.data.width);
  add_i(s.data.train_per_class);
  add_i(s.data.test_per_class);
  add_i(s.attack_train.epochs);
  add_i(s.attack_train.batch_size);
  add_d(s.attack_train.lr);
  add_d(s.attack_train.momentum);
  add_d(s.attack_train.weight_decay);
  add_d(s.attack_train.lr_decay);
  add_i(s.base_width);
  return sig;
}

std::string checkpoint_cache_key(const nn::CheckpointInfo& info) {
  std::string sig = "ckpt";
  for (const auto& entry : info.entries) {
    sig += '|';
    sig += entry.name;
    sig += ':';
    for (std::size_t d = 0; d < entry.shape.size(); ++d) {
      if (d) sig += 'x';
      sig += std::to_string(entry.shape[d]);
    }
  }
  char crc[16];
  std::snprintf(crc, sizeof(crc), "|%08x", info.content_crc);
  sig += crc;
  return robust::stable_hash_hex(sig);
}

std::string backbone_cache_key(const JobSpec& spec) {
  std::string sig = backbone_signature(spec);
  if (!spec.model_path.empty()) {
    nn::CheckpointInfo info;
    try {
      info = nn::inspect_checkpoint(spec.model_path);
    } catch (const std::exception& e) {
      throw BadRequest("job.model: " + std::string(e.what()));
    }
    sig += "|ckpt|";
    sig += checkpoint_cache_key(info);
  }
  return robust::stable_hash_hex(sig);
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kInterrupted: return "interrupted";
  }
  return "unknown";
}

bool parse_job_state(const std::string& name, JobState& out) {
  for (const JobState state :
       {JobState::kQueued, JobState::kRunning, JobState::kDone,
        JobState::kFailed, JobState::kCancelled, JobState::kInterrupted}) {
    if (name == job_state_name(state)) {
      out = state;
      return true;
    }
  }
  return false;
}

bool job_state_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kInterrupted;
}

robust::JournalFields encode_job(const JobRecord& r) {
  robust::JournalFields f{
      {"id", r.id},
      {"tenant", r.spec.tenant},
      {"state", job_state_name(r.state)},
      {"dataset", r.spec.dataset},
      {"arch", r.spec.arch},
      {"attack", r.spec.attack},
      {"defense", r.spec.defense},
      {"spc", std::to_string(r.spec.spc)},
      {"seed", std::to_string(r.spec.seed)},
      {"cache_key", r.cache_key},
      {"attempts", std::to_string(r.attempts)},
  };
  const auto set_if = [&f](const char* name, std::int64_t v) {
    if (v != 0) f[name] = std::to_string(v);
  };
  set_if("width", r.spec.width);
  set_if("attack_epochs", r.spec.attack_epochs);
  set_if("prune_rounds", r.spec.prune_rounds);
  set_if("finetune_epochs", r.spec.finetune_epochs);
  set_if("train_per_class", r.spec.train_per_class);
  set_if("test_per_class", r.spec.test_per_class);
  if (!r.spec.model_path.empty()) f["model"] = r.spec.model_path;
  if (!r.spec.out_path.empty()) f["out"] = r.spec.out_path;
  if (!r.spec.client_job_id.empty()) f["client_id"] = r.spec.client_job_id;
  if (r.cache_hit) f["cache"] = "hit";
  if (!r.error.empty()) f["error"] = r.error;
  if (r.have_metrics) {
    f["acc"] = robust::exact_double(r.metrics.acc);
    f["asr"] = robust::exact_double(r.metrics.asr);
    f["ra"] = robust::exact_double(r.metrics.ra);
    f["seconds"] = robust::exact_double(r.seconds);
    f["pruned"] = std::to_string(r.pruned_units);
  }
  return f;
}

JobRecord decode_job(const std::string& key,
                     const robust::JournalFields& fields) {
  const auto get = [&fields](const char* name) {
    const auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  const auto get_i = [&get](const char* name, std::int64_t fallback) {
    const std::string v = get(name);
    return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
  };

  JobRecord r;
  r.id = get("id");
  if (r.id.empty() && key.rfind("job|", 0) == 0) r.id = key.substr(4);
  r.spec.tenant = get("tenant").empty() ? "default" : get("tenant");
  if (!get("dataset").empty()) r.spec.dataset = get("dataset");
  if (!get("arch").empty()) r.spec.arch = get("arch");
  if (!get("attack").empty()) r.spec.attack = get("attack");
  if (!get("defense").empty()) r.spec.defense = get("defense");
  r.spec.spc = get_i("spc", r.spec.spc);
  r.spec.seed = static_cast<std::uint64_t>(
      get_i("seed", static_cast<std::int64_t>(r.spec.seed)));
  r.spec.width = get_i("width", 0);
  r.spec.attack_epochs = get_i("attack_epochs", 0);
  r.spec.prune_rounds = get_i("prune_rounds", 0);
  r.spec.finetune_epochs = get_i("finetune_epochs", 0);
  r.spec.train_per_class = get_i("train_per_class", 0);
  r.spec.test_per_class = get_i("test_per_class", 0);
  r.spec.model_path = get("model");
  r.spec.out_path = get("out");
  r.spec.client_job_id = get("client_id");
  if (!parse_job_state(get("state"), r.state)) r.state = JobState::kQueued;
  r.cache_key = get("cache_key");
  r.cache_hit = get("cache") == "hit";
  r.attempts = get_i("attempts", 0);
  r.error = get("error");
  if (!get("acc").empty()) {
    r.have_metrics = true;
    r.metrics.acc = std::strtod(get("acc").c_str(), nullptr);
    r.metrics.asr = std::strtod(get("asr").c_str(), nullptr);
    r.metrics.ra = std::strtod(get("ra").c_str(), nullptr);
    r.seconds = std::strtod(get("seconds").c_str(), nullptr);
    r.pruned_units = get_i("pruned", 0);
  }
  return r;
}

std::string job_json(const JobRecord& r) {
  JsonObject o;
  o.set("id", r.id)
      .set("tenant", r.spec.tenant)
      .set("state", job_state_name(r.state))
      .set("dataset", r.spec.dataset)
      .set("arch", r.spec.arch)
      .set("attack", r.spec.attack)
      .set("defense", r.spec.defense)
      .set_int("spc", r.spec.spc)
      .set_int("seed", static_cast<std::int64_t>(r.spec.seed))
      .set("cache_key", r.cache_key)
      .set_bool("cache_hit", r.cache_hit)
      .set_int("attempts", r.attempts);
  if (!r.spec.model_path.empty()) o.set("model", r.spec.model_path);
  if (!r.spec.out_path.empty()) o.set("out", r.spec.out_path);
  if (!r.spec.client_job_id.empty()) {
    o.set("client_id", r.spec.client_job_id);
  }
  if (!r.error.empty()) o.set("error", r.error);
  if (r.have_metrics) {
    o.set_double("acc", r.metrics.acc)
        .set_double("asr", r.metrics.asr)
        .set_double("ra", r.metrics.ra)
        .set_double("seconds", r.seconds)
        .set_int("pruned", r.pruned_units);
  }
  return o.str();
}

}  // namespace bd::serve
