// LRU cache of trained backbones (the expensive half of a sanitization
// job: synthetic datasets + trigger + poisoned training), keyed by the
// FNV-1a backbone cache key from serve/job.h.
//
// Builds are single-flight: the first worker to miss on a key trains the
// backbone on its own thread while later workers for the same key wait on
// a shared future instead of duplicating the training run. Waiters pass a
// wait-poll hook that is invoked between bounded waits, so a supervised
// waiter keeps stamping its watchdog heartbeat (and observes cancellation)
// while somebody else trains.
//
// Entries are shared_ptr<const BackdooredModel>: a cache eviction never
// invalidates a backbone a running job is still using.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "eval/runner.h"
#include "runtime/ordered_mutex.h"

namespace bd::serve {

struct BackboneCacheStats {
  std::int64_t hits = 0;        // served from cache or joined an in-flight build
  std::int64_t misses = 0;      // builds actually executed
  std::int64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class BackboneCache {
 public:
  using BackbonePtr = std::shared_ptr<const eval::BackdooredModel>;
  using Builder = std::function<BackbonePtr()>;
  using WaitPoll = std::function<void()>;

  /// Capacity 0 disables caching (every lookup builds, nothing is stored).
  explicit BackboneCache(std::size_t capacity);

  struct Lookup {
    BackbonePtr backbone;
    bool hit = false;
  };

  /// Returns the cached backbone for `key`, joins an in-flight build of
  /// it, or runs `build` on the calling thread and caches the result.
  /// `build` exceptions propagate to the builder AND every waiter.
  /// `wait_poll` (may be null) runs every ~100ms while waiting.
  Lookup get_or_build(const std::string& key, const Builder& build,
                      const WaitPoll& wait_poll = nullptr);

  BackboneCacheStats stats() const;

 private:
  using LruList = std::list<std::string>;  // front = most recently used

  mutable runtime::OrderedMutex<runtime::LockRank::kServeBackboneCache> mutex_;
  const std::size_t capacity_;
  LruList lru_;
  std::map<std::string, std::pair<BackbonePtr, LruList::iterator>> entries_;
  std::map<std::string, std::shared_future<BackbonePtr>> in_flight_;
  BackboneCacheStats stats_;
};

}  // namespace bd::serve
