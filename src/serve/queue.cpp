#include "serve/queue.h"

namespace bd::serve {

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kQueueFull: return "queue_full";
    case Admission::kQuotaExceeded: return "quota_exceeded";
    case Admission::kClosed: return "closed";
  }
  return "unknown";
}

FairQueue::FairQueue(std::size_t capacity, std::size_t tenant_quota)
    : capacity_(capacity > 0 ? capacity : 1),
      quota_(tenant_quota > 0 ? tenant_quota : 1) {}

Admission FairQueue::push(const std::string& tenant,
                          const std::string& job_id) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return Admission::kClosed;
    if (depth_ >= capacity_) return Admission::kQueueFull;
    if (in_flight_[tenant] >= quota_) return Admission::kQuotaExceeded;
    queued_[tenant].push_back(job_id);
    ++in_flight_[tenant];
    ++depth_;
  }
  cv_.notify_one();
  return Admission::kAdmitted;
}

bool FairQueue::pop(std::string& tenant, std::string& job_id) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return depth_ > 0 || closed_; });
  if (depth_ == 0) return false;  // closed and drained

  // Fair scan: sorted tenants, starting strictly after the cursor,
  // wrapping around; first tenant with queued work wins the slot.
  auto it = queued_.upper_bound(cursor_);
  for (std::size_t scanned = 0; scanned <= queued_.size(); ++scanned) {
    if (it == queued_.end()) it = queued_.begin();
    if (!it->second.empty()) break;
    ++it;
  }
  tenant = it->first;
  job_id = it->second.front();
  it->second.pop_front();
  --depth_;
  cursor_ = tenant;
  if (it->second.empty()) queued_.erase(it);
  return true;
}

bool FairQueue::remove(const std::string& job_id) {
  std::lock_guard lock(mutex_);
  for (auto it = queued_.begin(); it != queued_.end(); ++it) {
    auto& ids = it->second;
    for (auto id = ids.begin(); id != ids.end(); ++id) {
      if (*id != job_id) continue;
      ids.erase(id);
      --depth_;
      auto tenant_slots = in_flight_.find(it->first);
      if (tenant_slots != in_flight_.end() && tenant_slots->second > 0) {
        --tenant_slots->second;
        if (tenant_slots->second == 0) in_flight_.erase(tenant_slots);
      }
      if (ids.empty()) queued_.erase(it);
      return true;
    }
  }
  return false;
}

void FairQueue::release(const std::string& tenant) {
  std::lock_guard lock(mutex_);
  const auto it = in_flight_.find(tenant);
  if (it != in_flight_.end() && it->second > 0) {
    --it->second;
    if (it->second == 0) in_flight_.erase(it);
  }
}

std::size_t FairQueue::depth() const {
  std::lock_guard lock(mutex_);
  return depth_;
}

std::size_t FairQueue::in_flight(const std::string& tenant) const {
  std::lock_guard lock(mutex_);
  const auto it = in_flight_.find(tenant);
  return it == in_flight_.end() ? 0 : it->second;
}

std::map<std::string, std::size_t> FairQueue::in_flight_by_tenant() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

void FairQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<std::string> FairQueue::abandon() {
  std::vector<std::string> discarded;
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    for (auto& [tenant, ids] : queued_) {
      for (auto& id : ids) {
        discarded.push_back(std::move(id));
        auto slots = in_flight_.find(tenant);
        if (slots != in_flight_.end() && slots->second > 0) {
          --slots->second;
          if (slots->second == 0) in_flight_.erase(slots);
        }
      }
    }
    queued_.clear();
    depth_ = 0;
  }
  cv_.notify_all();
  return discarded;
}

}  // namespace bd::serve
