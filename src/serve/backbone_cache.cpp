#include "serve/backbone_cache.h"

#include <chrono>

#include "obs/obs.h"
#include "util/logging.h"

namespace bd::serve {

BackboneCache::BackboneCache(std::size_t capacity) : capacity_(capacity) {
  stats_.capacity = capacity;
}

BackboneCache::Lookup BackboneCache::get_or_build(const std::string& key,
                                                  const Builder& build,
                                                  const WaitPoll& wait_poll) {
  std::shared_future<BackbonePtr> pending;
  std::promise<BackbonePtr> promise;
  bool is_builder = false;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.second);
      ++stats_.hits;
      BD_OBS_COUNT("serve.cache.hits", 1);
      return {it->second.first, true};
    }
    const auto flight = in_flight_.find(key);
    if (flight != in_flight_.end()) {
      pending = flight->second;
      ++stats_.hits;
      BD_OBS_COUNT("serve.cache.hits", 1);
    } else {
      is_builder = true;
      ++stats_.misses;
      BD_OBS_COUNT("serve.cache.misses", 1);
      if (capacity_ > 0) {
        pending = promise.get_future().share();
        in_flight_[key] = pending;
      }
    }
  }

  if (!is_builder) {
    // Join somebody else's build; keep heartbeating while they train.
    while (pending.wait_for(std::chrono::milliseconds(100)) !=
           std::future_status::ready) {
      if (wait_poll) wait_poll();
    }
    return {pending.get(), true};
  }

  if (capacity_ == 0) return {build(), false};  // caching disabled

  BackbonePtr built;
  try {
    built = build();
  } catch (...) {
    std::lock_guard lock(mutex_);
    promise.set_exception(std::current_exception());
    in_flight_.erase(key);
    throw;
  }

  {
    std::lock_guard lock(mutex_);
    promise.set_value(built);
    in_flight_.erase(key);
    lru_.push_front(key);
    entries_[key] = {built, lru_.begin()};
    while (entries_.size() > capacity_) {
      const std::string victim = lru_.back();
      lru_.pop_back();
      entries_.erase(victim);
      ++stats_.evictions;
      BD_OBS_COUNT("serve.cache.evictions", 1);
      BD_LOG(Info) << "backbone cache: evicted key=" << victim;
    }
    stats_.size = entries_.size();
    BD_OBS_GAUGE("serve.cache.size", entries_.size());
  }
  return {built, false};
}

BackboneCacheStats BackboneCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace bd::serve
