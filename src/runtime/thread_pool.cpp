#include "runtime/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/env.h"

// bdlint:allow-file(no-relaxed-atomics): chunk distribution counters need
// no ordering of their own — publication of job fields and chunk results
// is ordered by mutex_ and the acq_rel done_chunks_ handshake below.

namespace bd::runtime {

namespace {

thread_local bool t_in_parallel = false;

// Marks the calling thread as inside a parallel region for its lifetime;
// nested parallel_for calls observe the flag and run serially.
class RegionGuard {
 public:
  RegionGuard() : prev_(t_in_parallel) { t_in_parallel = true; }
  ~RegionGuard() { t_in_parallel = prev_; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace

bool in_parallel_region() { return t_in_parallel; }

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(mutex_);
      cv_start_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      ++active_;
    }
    run_chunks();
    {
      std::lock_guard lk(mutex_);
      --active_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  RegionGuard guard;
  for (;;) {
    const std::int64_t k = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (k >= num_chunks_) break;
    if (!failed_.load(std::memory_order_relaxed)) {
      const std::int64_t lo = begin_ + k * grain_;
      const std::int64_t hi = std::min(end_, lo + grain_);
      try {
        fn_(ctx_, lo, hi);
      } catch (...) {
        {
          std::lock_guard lk(error_mutex_);
          if (!error_) error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_relaxed);
      }
    }
    done_chunks_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain, ChunkFn fn, void* ctx) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(1, grain);
  if (t_in_parallel || workers_.empty() || end - begin <= grain) {
    RegionGuard guard;
    fn(ctx, begin, end);
    return;
  }

  std::lock_guard job_lock(job_mutex_);
  {
    // Wait until no straggler from a previous job is still inside
    // run_chunks before mutating the (non-atomic) job fields.
    std::unique_lock lk(mutex_);
    cv_done_.wait(lk, [&] { return active_ == 0; });
    fn_ = fn;
    ctx_ = ctx;
    begin_ = begin;
    end_ = end;
    grain_ = grain;
    num_chunks_ = (end - begin + grain - 1) / grain;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    ++job_seq_;
    ++active_;  // the caller participates
  }
  cv_start_.notify_all();
  run_chunks();
  {
    std::unique_lock lk(mutex_);
    --active_;
    cv_done_.wait(lk, [&] {
      return done_chunks_.load(std::memory_order_acquire) == num_chunks_;
    });
  }
  cv_done_.notify_all();
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

namespace {

OrderedMutex<LockRank::kPoolRegistry> g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_override = 0;  // 0 = no override, use the environment default

int desired_threads_locked() {
  return g_override > 0 ? g_override : bd::thread_count();
}

ThreadPool* pool_locked() {
  const int want = desired_threads_locked();
  if (!g_pool || g_pool->thread_count() != want) {
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return g_pool.get();
}

}  // namespace

int thread_count() {
  std::lock_guard lk(g_pool_mutex);
  return desired_threads_locked();
}

void set_thread_count(int n) {
  std::lock_guard lk(g_pool_mutex);
  g_override = n > 0 ? n : 0;
  g_pool.reset();  // rebuilt lazily by the next parallel_for
}

void parallel_for_impl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, ChunkFn fn, void* ctx) {
  if (end <= begin) return;
  if (t_in_parallel) {
    // Nested region: run serially without touching the pool lock.
    BD_OBS_COUNT("runtime.jobs_nested", 1);
    RegionGuard guard;
    fn(ctx, begin, end);
    return;
  }
  if (::bd::obs::metrics_enabled()) {
    const std::int64_t chunks =
        (end - begin + std::max<std::int64_t>(1, grain) - 1) /
        std::max<std::int64_t>(1, grain);
    BD_OBS_COUNT("runtime.jobs", 1);
    BD_OBS_COUNT("runtime.chunks", chunks);
    BD_OBS_COUNT("runtime.items", end - begin);
  }
  ThreadPool* pool;
  {
    std::lock_guard lk(g_pool_mutex);
    pool = pool_locked();
  }
  pool->parallel_for(begin, end, grain, fn, ctx);
}

}  // namespace bd::runtime
