// bd::runtime lock ranking — a debug-build deadlock detector.
//
// Every long-lived mutex in the concurrent subsystems is an
// OrderedMutex<Rank> carrying a rank from the global LockRank table below.
// The table encodes the only permitted acquisition order: a thread may
// acquire a mutex only while every mutex it already holds has a strictly
// LOWER rank. Any two threads that both respect this discipline can never
// deadlock on these mutexes, because a cycle in the waits-for graph would
// require someone to acquire against the order.
//
// In Debug builds (BD_LOCK_RANK_CHECKS=1, wired up by the top-level
// CMakeLists) each thread keeps a small thread-local stack of held ranks;
// lock()/try_lock()/unlock() maintain it and lock() checks the discipline
// before blocking, so an inversion is reported at the acquisition that
// *would* deadlock — deterministically, on every run, not only on the
// unlucky interleaving. In Release builds OrderedMutex compiles to a plain
// std::mutex wrapper with zero added work.
//
// Violations call the installed handler (test hook) or, by default, print
// the held-rank chain to stderr and abort() — a lock-order inversion is a
// bug in the rank table or the code, never a recoverable condition.
//
// The rank table (lowest = outermost, acquired first):
//
//   rank | mutex                                   | acquired while holding
//   -----+-----------------------------------------+-----------------------
//    10  | SocketServer::threads_mutex_            | (nothing; guards the
//         |                                        |  Connection list for
//         |                                        |  BOTH transports — the
//         |                                        |  TCP listener reuses
//         |                                        |  this rank, no new
//         |                                        |  ranks were added)
//    20  | SanitizeService::mutex_                 | (nothing)
//    30  | FairQueue::mutex_                       | service mutex (submit/cancel)
//    40  | BackboneCache::mutex_                   | (nothing; ranked below
//         |                                        |  robust/runtime because a
//         |                                        |  build runs unlocked)
//    42  | shard WorkerSession::mutex_             | (nothing; guards the
//         |                                        |  heartbeat bookkeeping)
//    44  | shard LeaseLedger::mutex_               | worker mutex (heartbeat
//         |                                        |  thread appends)
//    50  | Supervisor::mutex_                      | service-level callers
//    60  | supervisor Watchdog::mutex_             | (watchdog thread only)
//    70  | runtime pool registry (g_pool_mutex)    | any caller of parallel_for
//    80  | ThreadPool::job_mutex_                  | caller serialization
//    90  | ThreadPool::mutex_                      | job mutex (parallel_for)
//   100  | ThreadPool::error_mutex_                | job mutex (chunk failure)
//   110  | obs::Registry::mutex_                   | any of the above
//         |                                        |  (BD_OBS_* under locks)
//
// Waiting on a condition variable through an OrderedMutex requires
// std::condition_variable_any; its unlock/relock goes through the ranked
// lock()/unlock(), so the held stack stays correct across waits.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#ifndef BD_LOCK_RANK_CHECKS
#define BD_LOCK_RANK_CHECKS 0
#endif

namespace bd::runtime {

enum class LockRank : int {
  kServeServer = 10,
  kServeService = 20,
  kServeQueue = 30,
  kServeBackboneCache = 40,
  kShardWorker = 42,
  kShardLedger = 44,
  kSupervisor = 50,
  kSupervisorWatchdog = 60,
  kPoolRegistry = 70,
  kPoolJob = 80,
  kPoolState = 90,
  kPoolError = 100,
  kObsRegistry = 110,
};

inline const char* lock_rank_name(int rank) {
  switch (static_cast<LockRank>(rank)) {
    case LockRank::kServeServer: return "serve.server";
    case LockRank::kServeService: return "serve.service";
    case LockRank::kServeQueue: return "serve.queue";
    case LockRank::kServeBackboneCache: return "serve.backbone_cache";
    case LockRank::kShardWorker: return "shard.worker";
    case LockRank::kShardLedger: return "shard.ledger";
    case LockRank::kSupervisor: return "robust.supervisor";
    case LockRank::kSupervisorWatchdog: return "robust.watchdog";
    case LockRank::kPoolRegistry: return "runtime.pool_registry";
    case LockRank::kPoolJob: return "runtime.pool_job";
    case LockRank::kPoolState: return "runtime.pool_state";
    case LockRank::kPoolError: return "runtime.pool_error";
    case LockRank::kObsRegistry: return "obs.registry";
  }
  return "unknown";
}

namespace lockrank {

/// One inversion: the rank being acquired and the highest rank already
/// held (which is >= it — that is the violation).
struct Violation {
  int acquiring;
  int highest_held;
};

using ViolationHandler = void (*)(const Violation&);

inline std::atomic<ViolationHandler>& violation_handler() {
  static std::atomic<ViolationHandler> handler{nullptr};
  return handler;
}

/// Test hook: replaces abort-on-inversion with `h` (nullptr restores the
/// default). The handler returning means "record and continue".
inline void set_violation_handler(ViolationHandler h) {
  // bdlint:allow(no-relaxed-atomics): the handler pointer is an independent
  // flag installed before threads race; no data is published through it.
  violation_handler().store(h, std::memory_order_relaxed);
}

inline constexpr int kMaxHeld = 16;

struct HeldStack {
  int depth = 0;
  int ranks[kMaxHeld] = {};
};

inline HeldStack& held() {
  thread_local HeldStack stack;
  return stack;
}

/// Highest rank currently held by this thread (0 when none). Acquisition
/// discipline keeps the stack ascending, but scan anyway so the check
/// stays sound after an out-of-order unlock.
inline int highest_held() {
  const HeldStack& s = held();
  int best = 0;
  for (int i = 0; i < s.depth; ++i) {
    if (s.ranks[i] > best) best = s.ranks[i];
  }
  return best;
}

/// Records a blocking acquisition of `rank`, reporting an inversion when
/// some held rank is >= it. Called before blocking so the report fires on
/// the acquisition that would deadlock. Exposed (and compiled) in every
/// build so the detector logic itself stays unit-testable in Release.
inline void note_acquire(int rank) {
  HeldStack& s = held();
  const int top = highest_held();
  if (top >= rank) {
    const Violation v{rank, top};
    // bdlint:allow(no-relaxed-atomics): same independent-flag load.
    if (ViolationHandler h =
            violation_handler().load(std::memory_order_relaxed)) {
      h(v);
    } else {
      std::fprintf(stderr,
                   "bd lock-rank violation: acquiring %s (%d) while holding "
                   "%s (%d); see the rank table in runtime/ordered_mutex.h\n",
                   lock_rank_name(rank), rank, lock_rank_name(top), top);
      std::abort();
    }
  }
  if (s.depth < kMaxHeld) s.ranks[s.depth] = rank;
  ++s.depth;
}

/// Records a successful try_lock of `rank`. Never a violation: try_lock
/// cannot block, so it cannot close a waits-for cycle.
inline void note_try_acquire(int rank) {
  HeldStack& s = held();
  if (s.depth < kMaxHeld) s.ranks[s.depth] = rank;
  ++s.depth;
}

/// Removes the most recent entry for `rank` (unlocks are usually LIFO via
/// RAII guards, but condition-variable waits may release mid-stack).
inline void note_release(int rank) {
  HeldStack& s = held();
  const int tracked = s.depth < kMaxHeld ? s.depth : kMaxHeld;
  for (int i = tracked - 1; i >= 0; --i) {
    if (s.ranks[i] != rank) continue;
    for (int j = i; j + 1 < tracked; ++j) s.ranks[j] = s.ranks[j + 1];
    --s.depth;
    return;
  }
  if (s.depth > 0) --s.depth;  // untracked overflow entry
}

}  // namespace lockrank

/// Drop-in std::mutex replacement carrying a LockRank. Satisfies the
/// Lockable requirements, so std::lock_guard, std::unique_lock,
/// std::scoped_lock and std::condition_variable_any all work unchanged.
template <LockRank Rank>
class OrderedMutex {
 public:
  OrderedMutex() = default;
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
#if BD_LOCK_RANK_CHECKS
    lockrank::note_acquire(static_cast<int>(Rank));
#endif
    m_.lock();  // bdlint:allow(no-naked-lock): this IS the RAII-guard target
  }

  void unlock() {
    m_.unlock();  // bdlint:allow(no-naked-lock): guard plumbing, see lock()
#if BD_LOCK_RANK_CHECKS
    lockrank::note_release(static_cast<int>(Rank));
#endif
  }

  bool try_lock() {
    const bool ok = m_.try_lock();
#if BD_LOCK_RANK_CHECKS
    if (ok) lockrank::note_try_acquire(static_cast<int>(Rank));
#endif
    return ok;
  }

  static constexpr LockRank rank() { return Rank; }

 private:
  std::mutex m_;
};

}  // namespace bd::runtime
