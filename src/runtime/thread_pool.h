// bd::runtime — deterministic parallel runtime for the tensor engine.
//
// A persistent, lazily-initialized pool of worker threads exposing
// parallel_for(begin, end, grain, fn) over index ranges.
//
// Determinism contract: [begin, end) is split into fixed grain-sized chunks
// whose boundaries depend only on (begin, end, grain) — never on the worker
// count — and every chunk runs the same serial body. Callers must keep
// per-index work disjoint (no shared float accumulators across chunks); any
// cross-chunk reduction is done by the caller afterwards in chunk order.
// Under that contract results are bitwise identical for every value of
// BDPROTO_THREADS, and BDPROTO_THREADS=1 is exactly the legacy serial path.
//
// Thread-count resolution: set_thread_count() override (test/bench hook),
// else BDPROTO_THREADS, else hardware_concurrency; always clamped to >= 1.
// A count of 1 spawns no workers and runs everything inline. Nested
// parallel_for calls (from inside a running chunk) execute serially on the
// calling thread. Exceptions thrown by the body are captured and the first
// one is rethrown at the parallel_for call site.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/ordered_mutex.h"

namespace bd::runtime {

/// Chunk body: processes [chunk_begin, chunk_end) with `ctx` as closure state.
using ChunkFn = void (*)(void* ctx, std::int64_t chunk_begin,
                         std::int64_t chunk_end);

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates as the last one).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Runs fn over grain-sized chunks of [begin, end); blocks until done.
  /// Rethrows the first exception raised by a chunk. Chunk boundaries are
  /// independent of the worker count (see determinism contract above).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    ChunkFn fn, void* ctx);

 private:
  void worker_loop();
  void run_chunks();

  const int threads_;
  std::vector<std::thread> workers_;

  // Serializes concurrent parallel_for callers (one job at a time).
  OrderedMutex<LockRank::kPoolJob> job_mutex_;

  // Job state; mutated only under mutex_ while no thread is inside
  // run_chunks (active_ == 0). condition_variable_any because the mutex is
  // rank-checked (see runtime/ordered_mutex.h).
  OrderedMutex<LockRank::kPoolState> mutex_;
  std::condition_variable_any cv_start_;
  std::condition_variable_any cv_done_;
  bool stop_ = false;
  std::uint64_t job_seq_ = 0;
  int active_ = 0;

  ChunkFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t num_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::int64_t> done_chunks_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  OrderedMutex<LockRank::kPoolError> error_mutex_;
};

/// Effective thread count (override, else BDPROTO_THREADS, else hardware).
int thread_count();

/// Test/bench hook: forces the pool to `n` threads (rebuilt lazily);
/// n <= 0 restores the environment-resolved default.
void set_thread_count(int n);

/// True while the calling thread is executing inside a parallel_for chunk.
bool in_parallel_region();

/// Type-erased core used by the template below (global lazily-built pool).
void parallel_for_impl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, ChunkFn fn, void* ctx);

/// Runs `fn(chunk_begin, chunk_end)` over grain-sized chunks of [begin, end)
/// on the global pool. Serial when the range fits one grain, the pool has a
/// single thread, or the call is nested inside another parallel_for.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  using F = std::remove_reference_t<Fn>;
  parallel_for_impl(
      begin, end, grain,
      [](void* ctx, std::int64_t lo, std::int64_t hi) {
        (*static_cast<F*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
}

/// Grain size targeting ~`target` units of per-chunk work when one index
/// costs `per_item_cost` units. Depends only on the workload shape, so chunk
/// boundaries stay thread-count-invariant.
inline std::int64_t grain_for_cost(std::int64_t per_item_cost,
                                   std::int64_t target = std::int64_t{1}
                                                         << 15) {
  const std::int64_t cost = per_item_cost > 0 ? per_item_cost : 1;
  const std::int64_t grain = target / cost;
  return grain > 0 ? grain : 1;
}

}  // namespace bd::runtime
