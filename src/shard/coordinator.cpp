#include "shard/coordinator.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "shard/ledger.h"
#include "util/logging.h"

namespace bd::shard {

namespace {

struct EnvPair {
  std::string name;
  std::string value;
};

/// fork + execvp with the given env overrides, stdout/stderr redirected
/// to `out_path` ("" inherits). Returns the child pid.
int spawn(const std::vector<std::string>& command,
          const std::vector<EnvPair>& env, const std::string& out_path) {
  std::vector<char*> argv;
  argv.reserve(command.size() + 1);
  for (const std::string& arg : command) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("shard: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    for (const EnvPair& e : env) {
      ::setenv(e.name.c_str(), e.value.c_str(), 1);
    }
    if (!out_path.empty()) {
      const int fd =
          ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) _exit(126);
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execvp(argv[0], argv.data());
    // execvp only returns on failure; no unwinding in a forked child.
    _exit(127);
  }
  return static_cast<int>(pid);
}

int await_exit(int pid, int* signal_out) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(static_cast<pid_t>(pid), &status, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    throw std::runtime_error(std::string("shard: waitpid failed: ") +
                             std::strerror(errno));
  }
  if (WIFSIGNALED(status)) {
    if (signal_out != nullptr) *signal_out = WTERMSIG(status);
    return -1;
  }
  if (signal_out != nullptr) *signal_out = 0;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace

CoordinatorReport run_sharded(const CoordinatorOptions& options) {
  if (options.workers < 1) {
    throw std::runtime_error("shard: need at least one worker");
  }
  if (options.command.empty()) {
    throw std::runtime_error("shard: no bench command given");
  }
  const std::string ledger_path = options.ledger_path.empty()
                                      ? options.journal_path + ".ledger"
                                      : options.ledger_path;
  if (!options.resume) {
    ::remove(options.journal_path.c_str());
    ::remove(ledger_path.c_str());
  }

  std::cout << "shard: " << options.workers << " worker(s), journal "
            << options.journal_path << ", ledger " << ledger_path
            << ", ttl " << options.lease_ttl_seconds << "s\n";

  CoordinatorReport report;
  for (int i = 1; i <= options.workers; ++i) {
    WorkerExit we;
    we.worker_id = "w" + std::to_string(i);
    we.log_path = ledger_path + "." + we.worker_id + ".log";
    std::vector<EnvPair> env = {
        {"BDPROTO_SHARD_LEDGER", ledger_path},
        {"BDPROTO_SHARD_WORKER", we.worker_id},
        {"BDPROTO_SHARD_TTL", std::to_string(options.lease_ttl_seconds)},
        {"BDPROTO_JOURNAL", options.journal_path},
        {"BDPROTO_RESUME", "1"},
    };
    const auto fault = options.worker_faults.find(i);
    env.push_back(
        {"BDPROTO_FAULTS",
         fault != options.worker_faults.end() ? fault->second : ""});
    we.pid = spawn(options.command, env, we.log_path);
    report.workers.push_back(we);
  }

  for (WorkerExit& we : report.workers) {
    we.exit_code = await_exit(we.pid, &we.signal);
    if (we.signal != 0) {
      ++report.crashed_workers;
      std::cout << "shard: worker " << we.worker_id << " killed by signal "
                << we.signal << " (log: " << we.log_path << ")\n";
    } else if (we.exit_code != 0) {
      ++report.failed_workers;
      std::cout << "shard: worker " << we.worker_id << " exited "
                << we.exit_code << " (log: " << we.log_path << ")\n";
    } else {
      std::cout << "shard: worker " << we.worker_id << " completed\n";
    }
  }

  // Merge pass: sharding off, resume on — the bench re-derives the table
  // from the journal's full-precision fields, executing only cells the
  // whole fleet failed to finish. Output is byte-identical across worker
  // counts and crash schedules.
  std::vector<EnvPair> merge_env = {
      {"BDPROTO_SHARD_LEDGER", ""},  // empty disables worker mode
      {"BDPROTO_JOURNAL", options.journal_path},
      {"BDPROTO_RESUME", "1"},
      {"BDPROTO_FAULTS", ""},
  };
  const int merge_pid =
      spawn(options.command, merge_env, options.merged_out);
  int merge_signal = 0;
  report.exit_code = await_exit(merge_pid, &merge_signal);
  if (merge_signal != 0) {
    std::cout << "shard: merge pass killed by signal " << merge_signal
              << "\n";
  }

  const LedgerInspection inspection = inspect_ledger(ledger_path);
  report.ledger =
      inspection.table.summarize(now_ms(),
                                 static_cast<std::int64_t>(
                                     options.lease_ttl_seconds * 1000.0));
  const LedgerSummary& s = report.ledger;
  std::cout << "shard: cells=" << s.cells << " done=" << s.done
            << " steals=" << s.steals << " abandons=" << s.abandons
            << " heartbeats=" << s.heartbeats
            << " crashed_workers=" << report.crashed_workers << "\n";
  for (const auto& [worker, n] : s.done_by_worker) {
    const auto claims = s.claims_by_worker.find(worker);
    std::cout << "shard:   " << worker << " done=" << n << " claims="
              << (claims == s.claims_by_worker.end() ? 0 : claims->second)
            << "\n";
  }
  if (inspection.torn_tail) {
    std::cout << "shard: ledger has a torn final line (a worker died "
                 "mid-append); tolerated\n";
  }
  if (report.exit_code == 0 && !options.merged_out.empty()) {
    std::cout << "shard: merged table written to " << options.merged_out
              << "\n";
  }
  return report;
}

}  // namespace bd::shard
