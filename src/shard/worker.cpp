#include "shard/worker.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "robust/supervisor.h"
#include "util/env.h"
#include "util/logging.h"

namespace bd::shard {

namespace {
using WorkerLock =
    std::unique_lock<runtime::OrderedMutex<runtime::LockRank::kShardWorker>>;
}

std::optional<ShardConfig> shard_config_from_env() {
  const std::string ledger = env_string("BDPROTO_SHARD_LEDGER").value_or("");
  if (ledger.empty()) return std::nullopt;
  ShardConfig config;
  config.ledger_path = ledger;
  config.worker_id = env_string("BDPROTO_SHARD_WORKER").value_or("w1");
  config.lease_ttl_seconds =
      env_double("BDPROTO_SHARD_TTL").value_or(config.lease_ttl_seconds);
  return config;
}

WorkerSession::WorkerSession(const ShardConfig& config)
    : config_(config), ledger_(config.ledger_path) {
  if (config_.quarantine_strikes <= 0) {
    config_.quarantine_strikes =
        robust::Supervisor::instance().config().quarantine_strikes;
  }
  heartbeat_ = std::thread([this] { heartbeat_main(); });
}

WorkerSession::~WorkerSession() {
  {
    WorkerLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
}

void WorkerSession::set_held_key(const std::string& key) {
  {
    WorkerLock lock(mutex_);
    held_key_ = key;
  }
  cv_.notify_all();
}

void WorkerSession::heartbeat_main() {
  // Beat well inside the TTL so one missed beat (scheduling hiccup,
  // fsync stall) never expires a live lease.
  const auto interval = std::chrono::milliseconds(
      std::max<std::int64_t>(config_.ttl_ms() / 4, 10));
  WorkerLock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, interval);
    if (stop_) break;
    if (held_key_.empty()) continue;
    LedgerRecord beat;
    beat.op = LedgerOp::kHeartbeat;
    beat.key = held_key_;
    beat.worker = config_.worker_id;
    beat.ts_ms = now_ms();
    // Worker mutex (rank 42) is held across the ledger append (rank 44):
    // ascending, and it keeps the beat's key stable against a concurrent
    // done/claim transition on the main thread.
    ledger_.append(beat);
    BD_OBS_COUNT("shard.heartbeats", 1);
  }
}

WorkerStats WorkerSession::run_all(const std::vector<std::string>& keys,
                                   const RunCell& run_cell,
                                   const QuarantineCell& quarantine_cell) {
  WorkerStats stats;
  auto& faults = robust::FaultInjector::instance();
  const std::int64_t ttl_ms = config_.ttl_ms();
  const auto idle = std::chrono::duration<double>(
      std::max(config_.poll_interval_seconds, 0.001));

  for (;;) {
    ledger_.poll();
    bool all_done = true;
    std::size_t pick = keys.size();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (ledger_.done(keys[i])) continue;
      all_done = false;
      if (ledger_.claimable(keys[i], ttl_ms)) {
        pick = i;
        break;
      }
    }
    if (all_done) break;
    if (pick == keys.size()) {
      // Every remaining cell is leased to a live worker: idle until one
      // finishes or an abandoned lease expires.
      std::this_thread::sleep_for(idle);
      continue;
    }

    const std::string& key = keys[pick];
    const int strikes = ledger_.strikes(key, ttl_ms);
    bool stole = false;
    if (!ledger_.try_claim(key, config_.worker_id, ttl_ms, &stole)) {
      continue;  // raced out: rescan
    }
    ++stats.claimed;
    if (stole) ++stats.stolen;
    set_held_key(key);

    // Chaos hook: a SIGKILL here models a worker dying mid-cell — the
    // claim is durable, the done record will never come, and the lease
    // must expire and be stolen.
    faults.fire_crash_worker("shard cell " + key);

    LedgerRecord done;
    done.op = LedgerOp::kDone;
    done.key = key;
    done.worker = config_.worker_id;
    try {
      if (strikes >= config_.quarantine_strikes) {
        const std::string reason =
            "quarantined after " + std::to_string(strikes) +
            " lost leases (workers died or abandoned mid-cell)";
        BD_LOG(Warn) << "shard: " << config_.worker_id << " cell " << key
                     << ": " << reason;
        quarantine_cell(pick, reason);
        done.note = "quarantined";
        ++stats.quarantined;
      } else {
        BD_OBS_SPAN("shard.cell");
        run_cell(pick);
        ++stats.completed;
      }
    } catch (...) {
      // Give the lease back so another worker retries immediately
      // instead of waiting out the TTL; the failure still propagates
      // and ends this worker.
      LedgerRecord abandon;
      abandon.op = LedgerOp::kAbandon;
      abandon.key = key;
      abandon.worker = config_.worker_id;
      abandon.ts_ms = now_ms();
      abandon.note = "cell execution failed";
      ledger_.append(abandon);
      set_held_key("");
      throw;
    }
    done.ts_ms = now_ms();
    ledger_.append(done);
    BD_OBS_COUNT("shard.cells_done", 1);
    set_held_key("");
  }
  return stats;
}

}  // namespace bd::shard
