#include "shard/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/obs.h"
#include "robust/journal.h"
#include "util/logging.h"

namespace bd::shard {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// RAII exclusive fcntl lock over the whole ledger file. Advisory and
/// per-process: it serializes claim races *between* worker processes;
/// in-process threads are serialized by the LeaseLedger mutex.
class FcntlGuard {
 public:
  explicit FcntlGuard(int fd) : fd_(fd) {
    struct ::flock lk{};
    lk.l_type = F_WRLCK;
    lk.l_whence = SEEK_SET;
    int rc;
    do {
      rc = ::fcntl(fd_, F_SETLKW, &lk);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      throw std::runtime_error(std::string("ledger: fcntl lock failed: ") +
                               std::strerror(errno));
    }
  }
  ~FcntlGuard() {
    struct ::flock lk{};
    lk.l_type = F_UNLCK;
    lk.l_whence = SEEK_SET;
    ::fcntl(fd_, F_SETLK, &lk);
  }
  FcntlGuard(const FcntlGuard&) = delete;
  FcntlGuard& operator=(const FcntlGuard&) = delete;

 private:
  int fd_;
};

}  // namespace

LeaseLedger::LeaseLedger(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("ledger: cannot open '" + path_ +
                             "': " + std::strerror(errno));
  }
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  poll_locked();
}

LeaseLedger::~LeaseLedger() {
  if (fd_ >= 0) ::close(fd_);
}

void LeaseLedger::poll_locked() {
  char buf[4096];
  for (;;) {
    ssize_t n;
    do {
      n = ::pread(fd_, buf, sizeof(buf),
                  static_cast<off_t>(read_offset_));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      throw std::runtime_error("ledger '" + path_ +
                               "': read failed: " + std::strerror(errno));
    }
    if (n == 0) break;
    pending_.append(buf, static_cast<std::size_t>(n));
    read_offset_ += static_cast<std::uintmax_t>(n);
  }
  // Consume complete lines; an unterminated tail (a writer killed
  // mid-append, or a reader racing a write on a filesystem without
  // atomic appends) stays pending until its newline lands.
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = pending_.substr(start, nl - start);
    start = nl + 1;
    ++pending_line_;
    if (line.empty()) continue;
    std::string key;
    robust::JournalFields fields;
    LedgerRecord record;
    if (!robust::parse_journal_line(line, key, fields) ||
        !record_from_fields(key, fields, record)) {
      // A dead writer's torn tail concatenated with the next worker's
      // append. Dropping a record is always safe here: a lost claim or
      // heartbeat at worst causes a duplicate execution of a
      // deterministic cell, a lost done record causes a re-execution —
      // both journal identical results.
      BD_LOG(Warn) << "ledger '" << path_ << "': skipping malformed line "
                   << pending_line_ << " (" << line.size() << " bytes)";
      continue;
    }
    table_.apply(record);
  }
  pending_.erase(0, start);
}

void LeaseLedger::append_locked(const LedgerRecord& r) {
  std::string line = robust::encode_journal_line(r.key, record_to_fields(r));
  // A non-empty pending tail means the file currently ends mid-line (a
  // killed writer's torn append). Lead with a newline so the torn line is
  // terminated — and skipped as malformed on replay — instead of fusing
  // with our record and losing it. Still one write(2), and a leading
  // newline that races another process's complete append merely produces
  // an empty line, which every reader skips.
  poll_locked();
  if (!pending_.empty()) line.insert(line.begin(), '\n');
  ssize_t n;
  do {
    n = ::write(fd_, line.data(), line.size());
  } while (n < 0 && errno == EINTR);
  if (n != static_cast<ssize_t>(line.size())) {
    const std::string reason = n < 0 ? std::strerror(errno) : "short write";
    throw std::runtime_error("ledger '" + path_ +
                             "': write failure: " + reason);
  }
  if (robust::journal_fsync_enabled()) ::fsync(fd_);
  // Fold the new record in by reading it back: O_APPEND writes are
  // totally ordered, so polling from the old offset replays any records
  // concurrent processes slipped in before ours, then ours, in file
  // order — one code path, no double-apply.
  poll_locked();
}

void LeaseLedger::append(const LedgerRecord& r) {
  if (!enabled()) return;
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  append_locked(r);
}

void LeaseLedger::poll() {
  if (!enabled()) return;
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  poll_locked();
}

bool LeaseLedger::try_claim(const std::string& key, const std::string& worker,
                            std::int64_t ttl_ms, bool* stole) {
  if (stole != nullptr) *stole = false;
  if (!enabled()) return false;
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  const FcntlGuard file_lock(fd_);
  poll_locked();  // another process may have claimed/finished it
  const std::int64_t now = now_ms();
  if (!table_.claimable(key, now, ttl_ms)) return false;
  const LeaseState* state = table_.find(key);
  // Capture the dead holder before append_locked replays our claim and
  // overwrites it with `worker`.
  const std::string victim =
      state != nullptr && state->phase == LeaseState::Phase::kLeased
          ? state->holder
          : std::string();
  LedgerRecord claim;
  claim.op = LedgerOp::kClaim;
  claim.key = key;
  claim.worker = worker;
  claim.ts_ms = now;
  claim.steal = !victim.empty();
  append_locked(claim);
  if (stole != nullptr) *stole = claim.steal;
  BD_OBS_COUNT("shard.claims", 1);
  if (claim.steal) {
    BD_OBS_COUNT("shard.steals", 1);
    BD_LOG(Info) << "shard: " << worker << " stole expired lease on " << key
                 << " from " << victim;
  }
  return true;
}

bool LeaseLedger::done(const std::string& key) const {
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  return table_.done(key);
}

bool LeaseLedger::claimable(const std::string& key,
                            std::int64_t ttl_ms) const {
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  return table_.claimable(key, now_ms(), ttl_ms);
}

int LeaseLedger::strikes(const std::string& key, std::int64_t ttl_ms) const {
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  return table_.strikes(key, now_ms(), ttl_ms);
}

LedgerSummary LeaseLedger::summarize(std::int64_t ttl_ms) const {
  std::lock_guard<runtime::OrderedMutex<runtime::LockRank::kShardLedger>>
      lock(mutex_);
  return table_.summarize(now_ms(), ttl_ms);
}

LedgerInspection inspect_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ledger: cannot open '" + path + "'");
  }
  LedgerInspection out;
  std::size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const bool has_newline = !in.eof();
    if (line.empty()) continue;
    std::string key;
    robust::JournalFields fields;
    LedgerRecord record;
    if (robust::parse_journal_line(line, key, fields) &&
        record_from_fields(key, fields, record)) {
      out.table.apply(record);
      ++out.records;
      continue;
    }
    if (!has_newline && in.peek() == std::ifstream::traits_type::eof()) {
      out.torn_tail = true;  // a killed writer's partial append: tolerated
      BD_LOG(Warn) << "ledger '" << path << "': torn final line " << line_no
                   << " (" << line.size() << " bytes) ignored";
      break;
    }
    // Same warn-and-count policy as LeaseLedger::poll_locked: dropped
    // records are self-healing, but the inspection surfaces the damage.
    ++out.malformed;
    BD_LOG(Warn) << "ledger '" << path << "': malformed line " << line_no
                 << " (" << line.size() << " bytes) skipped";
  }
  return out;
}

}  // namespace bd::shard
