// Lease state machine over the shard ledger's record stream.
//
// A LeaseTable replays ledger records (see shard/ledger.h) into per-cell
// state. Each cell — keyed by the same FNV-1a config hash the run journal
// uses — moves through:
//
//   kOpen ──claim──► kLeased ──done──► kDone (terminal)
//     ▲                 │
//     └────abandon──────┘
//
// A kLeased cell whose heartbeat is older than the lease TTL is *expired*:
// any worker may issue a new claim carrying the steal flag, which takes
// the lease over without an abandon record (the previous holder is dead
// and cannot write one). Every lost lease — a steal, an abandon, or the
// currently-expired holder — is a strike against the cell; at the
// supervisor's quarantine threshold the next claimer records the cell as
// degraded instead of executing it, carrying PR 4's quarantine semantics
// across process boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bd::shard {

enum class LedgerOp { kClaim, kHeartbeat, kDone, kAbandon };

/// One ledger line, decoded. `ts_ms` is machine-wide monotonic time
/// (shard::now_ms): comparable across worker processes on one host.
struct LedgerRecord {
  LedgerOp op = LedgerOp::kClaim;
  std::string key;
  std::string worker;
  std::int64_t ts_ms = 0;
  /// Claim only: the lease was taken over from an expired holder.
  bool steal = false;
  /// Abandon reason / done annotation (e.g. "quarantined").
  std::string note;
};

struct LeaseState {
  enum class Phase { kOpen, kLeased, kDone };
  Phase phase = Phase::kOpen;
  /// Current (kLeased) or last holder.
  std::string holder;
  /// Timestamp of the holder's claim or latest heartbeat.
  std::int64_t last_beat_ms = 0;
  int claims = 0;    // claim records seen (first claim + every steal)
  int steals = 0;
  int abandons = 0;
  /// Worker that completed the cell ("" until kDone).
  std::string done_worker;
  std::string done_note;

  bool expired(std::int64_t now_ms, std::int64_t ttl_ms) const {
    return phase == Phase::kLeased && now_ms - last_beat_ms > ttl_ms;
  }
};

/// Aggregate view for `bdctl verify` and the coordinator summary.
struct LedgerSummary {
  std::size_t cells = 0;
  std::size_t done = 0;
  std::size_t leased = 0;  // claimed but not done (orphaned if the run is over)
  std::size_t expired = 0; // leased with a stale heartbeat
  std::size_t steals = 0;
  std::size_t abandons = 0;
  std::size_t heartbeats = 0;
  /// Cells completed / claims issued per worker id (sorted for output).
  std::map<std::string, std::int64_t> done_by_worker;
  std::map<std::string, std::int64_t> claims_by_worker;
};

class LeaseTable {
 public:
  /// Folds one record in, in append order. Records against a kDone cell
  /// are ignored (late heartbeats from a raced-out holder).
  void apply(const LedgerRecord& r);

  /// State for `key`, or nullptr when never mentioned.
  const LeaseState* find(const std::string& key) const;

  bool done(const std::string& key) const;

  /// True when a worker may claim `key` now: never claimed, abandoned, or
  /// leased with an expired heartbeat. Done cells are never claimable.
  bool claimable(const std::string& key, std::int64_t now_ms,
                 std::int64_t ttl_ms) const;

  /// Lost leases of `key`: steals already issued + explicit abandons +
  /// the currently-expired holder (who is about to be stolen from).
  int strikes(const std::string& key, std::int64_t now_ms,
              std::int64_t ttl_ms) const;

  LedgerSummary summarize(std::int64_t now_ms, std::int64_t ttl_ms) const;

  const std::map<std::string, LeaseState>& states() const { return states_; }

 private:
  std::map<std::string, LeaseState> states_;
  std::size_t steals_ = 0;
  std::size_t abandons_ = 0;
  std::size_t heartbeats_ = 0;
  std::map<std::string, std::int64_t> claims_by_worker_;
  std::map<std::string, std::int64_t> done_by_worker_;
};

/// Field-map encoding shared with the run journal's line grammar: the
/// record's key goes in the line key slot, everything else into fields
/// ("op", "worker", "ts", optional "steal", "note").
std::map<std::string, std::string> record_to_fields(const LedgerRecord& r);

/// Inverse of record_to_fields. Returns false on an unknown op or a
/// missing member instead of throwing.
bool record_from_fields(const std::string& key,
                        const std::map<std::string, std::string>& fields,
                        LedgerRecord& out);

}  // namespace bd::shard
