#include "shard/lease.h"

#include <cstdlib>

namespace bd::shard {

namespace {

const char* op_name(LedgerOp op) {
  switch (op) {
    case LedgerOp::kClaim: return "claim";
    case LedgerOp::kHeartbeat: return "heartbeat";
    case LedgerOp::kDone: return "done";
    case LedgerOp::kAbandon: return "abandon";
  }
  return "claim";
}

bool parse_op(const std::string& name, LedgerOp& out) {
  if (name == "claim") out = LedgerOp::kClaim;
  else if (name == "heartbeat") out = LedgerOp::kHeartbeat;
  else if (name == "done") out = LedgerOp::kDone;
  else if (name == "abandon") out = LedgerOp::kAbandon;
  else return false;
  return true;
}

}  // namespace

void LeaseTable::apply(const LedgerRecord& r) {
  LeaseState& s = states_[r.key];
  if (s.phase == LeaseState::Phase::kDone) return;  // terminal: late writers
  switch (r.op) {
    case LedgerOp::kClaim:
      s.phase = LeaseState::Phase::kLeased;
      s.holder = r.worker;
      s.last_beat_ms = r.ts_ms;
      ++s.claims;
      ++claims_by_worker_[r.worker];
      if (r.steal) {
        ++s.steals;
        ++steals_;
      }
      break;
    case LedgerOp::kHeartbeat:
      // Only the current holder's heartbeats extend the lease; a stale
      // beat from a stolen-from holder must not resurrect its lease.
      if (s.phase == LeaseState::Phase::kLeased && s.holder == r.worker) {
        s.last_beat_ms = r.ts_ms;
      }
      ++heartbeats_;
      break;
    case LedgerOp::kDone:
      s.phase = LeaseState::Phase::kDone;
      s.done_worker = r.worker;
      s.done_note = r.note;
      ++done_by_worker_[r.worker];
      break;
    case LedgerOp::kAbandon:
      if (s.phase == LeaseState::Phase::kLeased && s.holder == r.worker) {
        s.phase = LeaseState::Phase::kOpen;
        s.holder.clear();
      }
      ++s.abandons;
      ++abandons_;
      break;
  }
}

const LeaseState* LeaseTable::find(const std::string& key) const {
  const auto it = states_.find(key);
  return it == states_.end() ? nullptr : &it->second;
}

bool LeaseTable::done(const std::string& key) const {
  const LeaseState* s = find(key);
  return s != nullptr && s->phase == LeaseState::Phase::kDone;
}

bool LeaseTable::claimable(const std::string& key, std::int64_t now_ms,
                           std::int64_t ttl_ms) const {
  const LeaseState* s = find(key);
  if (s == nullptr) return true;  // never claimed
  switch (s->phase) {
    case LeaseState::Phase::kOpen: return true;
    case LeaseState::Phase::kLeased: return s->expired(now_ms, ttl_ms);
    case LeaseState::Phase::kDone: return false;
  }
  return false;
}

int LeaseTable::strikes(const std::string& key, std::int64_t now_ms,
                        std::int64_t ttl_ms) const {
  const LeaseState* s = find(key);
  if (s == nullptr) return 0;
  return s->steals + s->abandons + (s->expired(now_ms, ttl_ms) ? 1 : 0);
}

LedgerSummary LeaseTable::summarize(std::int64_t now_ms,
                                    std::int64_t ttl_ms) const {
  LedgerSummary summary;
  summary.cells = states_.size();
  summary.steals = steals_;
  summary.abandons = abandons_;
  summary.heartbeats = heartbeats_;
  summary.claims_by_worker = claims_by_worker_;
  summary.done_by_worker = done_by_worker_;
  for (const auto& [key, s] : states_) {
    (void)key;
    switch (s.phase) {
      case LeaseState::Phase::kDone:
        ++summary.done;
        break;
      case LeaseState::Phase::kLeased:
        ++summary.leased;
        if (s.expired(now_ms, ttl_ms)) ++summary.expired;
        break;
      case LeaseState::Phase::kOpen:
        break;
    }
  }
  return summary;
}

std::map<std::string, std::string> record_to_fields(const LedgerRecord& r) {
  std::map<std::string, std::string> fields{
      {"op", op_name(r.op)},
      {"worker", r.worker},
      {"ts", std::to_string(r.ts_ms)}};
  if (r.steal) fields["steal"] = "1";
  if (!r.note.empty()) fields["note"] = r.note;
  return fields;
}

bool record_from_fields(const std::string& key,
                        const std::map<std::string, std::string>& fields,
                        LedgerRecord& out) {
  const auto get = [&fields](const char* name) {
    const auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  if (!parse_op(get("op"), out.op)) return false;
  out.key = key;
  out.worker = get("worker");
  const std::string ts = get("ts");
  if (out.worker.empty() || ts.empty()) return false;
  out.ts_ms = std::strtoll(ts.c_str(), nullptr, 10);
  out.steal = get("steal") == "1";
  out.note = get("note");
  return true;
}

}  // namespace bd::shard
