// Shard worker: one process's claim → run → done loop.
//
// A worker is handed the table's full cell list in canonical order (every
// worker derives the identical list from the identical spec + seed) and
// repeatedly claims the first claimable cell through the lease ledger.
// While a cell runs, a background thread heartbeats the lease; a worker
// that is SIGKILLed, hung, or OOM'd simply stops heartbeating, its lease
// expires after the TTL, and any surviving worker steals the cell — so a
// dead worker costs at most its in-flight cell. A cell whose successive
// holders keep dying accumulates strikes in the ledger; at the
// supervisor's quarantine threshold the next claimer records the cell as
// degraded instead of executing it (PR 4 quarantine semantics, lifted
// across process boundaries).
//
// Worker mode is activated per process by the coordinator via env:
//   BDPROTO_SHARD_LEDGER  lease ledger path (presence enables the mode)
//   BDPROTO_SHARD_WORKER  this worker's id ("w1", "w2", ...)
//   BDPROTO_SHARD_TTL     lease TTL in seconds (default 5)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "runtime/ordered_mutex.h"
#include "shard/ledger.h"

namespace bd::shard {

struct ShardConfig {
  std::string ledger_path;
  std::string worker_id;
  double lease_ttl_seconds = 5.0;
  /// Idle re-scan interval while other workers hold the remaining cells.
  double poll_interval_seconds = 0.05;
  /// Lost leases before a cell is quarantined; <= 0 defers to the
  /// supervisor's quarantine_strikes.
  int quarantine_strikes = 0;

  std::int64_t ttl_ms() const {
    return static_cast<std::int64_t>(lease_ttl_seconds * 1000.0);
  }
};

/// Worker config from the BDPROTO_SHARD_* env, or nullopt when this
/// process is not a shard worker (empty/unset ledger path).
std::optional<ShardConfig> shard_config_from_env();

struct WorkerStats {
  std::int64_t claimed = 0;      // cells this worker won a lease on
  std::int64_t stolen = 0;       // of those, leases taken from dead holders
  std::int64_t completed = 0;    // cells executed to a durable result
  std::int64_t quarantined = 0;  // cells recorded degraded on strikes
};

class WorkerSession {
 public:
  explicit WorkerSession(const ShardConfig& config);
  ~WorkerSession();
  WorkerSession(const WorkerSession&) = delete;
  WorkerSession& operator=(const WorkerSession&) = delete;

  /// Executes cell `index`; must make the result durable (journal append)
  /// before returning — the session writes the done record right after.
  using RunCell = std::function<void(std::size_t index)>;
  /// Records a degraded result for cell `index` (quarantined: `reason`).
  using QuarantineCell =
      std::function<void(std::size_t index, const std::string& reason)>;

  /// Claims and runs cells until every key in `keys` has a done record in
  /// the ledger (whether written by this worker or another). Exceptions
  /// from run_cell abandon the lease (so another worker can retry the
  /// cell immediately) and propagate.
  WorkerStats run_all(const std::vector<std::string>& keys,
                      const RunCell& run_cell,
                      const QuarantineCell& quarantine_cell);

  const ShardConfig& config() const { return config_; }
  LeaseLedger& ledger() { return ledger_; }

 private:
  void heartbeat_main();
  void set_held_key(const std::string& key);

  ShardConfig config_;
  LeaseLedger ledger_;
  mutable runtime::OrderedMutex<runtime::LockRank::kShardWorker> mutex_;
  std::condition_variable_any cv_;
  std::string held_key_;  // lease being heartbeat ("" = none)
  bool stop_ = false;
  std::thread heartbeat_;
};

}  // namespace bd::shard
