// Shard coordinator: spawns N worker processes over one table bench,
// supervises them with waitpid, and runs the deterministic merge pass.
//
// Workers are the bench binary itself, re-executed with the
// BDPROTO_SHARD_* env set; each claims cells through the lease ledger
// and appends results to the shared run journal (both multi-writer
// safe). A worker that dies — SIGKILL, OOM, crash — forfeits at most its
// in-flight cell: its lease expires and a surviving worker steals it.
//
// The merge pass re-executes the bench once more with sharding off and
// BDPROTO_RESUME=1: every cell is journaled by then, so it re-derives
// the table purely from the journal's full-precision fields (completing
// any cells the fleet lost, e.g. when every worker died). Because the
// journal is keyed by config hashes with pre-drawn seeds, the merged
// output is byte-identical across 1/2/4/8 workers and across any
// crash/steal schedule.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "shard/lease.h"

namespace bd::shard {

struct CoordinatorOptions {
  int workers = 2;
  /// Shared run journal; the ledger defaults to `<journal>.ledger`.
  std::string journal_path = "shard.journal";
  std::string ledger_path;
  double lease_ttl_seconds = 5.0;
  /// Merge-pass stdout destination ("" inherits the coordinator's).
  std::string merged_out;
  /// Per-worker BDPROTO_FAULTS overrides keyed by 1-based worker index:
  /// chaos-test one worker (e.g. {2: "crash_worker@1"}) while the rest
  /// run clean.
  std::map<int, std::string> worker_faults;
  /// The bench command (argv). Must run a table bench that honours the
  /// BDPROTO_SHARD_* worker protocol (any eval::run_table caller does).
  std::vector<std::string> command;
  /// Keep existing journal/ledger and finish the remaining cells;
  /// default starts fresh by removing both files.
  bool resume = false;
};

struct WorkerExit {
  std::string worker_id;
  int pid = 0;
  int exit_code = 0;   // -1 when killed by a signal
  int signal = 0;      // terminating signal (0 when exited)
  std::string log_path;
};

struct CoordinatorReport {
  int exit_code = 0;  // merge pass exit status
  std::vector<WorkerExit> workers;
  int crashed_workers = 0;  // died to a signal
  int failed_workers = 0;   // nonzero exit
  LedgerSummary ledger;
};

/// Runs the sharded bench end to end; prints per-worker exits and the
/// ledger summary to stdout. Throws on spawn failure.
CoordinatorReport run_sharded(const CoordinatorOptions& options);

}  // namespace bd::shard
