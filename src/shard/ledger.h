// Crash-resilient lease ledger: the multi-writer coordination file that
// shard workers claim table cells through.
//
// The ledger is an append-only JSONL file in the run journal's line
// grammar (robust/journal.h): one record per line,
//
//   {"key":"<cell hash>","fields":{"op":"claim","worker":"w2","ts":"..."}}
//
// appended with O_APPEND and a single write(2) so records from concurrent
// worker processes never interleave mid-line, and loaded torn-final-line
// tolerant exactly like the journal. Claims — the only read-check-write
// races — are serialized by an exclusive fcntl(2) advisory lock on the
// ledger file: under the lock a worker re-reads the tail, re-checks that
// the cell is still claimable, and appends its claim. Heartbeats, done
// and abandon records are written only by the lease holder and need no
// lock beyond the atomic append.
//
// All appends go through one persistent file descriptor per LeaseLedger:
// POSIX drops every fcntl lock a process holds on a file when *any* of
// its descriptors for that file closes, so an open/append/close helper
// would silently release a claim lock mid-protocol.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/ordered_mutex.h"
#include "shard/lease.h"

namespace bd::shard {

/// Machine-wide monotonic milliseconds (CLOCK_MONOTONIC): comparable
/// across processes on one host and immune to wall-clock steps. Used for
/// lease expiry arithmetic only — never in any output file.
std::int64_t now_ms();

class LeaseLedger {
 public:
  /// Disabled ledger (enabled() false, every operation a no-op).
  LeaseLedger() = default;

  /// Opens (creating if absent) the ledger and replays every intact
  /// record. Throws on open failure. Malformed completed lines (a dead
  /// writer's torn tail fused with a later append) are skipped with a
  /// warning — record loss is self-healing for this protocol; a torn
  /// final line stays pending until its terminating newline arrives.
  explicit LeaseLedger(std::string path);

  ~LeaseLedger();
  LeaseLedger(const LeaseLedger&) = delete;
  LeaseLedger& operator=(const LeaseLedger&) = delete;

  bool enabled() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one record (single O_APPEND write; BDPROTO_JOURNAL_FSYNC
  /// honoured) and folds it into the local table.
  void append(const LedgerRecord& r);

  /// Folds in records other processes appended since the last poll.
  void poll();

  /// Claim protocol: under the exclusive fcntl lock, re-polls, re-checks
  /// claimability, and appends the claim record. Returns false when the
  /// cell was taken (or finished) in the meantime. `*stole` is set when
  /// the claim took over an expired lease.
  bool try_claim(const std::string& key, const std::string& worker,
                 std::int64_t ttl_ms, bool* stole);

  // Locked queries against the replayed lease table.
  bool done(const std::string& key) const;
  bool claimable(const std::string& key, std::int64_t ttl_ms) const;
  int strikes(const std::string& key, std::int64_t ttl_ms) const;
  LedgerSummary summarize(std::int64_t ttl_ms) const;

 private:
  void poll_locked();
  void append_locked(const LedgerRecord& r);

  mutable runtime::OrderedMutex<runtime::LockRank::kShardLedger> mutex_;
  std::string path_;
  int fd_ = -1;
  std::uintmax_t read_offset_ = 0;
  std::string pending_;  // bytes read but not yet newline-terminated
  std::size_t pending_line_ = 0;  // lines consumed (error reporting)
  LeaseTable table_;
};

/// Read-only replay for inspection (`bdctl verify`, coordinator summary):
/// the lease table, the record count, malformed lines skipped (a dead
/// writer's torn tail concatenated with a later append), and whether the
/// final line itself was torn.
struct LedgerInspection {
  LeaseTable table;
  std::size_t records = 0;
  std::size_t malformed = 0;
  bool torn_tail = false;
};
LedgerInspection inspect_ledger(const std::string& path);

}  // namespace bd::shard
