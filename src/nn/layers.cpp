#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "tensor/ops.h"

namespace bd::nn {

Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool bias, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      spec_{stride, padding},
      pruned_(static_cast<std::size_t>(out_channels), false) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  weight_ = ag::Var(
      kaiming_normal({out_channels, in_channels, kernel, kernel}, fan_in, rng),
      /*requires_grad=*/true);
  register_parameter("weight", weight_);
  if (bias) {
    bias_ = ag::Var(Tensor::zeros({out_channels}), /*requires_grad=*/true);
    register_parameter("bias", bias_);
  }
}

ag::Var Conv2d::forward(const ag::Var& x) {
  return ag::conv2d(x, weight_, bias_, spec_);
}

void Conv2d::prune_filter(std::int64_t f) {
  if (f < 0 || f >= out_channels_) {
    throw std::out_of_range("Conv2d::prune_filter: filter " +
                            std::to_string(f) + " out of range");
  }
  pruned_[static_cast<std::size_t>(f)] = true;
  enforce_filter_masks();
}

void Conv2d::unprune_filter(std::int64_t f) {
  if (f < 0 || f >= out_channels_) {
    throw std::out_of_range("Conv2d::unprune_filter: filter " +
                            std::to_string(f) + " out of range");
  }
  pruned_[static_cast<std::size_t>(f)] = false;
}

bool Conv2d::is_filter_pruned(std::int64_t f) const {
  return pruned_.at(static_cast<std::size_t>(f));
}

std::int64_t Conv2d::pruned_filter_count() const {
  std::int64_t n = 0;
  for (const bool p : pruned_) n += p ? 1 : 0;
  return n;
}

void Conv2d::enforce_filter_masks() {
  Tensor& w = weight_.mutable_value();
  const std::int64_t filter_size = in_channels_ * kernel_ * kernel_;
  for (std::int64_t f = 0; f < out_channels_; ++f) {
    if (!pruned_[static_cast<std::size_t>(f)]) continue;
    float* pw = w.data() + f * filter_size;
    std::fill(pw, pw + filter_size, 0.0f);
    if (bias_.defined()) bias_.mutable_value()[f] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// DepthwiseConv2d
// ---------------------------------------------------------------------------

DepthwiseConv2d::DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                                 std::int64_t stride, std::int64_t padding,
                                 bool bias, Rng& rng)
    : channels_(channels), spec_{stride, padding} {
  const std::int64_t fan_in = kernel * kernel;
  weight_ = ag::Var(kaiming_normal({channels, 1, kernel, kernel}, fan_in, rng),
                    /*requires_grad=*/true);
  register_parameter("weight", weight_);
  if (bias) {
    bias_ = ag::Var(Tensor::zeros({channels}), /*requires_grad=*/true);
    register_parameter("bias", bias_);
  }
}

ag::Var DepthwiseConv2d::forward(const ag::Var& x) {
  return ag::depthwise_conv2d(x, weight_, bias_, spec_);
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = ag::Var(kaiming_normal({in_features, out_features}, in_features, rng),
                    /*requires_grad=*/true);
  bias_ = ag::Var(Tensor::zeros({out_features}), /*requires_grad=*/true);
  register_parameter("weight", weight_);
  register_parameter("bias", bias_);
}

ag::Var Linear::forward(const ag::Var& x) {
  ag::Var input = x;
  if (x.shape().size() == 4) input = ag::flatten2d(x);
  if (input.shape().size() != 2 || input.shape()[1] != in_features_) {
    throw std::invalid_argument("Linear: expected (N, " +
                                std::to_string(in_features_) + "), got " +
                                shape_string(x.shape()));
  }
  ag::Var out = ag::matmul(input, weight_);
  return ag::add(out, ag::reshape(bias_, {1, out_features_}));
}

// ---------------------------------------------------------------------------
// BatchNorm2d
// ---------------------------------------------------------------------------

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  gamma_ = ag::Var(Tensor::ones({channels}), /*requires_grad=*/true);
  beta_ = ag::Var(Tensor::zeros({channels}), /*requires_grad=*/true);
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::ones({channels});
  register_parameter("gamma", gamma_);
  register_parameter("beta", beta_);
  register_buffer("running_mean", running_mean_);
  register_buffer("running_var", running_var_);
}

ag::Var BatchNorm2d::forward(const ag::Var& x) {
  if (x.shape().size() != 4 || x.shape()[1] != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected (N," +
                                std::to_string(channels_) + ",H,W), got " +
                                shape_string(x.shape()));
  }
  const Shape cshape{1, channels_, 1, 1};
  BD_OBS_KERNEL("kernel.batchnorm", shape_numel(x.shape()));

  // Effective scale: gamma, optionally perturbed (ANP's adversarial inner
  // step). The ANP channel mask multiplies the whole affine OUTPUT below
  // (gamma and beta paths), matching the original formulation.
  ag::Var scale = gamma_;
  if (perturbation_.defined()) {
    scale = ag::mul(scale, ag::add_scalar(perturbation_, 1.0f));
  }
  const ag::Var scale4 = ag::reshape(scale, cshape);
  const ag::Var beta4 = ag::reshape(beta_, cshape);
  const ag::Var mask4 = channel_mask_.defined()
                            ? ag::reshape(channel_mask_, cshape)
                            : ag::Var();

  if (training()) {
    const ag::Var mean = ag::reduce_mean(x, {0, 2, 3}, /*keepdim=*/true);
    const ag::Var centered = ag::sub(x, mean);
    const ag::Var var =
        ag::reduce_mean(ag::mul(centered, centered), {0, 2, 3}, true);
    const ag::Var xhat =
        ag::div(centered, ag::sqrt(ag::add_scalar(var, eps_)));

    // Update running statistics with detached batch stats.
    const Tensor batch_mean = mean.value().reshape({channels_});
    const Tensor batch_var = var.value().reshape({channels_});
    for (std::int64_t c = 0; c < channels_; ++c) {
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * batch_mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * batch_var[c];
    }
    ag::Var out = ag::add(ag::mul(xhat, scale4), beta4);
    if (mask4.defined()) out = ag::mul(out, mask4);
    return out;
  }

  // Eval mode: normalize with running statistics (constants).
  const ag::Var rm(running_mean_.reshape(cshape));
  const ag::Var rv(running_var_.reshape(cshape));
  const ag::Var xhat =
      ag::div(ag::sub(x, rm), ag::sqrt(ag::add_scalar(rv, eps_)));
  ag::Var out = ag::add(ag::mul(xhat, scale4), beta4);
  if (mask4.defined()) out = ag::mul(out, mask4);
  return out;
}

void BatchNorm2d::suppress_channel(std::int64_t c) {
  if (c < 0 || c >= channels_) {
    throw std::out_of_range("BatchNorm2d::suppress_channel out of range");
  }
  gamma_.mutable_value()[c] = 0.0f;
  beta_.mutable_value()[c] = 0.0f;
}

// ---------------------------------------------------------------------------
// SEBlock
// ---------------------------------------------------------------------------

SEBlock::SEBlock(std::int64_t channels, std::int64_t reduction, Rng& rng)
    : channels_(channels),
      fc1_(channels, std::max<std::int64_t>(1, channels / reduction), rng),
      fc2_(std::max<std::int64_t>(1, channels / reduction), channels, rng) {
  register_module("fc1", fc1_);
  register_module("fc2", fc2_);
}

ag::Var SEBlock::forward(const ag::Var& x) {
  const std::int64_t n = x.shape()[0];
  ag::Var squeezed = ag::global_avgpool(x);                 // (N,C,1,1)
  squeezed = ag::reshape(squeezed, {n, channels_});         // (N,C)
  ag::Var attn = ag::relu(fc1_.forward(squeezed));
  attn = ag::hardsigmoid(fc2_.forward(attn));               // (N,C) in [0,1]
  attn = ag::reshape(attn, {n, channels_, 1, 1});
  return ag::mul(x, attn);
}

}  // namespace bd::nn
