// Model summary: a layer tree with parameter counts and prune status,
// printable from examples and the CLI (`what did the defense remove?`).
#pragma once

#include <string>

#include "nn/module.h"

namespace bd::nn {

/// Multi-line tree like:
///   PreActResNet                 44,274 params
///     stem: Conv2d               216 params
///     stage1: Sequential ...
/// Conv layers with pruned filters are annotated "[k/N filters pruned]".
std::string summarize(const Module& module, const std::string& name = "model");

/// Total number of pruned conv filters across the module tree.
std::int64_t total_pruned_filters(Module& module);

}  // namespace bd::nn
