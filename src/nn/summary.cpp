#include "nn/summary.h"

#include <sstream>

#include "nn/layers.h"

namespace bd::nn {

namespace {

std::string with_thousands(std::int64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

void describe(const Module& module, const std::string& name, int depth,
              std::ostringstream& out) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << name << ": "
      << module.type_name() << "  " << with_thousands(module.parameter_count())
      << " params";
  if (const auto* conv = dynamic_cast<const Conv2d*>(&module)) {
    const auto pruned = conv->pruned_filter_count();
    if (pruned > 0) {
      out << "  [" << pruned << "/" << conv->out_channels()
          << " filters pruned]";
    }
  }
  out << '\n';
  for (const auto& [child_name, child] : module.children()) {
    describe(*child, child_name, depth + 1, out);
  }
}

}  // namespace

std::string summarize(const Module& module, const std::string& name) {
  std::ostringstream out;
  describe(module, name, 0, out);
  return out.str();
}

std::int64_t total_pruned_filters(Module& module) {
  std::int64_t total = 0;
  for (auto* conv : module.modules_of_type<Conv2d>()) {
    total += conv->pruned_filter_count();
  }
  return total;
}

}  // namespace bd::nn
