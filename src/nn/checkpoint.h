// Model checkpointing: save/load a module's full state (parameters and
// buffers) to a binary file. Used to hand backdoored or repaired models
// between processes (e.g. train once, evaluate many defenses later).
//
// Format v2 (current):
//   magic "BDC2" | u32 version=2 | u32 entry count
//   | per entry: length-prefixed name + serialized tensor
//   | u32 CRC-32 of everything between the magic and the CRC
// Writes are durable: the payload goes to "<path>.tmp" and is atomically
// renamed over `path`, so a crash mid-save never leaves a torn file at
// the target. Legacy v1 files (magic "BDCP", no version, no CRC) still
// load. Every load error reports the path, the entry index/name being
// read, and the byte offset of the failure.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/module.h"

namespace bd::nn {

/// Writes `module.state_dict()` to `path` (v2, atomic, CRC-protected);
/// throws std::runtime_error on I/O failure without disturbing any
/// existing file at `path`.
void save_checkpoint(const Module& module, const std::string& path);

/// Reads a state dict from `path` (v2 with CRC verification, or legacy
/// v1). Throws std::runtime_error with path/entry/offset context on any
/// corruption.
std::map<std::string, Tensor> load_state(const std::string& path);

/// Reads `path` and loads it into `module` (shapes must match).
void load_checkpoint(Module& module, const std::string& path);

/// Per-entry metadata surfaced by inspect_checkpoint().
struct CheckpointEntryInfo {
  std::string name;
  Shape shape;
  std::int64_t numel = 0;
};

struct CheckpointInfo {
  std::uint32_t version = 0;  // 1 (legacy, no CRC) or 2
  bool crc_verified = false;  // true when a v2 CRC was checked and matched
  std::vector<CheckpointEntryInfo> entries;
  std::int64_t total_elements = 0;
  /// CRC-32 over the entry region only (names + tensor payloads, no
  /// header/footer), so it identifies the *content* of the state dict
  /// identically for v1 and v2 files. Feeds the serve backbone cache key.
  std::uint32_t content_crc = 0;
};

/// Fully validates `path` (magic, version, CRC for v2, every entry) and
/// returns its summary; throws std::runtime_error on any corruption.
/// Backs `bdctl verify`.
CheckpointInfo inspect_checkpoint(const std::string& path);

}  // namespace bd::nn
