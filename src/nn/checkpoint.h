// Model checkpointing: save/load a module's full state (parameters and
// buffers) to a binary file. Used to hand backdoored or repaired models
// between processes (e.g. train once, evaluate many defenses later).
//
// Format: magic, entry count, then per entry a length-prefixed name and a
// serialized tensor (see tensor/serialize.h).
#pragma once

#include <map>
#include <string>

#include "nn/module.h"

namespace bd::nn {

/// Writes `module.state_dict()` to `path`; throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const Module& module, const std::string& path);

/// Reads a state dict from `path`.
std::map<std::string, Tensor> load_state(const std::string& path);

/// Reads `path` and loads it into `module` (shapes must match).
void load_checkpoint(Module& module, const std::string& path);

}  // namespace bd::nn
