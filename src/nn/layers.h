// Trainable layers: convolutions, linear, batch normalization, and the
// squeeze-excite block used by the EfficientNet / MobileNetV3 models.
//
// Conv2d carries an output-filter mask so the pruning defenses (ours, FP,
// CLP) can zero a filter and keep it zero through subsequent fine-tuning.
// BatchNorm2d accepts an optional per-channel mask / perturbation variable,
// which is the hook the ANP defense optimizes.
#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace bd::nn {

/// Kaiming-normal initialization for conv/linear weights (fan-in mode).
Tensor kaiming_normal(Shape shape, std::int64_t fan_in, Rng& rng);

class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool bias, Rng& rng);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "Conv2d"; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  bool has_bias() const { return bias_.defined(); }

  ag::Var& weight() { return weight_; }
  ag::Var& bias() { return bias_; }

  /// Zeroes filter f's weights (and bias) and marks it pruned; pruned
  /// filters are re-zeroed by enforce_filter_masks() after optimizer steps.
  void prune_filter(std::int64_t f);
  /// Clears the prune flag (does not restore weights; callers that roll
  /// back a prune must also restore the parameter state).
  void unprune_filter(std::int64_t f);
  bool is_filter_pruned(std::int64_t f) const;
  std::int64_t pruned_filter_count() const;
  /// Re-applies all prune masks to the weight/bias tensors.
  void enforce_filter_masks();

 private:
  std::int64_t in_channels_, out_channels_, kernel_;
  Conv2dSpec spec_;
  ag::Var weight_;  // (out, in, k, k)
  ag::Var bias_;    // (out) or undefined
  std::vector<bool> pruned_;
};

class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(std::int64_t channels, std::int64_t kernel,
                  std::int64_t stride, std::int64_t padding, bool bias,
                  Rng& rng);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "DepthwiseConv2d"; }

  std::int64_t channels() const { return channels_; }
  ag::Var& weight() { return weight_; }

 private:
  std::int64_t channels_;
  Conv2dSpec spec_;
  ag::Var weight_;  // (C, 1, k, k)
  ag::Var bias_;
};

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  /// Accepts (N, in) or (N, C, H, W) with C*H*W == in (auto-flatten).
  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "Linear"; }

  ag::Var& weight() { return weight_; }
  ag::Var& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  ag::Var weight_;  // (in, out)
  ag::Var bias_;    // (out)
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "BatchNorm2d"; }

  std::int64_t channels() const { return channels_; }
  ag::Var& gamma() { return gamma_; }
  ag::Var& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

  /// ANP hook: per-channel multiplicative mask on gamma ((C) shaped Var).
  /// Undefined (default) means no mask.
  void set_channel_mask(ag::Var mask) { channel_mask_ = std::move(mask); }
  void clear_channel_mask() { channel_mask_ = ag::Var(); }
  const ag::Var& channel_mask() const { return channel_mask_; }

  /// ANP hook: adversarial multiplicative perturbation on gamma, applied as
  /// gamma * (1 + delta).
  void set_gamma_perturbation(ag::Var delta) { perturbation_ = std::move(delta); }
  void clear_gamma_perturbation() { perturbation_ = ag::Var(); }

  /// Permanently silences channel c (gamma = beta = 0).
  void suppress_channel(std::int64_t c);

 private:
  std::int64_t channels_;
  float eps_, momentum_;
  ag::Var gamma_, beta_;  // (C)
  Tensor running_mean_, running_var_;
  ag::Var channel_mask_;   // optional (C)
  ag::Var perturbation_;   // optional (C)
};

/// Squeeze-and-Excite: global pool -> FC reduce -> ReLU -> FC expand ->
/// hard-sigmoid -> channel-wise rescale.
class SEBlock : public Module {
 public:
  SEBlock(std::int64_t channels, std::int64_t reduction, Rng& rng);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "SEBlock"; }

 private:
  std::int64_t channels_;
  Linear fc1_, fc2_;
};

}  // namespace bd::nn
