// Neural-network module hierarchy.
//
// A Module owns ag::Var parameters (leaves with requires_grad=true) and
// optional Tensor buffers (running statistics). Parameters and child
// modules are registered by name in constructors, which gives us recursive
// named state (state_dict), recursive train/eval switching, and typed
// traversal (the pruning defenses walk all Conv2d / BatchNorm2d layers).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace bd::nn {

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual ag::Var forward(const ag::Var& input) = 0;
  virtual const char* type_name() const = 0;

  /// All trainable parameters of this module and its children.
  std::vector<ag::Var*> parameters();

  /// Hierarchical "child.param" names with pointers.
  std::vector<std::pair<std::string, ag::Var*>> named_parameters();

  /// Parameters + buffers as name->tensor copies (deep).
  std::map<std::string, Tensor> state_dict() const;

  /// Loads a state dict produced by state_dict(); throws on missing keys or
  /// shape mismatches.
  void load_state_dict(const std::map<std::string, Tensor>& state);

  /// Recursively switches training mode (affects BatchNorm statistics).
  void set_training(bool training);
  bool training() const { return training_; }

  void zero_grad();

  /// Total parameter element count.
  std::int64_t parameter_count() const;

  /// Depth-first typed collection of this module and all descendants.
  template <typename T>
  std::vector<T*> modules_of_type() {
    std::vector<T*> found;
    visit([&found](Module& m) {
      if (auto* t = dynamic_cast<T*>(&m)) found.push_back(t);
    });
    return found;
  }

  /// Applies fn to this module and every descendant (pre-order).
  void visit(const std::function<void(Module&)>& fn);

  const std::vector<std::pair<std::string, Module*>>& children() const {
    return children_;
  }

 protected:
  void register_parameter(std::string name, ag::Var& param);
  void register_buffer(std::string name, Tensor& buffer);
  void register_module(std::string name, Module& child);

 private:
  void collect_named_parameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, ag::Var*>>& out);
  void collect_state(const std::string& prefix,
                     std::map<std::string, Tensor>& out) const;
  void load_state(const std::string& prefix,
                  const std::map<std::string, Tensor>& state);

  std::vector<std::pair<std::string, ag::Var*>> params_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// Sequential container owning its layers.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Adds a layer and returns a reference to it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  void add(std::unique_ptr<Module> layer);

  ag::Var forward(const ag::Var& input) override;
  const char* type_name() const override { return "Sequential"; }

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

// ---------------------------------------------------------------------------
// Stateless functional modules
// ---------------------------------------------------------------------------

class ReLU : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::relu(x); }
  const char* type_name() const override { return "ReLU"; }
};

class HardSwish : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::hardswish(x); }
  const char* type_name() const override { return "HardSwish"; }
};

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(Pool2dSpec spec) : spec_(spec) {}
  ag::Var forward(const ag::Var& x) override { return ag::maxpool2d(x, spec_); }
  const char* type_name() const override { return "MaxPool2d"; }

 private:
  Pool2dSpec spec_;
};

class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(Pool2dSpec spec) : spec_(spec) {}
  ag::Var forward(const ag::Var& x) override { return ag::avgpool2d(x, spec_); }
  const char* type_name() const override { return "AvgPool2d"; }

 private:
  Pool2dSpec spec_;
};

class GlobalAvgPool : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::global_avgpool(x); }
  const char* type_name() const override { return "GlobalAvgPool"; }
};

class Flatten : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::flatten2d(x); }
  const char* type_name() const override { return "Flatten"; }
};

}  // namespace bd::nn
