#include "nn/module.h"

#include <stdexcept>

namespace bd::nn {

void Module::register_parameter(std::string name, ag::Var& param) {
  params_.emplace_back(std::move(name), &param);
}

void Module::register_buffer(std::string name, Tensor& buffer) {
  buffers_.emplace_back(std::move(name), &buffer);
}

void Module::register_module(std::string name, Module& child) {
  children_.emplace_back(std::move(name), &child);
}

std::vector<ag::Var*> Module::parameters() {
  std::vector<ag::Var*> out;
  for (const auto& [name, var] : named_parameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, ag::Var*>> Module::named_parameters() {
  std::vector<std::pair<std::string, ag::Var*>> out;
  collect_named_parameters("", out);
  return out;
}

void Module::collect_named_parameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, ag::Var*>>& out) {
  for (auto& [name, var] : params_) {
    out.emplace_back(prefix + name, var);
  }
  for (auto& [name, child] : children_) {
    child->collect_named_parameters(prefix + name + ".", out);
  }
}

std::map<std::string, Tensor> Module::state_dict() const {
  std::map<std::string, Tensor> out;
  collect_state("", out);
  return out;
}

void Module::collect_state(const std::string& prefix,
                           std::map<std::string, Tensor>& out) const {
  for (const auto& [name, var] : params_) {
    out[prefix + name] = var->value().clone();
  }
  for (const auto& [name, buf] : buffers_) {
    out[prefix + name] = buf->clone();
  }
  for (const auto& [name, child] : children_) {
    child->collect_state(prefix + name + ".", out);
  }
}

void Module::load_state_dict(const std::map<std::string, Tensor>& state) {
  load_state("", state);
}

void Module::load_state(const std::string& prefix,
                        const std::map<std::string, Tensor>& state) {
  auto fetch = [&state](const std::string& key) -> const Tensor& {
    const auto it = state.find(key);
    if (it == state.end()) {
      throw std::runtime_error("load_state_dict: missing key '" + key + "'");
    }
    return it->second;
  };
  for (auto& [name, var] : params_) {
    const Tensor& src = fetch(prefix + name);
    if (src.shape() != var->value().shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for '" +
                               prefix + name + "'");
    }
    var->mutable_value() = src.clone();
  }
  for (auto& [name, buf] : buffers_) {
    const Tensor& src = fetch(prefix + name);
    if (src.shape() != buf->shape()) {
      throw std::runtime_error("load_state_dict: shape mismatch for '" +
                               prefix + name + "'");
    }
    *buf = src.clone();
  }
  for (auto& [name, child] : children_) {
    child->load_state(prefix + name + ".", state);
  }
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::zero_grad() {
  for (auto* p : parameters()) p->zero_grad();
}

std::int64_t Module::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& [name, var] : params_) total += var->value().numel();
  for (const auto& [name, child] : children_) {
    total += child->parameter_count();
  }
  return total;
}

void Module::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& [name, child] : children_) child->visit(fn);
}

void Sequential::add(std::unique_ptr<Module> layer) {
  register_module("layer" + std::to_string(layers_.size()), *layer);
  layers_.push_back(std::move(layer));
}

ag::Var Sequential::forward(const ag::Var& input) {
  ag::Var x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

}  // namespace bd::nn
