#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "robust/crc32.h"
#include "robust/fault_injector.h"
#include "tensor/serialize.h"

namespace bd::nn {

namespace {

// v1: magic + count + entries (no version, no CRC). Still readable.
constexpr std::uint32_t kMagicV1 = 0x42444350;  // "BDCP"
// v2: magic + version + count + entries + CRC-32, written atomically.
constexpr std::uint32_t kMagicV2 = 0x32434442;  // "BDC2" on disk
constexpr std::uint32_t kFormatVersion = 2;
// Sanity bound on the on-disk entry count: no model here has more than a
// few hundred tensors, so anything near this is header corruption — and
// must not drive a multi-million-iteration read loop.
constexpr std::uint32_t kMaxEntries = 1u << 20;

void write_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > (1u << 20)) {
    throw std::runtime_error("bad string length");
  }
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("truncated string");
  return s;
}

std::uint32_t read_u32(const std::string& buf, std::size_t offset) {
  std::uint32_t v = 0;
  std::memcpy(&v, buf.data() + offset, sizeof(v));
  return v;
}

[[noreturn]] void fail(const std::string& path, const std::string& detail) {
  throw std::runtime_error("load_state: '" + path + "': " + detail);
}

/// Flushes `path` (a file, or a directory when `directory` is true) to
/// stable storage. POSIX-only; a no-op elsewhere. fsync failures on the
/// data file are fatal — returning success for a checkpoint the kernel may
/// still lose would defeat the atomic-commit protocol.
void fsync_path(const std::string& path, bool directory) {
#if defined(__unix__) || defined(__APPLE__)
  int flags = O_RDONLY;
#if defined(O_DIRECTORY)
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (directory) return;  // some filesystems refuse opening directories
    throw std::runtime_error("save_checkpoint: cannot open '" + path +
                             "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory) {
    throw std::runtime_error("save_checkpoint: fsync failed on '" + path +
                             "'");
  }
#else
  (void)path;
  (void)directory;
#endif
}

struct ParsedCheckpoint {
  std::uint32_t version = 0;
  bool crc_verified = false;
  std::map<std::string, Tensor> state;
  std::vector<CheckpointEntryInfo> entries;
  std::uint32_t content_crc = 0;
};

/// Parses and fully validates the checkpoint at `path`. Every error names
/// the path, the entry index (and name, once known), and the byte offset
/// at which the read failed.
ParsedCheckpoint parse_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_state: cannot open '" + path + "'");
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();

  if (buf.size() < 2 * sizeof(std::uint32_t)) {
    fail(path, "only " + std::to_string(buf.size()) +
                   " bytes; not a checkpoint file");
  }

  ParsedCheckpoint parsed;
  const std::uint32_t magic = read_u32(buf, 0);
  std::size_t entries_begin = 0;
  std::size_t entries_end = 0;
  std::uint32_t count = 0;

  if (magic == kMagicV1) {
    parsed.version = 1;
    count = read_u32(buf, 4);
    entries_begin = 8;
    entries_end = buf.size();
  } else if (magic == kMagicV2) {
    // Layout: magic | version | count | entries | crc. Verify the CRC over
    // everything between the magic and the CRC before trusting any of it.
    if (buf.size() < 4 * sizeof(std::uint32_t)) {
      fail(path, "v2 header truncated at " + std::to_string(buf.size()) +
                     " bytes");
    }
    const std::size_t crc_offset = buf.size() - sizeof(std::uint32_t);
    const std::uint32_t stored_crc = read_u32(buf, crc_offset);
    const std::uint32_t actual_crc =
        robust::crc32(buf.data() + sizeof(std::uint32_t),
                      crc_offset - sizeof(std::uint32_t));
    if (stored_crc != actual_crc) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "CRC mismatch (stored 0x%08x, computed 0x%08x over %zu "
                    "bytes)",
                    stored_crc, actual_crc, crc_offset - sizeof(std::uint32_t));
      fail(path, detail);
    }
    parsed.crc_verified = true;
    parsed.version = read_u32(buf, 4);
    if (parsed.version != kFormatVersion) {
      fail(path, "unsupported format version " +
                     std::to_string(parsed.version));
    }
    count = read_u32(buf, 8);
    entries_begin = 12;
    entries_end = crc_offset;
  } else {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "bad magic 0x%08x", magic);
    fail(path, detail);
  }

  if (count > kMaxEntries) {
    fail(path, "implausible entry count " + std::to_string(count) +
                   " (limit " + std::to_string(kMaxEntries) +
                   "); header is corrupt");
  }

  parsed.content_crc = robust::crc32(buf.data() + entries_begin,
                                     entries_end - entries_begin);

  std::istringstream stream(buf);
  stream.seekg(static_cast<std::streamoff>(entries_begin));
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto entry_offset = static_cast<std::size_t>(stream.tellg());
    const std::string entry_tag =
        "entry " + std::to_string(i) + "/" + std::to_string(count);
    std::string name;
    try {
      name = read_string(stream);
    } catch (const std::exception& e) {
      fail(path, entry_tag + " at offset " + std::to_string(entry_offset) +
                     ": " + e.what());
    }
    const auto tensor_offset = static_cast<std::size_t>(stream.tellg());
    try {
      parsed.state[name] = read_tensor(stream);
    } catch (const std::exception& e) {
      fail(path, entry_tag + " ('" + name + "') at offset " +
                     std::to_string(tensor_offset) + ": " + e.what());
    }
    const Tensor& t = parsed.state[name];
    parsed.entries.push_back({name, t.shape(), t.numel()});
  }

  const auto end_offset = static_cast<std::size_t>(stream.tellg());
  if (end_offset != entries_end) {
    fail(path, std::to_string(entries_end - end_offset) +
                   " trailing bytes after entry " + std::to_string(count) +
                   " (offset " + std::to_string(end_offset) + ")");
  }
  return parsed;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  auto& faults = robust::FaultInjector::instance();
  faults.fire_io("save_checkpoint open '" + path + "'");

  // Serialize the full payload in memory first so the CRC covers exactly
  // the bytes that land on disk.
  std::ostringstream payload(std::ios::binary);
  const auto state = module.state_dict();
  const std::uint32_t version = kFormatVersion;
  payload.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto count = static_cast<std::uint32_t>(state.size());
  payload.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : state) {
    write_string(payload, name);
    write_tensor(payload, tensor);
  }
  const std::string body = payload.str();
  const std::uint32_t crc = robust::crc32(body.data(), body.size());

  // Durable write: <path>.tmp + flush + fsync + atomic rename + directory
  // fsync, so `path` either keeps its previous content or holds the
  // complete new checkpoint even across a power loss mid-commit.
  const std::string tmp = path + ".tmp";
  try {
    // bdlint:allow(no-naked-ofstream): this IS the atomic writer — the
    // tmp file below is fsync'd and renamed over the target.
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("save_checkpoint: cannot open '" + tmp + "'");
    }
    out.write(reinterpret_cast<const char*>(&kMagicV2), sizeof(kMagicV2));
    if (faults.fire(robust::FaultKind::kTornWrite)) {
      // Simulated kill mid-write: half the payload reaches the tmp file,
      // which stays on disk as real crash debris would. The target path is
      // untouched — the commit rename below is never reached.
      out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
      out.flush();
      out.close();
      throw robust::SimulatedCrash("torn write of '" + tmp +
                                   "' (BDPROTO_FAULTS torn_write@n)");
    }
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.flush();
    if (!out) {
      throw std::runtime_error("save_checkpoint: write failure on '" + tmp +
                               "'");
    }
    out.close();
    fsync_path(tmp, false);
    faults.fire_io("save_checkpoint commit '" + path + "'");
  } catch (const robust::SimulatedCrash&) {
    throw;  // crash semantics: leave the torn tmp file in place
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_checkpoint: cannot rename '" + tmp +
                             "' to '" + path + "': " + ec.message());
  }
  // Persist the rename itself: fsync the containing directory so the new
  // directory entry survives a crash after we return.
  const auto parent = std::filesystem::path(path).parent_path();
  fsync_path(parent.empty() ? "." : parent.string(), true);
}

std::map<std::string, Tensor> load_state(const std::string& path) {
  return parse_checkpoint(path).state;
}

void load_checkpoint(Module& module, const std::string& path) {
  module.load_state_dict(load_state(path));
}

CheckpointInfo inspect_checkpoint(const std::string& path) {
  ParsedCheckpoint parsed = parse_checkpoint(path);
  CheckpointInfo info;
  info.version = parsed.version;
  info.crc_verified = parsed.crc_verified;
  info.entries = std::move(parsed.entries);
  info.content_crc = parsed.content_crc;
  for (const auto& e : info.entries) info.total_elements += e.numel;
  return info;
}

}  // namespace bd::nn
