#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.h"

namespace bd::nn {

namespace {
constexpr std::uint32_t kMagic = 0x42444350;  // "BDCP"

void write_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > (1u << 20)) {
    throw std::runtime_error("checkpoint: bad string length");
  }
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("checkpoint: truncated string");
  return s;
}
}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_checkpoint: cannot open '" + path + "'");
  }
  const auto state = module.state_dict();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto count = static_cast<std::uint32_t>(state.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : state) {
    write_string(out, name);
    write_tensor(out, tensor);
  }
  if (!out) {
    throw std::runtime_error("save_checkpoint: write failure on '" + path +
                             "'");
  }
}

std::map<std::string, Tensor> load_state(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_state: cannot open '" + path + "'");
  }
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_state: '" + path +
                             "' is not a checkpoint file");
  }
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("load_state: truncated header");

  std::map<std::string, Tensor> state;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    state[std::move(name)] = read_tensor(in);
  }
  return state;
}

void load_checkpoint(Module& module, const std::string& path) {
  module.load_state_dict(load_state(path));
}

}  // namespace bd::nn
