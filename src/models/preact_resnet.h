// Pre-activation ResNet (He et al. 2016 style), the CIFAR-scale stand-in
// for the paper's PreactResNet-18 (see DESIGN.md substitutions).
//
// Topology: stem conv -> 3 stages of pre-activation residual blocks with
// widths {w, 2w, 4w} (stride 2 entering stages 2 and 3) -> BN -> ReLU ->
// global average pool -> linear head.
#pragma once

#include <memory>

#include "models/classifier.h"
#include "nn/layers.h"

namespace bd::models {

struct PreActResNetConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t base_width = 16;
  std::int64_t blocks_per_stage = 2;
};

class PreActBlock : public nn::Module {
 public:
  PreActBlock(std::int64_t in_channels, std::int64_t out_channels,
              std::int64_t stride, Rng& rng);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "PreActBlock"; }

 private:
  nn::BatchNorm2d bn1_;
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn2_;
  nn::Conv2d conv2_;
  std::unique_ptr<nn::Conv2d> shortcut_;  // 1x1 when shape changes
};

class PreActResNet : public Classifier {
 public:
  PreActResNet(const PreActResNetConfig& config, Rng& rng);

  StagedOutput forward_with_features(const ag::Var& x) override;
  const char* type_name() const override { return "PreActResNet"; }
  std::int64_t num_classes() const override { return config_.num_classes; }

 private:
  PreActResNetConfig config_;
  nn::Conv2d stem_;
  nn::Sequential stage1_, stage2_, stage3_;
  nn::BatchNorm2d head_bn_;
  nn::Linear head_;
};

}  // namespace bd::models
