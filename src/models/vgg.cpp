#include "models/vgg.h"

namespace bd::models {

namespace {
void add_stage(nn::Sequential& stage, std::int64_t in_ch, std::int64_t out_ch,
               std::int64_t convs, Rng& rng) {
  std::int64_t ch = in_ch;
  for (std::int64_t i = 0; i < convs; ++i) {
    stage.emplace<nn::Conv2d>(ch, out_ch, 3, 1, 1, /*bias=*/false, rng);
    stage.emplace<nn::BatchNorm2d>(out_ch);
    stage.emplace<nn::ReLU>();
    ch = out_ch;
  }
  stage.emplace<nn::MaxPool2d>(Pool2dSpec{2, 2, 0});
}
}  // namespace

VggBn::VggBn(const VggBnConfig& config, Rng& rng)
    : config_(config),
      head_(config.base_width * 4, config.num_classes, rng) {
  const std::int64_t w = config.base_width;
  add_stage(stage1_, config.in_channels, w, config.convs_per_stage, rng);
  add_stage(stage2_, w, 2 * w, config.convs_per_stage, rng);
  add_stage(stage3_, 2 * w, 4 * w, config.convs_per_stage, rng);
  register_module("stage1", stage1_);
  register_module("stage2", stage2_);
  register_module("stage3", stage3_);
  register_module("head", head_);
}

Classifier::StagedOutput VggBn::forward_with_features(const ag::Var& x) {
  StagedOutput out;
  ag::Var h = stage1_.forward(x);
  out.stage_features.push_back(h);
  h = stage2_.forward(h);
  out.stage_features.push_back(h);
  h = stage3_.forward(h);
  out.stage_features.push_back(h);
  h = ag::global_avgpool(h);
  out.logits = head_.forward(h);
  return out;
}

}  // namespace bd::models
