#include "models/mobilenet.h"

namespace bd::models {

MobileNetV3Small::MobileNetV3Small(const MobileNetV3Config& config, Rng& rng)
    : config_(config),
      stem_(config.in_channels, config.base_width, 3, 1, 1, /*bias=*/false,
            rng),
      stem_bn_(config.base_width),
      head_(config.base_width * 3, config.num_classes, rng) {
  const std::int64_t w = config.base_width;
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  // Early blocks use ReLU (as in MobileNetV3), later blocks hard-swish.
  stage1_.emplace<MBConv>(MBConvConfig{w, w, 2, 1, true, false}, rng);
  stage2_.emplace<MBConv>(MBConvConfig{w, 2 * w, 3, 2, true, false}, rng);
  stage2_.emplace<MBConv>(MBConvConfig{2 * w, 2 * w, 3, 1, true, true}, rng);
  stage3_.emplace<MBConv>(MBConvConfig{2 * w, 3 * w, 4, 2, true, true}, rng);
  stage3_.emplace<MBConv>(MBConvConfig{3 * w, 3 * w, 4, 1, true, true}, rng);

  register_module("stage1", stage1_);
  register_module("stage2", stage2_);
  register_module("stage3", stage3_);
  register_module("head", head_);
}

Classifier::StagedOutput MobileNetV3Small::forward_with_features(
    const ag::Var& x) {
  StagedOutput out;
  ag::Var h = ag::hardswish(stem_bn_.forward(stem_.forward(x)));
  h = stage1_.forward(h);
  out.stage_features.push_back(h);
  h = stage2_.forward(h);
  out.stage_features.push_back(h);
  h = stage3_.forward(h);
  out.stage_features.push_back(h);
  h = ag::global_avgpool(h);
  out.logits = head_.forward(h);
  return out;
}

}  // namespace bd::models
