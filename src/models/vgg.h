// VGG-style plain convolutional network with batch normalization, the
// stand-in for the paper's VGG-19+BN (see DESIGN.md substitutions).
//
// Conv(3x3)+BN+ReLU stacks separated by max-pooling; widths {w, 2w, 4w}.
#pragma once

#include "models/classifier.h"
#include "nn/layers.h"

namespace bd::models {

struct VggBnConfig {
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t base_width = 16;
  /// Convs per stage (2 -> 6 conv layers over 3 stages).
  std::int64_t convs_per_stage = 2;
};

class VggBn : public Classifier {
 public:
  VggBn(const VggBnConfig& config, Rng& rng);

  StagedOutput forward_with_features(const ag::Var& x) override;
  const char* type_name() const override { return "VggBn"; }
  std::int64_t num_classes() const override { return config_.num_classes; }

 private:
  VggBnConfig config_;
  nn::Sequential stage1_, stage2_, stage3_;
  nn::Linear head_;
};

}  // namespace bd::models
