#include "models/efficientnet.h"

namespace bd::models {

EfficientNetLite::EfficientNetLite(const EfficientNetConfig& config, Rng& rng)
    : config_(config),
      stem_(config.in_channels, config.base_width, 3, 1, 1, /*bias=*/false,
            rng),
      stem_bn_(config.base_width),
      head_conv_(config.base_width * 4, config.base_width * 4, 1, 1, 0,
                 /*bias=*/false, rng),
      head_bn_(config.base_width * 4),
      head_(config.base_width * 4, config.num_classes, rng) {
  const std::int64_t w = config.base_width;
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  // Stage 1: no expansion, keeps width.
  stage1_.emplace<MBConv>(MBConvConfig{w, w, 1, 1, true, true}, rng);
  // Stage 2: expand x4, double width, downsample.
  stage2_.emplace<MBConv>(MBConvConfig{w, 2 * w, 4, 2, true, true}, rng);
  stage2_.emplace<MBConv>(MBConvConfig{2 * w, 2 * w, 4, 1, true, true}, rng);
  // Stage 3: expand x4, double width, downsample.
  stage3_.emplace<MBConv>(MBConvConfig{2 * w, 4 * w, 4, 2, true, true}, rng);
  stage3_.emplace<MBConv>(MBConvConfig{4 * w, 4 * w, 4, 1, true, true}, rng);

  register_module("stage1", stage1_);
  register_module("stage2", stage2_);
  register_module("stage3", stage3_);
  register_module("head_conv", head_conv_);
  register_module("head_bn", head_bn_);
  register_module("head", head_);
}

Classifier::StagedOutput EfficientNetLite::forward_with_features(
    const ag::Var& x) {
  StagedOutput out;
  ag::Var h = ag::hardswish(stem_bn_.forward(stem_.forward(x)));
  h = stage1_.forward(h);
  out.stage_features.push_back(h);
  h = stage2_.forward(h);
  out.stage_features.push_back(h);
  h = stage3_.forward(h);
  out.stage_features.push_back(h);
  h = ag::hardswish(head_bn_.forward(head_conv_.forward(h)));
  h = ag::global_avgpool(h);
  out.logits = head_.forward(h);
  return out;
}

}  // namespace bd::models
