#include "models/preact_resnet.h"

namespace bd::models {

PreActBlock::PreActBlock(std::int64_t in_channels, std::int64_t out_channels,
                         std::int64_t stride, Rng& rng)
    : bn1_(in_channels),
      conv1_(in_channels, out_channels, /*kernel=*/3, stride, /*padding=*/1,
             /*bias=*/false, rng),
      bn2_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, /*bias=*/false, rng) {
  register_module("bn1", bn1_);
  register_module("conv1", conv1_);
  register_module("bn2", bn2_);
  register_module("conv2", conv2_);
  if (stride != 1 || in_channels != out_channels) {
    shortcut_ = std::make_unique<nn::Conv2d>(in_channels, out_channels, 1,
                                             stride, 0, /*bias=*/false, rng);
    register_module("shortcut", *shortcut_);
  }
}

ag::Var PreActBlock::forward(const ag::Var& x) {
  ag::Var pre = ag::relu(bn1_.forward(x));
  // The shortcut branches off the pre-activation when it exists (the
  // standard pre-act ResNet wiring).
  ag::Var identity = shortcut_ ? shortcut_->forward(pre) : x;
  ag::Var out = conv1_.forward(pre);
  out = conv2_.forward(ag::relu(bn2_.forward(out)));
  return ag::add(out, identity);
}

PreActResNet::PreActResNet(const PreActResNetConfig& config, Rng& rng)
    : config_(config),
      stem_(config.in_channels, config.base_width, 3, 1, 1, /*bias=*/false,
            rng),
      head_bn_(config.base_width * 4),
      head_(config.base_width * 4, config.num_classes, rng) {
  register_module("stem", stem_);

  const std::int64_t w = config.base_width;
  auto build_stage = [&](nn::Sequential& stage, std::int64_t in_ch,
                         std::int64_t out_ch, std::int64_t first_stride) {
    stage.emplace<PreActBlock>(in_ch, out_ch, first_stride, rng);
    for (std::int64_t b = 1; b < config.blocks_per_stage; ++b) {
      stage.emplace<PreActBlock>(out_ch, out_ch, 1, rng);
    }
  };
  build_stage(stage1_, w, w, 1);
  build_stage(stage2_, w, 2 * w, 2);
  build_stage(stage3_, 2 * w, 4 * w, 2);
  register_module("stage1", stage1_);
  register_module("stage2", stage2_);
  register_module("stage3", stage3_);
  register_module("head_bn", head_bn_);
  register_module("head", head_);
}

Classifier::StagedOutput PreActResNet::forward_with_features(
    const ag::Var& x) {
  StagedOutput out;
  ag::Var h = stem_.forward(x);
  h = stage1_.forward(h);
  out.stage_features.push_back(h);
  h = stage2_.forward(h);
  out.stage_features.push_back(h);
  h = stage3_.forward(h);
  out.stage_features.push_back(h);
  h = ag::relu(head_bn_.forward(h));
  h = ag::global_avgpool(h);
  out.logits = head_.forward(h);
  return out;
}

}  // namespace bd::models
