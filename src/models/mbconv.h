// Mobile inverted-bottleneck block (MBConv) with squeeze-excite, shared by
// the EfficientNet-lite and MobileNetV3 stand-in models: 1x1 expand ->
// depthwise 3x3 -> SE -> 1x1 project, residual when shapes match.
#pragma once

#include <memory>

#include "nn/layers.h"

namespace bd::models {

struct MBConvConfig {
  std::int64_t in_channels;
  std::int64_t out_channels;
  std::int64_t expand_ratio = 4;  // 1 disables the expand conv
  std::int64_t stride = 1;
  bool use_se = true;
  bool use_hardswish = true;  // false -> ReLU
};

class MBConv : public nn::Module {
 public:
  MBConv(const MBConvConfig& config, Rng& rng);

  ag::Var forward(const ag::Var& x) override;
  const char* type_name() const override { return "MBConv"; }

 private:
  ag::Var activate(const ag::Var& x) const;

  MBConvConfig config_;
  std::unique_ptr<nn::Conv2d> expand_;
  std::unique_ptr<nn::BatchNorm2d> expand_bn_;
  nn::DepthwiseConv2d dw_;
  nn::BatchNorm2d dw_bn_;
  std::unique_ptr<nn::SEBlock> se_;
  nn::Conv2d project_;
  nn::BatchNorm2d project_bn_;
  bool residual_;
};

}  // namespace bd::models
