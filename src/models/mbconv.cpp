#include "models/mbconv.h"

namespace bd::models {

MBConv::MBConv(const MBConvConfig& config, Rng& rng)
    : config_(config),
      dw_(config.in_channels * config.expand_ratio, 3, config.stride, 1,
          /*bias=*/false, rng),
      dw_bn_(config.in_channels * config.expand_ratio),
      project_(config.in_channels * config.expand_ratio, config.out_channels,
               1, 1, 0, /*bias=*/false, rng),
      project_bn_(config.out_channels),
      residual_(config.stride == 1 &&
                config.in_channels == config.out_channels) {
  const std::int64_t mid = config.in_channels * config.expand_ratio;
  if (config.expand_ratio != 1) {
    expand_ = std::make_unique<nn::Conv2d>(config.in_channels, mid, 1, 1, 0,
                                           /*bias=*/false, rng);
    expand_bn_ = std::make_unique<nn::BatchNorm2d>(mid);
    register_module("expand", *expand_);
    register_module("expand_bn", *expand_bn_);
  }
  register_module("dw", dw_);
  register_module("dw_bn", dw_bn_);
  if (config.use_se) {
    se_ = std::make_unique<nn::SEBlock>(mid, /*reduction=*/4, rng);
    register_module("se", *se_);
  }
  register_module("project", project_);
  register_module("project_bn", project_bn_);
}

ag::Var MBConv::activate(const ag::Var& x) const {
  return config_.use_hardswish ? ag::hardswish(x) : ag::relu(x);
}

ag::Var MBConv::forward(const ag::Var& x) {
  ag::Var h = x;
  if (expand_) {
    h = activate(expand_bn_->forward(expand_->forward(h)));
  }
  h = activate(dw_bn_.forward(dw_.forward(h)));
  if (se_) h = se_->forward(h);
  h = project_bn_.forward(project_.forward(h));  // linear bottleneck
  if (residual_) h = ag::add(h, x);
  return h;
}

}  // namespace bd::models
