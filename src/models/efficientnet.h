// EfficientNet-lite stand-in (see DESIGN.md substitutions): stem conv then
// a ladder of MBConv blocks with squeeze-excite and hard-swish, ending in a
// 1x1 head conv. Keeps the block structure (depthwise + SE) that makes
// pruning-based defenses harder on this family (paper Fig. 2).
#pragma once

#include "models/classifier.h"
#include "models/mbconv.h"

namespace bd::models {

struct EfficientNetConfig {
  std::int64_t num_classes = 43;
  std::int64_t in_channels = 3;
  std::int64_t base_width = 16;
};

class EfficientNetLite : public Classifier {
 public:
  EfficientNetLite(const EfficientNetConfig& config, Rng& rng);

  StagedOutput forward_with_features(const ag::Var& x) override;
  const char* type_name() const override { return "EfficientNetLite"; }
  std::int64_t num_classes() const override { return config_.num_classes; }

 private:
  EfficientNetConfig config_;
  nn::Conv2d stem_;
  nn::BatchNorm2d stem_bn_;
  nn::Sequential stage1_, stage2_, stage3_;
  nn::Conv2d head_conv_;
  nn::BatchNorm2d head_bn_;
  nn::Linear head_;
};

}  // namespace bd::models
