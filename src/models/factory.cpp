#include "models/factory.h"

#include <stdexcept>

#include "models/efficientnet.h"
#include "models/mobilenet.h"
#include "models/preact_resnet.h"
#include "models/vgg.h"

namespace bd::models {

std::unique_ptr<Classifier> make_model(const ModelSpec& spec, Rng& rng) {
  if (spec.arch == "preactresnet") {
    PreActResNetConfig c;
    c.num_classes = spec.num_classes;
    c.in_channels = spec.in_channels;
    c.base_width = spec.base_width;
    return std::make_unique<PreActResNet>(c, rng);
  }
  if (spec.arch == "vgg") {
    VggBnConfig c;
    c.num_classes = spec.num_classes;
    c.in_channels = spec.in_channels;
    c.base_width = spec.base_width;
    return std::make_unique<VggBn>(c, rng);
  }
  if (spec.arch == "efficientnet") {
    EfficientNetConfig c;
    c.num_classes = spec.num_classes;
    c.in_channels = spec.in_channels;
    c.base_width = spec.base_width;
    return std::make_unique<EfficientNetLite>(c, rng);
  }
  if (spec.arch == "mobilenet") {
    MobileNetV3Config c;
    c.num_classes = spec.num_classes;
    c.in_channels = spec.in_channels;
    c.base_width = spec.base_width;
    return std::make_unique<MobileNetV3Small>(c, rng);
  }
  throw std::invalid_argument("make_model: unknown architecture '" +
                              spec.arch + "'");
}

std::vector<std::string> known_architectures() {
  return {"preactresnet", "vgg", "efficientnet", "mobilenet"};
}

}  // namespace bd::models
