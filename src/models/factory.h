// Model factory keyed by the architecture names the bench harness uses:
// "preactresnet", "vgg", "efficientnet", "mobilenet".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/classifier.h"
#include "util/rng.h"

namespace bd::models {

struct ModelSpec {
  std::string arch;  // preactresnet | vgg | efficientnet | mobilenet
  std::int64_t num_classes = 10;
  std::int64_t in_channels = 3;
  std::int64_t base_width = 16;
};

std::unique_ptr<Classifier> make_model(const ModelSpec& spec, Rng& rng);

/// All architecture names make_model accepts.
std::vector<std::string> known_architectures();

}  // namespace bd::models
