// Classifier interface.
//
// All evaluation models expose, besides plain logits, their per-stage
// feature maps: the NAD defense distills spatial attention at stage
// boundaries, and tests use the features to probe where backdoor signal
// concentrates.
#pragma once

#include <vector>

#include "nn/module.h"

namespace bd::models {

class Classifier : public nn::Module {
 public:
  struct StagedOutput {
    ag::Var logits;
    /// Feature maps after each major stage, shallow to deep.
    std::vector<ag::Var> stage_features;
  };

  virtual StagedOutput forward_with_features(const ag::Var& x) = 0;

  ag::Var forward(const ag::Var& x) override {
    return forward_with_features(x).logits;
  }

  virtual std::int64_t num_classes() const = 0;
};

}  // namespace bd::models
