// MobileNetV3 stand-in (see DESIGN.md substitutions): stem conv with
// hard-swish, MBConv blocks mixing ReLU and hard-swish with SE, then a
// pooled linear head - the architecture axis where the paper's Fig. 2
// reports the highest defense variance.
#pragma once

#include "models/classifier.h"
#include "models/mbconv.h"

namespace bd::models {

struct MobileNetV3Config {
  std::int64_t num_classes = 43;
  std::int64_t in_channels = 3;
  std::int64_t base_width = 16;
};

class MobileNetV3Small : public Classifier {
 public:
  MobileNetV3Small(const MobileNetV3Config& config, Rng& rng);

  StagedOutput forward_with_features(const ag::Var& x) override;
  const char* type_name() const override { return "MobileNetV3Small"; }
  std::int64_t num_classes() const override { return config_.num_classes; }

 private:
  MobileNetV3Config config_;
  nn::Conv2d stem_;
  nn::BatchNorm2d stem_bn_;
  nn::Sequential stage1_, stage2_, stage3_;
  nn::Linear head_;
};

}  // namespace bd::models
