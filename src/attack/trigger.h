// Backdoor trigger appliers (Sec. V-A of the paper).
//
// Four attacks spanning the trigger characteristics BackdoorBench groups:
//   BadNets  - localized patch trigger (Gu et al. 2019)
//   Blended  - global alpha-blended pattern (Chen et al. 2017)
//   LF       - additive low-frequency perturbation (Zeng et al. 2021)
//   BPP      - colour-depth quantization + dithering (Wang et al. 2022)
//
// Each applier is a pure function image -> triggered image. The defender's
// assumed trigger-synthesis capability (Sec. III-C) is modelled by handing
// the defense the same applier the attacker used.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace bd::attack {

class TriggerApplier {
 public:
  virtual ~TriggerApplier() = default;

  /// Returns a triggered copy of `image` ((C,H,W), values in [0,1]).
  virtual Tensor apply(const Tensor& image) const = 0;

  virtual std::string name() const = 0;
};

/// BadNets: solid checkerboard patch in the bottom-right corner.
class BadNetsTrigger : public TriggerApplier {
 public:
  /// `patch_fraction` of the image side (default ~20%), at least 2 pixels.
  explicit BadNetsTrigger(double patch_fraction = 0.25);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "badnet"; }

 private:
  double patch_fraction_;
};

/// Blended: fixed pseudo-random pattern blended over the whole image.
class BlendedTrigger : public TriggerApplier {
 public:
  BlendedTrigger(const Shape& image_shape, float alpha = 0.3f,
                 std::uint64_t pattern_seed = 42);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "blended"; }
  float alpha() const { return alpha_; }

 private:
  Tensor pattern_;
  float alpha_;
};

/// LF: smooth low-frequency additive perturbation (bounded amplitude).
class LowFrequencyTrigger : public TriggerApplier {
 public:
  explicit LowFrequencyTrigger(float amplitude = 0.3f,
                               std::int64_t frequency = 1);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "lf"; }

 private:
  float amplitude_;
  std::int64_t frequency_;
};

/// BPP: colour-depth squeeze (quantization to `levels` per channel) with
/// ordered dithering; the quantized appearance is the trigger.
class BppTrigger : public TriggerApplier {
 public:
  explicit BppTrigger(std::int64_t levels = 4);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "bpp"; }

 private:
  std::int64_t levels_;
};

/// Sample-specific (dynamic) trigger, ISSBA-style in spirit: the patch
/// location and polarity are a deterministic function of the IMAGE CONTENT
/// (a perceptual hash of its coarse luminance), so every image carries a
/// different-looking trigger. The paper's threat model (Sec. III-B)
/// explicitly covers such input-dependent triggers; this applier lets the
/// defense be evaluated against one. Synthesis remains possible because
/// the function is deterministic per image.
class SampleSpecificTrigger : public TriggerApplier {
 public:
  explicit SampleSpecificTrigger(double patch_fraction = 0.25,
                                 std::uint64_t key = 0xD1DAC71C);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "dynamic"; }

  /// The (y, x, polarity) placement this image's content hashes to
  /// (exposed for tests).
  struct Placement {
    std::int64_t y, x;
    bool inverted;
  };
  Placement placement_for(const Tensor& image) const;

 private:
  double patch_fraction_;
  std::uint64_t key_;
};

/// Factory from the canonical attack names used by the bench harness:
/// badnet | blended | lf | bpp | dynamic.
std::unique_ptr<TriggerApplier> make_trigger(const std::string& attack_name,
                                             const Shape& image_shape);

}  // namespace bd::attack
