#include "attack/trigger.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bd::attack {

namespace {
constexpr float kPi = std::numbers::pi_v<float>;

float clamp01(float x) { return std::min(1.0f, std::max(0.0f, x)); }

void check_image(const Tensor& image) {
  if (image.dim() != 3) {
    throw std::invalid_argument("TriggerApplier: image must be (C,H,W)");
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// BadNets
// ---------------------------------------------------------------------------

BadNetsTrigger::BadNetsTrigger(double patch_fraction)
    : patch_fraction_(patch_fraction) {
  if (patch_fraction <= 0.0 || patch_fraction > 0.5) {
    throw std::invalid_argument("BadNetsTrigger: patch_fraction in (0, 0.5]");
  }
}

Tensor BadNetsTrigger::apply(const Tensor& image) const {
  check_image(image);
  Tensor out = image.clone();
  const std::int64_t c = image.size(0), h = image.size(1), w = image.size(2);
  const std::int64_t patch = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(static_cast<double>(std::min(h, w)) *
                                   patch_fraction_));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = h - patch; y < h; ++y) {
      for (std::int64_t x = w - patch; x < w; ++x) {
        // 2x2 checkerboard of white/black, the classic BadNets pattern.
        const bool white = ((x + y) % 2) == 0;
        out.data()[(ch * h + y) * w + x] = white ? 1.0f : 0.0f;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Blended
// ---------------------------------------------------------------------------

BlendedTrigger::BlendedTrigger(const Shape& image_shape, float alpha,
                               std::uint64_t pattern_seed)
    : alpha_(alpha) {
  if (image_shape.size() != 3) {
    throw std::invalid_argument("BlendedTrigger: shape must be (C,H,W)");
  }
  if (alpha <= 0.0f || alpha >= 1.0f) {
    throw std::invalid_argument("BlendedTrigger: alpha in (0,1)");
  }
  // Fixed pseudo-random pattern, the stand-in for the paper's blend image.
  pattern_ = Tensor(image_shape);
  Rng rng(pattern_seed);
  for (std::int64_t i = 0; i < pattern_.numel(); ++i) {
    pattern_[i] = static_cast<float>(rng.uniform());
  }
}

Tensor BlendedTrigger::apply(const Tensor& image) const {
  check_image(image);
  if (image.shape() != pattern_.shape()) {
    throw std::invalid_argument("BlendedTrigger: image shape mismatch");
  }
  Tensor out(image.shape());
  for (std::int64_t i = 0; i < image.numel(); ++i) {
    out[i] = clamp01((1.0f - alpha_) * image[i] + alpha_ * pattern_[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Low-frequency
// ---------------------------------------------------------------------------

LowFrequencyTrigger::LowFrequencyTrigger(float amplitude,
                                         std::int64_t frequency)
    : amplitude_(amplitude), frequency_(frequency) {
  if (amplitude <= 0.0f || amplitude > 0.5f) {
    throw std::invalid_argument("LowFrequencyTrigger: amplitude in (0, 0.5]");
  }
  if (frequency <= 0) {
    throw std::invalid_argument("LowFrequencyTrigger: frequency must be > 0");
  }
}

Tensor LowFrequencyTrigger::apply(const Tensor& image) const {
  check_image(image);
  Tensor out(image.shape());
  const std::int64_t c = image.size(0), h = image.size(1), w = image.size(2);
  const float f = static_cast<float>(frequency_);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    // Slight per-channel phase offset keeps the perturbation chromatic.
    const float phase = 0.7f * static_cast<float>(ch);
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const float u = static_cast<float>(x) / static_cast<float>(w);
        const float v = static_cast<float>(y) / static_cast<float>(h);
        const float wave = std::sin(2.0f * kPi * f * u + phase) *
                           std::cos(2.0f * kPi * f * v + phase);
        const std::int64_t idx = (ch * h + y) * w + x;
        out[idx] = clamp01(image[idx] + amplitude_ * wave);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// BPP
// ---------------------------------------------------------------------------

BppTrigger::BppTrigger(std::int64_t levels) : levels_(levels) {
  if (levels < 2 || levels > 128) {
    throw std::invalid_argument("BppTrigger: levels in [2, 128]");
  }
}

Tensor BppTrigger::apply(const Tensor& image) const {
  check_image(image);
  Tensor out(image.shape());
  const std::int64_t c = image.size(0), h = image.size(1), w = image.size(2);
  const float steps = static_cast<float>(levels_ - 1);
  // 2x2 ordered-dither (Bayer) matrix, scaled to one quantization step.
  const float bayer[2][2] = {{-0.25f, 0.25f}, {0.5f, 0.0f}};
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t idx = (ch * h + y) * w + x;
        const float dithered =
            image[idx] + bayer[y % 2][x % 2] / steps;
        out[idx] = clamp01(std::round(dithered * steps) / steps);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sample-specific (dynamic)
// ---------------------------------------------------------------------------

SampleSpecificTrigger::SampleSpecificTrigger(double patch_fraction,
                                             std::uint64_t key)
    : patch_fraction_(patch_fraction), key_(key) {
  if (patch_fraction <= 0.0 || patch_fraction > 0.5) {
    throw std::invalid_argument(
        "SampleSpecificTrigger: patch_fraction in (0, 0.5]");
  }
}

SampleSpecificTrigger::Placement SampleSpecificTrigger::placement_for(
    const Tensor& image) const {
  check_image(image);
  const std::int64_t c = image.size(0), h = image.size(1), w = image.size(2);
  const std::int64_t patch = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(static_cast<double>(std::min(h, w)) *
                                   patch_fraction_));

  // Perceptual hash: quantized mean luminance of the four image quadrants.
  // Coarse quantization keeps the hash stable under the trigger itself and
  // mild noise, so the mapping is a learnable function of image content.
  std::uint64_t state = key_;
  for (std::int64_t qy = 0; qy < 2; ++qy) {
    for (std::int64_t qx = 0; qx < 2; ++qx) {
      double mean = 0.0;
      std::int64_t count = 0;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        for (std::int64_t y = qy * h / 2; y < (qy + 1) * h / 2; ++y) {
          for (std::int64_t x = qx * w / 2; x < (qx + 1) * w / 2; ++x) {
            mean += image[(ch * h + y) * w + x];
            ++count;
          }
        }
      }
      const auto bucket =
          static_cast<std::uint64_t>(mean / static_cast<double>(count) * 16.0);
      state = state * 0x100000001B3ULL + bucket;
    }
  }
  const std::uint64_t hash = splitmix64(state);

  // Four corner anchors plus polarity, all content-dependent.
  const bool bottom = (hash & 1) != 0;
  const bool right = (hash & 2) != 0;
  Placement p;
  p.y = bottom ? h - patch : 0;
  p.x = right ? w - patch : 0;
  p.inverted = (hash & 4) != 0;
  return p;
}

Tensor SampleSpecificTrigger::apply(const Tensor& image) const {
  const Placement place = placement_for(image);
  const std::int64_t c = image.size(0), h = image.size(1), w = image.size(2);
  const std::int64_t patch = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(static_cast<double>(std::min(h, w)) *
                                   patch_fraction_));
  Tensor out = image.clone();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = place.y; y < place.y + patch; ++y) {
      for (std::int64_t x = place.x; x < place.x + patch; ++x) {
        const bool white = (((x + y) % 2) == 0) != place.inverted;
        out.data()[(ch * h + y) * w + x] = white ? 1.0f : 0.0f;
      }
    }
  }
  return out;
}

std::unique_ptr<TriggerApplier> make_trigger(const std::string& attack_name,
                                             const Shape& image_shape) {
  if (attack_name == "badnet") {
    return std::make_unique<BadNetsTrigger>();
  }
  if (attack_name == "blended") {
    return std::make_unique<BlendedTrigger>(image_shape);
  }
  if (attack_name == "lf") {
    return std::make_unique<LowFrequencyTrigger>();
  }
  if (attack_name == "bpp") {
    return std::make_unique<BppTrigger>();
  }
  if (attack_name == "dynamic") {
    return std::make_unique<SampleSpecificTrigger>();
  }
  throw std::invalid_argument("make_trigger: unknown attack '" + attack_name +
                              "'");
}

}  // namespace bd::attack
