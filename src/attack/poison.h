// Dataset poisoning (Sec. III-B threat model).
//
// All-to-one targeted attack: a `poison_ratio` fraction of training images
// receives the trigger and is relabelled to the target class. Helpers also
// build the triggered test sets used by the ASR and RA metrics.
#pragma once

#include "attack/trigger.h"
#include "data/dataset.h"

namespace bd::attack {

struct PoisonConfig {
  double poison_ratio = 0.10;  // paper: 10% poisoning
  std::int64_t target_class = 0;
};

/// Training set with `poison_ratio` of examples triggered + relabelled.
/// Only examples whose true label differs from the target are poisoned
/// (poisoning a target-class image is a no-op for an all-to-one attack).
data::ImageDataset poison_training_set(const data::ImageDataset& clean,
                                       const TriggerApplier& trigger,
                                       const PoisonConfig& config, Rng& rng);

/// Test set for ASR: trigger applied to every non-target-class image,
/// labelled with the target class.
data::ImageDataset make_asr_test_set(const data::ImageDataset& clean_test,
                                     const TriggerApplier& trigger,
                                     std::int64_t target_class);

/// Test set for RA: same triggered images, labelled with the TRUE labels.
data::ImageDataset make_ra_test_set(const data::ImageDataset& clean_test,
                                    const TriggerApplier& trigger,
                                    std::int64_t target_class);

// ---------------------------------------------------------------------------
// All-to-all variant (Zhao et al., discussed in the paper's related work).
// The paper's evaluation is all-to-one; this extension relabels triggered
// inputs to (y + 1) mod n instead of a fixed target.
// ---------------------------------------------------------------------------

/// Training set with `poison_ratio` of examples triggered and relabelled
/// to (y + 1) mod num_classes.
data::ImageDataset poison_training_set_all_to_all(
    const data::ImageDataset& clean, const TriggerApplier& trigger,
    double poison_ratio, Rng& rng);

/// ASR test set for the all-to-all attack: every test image triggered and
/// labelled (y + 1) mod n.
data::ImageDataset make_all_to_all_asr_test_set(
    const data::ImageDataset& clean_test, const TriggerApplier& trigger);

/// Defender-side synthesis (Sec. III-C assumption): the backdoor variant of
/// each clean defender image, labelled with its correct (true) label, which
/// is exactly the labelling the unlearning loss (Eq. 2) requires.
data::ImageDataset synthesize_backdoor_set(const data::ImageDataset& clean,
                                           const TriggerApplier& trigger);

}  // namespace bd::attack
