#include "attack/poison.h"

#include <numeric>
#include <stdexcept>

namespace bd::attack {

data::ImageDataset poison_training_set(const data::ImageDataset& clean,
                                       const TriggerApplier& trigger,
                                       const PoisonConfig& config, Rng& rng) {
  if (config.poison_ratio < 0.0 || config.poison_ratio >= 1.0) {
    throw std::invalid_argument("poison_training_set: ratio in [0,1)");
  }
  if (config.target_class < 0 ||
      config.target_class >= clean.num_classes()) {
    throw std::invalid_argument("poison_training_set: bad target class");
  }

  // Candidates: non-target-class examples.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean.label(i) != config.target_class) candidates.push_back(i);
  }
  rng.shuffle(candidates);
  const auto n_poison = static_cast<std::size_t>(
      static_cast<double>(clean.size()) * config.poison_ratio);
  if (n_poison > candidates.size()) {
    throw std::runtime_error(
        "poison_training_set: not enough non-target examples to poison");
  }

  std::vector<bool> poisoned(clean.size(), false);
  for (std::size_t k = 0; k < n_poison; ++k) poisoned[candidates[k]] = true;

  data::ImageDataset out(clean.image_shape(), clean.num_classes());
  out.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (poisoned[i]) {
      out.add(trigger.apply(clean.image(i)), config.target_class);
    } else {
      out.add(clean.image(i), clean.label(i));
    }
  }
  return out;
}

namespace {
data::ImageDataset triggered_test_set(const data::ImageDataset& clean_test,
                                      const TriggerApplier& trigger,
                                      std::int64_t target_class,
                                      bool use_target_labels) {
  data::ImageDataset out(clean_test.image_shape(), clean_test.num_classes());
  for (std::size_t i = 0; i < clean_test.size(); ++i) {
    if (clean_test.label(i) == target_class) continue;
    out.add(trigger.apply(clean_test.image(i)),
            use_target_labels ? target_class : clean_test.label(i));
  }
  if (out.empty()) {
    throw std::runtime_error("triggered_test_set: no non-target examples");
  }
  return out;
}
}  // namespace

data::ImageDataset make_asr_test_set(const data::ImageDataset& clean_test,
                                     const TriggerApplier& trigger,
                                     std::int64_t target_class) {
  return triggered_test_set(clean_test, trigger, target_class,
                            /*use_target_labels=*/true);
}

data::ImageDataset make_ra_test_set(const data::ImageDataset& clean_test,
                                    const TriggerApplier& trigger,
                                    std::int64_t target_class) {
  return triggered_test_set(clean_test, trigger, target_class,
                            /*use_target_labels=*/false);
}

data::ImageDataset poison_training_set_all_to_all(
    const data::ImageDataset& clean, const TriggerApplier& trigger,
    double poison_ratio, Rng& rng) {
  if (poison_ratio < 0.0 || poison_ratio >= 1.0) {
    throw std::invalid_argument(
        "poison_training_set_all_to_all: ratio in [0,1)");
  }
  std::vector<std::size_t> order(clean.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto n_poison = static_cast<std::size_t>(
      static_cast<double>(clean.size()) * poison_ratio);

  std::vector<bool> poisoned(clean.size(), false);
  for (std::size_t k = 0; k < n_poison; ++k) poisoned[order[k]] = true;

  const std::int64_t n = clean.num_classes();
  data::ImageDataset out(clean.image_shape(), n);
  out.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (poisoned[i]) {
      out.add(trigger.apply(clean.image(i)), (clean.label(i) + 1) % n);
    } else {
      out.add(clean.image(i), clean.label(i));
    }
  }
  return out;
}

data::ImageDataset make_all_to_all_asr_test_set(
    const data::ImageDataset& clean_test, const TriggerApplier& trigger) {
  const std::int64_t n = clean_test.num_classes();
  data::ImageDataset out(clean_test.image_shape(), n);
  out.reserve(clean_test.size());
  for (std::size_t i = 0; i < clean_test.size(); ++i) {
    out.add(trigger.apply(clean_test.image(i)),
            (clean_test.label(i) + 1) % n);
  }
  return out;
}

data::ImageDataset synthesize_backdoor_set(const data::ImageDataset& clean,
                                           const TriggerApplier& trigger) {
  data::ImageDataset out(clean.image_shape(), clean.num_classes());
  out.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    out.add(trigger.apply(clean.image(i)), clean.label(i));
  }
  return out;
}

}  // namespace bd::attack
