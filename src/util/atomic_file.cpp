#include "util/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bd {

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace bd
