// Atomic whole-file writes: temp file in the target's directory, flushed,
// then renamed over the destination. A reader (or a crash) never observes
// a half-written file — the same tmp+rename discipline checkpoint v2 uses,
// packaged for every exporter that dumps a report in one shot.
//
// This helper (plus the checkpoint writer and the append-only run journal
// in robust/) is the only sanctioned way to open an output file; the
// `no-naked-ofstream` bdlint rule enforces that outside util/ and robust/.
#pragma once

#include <string>

namespace bd {

/// Writes `content` to `path` atomically. Returns false on any I/O error;
/// the destination is left untouched and the temp file is removed.
bool write_file_atomic(const std::string& path, const std::string& content);

}  // namespace bd
