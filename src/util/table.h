// Fixed-column text table writer. The bench binaries use it to print the
// same rows the paper's tables report (attack / SPC / defense / ACC / ASR /
// RA), plus CSV output for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace bd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t row_count() const { return rows_.size(); }

  /// Aligned, pipe-separated table (markdown-compatible).
  std::string to_string() const;

  /// Comma-separated with header; commas in cells are replaced by ';'.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bd
