// Small statistics helpers used by the evaluation harness to aggregate
// per-trial metrics into the mean +/- std rows the paper reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bd {

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean_of(const std::vector<double>& v);
double stddev_of(const std::vector<double>& v);

/// Formats "12.34±5.67" in the paper's table style (percent-scale values).
std::string mean_std_string(const std::vector<double>& v, int precision = 2);

}  // namespace bd
