#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return draw % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace bd
