#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace bd {

namespace {

LogLevel parse_level(const char* s) {
  if (s == nullptr) return LogLevel::kInfo;
  if (std::strcmp(s, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(s, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(s, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(s, "error") == 0) return LogLevel::kError;
  if (std::strcmp(s, "off") == 0) return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{parse_level(std::getenv("BDPROTO_LOG"))};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

// bdlint:allow(no-relaxed-atomics): the level is an independent flag;
// no other data is published through it.
LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);  // bdlint:allow(no-relaxed-atomics)
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::ostream& out = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  out << "[" << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace bd
