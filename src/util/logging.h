// Minimal leveled logger. Experiments log progress at Info; kernels and
// inner loops stay quiet unless Debug is enabled (BDPROTO_LOG=debug).
#pragma once

#include <sstream>
#include <string>

namespace bd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Initialized from the BDPROTO_LOG environment
/// variable (debug|info|warn|error|off) on first use; defaults to Info.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: BD_LOG(Info) << "epoch " << e;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::log_line(level_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace bd

#define BD_LOG(severity) ::bd::LogMessage(::bd::LogLevel::k##severity)
