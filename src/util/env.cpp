#include "util/env.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace bd {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::optional<std::int64_t> env_int(const std::string& name) {
  const auto s = env_string(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> env_double(const std::string& name) {
  const auto s = env_string(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str()) return std::nullopt;
  return v;
}

RunMode run_mode() {
  static const RunMode mode = [] {
    const auto s = env_string("BDPROTO_MODE");
    if (s && *s == "full") return RunMode::kFull;
    return RunMode::kQuick;
  }();
  return mode;
}

bool full_mode() { return run_mode() == RunMode::kFull; }

int trial_count(int quick_default, int full_default) {
  if (const auto n = env_int("BDPROTO_TRIALS")) {
    return static_cast<int>(*n);
  }
  return full_mode() ? full_default : quick_default;
}

int thread_count() {
  static const int count = [] {
    if (const auto n = env_int("BDPROTO_THREADS")) {
      return std::max(1, static_cast<int>(*n));
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }();
  return count;
}

std::uint64_t base_seed() {
  if (const auto n = env_int("BDPROTO_SEED")) {
    return static_cast<std::uint64_t>(*n);
  }
  return 1234;
}

}  // namespace bd
