// Deterministic pseudo-random number generation for the whole library.
//
// All stochastic components (data synthesis, initialization, shuffling,
// poisoning, defenses) draw from an explicitly seeded bd::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256++, seeded through splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace bd {

/// Counter-based stateless mixer; used to derive independent seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ PRNG with convenience draws used across the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// A fresh generator whose stream is independent of this one.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bd
