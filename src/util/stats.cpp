#include "util/stats.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace bd {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double mean_of(const std::vector<double>& v) {
  RunningStat s;
  for (double x : v) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& v) {
  RunningStat s;
  for (double x : v) s.add(x);
  return s.stddev();
}

std::string mean_std_string(const std::vector<double>& v, int precision) {
  RunningStat s;
  for (double x : v) s.add(x);
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << s.mean();
  if (s.count() > 1) {
    out << "±" << std::fixed << std::setprecision(precision) << s.stddev();
  }
  return out.str();
}

}  // namespace bd
