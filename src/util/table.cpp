#include "util/table.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bd {

namespace {
// Display width in terminal columns: count UTF-8 code points, not bytes,
// so the "±" in mean±std cells does not skew column alignment.
std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++w;  // count non-continuation bytes
  }
  return w;
}
}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: header must not be empty");
  }
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = display_width(header_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], display_width(row[c]));
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c]
          << std::string(widths[c] - display_width(row[c]), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      std::replace(cell.begin(), cell.end(), ',', ';');
      out << cell;
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace bd
