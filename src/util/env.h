// Experiment-scale configuration sourced from the environment.
//
// Every experiment binary honours:
//   BDPROTO_MODE=quick|full   (default quick)  - quick shrinks dataset sizes
//                                                and epoch counts so the full
//                                                bench suite runs on one core.
//   BDPROTO_TRIALS=<n>        - overrides trials per setting.
//   BDPROTO_SEED=<n>          - base seed for the whole experiment.
//   BDPROTO_THREADS=<n>       - worker threads for the bd::runtime parallel
//                               engine (default: hardware_concurrency;
//                               1 forces the legacy serial path; clamped
//                               to >= 1).
//
// Supervised execution (see robust/supervisor.h):
//   BDPROTO_DEADLINE=<secs>   - per-attempt wall-clock budget (0/unset: off)
//   BDPROTO_STALL=<secs>      - heartbeat staleness budget (default: the
//                               deadline)
//   BDPROTO_RETRIES=<n>       - retries after a failed attempt (default 2)
//   BDPROTO_FAULTS=<spec>     - deterministic fault injection, e.g.
//                               "hang@2,io_fail@3" (robust/fault_injector.h)
//
// Crash-resumable journaling (see robust/journal.h):
//   BDPROTO_JOURNAL=<path>    - append completed cells to a JSONL journal
//   BDPROTO_RESUME=1          - skip cells already in the journal
//   BDPROTO_JOURNAL_FSYNC=1   - fsync journal/ledger appends (durability
//                               over throughput; default off)
//
// Serve transports (see serve/server.h and serve/client.h; flags on
// `bdctl serve` / client commands override these):
//   BDPROTO_LISTEN=<host:port>  - TCP listener next to the Unix socket
//                                 (unset: Unix only; port 0: ephemeral)
//   BDPROTO_CONN_CAP=<n>        - max concurrent connections before new
//                                 clients are shed with `overloaded`
//                                 (default 64)
//   BDPROTO_READ_DEADLINE=<secs>  - per-connection read deadline / idle
//                                 keep-alive limit (default 30)
//   BDPROTO_WRITE_DEADLINE=<secs> - per-connection write deadline
//                                 (default 30)
//   BDPROTO_CONNECT_TIMEOUT=<secs> - client connect budget (default 5)
//   BDPROTO_IO_TIMEOUT=<secs>   - client per-send/recv budget (default 30)
//   BDPROTO_CLIENT_DEADLINE=<secs> - client overall budget for one
//                                 retried request incl. backoff sleeps
//                                 (default 120)
//   BDPROTO_RETRY_BUDGET=<n>    - client retries after the first attempt
//                                 (default 4; retried submits need a
//                                 job.client_id to stay idempotent)
//
// Sharded execution (see shard/worker.h; normally set by `bdctl shard
// run` rather than by hand):
//   BDPROTO_SHARD_LEDGER=<path> - run as a shard worker against this
//                                 lease ledger (empty/unset: normal run)
//   BDPROTO_SHARD_WORKER=<id>   - worker id in ledger records (default w1)
//   BDPROTO_SHARD_TTL=<secs>    - lease expiry; a dead worker's cell is
//                                 stealable this long after its last
//                                 heartbeat (default 5)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace bd {

enum class RunMode { kQuick, kFull };

/// Current run mode (reads BDPROTO_MODE once; defaults to quick).
RunMode run_mode();

/// True when run_mode() == kFull.
bool full_mode();

/// Environment override helpers.
std::optional<std::string> env_string(const std::string& name);
std::optional<std::int64_t> env_int(const std::string& name);
std::optional<double> env_double(const std::string& name);

/// Trials per experiment setting: BDPROTO_TRIALS if set, otherwise
/// `full_default` in full mode and `quick_default` in quick mode.
int trial_count(int quick_default, int full_default);

/// Base seed for experiments: BDPROTO_SEED if set, otherwise 1234.
std::uint64_t base_seed();

/// Engine thread count: BDPROTO_THREADS if set (clamped to >= 1), otherwise
/// hardware_concurrency (or 1 when that is unknown). Read once and cached;
/// tests override via bd::runtime::set_thread_count() instead of the env.
int thread_count();

/// Picks a scale-dependent value: quick-mode value vs full-mode value.
template <typename T>
T scaled(T quick_value, T full_value) {
  return full_mode() ? full_value : quick_value;
}

}  // namespace bd
