#include "eval/metrics.h"

#include <atomic>

#include "autograd/ops.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace bd::eval {

namespace {

/// Restores the module's training flag on scope exit.
class EvalModeScope {
 public:
  explicit EvalModeScope(nn::Module& m) : module_(m), was_training_(m.training()) {
    module_.set_training(false);
  }
  ~EvalModeScope() { module_.set_training(was_training_); }
  EvalModeScope(const EvalModeScope&) = delete;
  EvalModeScope& operator=(const EvalModeScope&) = delete;

 private:
  nn::Module& module_;
  bool was_training_;
};

}  // namespace

double accuracy(models::Classifier& model, const data::ImageDataset& dataset,
                std::int64_t batch_size) {
  if (dataset.empty()) return 0.0;
  BD_OBS_SPAN_ARG("eval.accuracy",
                  static_cast<std::int64_t>(dataset.size()));
  EvalModeScope scope(model);
  ag::NoGradGuard no_grad;

  std::int64_t correct = 0;
  Rng dummy(0);
  data::DataLoader loader(dataset, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const ag::Var logits = model.forward(ag::Var(batch.images));
    const auto preds = argmax_rows(logits.value());
    // Integer tallies are order-independent, so a per-chunk count folded
    // through an atomic stays deterministic for any thread count.
    std::atomic<std::int64_t> batch_correct{0};
    runtime::parallel_for(
        0, static_cast<std::int64_t>(batch.labels.size()), 256,
        [&](std::int64_t lo, std::int64_t hi) {
          std::int64_t local = 0;
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            if (preds[idx] == batch.labels[idx]) ++local;
          }
          // bdlint:allow(no-relaxed-atomics): integer count reduction;
          // parallel_for's join orders the final load below.
          batch_correct.fetch_add(local, std::memory_order_relaxed);
        });
    correct += batch_correct.load(std::memory_order_relaxed);  // bdlint:allow(no-relaxed-atomics)
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double dataset_loss(models::Classifier& model,
                    const data::ImageDataset& dataset,
                    std::int64_t batch_size) {
  if (dataset.empty()) return 0.0;
  BD_OBS_SPAN_ARG("eval.dataset_loss",
                  static_cast<std::int64_t>(dataset.size()));
  EvalModeScope scope(model);
  ag::NoGradGuard no_grad;

  double total = 0.0;
  Rng dummy(0);
  data::DataLoader loader(dataset, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const ag::Var logits = model.forward(ag::Var(batch.images));
    const ag::Var loss = ag::cross_entropy(logits, batch.labels);
    total += static_cast<double>(loss.value()[0]) *
             static_cast<double>(batch.size());
  }
  return total / static_cast<double>(dataset.size());
}

BackdoorMetrics evaluate_backdoor(models::Classifier& model,
                                  const data::ImageDataset& clean_test,
                                  const data::ImageDataset& asr_test,
                                  const data::ImageDataset& ra_test,
                                  std::int64_t batch_size) {
  BD_OBS_SPAN("eval.backdoor");
  BackdoorMetrics m;
  m.acc = 100.0 * accuracy(model, clean_test, batch_size);
  m.asr = 100.0 * accuracy(model, asr_test, batch_size);
  m.ra = 100.0 * accuracy(model, ra_test, batch_size);
  return m;
}

}  // namespace bd::eval
