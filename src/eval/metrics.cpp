#include "eval/metrics.h"

#include "autograd/ops.h"
#include "tensor/ops.h"

namespace bd::eval {

namespace {

/// Restores the module's training flag on scope exit.
class EvalModeScope {
 public:
  explicit EvalModeScope(nn::Module& m) : module_(m), was_training_(m.training()) {
    module_.set_training(false);
  }
  ~EvalModeScope() { module_.set_training(was_training_); }
  EvalModeScope(const EvalModeScope&) = delete;
  EvalModeScope& operator=(const EvalModeScope&) = delete;

 private:
  nn::Module& module_;
  bool was_training_;
};

}  // namespace

double accuracy(models::Classifier& model, const data::ImageDataset& dataset,
                std::int64_t batch_size) {
  if (dataset.empty()) return 0.0;
  EvalModeScope scope(model);
  ag::NoGradGuard no_grad;

  std::int64_t correct = 0;
  Rng dummy(0);
  data::DataLoader loader(dataset, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const ag::Var logits = model.forward(ag::Var(batch.images));
    const auto preds = argmax_rows(logits.value());
    for (std::size_t i = 0; i < batch.labels.size(); ++i) {
      if (preds[i] == batch.labels[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double dataset_loss(models::Classifier& model,
                    const data::ImageDataset& dataset,
                    std::int64_t batch_size) {
  if (dataset.empty()) return 0.0;
  EvalModeScope scope(model);
  ag::NoGradGuard no_grad;

  double total = 0.0;
  Rng dummy(0);
  data::DataLoader loader(dataset, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const ag::Var logits = model.forward(ag::Var(batch.images));
    const ag::Var loss = ag::cross_entropy(logits, batch.labels);
    total += static_cast<double>(loss.value()[0]) *
             static_cast<double>(batch.size());
  }
  return total / static_cast<double>(dataset.size());
}

BackdoorMetrics evaluate_backdoor(models::Classifier& model,
                                  const data::ImageDataset& clean_test,
                                  const data::ImageDataset& asr_test,
                                  const data::ImageDataset& ra_test,
                                  std::int64_t batch_size) {
  BackdoorMetrics m;
  m.acc = 100.0 * accuracy(model, clean_test, batch_size);
  m.asr = 100.0 * accuracy(model, asr_test, batch_size);
  m.ra = 100.0 * accuracy(model, ra_test, batch_size);
  return m;
}

}  // namespace bd::eval
