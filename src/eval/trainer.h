// Training loops shared by the attack pipeline (training the backdoored
// model) and the defenses (fine-tuning stages).
//
// Both loops run under a bd::robust::TrainGuard: a non-finite or exploding
// batch loss (or non-finite gradient) rolls the model back to the last
// good epoch snapshot, backs off the learning rate, and retries the epoch
// within a bounded budget. Recovery history is returned in the result
// structs; see robust/train_guard.h for the policy.
#pragma once

#include <functional>

#include "data/augment.h"
#include "data/dataset.h"
#include "models/classifier.h"
#include "robust/train_guard.h"
#include "util/rng.h"

namespace bd::eval {

struct TrainConfig {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Multiply lr by this factor after each epoch (1 = constant).
  float lr_decay = 1.0f;
  /// Optional train-time augmentation (disabled by default; the paper
  /// benches train without it).
  data::AugmentConfig augment;
  /// Divergence detection / rollback policy (enabled by default).
  robust::TrainGuardConfig guard;
  bool verbose = false;
};

struct TrainResult {
  /// Mean loss of the last completed epoch.
  double final_loss = 0.0;
  /// Divergence recoveries performed during training.
  robust::GuardReport guard;
};

/// Standard SGD training on `train`.
TrainResult train_classifier(models::Classifier& model,
                             const data::ImageDataset& train,
                             const TrainConfig& config, Rng& rng);

struct EarlyStopConfig {
  std::int64_t max_epochs = 50;
  /// Stop when validation loss has not improved for this many epochs
  /// (the paper's P_t for the fine-tuning stage).
  std::int64_t patience = 5;
  std::int64_t batch_size = 32;
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Divergence detection / rollback policy (enabled by default).
  robust::TrainGuardConfig guard;
  bool verbose = false;
  /// Invoked after every optimizer step (e.g. to re-apply prune masks).
  std::function<void()> post_step;
};

struct EarlyStopResult {
  std::int64_t epochs_run = 0;
  double best_val_loss = 0.0;
  /// Divergence recoveries performed during fine-tuning.
  robust::GuardReport guard;
};

/// Fine-tunes with SGD until validation loss stops improving for
/// `patience` epochs; restores the best-validation-loss weights.
EarlyStopResult finetune_early_stopping(models::Classifier& model,
                                        const data::ImageDataset& train,
                                        const data::ImageDataset& val,
                                        const EarlyStopConfig& config,
                                        Rng& rng);

/// Merges two datasets (shapes and class counts must match).
data::ImageDataset concat(const data::ImageDataset& a,
                          const data::ImageDataset& b);

}  // namespace bd::eval
