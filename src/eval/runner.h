// Experiment runner reproducing the paper's evaluation protocol (Sec. V):
// train a backdoored model (10% poisoning, all-to-one, target class 0),
// hand the defender SPC clean samples + synthesized triggered variants,
// apply a defense, and measure ACC / ASR / RA on held-out test sets.
//
// Scale is governed by BDPROTO_MODE (quick|full): quick shrinks images,
// widths, dataset sizes and training budgets so the full bench suite runs
// on a single core; full uses the paper-scale settings for this repo's
// synthetic substrate. BDPROTO_TRIALS overrides trials per setting.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/poison.h"
#include "data/synth.h"
#include "defense/defense.h"
#include "eval/metrics.h"
#include "eval/trainer.h"

namespace bd::eval {

struct ExperimentScale {
  data::SynthConfig data;
  TrainConfig attack_train;
  std::int64_t base_width = 8;
  std::vector<std::int64_t> spc_settings;
  int trials = 3;
  // Defense budgets (quick mode trims these).
  std::int64_t defense_max_epochs = 20;
  std::int64_t prune_max_rounds = 60;
  std::int64_t anp_iterations = 40;
  std::int64_t nad_teacher_epochs = 5;
  std::int64_t nad_distill_epochs = 10;
};

/// Scale for "cifar" or "gtsrb", honouring BDPROTO_MODE / BDPROTO_TRIALS.
ExperimentScale default_scale(const std::string& dataset);

/// A trained backdoored model plus everything needed to evaluate defenses
/// against it. Reused across defenses / SPC settings / trials, mirroring
/// the paper (one attack run, many defense evaluations).
struct BackdooredModel {
  std::string dataset;  // cifar | gtsrb
  std::string attack;   // badnet | blended | lf | bpp
  models::ModelSpec spec;
  std::map<std::string, Tensor> state;  // trained poisoned weights
  std::unique_ptr<attack::TriggerApplier> trigger;
  data::ImageDataset clean_train_pool;  // defender SPC sampling pool
  data::ImageDataset clean_test;
  data::ImageDataset asr_test;
  data::ImageDataset ra_test;
  BackdoorMetrics baseline;  // metrics with no defense applied
  /// TrainGuard recovery history of the attack training run.
  robust::GuardReport train_guard;

  /// Fresh model instance loaded with the backdoored weights.
  std::unique_ptr<models::Classifier> instantiate(Rng& rng) const;
};

/// Trains the backdoored model for (dataset, arch, attack) at `scale`.
BackdooredModel prepare_backdoored_model(const std::string& dataset,
                                         const std::string& arch,
                                         const std::string& attack,
                                         const ExperimentScale& scale,
                                         std::uint64_t seed);

struct TrialResult {
  BackdoorMetrics metrics;
  defense::DefenseResult info;
};

/// Runs one defense trial: sample SPC, build context, defend, evaluate.
TrialResult run_defense_trial(const BackdooredModel& bd,
                              const std::string& defense_name,
                              std::int64_t spc, const ExperimentScale& scale,
                              std::uint64_t trial_seed);

/// Same, with a caller-supplied defense instance (ablation studies that
/// need non-default configurations). The defense is applied once.
TrialResult run_custom_defense_trial(const BackdooredModel& bd,
                                     defense::Defense& defense,
                                     std::int64_t spc,
                                     std::uint64_t trial_seed);

/// One serve-style sanitization request against a prepared backbone: like
/// run_defense_trial, but the poisoned weights can come from a client
/// checkpoint and the repaired model can be kept for checkpointing.
struct SanitizeRequest {
  std::string defense = "gradprune";
  std::int64_t spc = 10;
  std::uint64_t seed = 0;
  /// Optional replacement for bd.state (a client-supplied poisoned
  /// checkpoint state dict); shapes must match bd.spec.
  const std::map<std::string, Tensor>* state_override = nullptr;
  /// Keep the sanitized model in the outcome (e.g. to save_checkpoint it).
  bool keep_model = false;
};

struct SanitizeOutcome {
  BackdoorMetrics metrics;
  defense::DefenseResult info;
  /// Sanitized model, populated only when SanitizeRequest::keep_model.
  std::unique_ptr<models::Classifier> model;
};

SanitizeOutcome run_sanitization(const BackdooredModel& bd,
                                 const SanitizeRequest& req,
                                 const ExperimentScale& scale);

/// Per-setting aggregate over trials.
struct SettingResult {
  std::string attack;
  std::string defense;
  std::int64_t spc = 0;
  std::vector<double> acc, asr, ra;  // one entry per trial
  std::vector<double> seconds;       // defense wall-clock per trial
  std::vector<std::int64_t> pruned;  // units pruned per trial
  std::vector<std::int64_t> recoveries;  // divergence recoveries per trial
  /// Supervisor verdict: true when the setting could not complete (retry
  /// budget exhausted or quarantined) and the metric vectors are partial.
  bool degraded = false;
  /// Failure reason for the degraded case ("" when healthy).
  std::string failure;
  /// Total supervised attempts across trials (== trials when clean).
  std::int64_t attempts = 0;
};

/// Runs `scale.trials` trials of one defense at one SPC setting. Every
/// trial runs under Supervisor::instance() with a seed pre-drawn from
/// `seed`, so a retried trial re-derives identical randomness and never
/// shifts the seeds of later trials.
SettingResult run_setting(const BackdooredModel& bd,
                          const std::string& defense_name, std::int64_t spc,
                          const ExperimentScale& scale, std::uint64_t seed);

}  // namespace bd::eval
