#include "eval/trainer.h"

#include <stdexcept>

#include "autograd/ops.h"
#include "eval/metrics.h"
#include "optim/optim.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

// Batch work (forward/backward kernels, metric evaluation) executes on the
// bd::runtime parallel engine; the loops below stay sequential because SGD
// steps and RNG draws are order-dependent. Results are bitwise identical
// for every BDPROTO_THREADS setting (see runtime/thread_pool.h).

namespace bd::eval {

double train_classifier(models::Classifier& model,
                        const data::ImageDataset& train,
                        const TrainConfig& config, Rng& rng) {
  if (train.empty()) {
    throw std::invalid_argument("train_classifier: empty training set");
  }
  model.set_training(true);
  if (config.verbose) {
    BD_LOG(Info) << "training on " << runtime::thread_count()
                 << " runtime thread(s)";
  }
  optim::SgdOptions opts;
  opts.lr = config.lr;
  opts.momentum = config.momentum;
  opts.weight_decay = config.weight_decay;
  optim::Sgd sgd(model.parameters(), opts);

  double epoch_loss = 0.0;
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    data::DataLoader loader(train, config.batch_size, rng);
    data::Batch batch;
    double total = 0.0;
    std::int64_t seen = 0;
    while (loader.next(batch)) {
      data::augment_batch_inplace(batch, config.augment, rng);
      sgd.zero_grad();
      const ag::Var logits = model.forward(ag::Var(batch.images));
      ag::Var loss = ag::cross_entropy(logits, batch.labels);
      loss.backward();
      sgd.step();
      total += static_cast<double>(loss.value()[0]) *
               static_cast<double>(batch.size());
      seen += batch.size();
    }
    epoch_loss = total / static_cast<double>(seen);
    if (config.verbose) {
      BD_LOG(Info) << "epoch " << (epoch + 1) << "/" << config.epochs
                   << " loss=" << epoch_loss << " lr=" << sgd.options().lr;
    }
    sgd.options().lr *= config.lr_decay;
  }
  return epoch_loss;
}

EarlyStopResult finetune_early_stopping(models::Classifier& model,
                                        const data::ImageDataset& train,
                                        const data::ImageDataset& val,
                                        const EarlyStopConfig& config,
                                        Rng& rng) {
  if (train.empty() || val.empty()) {
    throw std::invalid_argument("finetune_early_stopping: empty train or val");
  }
  optim::SgdOptions opts;
  opts.lr = config.lr;
  opts.momentum = config.momentum;
  opts.weight_decay = config.weight_decay;
  optim::Sgd sgd(model.parameters(), opts);

  EarlyStopResult result;
  result.best_val_loss = dataset_loss(model, val);
  auto best_state = model.state_dict();
  std::int64_t epochs_without_improvement = 0;

  for (std::int64_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    model.set_training(true);
    data::DataLoader loader(train, config.batch_size, rng);
    data::Batch batch;
    while (loader.next(batch)) {
      sgd.zero_grad();
      const ag::Var logits = model.forward(ag::Var(batch.images));
      ag::Var loss = ag::cross_entropy(logits, batch.labels);
      loss.backward();
      sgd.step();
      if (config.post_step) config.post_step();
    }
    ++result.epochs_run;

    const double val_loss = dataset_loss(model, val);
    if (config.verbose) {
      BD_LOG(Info) << "finetune epoch " << (epoch + 1)
                   << " val_loss=" << val_loss
                   << " best=" << result.best_val_loss;
    }
    if (val_loss < result.best_val_loss - 1e-6) {
      result.best_val_loss = val_loss;
      best_state = model.state_dict();
      epochs_without_improvement = 0;
    } else if (++epochs_without_improvement >= config.patience) {
      break;
    }
  }
  model.load_state_dict(best_state);
  model.set_training(false);
  return result;
}

data::ImageDataset concat(const data::ImageDataset& a,
                          const data::ImageDataset& b) {
  if (a.image_shape() != b.image_shape() ||
      a.num_classes() != b.num_classes()) {
    throw std::invalid_argument("concat: dataset metadata mismatch");
  }
  data::ImageDataset out(a.image_shape(), a.num_classes());
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.add(a.image(i), a.label(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.add(b.image(i), b.label(i));
  return out;
}

}  // namespace bd::eval
