#include "eval/trainer.h"

#include <limits>
#include <stdexcept>

#include "autograd/ops.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "optim/optim.h"
#include "robust/cancel.h"
#include "robust/fault_injector.h"
#include "runtime/thread_pool.h"
#include "util/logging.h"

// Batch work (forward/backward kernels, metric evaluation) executes on the
// bd::runtime parallel engine; the loops below stay sequential because SGD
// steps and RNG draws are order-dependent. Results are bitwise identical
// for every BDPROTO_THREADS setting (see runtime/thread_pool.h) — the
// TrainGuard decisions depend only on those thread-invariant loss values,
// so recovery preserves the invariance.

namespace bd::eval {

namespace {

/// Per-batch divergence check shared by both loops. Computes the batch
/// loss (applying any armed `nan@n` fault), and either runs backward and
/// returns nullptr (healthy) or returns the reason the step must not be
/// applied. `batch_loss` always receives the observed loss.
const char* guarded_backward(robust::TrainGuard& guard, ag::Var& loss,
                             optim::Optimizer& opt, double& batch_loss) {
  batch_loss = static_cast<double>(loss.value()[0]);
  if (robust::FaultInjector::instance().fire_nan_loss()) {
    batch_loss = std::numeric_limits<double>::quiet_NaN();
  }
  if (const char* reason = guard.check_loss(batch_loss)) return reason;
  loss.backward();
  if (guard.enabled()) {
    if (const char* reason = guard.check_grad_norm(opt.grad_norm())) {
      return reason;
    }
  }
  return nullptr;
}

}  // namespace

TrainResult train_classifier(models::Classifier& model,
                             const data::ImageDataset& train,
                             const TrainConfig& config, Rng& rng) {
  if (train.empty()) {
    throw std::invalid_argument("train_classifier: empty training set");
  }
  BD_OBS_SPAN_ARG("train.run", config.epochs);
  model.set_training(true);
  if (config.verbose) {
    BD_LOG(Info) << "training on " << runtime::thread_count()
                 << " runtime thread(s)";
  }
  optim::SgdOptions opts;
  opts.lr = config.lr;
  opts.momentum = config.momentum;
  opts.weight_decay = config.weight_decay;
  optim::Sgd sgd(model.parameters(), opts);

  robust::TrainGuard guard(config.guard);
  std::map<std::string, Tensor> snapshot;
  if (guard.enabled()) snapshot = model.state_dict();

  TrainResult result;
  std::int64_t epoch = 0;
  bool stop = false;
  while (epoch < config.epochs && !stop) {
    BD_OBS_SPAN_ARG("train.epoch", epoch);
    data::DataLoader loader(train, config.batch_size, rng);
    data::Batch batch;
    double total = 0.0;
    std::int64_t seen = 0;
    std::int64_t step = 0;
    bool rolled_back = false;
    while (loader.next(batch)) {
      robust::poll_cancellation("train.batch");
      BD_OBS_SPAN_ARG("train.batch", step);
      BD_OBS_COUNT("train.batches", 1);
      BD_OBS_COUNT("train.samples", batch.size());
      data::augment_batch_inplace(batch, config.augment, rng);
      sgd.zero_grad();
      const ag::Var logits = model.forward(ag::Var(batch.images));
      ag::Var loss = ag::cross_entropy(logits, batch.labels);
      double batch_loss = 0.0;
      if (const char* reason = guarded_backward(guard, loss, sgd, batch_loss)) {
        model.load_state_dict(snapshot);
        if (!guard.can_recover()) {
          guard.record_exhausted();
          BD_LOG(Warn) << "train guard: " << reason << " at epoch " << epoch
                       << " step " << step
                       << "; retry budget exhausted, stopping at last good "
                          "snapshot";
          stop = true;
        } else {
          sgd.options().lr *= static_cast<float>(guard.config().lr_backoff);
          guard.record_recovery(epoch, step, batch_loss, sgd.options().lr,
                                reason);
          BD_LOG(Warn) << "train guard: " << reason << " at epoch " << epoch
                       << " step " << step << "; rolled back, retrying with lr="
                       << sgd.options().lr;
          rolled_back = true;
        }
        break;
      }
      sgd.step();
      total += batch_loss * static_cast<double>(batch.size());
      seen += batch.size();
      ++step;
    }
    if (stop) break;
    if (rolled_back) continue;  // retry this epoch from the snapshot
    result.final_loss = total / static_cast<double>(seen);
    BD_OBS_GAUGE("train.epoch_loss", result.final_loss);
    if (config.verbose) {
      BD_LOG(Info) << "epoch " << (epoch + 1) << "/" << config.epochs
                   << " loss=" << result.final_loss
                   << " lr=" << sgd.options().lr;
    }
    sgd.options().lr *= config.lr_decay;
    if (guard.enabled()) snapshot = model.state_dict();
    ++epoch;
  }
  result.guard = guard.report();
  return result;
}

EarlyStopResult finetune_early_stopping(models::Classifier& model,
                                        const data::ImageDataset& train,
                                        const data::ImageDataset& val,
                                        const EarlyStopConfig& config,
                                        Rng& rng) {
  if (train.empty() || val.empty()) {
    throw std::invalid_argument("finetune_early_stopping: empty train or val");
  }
  BD_OBS_SPAN_ARG("finetune.run", config.max_epochs);
  optim::SgdOptions opts;
  opts.lr = config.lr;
  opts.momentum = config.momentum;
  opts.weight_decay = config.weight_decay;
  optim::Sgd sgd(model.parameters(), opts);

  robust::TrainGuard guard(config.guard);
  EarlyStopResult result;
  result.best_val_loss = dataset_loss(model, val);
  auto best_state = model.state_dict();
  std::map<std::string, Tensor> snapshot;
  if (guard.enabled()) snapshot = model.state_dict();
  std::int64_t epochs_without_improvement = 0;

  std::int64_t epoch = 0;
  bool stop = false;
  while (epoch < config.max_epochs && !stop) {
    BD_OBS_SPAN_ARG("finetune.epoch", epoch);
    model.set_training(true);
    data::DataLoader loader(train, config.batch_size, rng);
    data::Batch batch;
    std::int64_t step = 0;
    bool rolled_back = false;
    while (loader.next(batch)) {
      robust::poll_cancellation("finetune.batch");
      BD_OBS_SPAN_ARG("finetune.batch", step);
      BD_OBS_COUNT("finetune.batches", 1);
      sgd.zero_grad();
      const ag::Var logits = model.forward(ag::Var(batch.images));
      ag::Var loss = ag::cross_entropy(logits, batch.labels);
      double batch_loss = 0.0;
      if (const char* reason = guarded_backward(guard, loss, sgd, batch_loss)) {
        model.load_state_dict(snapshot);
        if (!guard.can_recover()) {
          guard.record_exhausted();
          BD_LOG(Warn) << "finetune guard: " << reason << " at epoch " << epoch
                       << " step " << step
                       << "; retry budget exhausted, stopping at last good "
                          "snapshot";
          stop = true;
        } else {
          sgd.options().lr *= static_cast<float>(guard.config().lr_backoff);
          guard.record_recovery(epoch, step, batch_loss, sgd.options().lr,
                                reason);
          BD_LOG(Warn) << "finetune guard: " << reason << " at epoch " << epoch
                       << " step " << step << "; rolled back, retrying with lr="
                       << sgd.options().lr;
          rolled_back = true;
        }
        break;
      }
      sgd.step();
      if (config.post_step) config.post_step();
      ++step;
    }
    if (stop) break;
    if (rolled_back) continue;  // retry this epoch from the snapshot
    ++result.epochs_run;

    const double val_loss = dataset_loss(model, val);
    BD_OBS_GAUGE("finetune.val_loss", val_loss);
    if (config.verbose) {
      BD_LOG(Info) << "finetune epoch " << (epoch + 1)
                   << " val_loss=" << val_loss
                   << " best=" << result.best_val_loss;
    }
    if (val_loss < result.best_val_loss - 1e-6) {
      result.best_val_loss = val_loss;
      best_state = model.state_dict();
      epochs_without_improvement = 0;
    } else if (++epochs_without_improvement >= config.patience) {
      break;
    }
    if (guard.enabled()) snapshot = model.state_dict();
    ++epoch;
  }
  model.load_state_dict(best_state);
  model.set_training(false);
  result.guard = guard.report();
  return result;
}

data::ImageDataset concat(const data::ImageDataset& a,
                          const data::ImageDataset& b) {
  if (a.image_shape() != b.image_shape() ||
      a.num_classes() != b.num_classes()) {
    throw std::invalid_argument("concat: dataset metadata mismatch");
  }
  data::ImageDataset out(a.image_shape(), a.num_classes());
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.add(a.image(i), a.label(i));
  for (std::size_t i = 0; i < b.size(); ++i) out.add(b.image(i), b.label(i));
  return out;
}

}  // namespace bd::eval
