// Table/figure harness shared by the bench binaries.
//
// Each paper table is (dataset, architecture) x attacks x SPC x defenses;
// each figure is the per-trial (ASR, ACC) / (ASR, RA) scatter of the same
// runs. run_table() executes the sweep and prints rows in the paper's
// format (mean ± std over trials) plus optional scatter series.
#pragma once

#include <string>
#include <vector>

#include "eval/runner.h"

namespace bd::eval {

struct TableSpec {
  std::string title;
  std::string dataset;  // cifar | gtsrb
  std::string arch;     // preactresnet | vgg | efficientnet | mobilenet
  std::vector<std::string> attacks;
  std::vector<std::string> defenses;
  /// Also print per-trial scatter points (figure reproduction).
  bool scatter = false;
};

struct TableRun {
  std::vector<SettingResult> settings;  // per (attack, spc, defense)
  std::vector<std::pair<std::string, BackdoorMetrics>> baselines;
};

/// Runs the sweep and prints the table (and scatter series) to stdout.
TableRun run_table(const TableSpec& spec);

}  // namespace bd::eval
