// Table/figure harness shared by the bench binaries.
//
// Each paper table is (dataset, architecture) x attacks x SPC x defenses;
// each figure is the per-trial (ASR, ACC) / (ASR, RA) scatter of the same
// runs. run_table() executes the sweep and prints rows in the paper's
// format (mean ± std over trials) plus optional scatter series.
//
// Crash resumability: with BDPROTO_JOURNAL=<path> every completed cell
// (baseline or attack x SPC x defense setting) is appended to a JSONL
// journal keyed by a stable config hash, flushed before the next cell
// starts. With BDPROTO_RESUME=1 a restarted run loads the journal, skips
// every completed cell (re-deriving its table rows from the journaled
// full-precision metrics), and produces tables byte-identical to an
// uninterrupted run. A backdoored model is only retrained when at least
// one of its cells is missing.
//
// Supervised execution: attack preparations, defense trials and journal
// appends run under robust::Supervisor (BDPROTO_DEADLINE / BDPROTO_STALL /
// BDPROTO_RETRIES). A cell whose retry budget is exhausted — or whose
// config is quarantined — is printed as `degraded` in its metric columns
// with the failure reason summarized after the table, while every other
// cell completes; degraded cells journal and resume like healthy ones.
//
// Sharded execution: when BDPROTO_SHARD_LEDGER is set (or spec.shard is
// filled in), this process runs as one worker of a multi-process fleet
// instead of executing the whole sweep. Every worker derives the identical
// canonical work list (baseline + cells, pre-drawn seeds), claims items
// through the crash-resilient lease ledger (shard/ledger.h), journals each
// result, and prints worker stats instead of the table — the coordinator's
// merge pass (a plain resume run with sharding off) renders the table,
// byte-identically to a single-process run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "shard/worker.h"

namespace bd::eval {

struct TableSpec {
  std::string title;
  std::string dataset;  // cifar | gtsrb
  std::string arch;     // preactresnet | vgg | efficientnet | mobilenet
  std::vector<std::string> attacks;
  std::vector<std::string> defenses;
  /// Also print per-trial scatter points (figure reproduction).
  bool scatter = false;
  /// Journal file for crash resumability; empty defers to BDPROTO_JOURNAL
  /// (journaling disabled when neither is set).
  std::string journal_path;
  /// Skip journal-completed cells; unset defers to BDPROTO_RESUME.
  std::optional<bool> resume;
  /// Scale override for tests; unset uses default_scale(dataset).
  std::optional<ExperimentScale> scale;
  /// Run as a shard worker with this config; unset defers to the
  /// BDPROTO_SHARD_* env (shard::shard_config_from_env()).
  std::optional<shard::ShardConfig> shard;
};

struct TableRun {
  std::vector<SettingResult> settings;  // per (attack, spc, defense)
  std::vector<std::pair<std::string, BackdoorMetrics>> baselines;
  std::size_t resumed_cells = 0;   // cells restored from the journal
  std::size_t degraded_cells = 0;  // cells (incl. baselines) that failed
  /// Set in shard-worker mode (settings/baselines stay empty there: the
  /// results live in the journal for the coordinator's merge pass).
  std::optional<shard::WorkerStats> worker_stats;
};

/// Runs the sweep and prints the table (and scatter series) to stdout.
TableRun run_table(const TableSpec& spec);

}  // namespace bd::eval
