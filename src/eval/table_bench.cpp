#include "eval/table_bench.h"

#include <cstdio>

#include "core/registry.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace bd::eval {

TableRun run_table(const TableSpec& spec) {
  Stopwatch watch;
  const ExperimentScale scale = default_scale(spec.dataset);
  const std::uint64_t seed = base_seed();

  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("dataset=%s arch=%s mode=%s trials=%d spc={", spec.dataset.c_str(),
              spec.arch.c_str(), full_mode() ? "full" : "quick", scale.trials);
  for (std::size_t i = 0; i < scale.spc_settings.size(); ++i) {
    std::printf("%s%lld", i ? "," : "",
                static_cast<long long>(scale.spc_settings[i]));
  }
  std::printf("}\n\n");

  TableRun run;
  TextTable table({"Attack", "SPC", "Defense", "ACC", "ASR", "RA"});

  for (const auto& attack : spec.attacks) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack + spec.arch));
    const BackdooredModel bd = prepare_backdoored_model(
        spec.dataset, spec.arch, attack, scale, seeder.next_u64());
    run.baselines.emplace_back(attack, bd.baseline);

    char acc_buf[32], asr_buf[32], ra_buf[32];
    std::snprintf(acc_buf, sizeof(acc_buf), "%.2f", bd.baseline.acc);
    std::snprintf(asr_buf, sizeof(asr_buf), "%.2f", bd.baseline.asr);
    std::snprintf(ra_buf, sizeof(ra_buf), "%.2f", bd.baseline.ra);
    table.add_row({attack, "-", "Baseline", acc_buf, asr_buf, ra_buf});

    for (const auto spc : scale.spc_settings) {
      for (const auto& defense : spec.defenses) {
        const SettingResult setting =
            run_setting(bd, defense, spc, scale, seeder.next_u64());
        table.add_row({attack, std::to_string(spc),
                       core::defense_display_name(defense),
                       mean_std_string(setting.acc),
                       mean_std_string(setting.asr),
                       mean_std_string(setting.ra)});
        run.settings.push_back(setting);
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());

  if (spec.scatter) {
    // Figure series: one (ASR, ACC) and (ASR, RA) point per trial.
    std::printf("# scatter: defense,attack,spc,trial,asr,acc,ra\n");
    for (const auto& s : run.settings) {
      for (std::size_t t = 0; t < s.asr.size(); ++t) {
        std::printf("scatter,%s,%s,%lld,%zu,%.2f,%.2f,%.2f\n",
                    s.defense.c_str(), s.attack.c_str(),
                    static_cast<long long>(s.spc), t + 1, s.asr[t], s.acc[t],
                    s.ra[t]);
      }
    }
    std::printf("\n");
  }

  std::printf("total: %.1fs\n\n", watch.seconds());
  return run;
}

}  // namespace bd::eval
