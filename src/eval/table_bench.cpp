#include "eval/table_bench.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/registry.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "robust/journal.h"
#include "robust/supervisor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace bd::eval {

namespace {

std::string join_doubles(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += robust::exact_double(v[i]);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& s) {
  std::vector<double> out;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;  // no progress: malformed tail
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::string join_ints(const std::vector<std::int64_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(v[i]);
  }
  return out;
}

std::vector<std::int64_t> split_ints(const std::string& s) {
  std::vector<std::int64_t> out;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const std::int64_t v = std::strtoll(p, &end, 10);
    if (end == p) break;  // no progress: malformed tail
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::string field(const robust::JournalFields& fields, const char* name) {
  const auto it = fields.find(name);
  return it == fields.end() ? std::string() : it->second;
}

/// Canonical description of everything that shapes a cell's numbers: the
/// journal key must change whenever any of this does, so a resumed run
/// never reuses results computed under different settings.
std::string scale_signature(const TableSpec& spec,
                            const ExperimentScale& s) {
  std::string sig = spec.dataset + '|' + spec.arch + '|' +
                    std::to_string(base_seed());
  const auto add_i = [&sig](std::int64_t v) {
    sig += '|';
    sig += std::to_string(v);
  };
  const auto add_d = [&sig](double v) {
    sig += '|';
    sig += robust::exact_double(v);
  };
  add_i(s.data.height);
  add_i(s.data.width);
  add_i(s.data.train_per_class);
  add_i(s.data.test_per_class);
  add_i(s.attack_train.epochs);
  add_i(s.attack_train.batch_size);
  add_d(s.attack_train.lr);
  add_d(s.attack_train.momentum);
  add_d(s.attack_train.weight_decay);
  add_d(s.attack_train.lr_decay);
  add_i(s.base_width);
  add_i(s.trials);
  add_i(s.defense_max_epochs);
  add_i(s.prune_max_rounds);
  add_i(s.anp_iterations);
  add_i(s.nad_teacher_epochs);
  add_i(s.nad_distill_epochs);
  for (const auto spc : s.spc_settings) add_i(spc);
  return sig;
}

/// Baseline cell as journaled: metrics plus the supervisor's verdict on
/// the attack preparation that produced them.
struct BaselineRecord {
  BackdoorMetrics metrics;
  bool degraded = false;
  std::string error;
  std::int64_t attempts = 0;
};

robust::JournalFields encode_baseline(const std::string& attack,
                                      const BaselineRecord& r) {
  robust::JournalFields f{{"cell", "baseline"},
                          {"attack", attack},
                          {"acc", robust::exact_double(r.metrics.acc)},
                          {"asr", robust::exact_double(r.metrics.asr)},
                          {"ra", robust::exact_double(r.metrics.ra)},
                          {"attempts", std::to_string(r.attempts)}};
  if (r.degraded) {
    f["degraded"] = "1";
    f["error"] = r.error;
  }
  return f;
}

BaselineRecord decode_baseline(const robust::JournalFields& f) {
  BaselineRecord r;
  r.metrics.acc = std::strtod(field(f, "acc").c_str(), nullptr);
  r.metrics.asr = std::strtod(field(f, "asr").c_str(), nullptr);
  r.metrics.ra = std::strtod(field(f, "ra").c_str(), nullptr);
  r.attempts = std::strtoll(field(f, "attempts").c_str(), nullptr, 10);
  r.degraded = field(f, "degraded") == "1";
  r.error = field(f, "error");
  return r;
}

robust::JournalFields encode_setting(const SettingResult& s) {
  robust::JournalFields f{{"cell", "setting"},
                          {"attack", s.attack},
                          {"defense", s.defense},
                          {"spc", std::to_string(s.spc)},
                          {"acc", join_doubles(s.acc)},
                          {"asr", join_doubles(s.asr)},
                          {"ra", join_doubles(s.ra)},
                          {"seconds", join_doubles(s.seconds)},
                          {"pruned", join_ints(s.pruned)},
                          {"recoveries", join_ints(s.recoveries)},
                          {"attempts", std::to_string(s.attempts)}};
  if (s.degraded) {
    f["degraded"] = "1";
    f["error"] = s.failure;
  }
  return f;
}

SettingResult decode_setting(const robust::JournalFields& f) {
  SettingResult s;
  s.attack = field(f, "attack");
  s.defense = field(f, "defense");
  s.spc = std::strtoll(field(f, "spc").c_str(), nullptr, 10);
  s.acc = split_doubles(field(f, "acc"));
  s.asr = split_doubles(field(f, "asr"));
  s.ra = split_doubles(field(f, "ra"));
  s.seconds = split_doubles(field(f, "seconds"));
  s.pruned = split_ints(field(f, "pruned"));
  s.recoveries = split_ints(field(f, "recoveries"));
  s.attempts = std::strtoll(field(f, "attempts").c_str(), nullptr, 10);
  s.degraded = field(f, "degraded") == "1";
  s.failure = field(f, "error");
  return s;
}

/// One (SPC, defense) cell with its pre-drawn seed and journal key.
struct Cell {
  std::int64_t spc;
  std::string defense;
  std::uint64_t seed;
  std::string key;
};

/// Everything one attack contributes to the table, in canonical order.
struct AttackPlan {
  std::string attack;
  std::uint64_t model_seed;
  std::string base_key;
  std::vector<Cell> cells;
};

/// Derives the full cell plan. Seeds are drawn up front in the order an
/// uninterrupted run would draw them, so skipping completed cells — or
/// splitting the plan across shard workers — never shifts the seeds of
/// the remaining ones. Every process running the same spec derives the
/// identical plan; the keys double as lease-ledger work items.
std::vector<AttackPlan> build_plan(const TableSpec& spec,
                                   const ExperimentScale& scale,
                                   const std::string& sig,
                                   std::uint64_t seed) {
  std::vector<AttackPlan> plan;
  plan.reserve(spec.attacks.size());
  for (const auto& attack : spec.attacks) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack + spec.arch));
    AttackPlan ap;
    ap.attack = attack;
    ap.model_seed = seeder.next_u64();
    for (const auto spc : scale.spc_settings) {
      for (const auto& defense : spec.defenses) {
        ap.cells.push_back({spc, defense, seeder.next_u64(),
                            robust::stable_hash_hex(
                                "cell|" + sig + '|' + attack + '|' + defense +
                                '|' + std::to_string(spc))});
      }
    }
    ap.base_key = robust::stable_hash_hex("baseline|" + sig + '|' + attack);
    plan.push_back(std::move(ap));
  }
  return plan;
}

/// Shard-worker mode: claim plan items through the lease ledger, journal
/// each result, print worker stats. No table — the coordinator's merge
/// pass (resume run, sharding off) renders it from the journal.
TableRun run_table_worker(const TableSpec& spec, const ExperimentScale& scale,
                          const std::vector<AttackPlan>& plan,
                          robust::RunJournal& journal,
                          const shard::ShardConfig& config) {
  BD_OBS_SPAN("bench.shard_worker");
  if (!journal.enabled()) {
    throw std::runtime_error(
        "shard worker needs a journal (BDPROTO_JOURNAL): cell results must "
        "be durable for the coordinator's merge pass");
  }
  auto& supervisor = robust::Supervisor::instance();
  const auto record_with_retry = [&](const std::string& key,
                                     const robust::JournalFields& fields) {
    const robust::RunReport report = supervisor.run(
        "journal|" + journal.path(), [&] { journal.record(key, fields); });
    if (!report.ok()) {
      throw std::runtime_error("journal '" + journal.path() +
                               "': append failed permanently: " +
                               report.failure);
    }
  };

  // Canonical work list: the baseline item leads its attack's cells so the
  // expensive preparation tends to be claimed (and cached) first.
  struct WorkItem {
    std::size_t attack;
    std::size_t cell = 0;
    bool baseline = false;
  };
  std::vector<WorkItem> items;
  std::vector<std::string> keys;
  for (std::size_t a = 0; a < plan.size(); ++a) {
    items.push_back({a, 0, true});
    keys.push_back(plan[a].base_key);
    for (std::size_t c = 0; c < plan[a].cells.size(); ++c) {
      items.push_back({a, c, false});
      keys.push_back(plan[a].cells[c].key);
    }
  }

  // Lazy per-attack preparation, cached for the most recent attack only
  // (backdoored models are big; canonical claim order keeps switches rare).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t prepared = kNone;
  std::optional<BackdooredModel> bd;
  BaselineRecord baseline;
  const auto prepare = [&](std::size_t a) {
    if (prepared == a) return;
    const AttackPlan& ap = plan[a];
    BD_OBS_SPAN("bench.attack_prepare");
    const robust::RunReport prep =
        supervisor.run("prepare|" + ap.attack + "|" + spec.arch, [&] {
          bd.reset();
          bd.emplace(prepare_backdoored_model(spec.dataset, spec.arch,
                                              ap.attack, scale,
                                              ap.model_seed));
        });
    baseline = BaselineRecord{};
    baseline.attempts = prep.attempts;
    if (prep.ok()) {
      baseline.metrics = bd->baseline;
    } else {
      bd.reset();
      baseline.degraded = true;
      baseline.error = "attack preparation failed: " + prep.failure;
      BD_LOG(Warn) << ap.attack << ": " << baseline.error;
    }
    prepared = a;
  };

  TableRun run;
  shard::WorkerSession session(config);
  const auto run_cell = [&](std::size_t index) {
    const WorkItem& item = items[index];
    const AttackPlan& ap = plan[item.attack];
    if (journal.has(keys[index])) {
      // Already durable: a resumed run, or a steal from a worker that died
      // after journaling but before its done record landed.
      ++run.resumed_cells;
      return;
    }
    prepare(item.attack);
    if (item.baseline) {
      record_with_retry(ap.base_key, encode_baseline(ap.attack, baseline));
      return;
    }
    const Cell& cell = ap.cells[item.cell];
    SettingResult setting;
    if (!bd.has_value()) {
      setting.attack = ap.attack;
      setting.defense = cell.defense;
      setting.spc = cell.spc;
      setting.degraded = true;
      setting.failure = baseline.error;
    } else {
      BD_OBS_SPAN_ARG("bench.cell", cell.spc);
      BD_OBS_COUNT("bench.cells_run", 1);
      setting = run_setting(*bd, cell.defense, cell.spc, scale, cell.seed);
    }
    record_with_retry(cell.key, encode_setting(setting));
  };
  const auto quarantine_cell = [&](std::size_t index,
                                   const std::string& reason) {
    const WorkItem& item = items[index];
    const AttackPlan& ap = plan[item.attack];
    if (journal.has(keys[index])) return;
    if (item.baseline) {
      BaselineRecord rec;
      rec.degraded = true;
      rec.error = reason;
      record_with_retry(ap.base_key, encode_baseline(ap.attack, rec));
      return;
    }
    const Cell& cell = ap.cells[item.cell];
    SettingResult s;
    s.attack = ap.attack;
    s.defense = cell.defense;
    s.spc = cell.spc;
    s.degraded = true;
    s.failure = reason;
    record_with_retry(cell.key, encode_setting(s));
  };

  const shard::WorkerStats stats =
      session.run_all(keys, run_cell, quarantine_cell);
  std::printf("shard worker %s: claimed=%lld stolen=%lld completed=%lld "
              "quarantined=%lld resumed=%zu\n",
              config.worker_id.c_str(),
              static_cast<long long>(stats.claimed),
              static_cast<long long>(stats.stolen),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.quarantined), run.resumed_cells);
  run.worker_stats = stats;
  return run;
}

}  // namespace

TableRun run_table(const TableSpec& spec) {
  BD_OBS_SPAN("bench.table");
  Stopwatch watch;
  const ExperimentScale scale =
      spec.scale ? *spec.scale : default_scale(spec.dataset);
  const std::uint64_t seed = base_seed();

  std::string journal_path = spec.journal_path;
  if (journal_path.empty()) {
    journal_path = env_string("BDPROTO_JOURNAL").value_or("");
  }
  const bool resume =
      spec.resume.value_or(env_int("BDPROTO_RESUME").value_or(0) != 0);
  robust::RunJournal journal = journal_path.empty()
                                   ? robust::RunJournal()
                                   : robust::RunJournal(journal_path);
  if (resume && !journal.enabled()) {
    BD_LOG(Warn) << "BDPROTO_RESUME is set but no journal is configured "
                    "(set BDPROTO_JOURNAL); running from scratch";
  }
  if (resume && journal.size() > 0) {
    BD_LOG(Info) << "resuming from journal '" << journal.path() << "' ("
                 << journal.size() << " completed cells)";
  }
  const std::string sig = scale_signature(spec, scale);
  const std::vector<AttackPlan> plan = build_plan(spec, scale, sig, seed);

  const std::optional<shard::ShardConfig> shard_config =
      spec.shard.has_value() ? spec.shard : shard::shard_config_from_env();
  if (shard_config.has_value()) {
    return run_table_worker(spec, scale, plan, journal, *shard_config);
  }

  auto& faults = robust::FaultInjector::instance();
  auto& supervisor = robust::Supervisor::instance();

  // Journal appends are supervised too (retries ride out transient I/O
  // failures), but a permanently unwritable journal is fatal: continuing
  // would silently break the resume contract.
  const auto record_with_retry = [&](const std::string& key,
                                     const robust::JournalFields& fields) {
    const robust::RunReport report = supervisor.run(
        "journal|" + journal.path(), [&] { journal.record(key, fields); });
    if (!report.ok()) {
      throw std::runtime_error("journal '" + journal.path() +
                               "': append failed permanently: " +
                               report.failure);
    }
  };

  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("dataset=%s arch=%s mode=%s trials=%d spc={", spec.dataset.c_str(),
              spec.arch.c_str(), full_mode() ? "full" : "quick", scale.trials);
  for (std::size_t i = 0; i < scale.spc_settings.size(); ++i) {
    std::printf("%s%lld", i ? "," : "",
                static_cast<long long>(scale.spc_settings[i]));
  }
  std::printf("}\n\n");

  TableRun run;
  TextTable table({"Attack", "SPC", "Defense", "ACC", "ASR", "RA"});
  std::vector<std::string> degraded_lines;  // summary printed after the table

  for (const AttackPlan& ap : plan) {
    const std::string& attack = ap.attack;
    const std::uint64_t model_seed = ap.model_seed;
    const std::vector<Cell>& cells = ap.cells;
    const std::string& base_key = ap.base_key;

    bool all_cached = resume && journal.has(base_key);
    for (const auto& cell : cells) {
      all_cached = all_cached && journal.has(cell.key);
    }

    // The expensive attack run is needed only when some cell still has to
    // execute; a fully journaled attack resumes without retraining.
    std::optional<BackdooredModel> bd;
    BaselineRecord baseline;
    if (all_cached) {
      baseline = decode_baseline(*journal.find(base_key));
      BD_LOG(Info) << attack << ": all cells journaled, skipping attack "
                      "training";
    } else {
      BD_OBS_SPAN("bench.attack_prepare");
      const robust::RunReport prep =
          supervisor.run("prepare|" + attack + "|" + spec.arch, [&] {
            bd.reset();
            bd.emplace(prepare_backdoored_model(spec.dataset, spec.arch,
                                                attack, scale, model_seed));
          });
      baseline.attempts = prep.attempts;
      if (prep.ok()) {
        baseline.metrics = bd->baseline;
      } else {
        bd.reset();
        baseline.degraded = true;
        baseline.error = "attack preparation failed: " + prep.failure;
        BD_LOG(Warn) << attack << ": " << baseline.error
                     << "; every cell of this attack degrades";
      }
      if (journal.enabled() && !(resume && journal.has(base_key))) {
        record_with_retry(base_key, encode_baseline(attack, baseline));
      }
    }
    run.baselines.emplace_back(attack, baseline.metrics);
    if (baseline.degraded) {
      degraded_lines.push_back(attack + "/baseline: " + baseline.error +
                               " (attempts=" +
                               std::to_string(baseline.attempts) + ")");
      table.add_row(
          {attack, "-", "Baseline", "degraded", "degraded", "degraded"});
    } else {
      char acc_buf[32], asr_buf[32], ra_buf[32];
      std::snprintf(acc_buf, sizeof(acc_buf), "%.2f", baseline.metrics.acc);
      std::snprintf(asr_buf, sizeof(asr_buf), "%.2f", baseline.metrics.asr);
      std::snprintf(ra_buf, sizeof(ra_buf), "%.2f", baseline.metrics.ra);
      table.add_row({attack, "-", "Baseline", acc_buf, asr_buf, ra_buf});
    }

    for (const auto& cell : cells) {
      SettingResult setting;
      const robust::JournalFields* cached =
          resume ? journal.find(cell.key) : nullptr;
      if (cached != nullptr) {
        setting = decode_setting(*cached);
        ++run.resumed_cells;
        BD_OBS_COUNT("bench.cells_resumed", 1);
      } else if (!bd.has_value()) {
        // The attack preparation degraded permanently: every cell that
        // depends on it inherits the failure instead of running.
        setting.attack = attack;
        setting.defense = cell.defense;
        setting.spc = cell.spc;
        setting.degraded = true;
        setting.failure = baseline.error;
        if (journal.enabled()) {
          record_with_retry(cell.key, encode_setting(setting));
        }
      } else {
        BD_OBS_SPAN_ARG("bench.cell", cell.spc);
        BD_OBS_COUNT("bench.cells_run", 1);
        Stopwatch cell_watch;
        setting = run_setting(*bd, cell.defense, cell.spc, scale, cell.seed);
        BD_OBS_OBSERVE("bench.cell_seconds", cell_watch.seconds(),
                       ::bd::obs::seconds_buckets());
        if (journal.enabled()) {
          record_with_retry(cell.key, encode_setting(setting));
        }
        // The journal entry above is flushed; a kill here loses nothing.
        faults.fire_crash("bench cell " + setting.attack + "/" +
                          setting.defense + "/spc=" +
                          std::to_string(setting.spc));
      }
      if (setting.degraded) {
        degraded_lines.push_back(
            attack + "/" + cell.defense + "/spc=" +
            std::to_string(cell.spc) + ": " + setting.failure +
            " (attempts=" + std::to_string(setting.attempts) + ")");
      }
      table.add_row({attack, std::to_string(cell.spc),
                     core::defense_display_name(cell.defense),
                     setting.degraded ? "degraded"
                                      : mean_std_string(setting.acc),
                     setting.degraded ? "degraded"
                                      : mean_std_string(setting.asr),
                     setting.degraded ? "degraded"
                                      : mean_std_string(setting.ra)});
      run.settings.push_back(std::move(setting));
    }
  }

  run.degraded_cells = degraded_lines.size();
  std::printf("%s\n", table.to_string().c_str());
  if (!degraded_lines.empty()) {
    std::printf("degraded cells: %zu\n", degraded_lines.size());
    for (const auto& line : degraded_lines) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("\n");
  }

  if (spec.scatter) {
    // Figure series: one (ASR, ACC) and (ASR, RA) point per trial.
    std::printf("# scatter: defense,attack,spc,trial,asr,acc,ra\n");
    for (const auto& s : run.settings) {
      for (std::size_t t = 0; t < s.asr.size(); ++t) {
        std::printf("scatter,%s,%s,%lld,%zu,%.2f,%.2f,%.2f\n",
                    s.defense.c_str(), s.attack.c_str(),
                    static_cast<long long>(s.spc), t + 1, s.asr[t], s.acc[t],
                    s.ra[t]);
      }
    }
    std::printf("\n");
  }

  std::printf("total: %.1fs\n\n", watch.seconds());
  return run;
}

}  // namespace bd::eval
