#include "eval/table_bench.h"

#include <cstdio>
#include <cstdlib>

#include "core/registry.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "robust/journal.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace bd::eval {

namespace {

std::string join_doubles(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += robust::exact_double(v[i]);
  }
  return out;
}

std::vector<double> split_doubles(const std::string& s) {
  std::vector<double> out;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;  // no progress: malformed tail
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::string join_ints(const std::vector<std::int64_t>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(v[i]);
  }
  return out;
}

std::vector<std::int64_t> split_ints(const std::string& s) {
  std::vector<std::int64_t> out;
  const char* p = s.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const std::int64_t v = std::strtoll(p, &end, 10);
    if (end == p) break;  // no progress: malformed tail
    out.push_back(v);
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

std::string field(const robust::JournalFields& fields, const char* name) {
  const auto it = fields.find(name);
  return it == fields.end() ? std::string() : it->second;
}

/// Canonical description of everything that shapes a cell's numbers: the
/// journal key must change whenever any of this does, so a resumed run
/// never reuses results computed under different settings.
std::string scale_signature(const TableSpec& spec,
                            const ExperimentScale& s) {
  std::string sig = spec.dataset + '|' + spec.arch + '|' +
                    std::to_string(base_seed());
  const auto add_i = [&sig](std::int64_t v) {
    sig += '|';
    sig += std::to_string(v);
  };
  const auto add_d = [&sig](double v) {
    sig += '|';
    sig += robust::exact_double(v);
  };
  add_i(s.data.height);
  add_i(s.data.width);
  add_i(s.data.train_per_class);
  add_i(s.data.test_per_class);
  add_i(s.attack_train.epochs);
  add_i(s.attack_train.batch_size);
  add_d(s.attack_train.lr);
  add_d(s.attack_train.momentum);
  add_d(s.attack_train.weight_decay);
  add_d(s.attack_train.lr_decay);
  add_i(s.base_width);
  add_i(s.trials);
  add_i(s.defense_max_epochs);
  add_i(s.prune_max_rounds);
  add_i(s.anp_iterations);
  add_i(s.nad_teacher_epochs);
  add_i(s.nad_distill_epochs);
  for (const auto spc : s.spc_settings) add_i(spc);
  return sig;
}

robust::JournalFields encode_baseline(const std::string& attack,
                                      const BackdoorMetrics& m) {
  return {{"cell", "baseline"},
          {"attack", attack},
          {"acc", robust::exact_double(m.acc)},
          {"asr", robust::exact_double(m.asr)},
          {"ra", robust::exact_double(m.ra)}};
}

BackdoorMetrics decode_baseline(const robust::JournalFields& f) {
  BackdoorMetrics m;
  m.acc = std::strtod(field(f, "acc").c_str(), nullptr);
  m.asr = std::strtod(field(f, "asr").c_str(), nullptr);
  m.ra = std::strtod(field(f, "ra").c_str(), nullptr);
  return m;
}

robust::JournalFields encode_setting(const SettingResult& s) {
  return {{"cell", "setting"},
          {"attack", s.attack},
          {"defense", s.defense},
          {"spc", std::to_string(s.spc)},
          {"acc", join_doubles(s.acc)},
          {"asr", join_doubles(s.asr)},
          {"ra", join_doubles(s.ra)},
          {"seconds", join_doubles(s.seconds)},
          {"pruned", join_ints(s.pruned)},
          {"recoveries", join_ints(s.recoveries)}};
}

SettingResult decode_setting(const robust::JournalFields& f) {
  SettingResult s;
  s.attack = field(f, "attack");
  s.defense = field(f, "defense");
  s.spc = std::strtoll(field(f, "spc").c_str(), nullptr, 10);
  s.acc = split_doubles(field(f, "acc"));
  s.asr = split_doubles(field(f, "asr"));
  s.ra = split_doubles(field(f, "ra"));
  s.seconds = split_doubles(field(f, "seconds"));
  s.pruned = split_ints(field(f, "pruned"));
  s.recoveries = split_ints(field(f, "recoveries"));
  return s;
}

}  // namespace

TableRun run_table(const TableSpec& spec) {
  BD_OBS_SPAN("bench.table");
  Stopwatch watch;
  const ExperimentScale scale =
      spec.scale ? *spec.scale : default_scale(spec.dataset);
  const std::uint64_t seed = base_seed();

  std::string journal_path = spec.journal_path;
  if (journal_path.empty()) {
    journal_path = env_string("BDPROTO_JOURNAL").value_or("");
  }
  const bool resume =
      spec.resume.value_or(env_int("BDPROTO_RESUME").value_or(0) != 0);
  robust::RunJournal journal = journal_path.empty()
                                   ? robust::RunJournal()
                                   : robust::RunJournal(journal_path);
  if (resume && !journal.enabled()) {
    BD_LOG(Warn) << "BDPROTO_RESUME is set but no journal is configured "
                    "(set BDPROTO_JOURNAL); running from scratch";
  }
  if (resume && journal.size() > 0) {
    BD_LOG(Info) << "resuming from journal '" << journal.path() << "' ("
                 << journal.size() << " completed cells)";
  }
  const std::string sig = scale_signature(spec, scale);
  auto& faults = robust::FaultInjector::instance();

  std::printf("== %s ==\n", spec.title.c_str());
  std::printf("dataset=%s arch=%s mode=%s trials=%d spc={", spec.dataset.c_str(),
              spec.arch.c_str(), full_mode() ? "full" : "quick", scale.trials);
  for (std::size_t i = 0; i < scale.spc_settings.size(); ++i) {
    std::printf("%s%lld", i ? "," : "",
                static_cast<long long>(scale.spc_settings[i]));
  }
  std::printf("}\n\n");

  TableRun run;
  TextTable table({"Attack", "SPC", "Defense", "ACC", "ASR", "RA"});

  for (const auto& attack : spec.attacks) {
    Rng seeder(seed ^ std::hash<std::string>{}(attack + spec.arch));
    const std::uint64_t model_seed = seeder.next_u64();

    // Draw every cell's seed up front in the same order an uninterrupted
    // run would, so skipping completed cells never shifts the seeds of the
    // remaining ones.
    struct Cell {
      std::int64_t spc;
      const std::string* defense;
      std::uint64_t seed;
      std::string key;
    };
    std::vector<Cell> cells;
    for (const auto spc : scale.spc_settings) {
      for (const auto& defense : spec.defenses) {
        cells.push_back({spc, &defense, seeder.next_u64(),
                         robust::stable_hash_hex("cell|" + sig + '|' + attack +
                                                 '|' + defense + '|' +
                                                 std::to_string(spc))});
      }
    }
    const std::string base_key =
        robust::stable_hash_hex("baseline|" + sig + '|' + attack);

    bool all_cached = resume && journal.has(base_key);
    for (const auto& cell : cells) {
      all_cached = all_cached && journal.has(cell.key);
    }

    // The expensive attack run is needed only when some cell still has to
    // execute; a fully journaled attack resumes without retraining.
    std::optional<BackdooredModel> bd;
    BackdoorMetrics baseline;
    if (all_cached) {
      baseline = decode_baseline(*journal.find(base_key));
      BD_LOG(Info) << attack << ": all cells journaled, skipping attack "
                      "training";
    } else {
      BD_OBS_SPAN("bench.attack_prepare");
      bd.emplace(prepare_backdoored_model(spec.dataset, spec.arch, attack,
                                          scale, model_seed));
      baseline = bd->baseline;
      if (journal.enabled() && !(resume && journal.has(base_key))) {
        journal.record(base_key, encode_baseline(attack, baseline));
      }
    }
    run.baselines.emplace_back(attack, baseline);

    char acc_buf[32], asr_buf[32], ra_buf[32];
    std::snprintf(acc_buf, sizeof(acc_buf), "%.2f", baseline.acc);
    std::snprintf(asr_buf, sizeof(asr_buf), "%.2f", baseline.asr);
    std::snprintf(ra_buf, sizeof(ra_buf), "%.2f", baseline.ra);
    table.add_row({attack, "-", "Baseline", acc_buf, asr_buf, ra_buf});

    for (const auto& cell : cells) {
      SettingResult setting;
      const robust::JournalFields* cached =
          resume ? journal.find(cell.key) : nullptr;
      if (cached != nullptr) {
        setting = decode_setting(*cached);
        ++run.resumed_cells;
        BD_OBS_COUNT("bench.cells_resumed", 1);
      } else {
        BD_OBS_SPAN_ARG("bench.cell", cell.spc);
        BD_OBS_COUNT("bench.cells_run", 1);
        Stopwatch cell_watch;
        setting = run_setting(*bd, *cell.defense, cell.spc, scale, cell.seed);
        BD_OBS_OBSERVE("bench.cell_seconds", cell_watch.seconds(),
                       ::bd::obs::seconds_buckets());
        if (journal.enabled()) {
          journal.record(cell.key, encode_setting(setting));
        }
        // The journal entry above is flushed; a kill here loses nothing.
        faults.fire_crash("bench cell " + setting.attack + "/" +
                          setting.defense + "/spc=" +
                          std::to_string(setting.spc));
      }
      table.add_row({attack, std::to_string(cell.spc),
                     core::defense_display_name(*cell.defense),
                     mean_std_string(setting.acc),
                     mean_std_string(setting.asr),
                     mean_std_string(setting.ra)});
      run.settings.push_back(std::move(setting));
    }
  }

  std::printf("%s\n", table.to_string().c_str());

  if (spec.scatter) {
    // Figure series: one (ASR, ACC) and (ASR, RA) point per trial.
    std::printf("# scatter: defense,attack,spc,trial,asr,acc,ra\n");
    for (const auto& s : run.settings) {
      for (std::size_t t = 0; t < s.asr.size(); ++t) {
        std::printf("scatter,%s,%s,%lld,%zu,%.2f,%.2f,%.2f\n",
                    s.defense.c_str(), s.attack.c_str(),
                    static_cast<long long>(s.spc), t + 1, s.asr[t], s.acc[t],
                    s.ra[t]);
      }
    }
    std::printf("\n");
  }

  std::printf("total: %.1fs\n\n", watch.seconds());
  return run;
}

}  // namespace bd::eval
