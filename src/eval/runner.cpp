#include "eval/runner.h"

#include <stdexcept>

#include "core/grad_prune.h"
#include "core/registry.h"
#include "data/synth.h"
#include "defense/anp.h"
#include "defense/fine_pruning.h"
#include "defense/finetune.h"
#include "defense/ftsam.h"
#include "defense/nad.h"
#include "obs/obs.h"
#include "robust/fault_injector.h"
#include "robust/supervisor.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bd::eval {

ExperimentScale default_scale(const std::string& dataset) {
  ExperimentScale s;
  const bool full = full_mode();
  const bool gtsrb = dataset == "gtsrb";
  if (dataset != "cifar" && dataset != "gtsrb") {
    throw std::invalid_argument("default_scale: unknown dataset '" + dataset +
                                "'");
  }

  s.data.height = s.data.width = full ? 20 : 12;
  // The SPC=100 setting needs >= 112 clean training samples per class
  // (100 for the defender + headroom); quick mode stops at SPC=10.
  s.data.train_per_class = full ? (gtsrb ? 140 : 260) : (gtsrb ? 40 : 90);
  s.data.test_per_class = full ? (gtsrb ? 25 : 60) : (gtsrb ? 8 : 25);

  s.attack_train.epochs = full ? 8 : 4;
  s.attack_train.batch_size = 32;
  s.attack_train.lr = 0.05f;
  s.attack_train.lr_decay = 0.7f;

  s.base_width = full ? 16 : 8;
  s.spc_settings = full ? std::vector<std::int64_t>{2, 10, 100}
                        : std::vector<std::int64_t>{2, 10};
  s.trials = trial_count(/*quick_default=*/2, /*full_default=*/5);

  s.defense_max_epochs = full ? 50 : 15;
  s.prune_max_rounds = full ? 150 : 40;
  s.anp_iterations = full ? 120 : 60;
  s.nad_teacher_epochs = full ? 10 : 4;
  s.nad_distill_epochs = full ? 20 : 8;
  return s;
}

std::unique_ptr<models::Classifier> BackdooredModel::instantiate(
    Rng& rng) const {
  auto model = models::make_model(spec, rng);
  model->load_state_dict(state);
  model->set_training(false);
  return model;
}

BackdooredModel prepare_backdoored_model(const std::string& dataset,
                                         const std::string& arch,
                                         const std::string& attack,
                                         const ExperimentScale& scale,
                                         std::uint64_t seed) {
  BD_OBS_SPAN("runner.prepare");
  Stopwatch watch;
  Rng rng(seed);

  data::TrainTest split = dataset == "gtsrb"
                              ? data::make_synth_gtsrb(scale.data, rng)
                              : data::make_synth_cifar(scale.data, rng);
  const Shape image_shape = split.train.image_shape();
  const std::int64_t num_classes = split.train.num_classes();

  BackdooredModel bd{dataset,
                     attack,
                     models::ModelSpec{},
                     {},
                     attack::make_trigger(attack, image_shape),
                     std::move(split.train),
                     std::move(split.test),
                     data::ImageDataset(image_shape, num_classes),
                     data::ImageDataset(image_shape, num_classes),
                     BackdoorMetrics{},
                     robust::GuardReport{}};

  bd.spec.arch = arch;
  bd.spec.num_classes = bd.clean_train_pool.num_classes();
  bd.spec.in_channels = bd.clean_train_pool.image_shape()[0];
  bd.spec.base_width = scale.base_width;

  const attack::PoisonConfig poison_cfg;  // 10% poisoning, target class 0
  const data::ImageDataset poisoned = attack::poison_training_set(
      bd.clean_train_pool, *bd.trigger, poison_cfg, rng);

  bd.asr_test =
      attack::make_asr_test_set(bd.clean_test, *bd.trigger, poison_cfg.target_class);
  bd.ra_test =
      attack::make_ra_test_set(bd.clean_test, *bd.trigger, poison_cfg.target_class);

  auto model = models::make_model(bd.spec, rng);
  BD_LOG(Info) << "training backdoored " << arch << " (" << attack << ", "
               << dataset << ", " << model->parameter_count() << " params)";
  const TrainResult train = train_classifier(*model, poisoned,
                                             scale.attack_train, rng);
  bd.train_guard = train.guard;
  if (train.guard.recoveries > 0 || train.guard.gave_up) {
    BD_LOG(Warn) << "attack training recovered from divergence: "
                 << train.guard.summary();
  }

  bd.state = model->state_dict();
  bd.baseline =
      evaluate_backdoor(*model, bd.clean_test, bd.asr_test, bd.ra_test);
  BD_LOG(Info) << "baseline ACC=" << bd.baseline.acc
               << " ASR=" << bd.baseline.asr << " RA=" << bd.baseline.ra
               << " (" << watch.seconds() << "s)";
  return bd;
}

namespace {

std::unique_ptr<defense::Defense> make_scaled_defense(
    const std::string& name, const ExperimentScale& scale) {
  if (name == "ft") {
    defense::FinetuneConfig c;
    c.max_epochs = scale.defense_max_epochs;
    return std::make_unique<defense::FinetuneDefense>(c);
  }
  if (name == "fp") {
    defense::FinePruningConfig c;
    c.finetune_max_epochs = scale.defense_max_epochs;
    return std::make_unique<defense::FinePruningDefense>(c);
  }
  if (name == "nad") {
    defense::NadConfig c;
    c.teacher_epochs = scale.nad_teacher_epochs;
    c.distill_epochs = scale.nad_distill_epochs;
    return std::make_unique<defense::NadDefense>(c);
  }
  if (name == "ftsam") {
    defense::FtSamConfig c;
    c.max_epochs = scale.defense_max_epochs;
    return std::make_unique<defense::FtSamDefense>(c);
  }
  if (name == "anp") {
    defense::AnpConfig c;
    c.iterations = scale.anp_iterations;
    return std::make_unique<defense::AnpDefense>(c);
  }
  if (name == "gradprune") {
    core::GradPruneConfig c;
    c.max_prune_rounds = scale.prune_max_rounds;
    c.finetune_max_epochs = scale.defense_max_epochs;
    return std::make_unique<core::GradPruneDefense>(c);
  }
  // clp and anything else: library defaults.
  return core::make_defense(name);
}

}  // namespace

TrialResult run_defense_trial(const BackdooredModel& bd,
                              const std::string& defense_name,
                              std::int64_t spc, const ExperimentScale& scale,
                              std::uint64_t trial_seed) {
  SanitizeRequest req;
  req.defense = defense_name;
  req.spc = spc;
  req.seed = trial_seed;
  SanitizeOutcome out = run_sanitization(bd, req, scale);
  return TrialResult{out.metrics, std::move(out.info)};
}

SanitizeOutcome run_sanitization(const BackdooredModel& bd,
                                 const SanitizeRequest& req,
                                 const ExperimentScale& scale) {
  BD_OBS_SPAN_ARG("runner.trial", req.spc);
  BD_OBS_COUNT("runner.trials", 1);
  robust::FaultInjector::instance().fire_oom("runner.trial");
  Rng rng(req.seed);
  auto model = bd.instantiate(rng);
  if (req.state_override != nullptr) {
    model->load_state_dict(*req.state_override);
  }

  const data::ImageDataset spc_set =
      bd.clean_train_pool.sample_per_class(req.spc, rng);
  const defense::DefenseContext ctx =
      defense::make_defense_context(spc_set, *bd.trigger, bd.spec, rng);

  auto defense = make_scaled_defense(req.defense, scale);
  SanitizeOutcome result;
  result.info = defense->apply(*model, ctx);
  result.metrics =
      evaluate_backdoor(*model, bd.clean_test, bd.asr_test, bd.ra_test);
  if (req.keep_model) result.model = std::move(model);
  return result;
}

TrialResult run_custom_defense_trial(const BackdooredModel& bd,
                                     defense::Defense& defense,
                                     std::int64_t spc,
                                     std::uint64_t trial_seed) {
  BD_OBS_SPAN_ARG("runner.trial", spc);
  BD_OBS_COUNT("runner.trials", 1);
  Rng rng(trial_seed);
  auto model = bd.instantiate(rng);

  const data::ImageDataset spc_set =
      bd.clean_train_pool.sample_per_class(spc, rng);
  const defense::DefenseContext ctx =
      defense::make_defense_context(spc_set, *bd.trigger, bd.spec, rng);

  TrialResult result;
  result.info = defense.apply(*model, ctx);
  result.metrics =
      evaluate_backdoor(*model, bd.clean_test, bd.asr_test, bd.ra_test);
  return result;
}

SettingResult run_setting(const BackdooredModel& bd,
                          const std::string& defense_name, std::int64_t spc,
                          const ExperimentScale& scale, std::uint64_t seed) {
  SettingResult out;
  out.attack = bd.attack;
  out.defense = defense_name;
  out.spc = spc;

  // Pre-draw every trial seed before any work runs: a supervised retry of
  // trial t re-uses trial_seeds[t] verbatim, so retries neither advance the
  // seeder nor shift the seeds of later trials.
  Rng seeder(seed);
  std::vector<std::uint64_t> trial_seeds;
  trial_seeds.reserve(static_cast<std::size_t>(scale.trials));
  for (int t = 0; t < scale.trials; ++t) {
    trial_seeds.push_back(seeder.next_u64());
  }

  const std::string supervise_key =
      bd.attack + "|" + defense_name + "|" + std::to_string(spc);
  auto& supervisor = robust::Supervisor::instance();
  for (int t = 0; t < scale.trials; ++t) {
    TrialResult trial;
    const robust::RunReport report = supervisor.run(supervise_key, [&] {
      trial = run_defense_trial(bd, defense_name, spc, scale,
                                trial_seeds[static_cast<std::size_t>(t)]);
    });
    out.attempts += report.attempts;
    if (!report.ok()) {
      out.degraded = true;
      out.failure = report.failure;
      BD_LOG(Warn) << bd.attack << " spc=" << spc << " " << defense_name
                   << " trial " << (t + 1) << "/" << scale.trials
                   << " degraded: " << report.failure;
      break;
    }
    out.acc.push_back(trial.metrics.acc);
    out.asr.push_back(trial.metrics.asr);
    out.ra.push_back(trial.metrics.ra);
    out.seconds.push_back(trial.info.seconds);
    out.pruned.push_back(trial.info.pruned_units);
    out.recoveries.push_back(trial.info.recoveries);
    BD_LOG(Info) << bd.attack << " spc=" << spc << " " << defense_name
                 << " trial " << (t + 1) << "/" << scale.trials
                 << ": ACC=" << trial.metrics.acc
                 << " ASR=" << trial.metrics.asr
                 << " RA=" << trial.metrics.ra
                 << (trial.info.recoveries > 0
                         ? " (recoveries=" +
                               std::to_string(trial.info.recoveries) + ")"
                         : "");
  }
  return out;
}

}  // namespace bd::eval
