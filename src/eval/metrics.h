// Performance measures from Sec. V-C of the paper:
//   ACC - accuracy on the clean test set
//   ASR - accuracy on triggered images labelled with the target class
//   RA  - accuracy on triggered images labelled with their true classes
// ASR + RA <= 1 by construction (a prediction cannot match both labels for
// non-target images).
#pragma once

#include "data/dataset.h"
#include "models/classifier.h"

namespace bd::eval {

/// Fraction of examples the model classifies as their dataset label.
/// Runs in eval mode without gradient recording; restores training mode.
double accuracy(models::Classifier& model, const data::ImageDataset& dataset,
                std::int64_t batch_size = 64);

/// Mean cross-entropy of the model on the dataset (eval mode, no grad).
double dataset_loss(models::Classifier& model,
                    const data::ImageDataset& dataset,
                    std::int64_t batch_size = 64);

struct BackdoorMetrics {
  double acc = 0.0;  // clean accuracy, percent
  double asr = 0.0;  // attack success rate, percent
  double ra = 0.0;   // recovery accuracy, percent
};

/// Evaluates the three paper metrics (in percent).
BackdoorMetrics evaluate_backdoor(models::Classifier& model,
                                  const data::ImageDataset& clean_test,
                                  const data::ImageDataset& asr_test,
                                  const data::ImageDataset& ra_test,
                                  std::int64_t batch_size = 64);

}  // namespace bd::eval
