#include "defense/nad.h"

#include "autograd/ops.h"
#include "eval/trainer.h"
#include "obs/obs.h"
#include "optim/optim.h"
#include "robust/cancel.h"
#include "util/stopwatch.h"

namespace bd::defense {

ag::Var attention_map(const ag::Var& feature) {
  // A(F) = mean_c F^2 -> (N,1,H,W), then per-sample L2 normalization.
  ag::Var a = ag::reduce_mean(ag::mul(feature, feature), {1}, /*keepdim=*/true);
  ag::Var norm = ag::sqrt(
      ag::add_scalar(ag::reduce_sum(ag::mul(a, a), {1, 2, 3}, true), 1e-8f));
  return ag::div(a, norm);
}

DefenseResult NadDefense::apply(models::Classifier& model,
                                const DefenseContext& context) {
  BD_OBS_SPAN("defense.nad");
  Stopwatch watch;
  Rng& rng = context.rng_ref();
  DefenseResult out;
  out.defense_name = name();

  // 1. Teacher: copy of the backdoored model, fine-tuned on clean data.
  auto teacher = models::make_model(context.model_spec, rng);
  teacher->load_state_dict(model.state_dict());
  eval::TrainConfig teacher_cfg;
  teacher_cfg.epochs = config_.teacher_epochs;
  teacher_cfg.batch_size = config_.batch_size;
  teacher_cfg.lr = config_.lr;
  {
    BD_OBS_SPAN("nad.teacher");
    const eval::TrainResult teacher_train =
        eval::train_classifier(*teacher, context.clean_train, teacher_cfg,
                               rng);
    out.recoveries = teacher_train.guard.recoveries;
  }
  teacher->set_training(false);

  // 2. Distillation: CE + beta * sum_l ||A_l(S) - A_l(T)||^2.
  optim::SgdOptions opts;
  opts.lr = config_.lr;
  opts.momentum = 0.9f;
  optim::Sgd sgd(model.parameters(), opts);

  for (std::int64_t epoch = 0; epoch < config_.distill_epochs; ++epoch) {
    BD_OBS_SPAN_ARG("nad.distill_epoch", epoch);
    model.set_training(true);
    data::DataLoader loader(context.clean_train, config_.batch_size, rng);
    data::Batch batch;
    while (loader.next(batch)) {
      robust::poll_cancellation("nad.distill_batch");
      // Teacher attention, computed without building a graph.
      std::vector<Tensor> teacher_attn;
      {
        ag::NoGradGuard no_grad;
        const auto t = teacher->forward_with_features(ag::Var(batch.images));
        teacher_attn.reserve(t.stage_features.size());
        for (const auto& f : t.stage_features) {
          teacher_attn.push_back(attention_map(f).value());
        }
      }

      sgd.zero_grad();
      const auto s = model.forward_with_features(ag::Var(batch.images));
      ag::Var loss = ag::cross_entropy(s.logits, batch.labels);
      for (std::size_t l = 0; l < s.stage_features.size(); ++l) {
        const ag::Var sa = attention_map(s.stage_features[l]);
        const ag::Var ta(teacher_attn[l]);  // constant
        loss = ag::add(loss,
                       ag::mul_scalar(ag::mse_loss(sa, ta), config_.beta));
      }
      loss.backward();
      sgd.step();
    }
    ++out.finetune_epochs;
  }

  model.set_training(false);
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
