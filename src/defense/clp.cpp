#include "defense/clp.h"

#include <cmath>

#include "obs/obs.h"
#include "robust/cancel.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace bd::defense {

float spectral_norm(const Tensor& matrix, std::int64_t iterations) {
  const std::int64_t rows = matrix.size(0), cols = matrix.size(1);
  // Deterministic start vector keeps CLP fully reproducible (and data-free).
  Tensor v({cols, 1});
  for (std::int64_t i = 0; i < cols; ++i) {
    v[i] = 1.0f / std::sqrt(static_cast<float>(cols));
  }
  Tensor mt = transpose2d(matrix);
  float sigma = 0.0f;
  for (std::int64_t it = 0; it < iterations; ++it) {
    Tensor u = matmul(matrix, v);  // (rows,1)
    const float un = l2_norm(u);
    if (un == 0.0f) return 0.0f;
    for (std::int64_t i = 0; i < rows; ++i) u[i] /= un;
    v = matmul(mt, u);  // (cols,1)
    sigma = l2_norm(v);
    if (sigma == 0.0f) return 0.0f;
    for (std::int64_t i = 0; i < cols; ++i) v[i] /= sigma;
  }
  return sigma;
}

std::vector<float> channel_lipschitz_bounds(nn::Conv2d& conv,
                                            const nn::BatchNorm2d* bn,
                                            std::int64_t power_iterations) {
  const Tensor& w = conv.weight().value();  // (out, in, k, k)
  const std::int64_t out_ch = w.size(0), in_ch = w.size(1);
  const std::int64_t kk = w.size(2) * w.size(3);

  std::vector<float> bounds(static_cast<std::size_t>(out_ch));
  for (std::int64_t c = 0; c < out_ch; ++c) {
    Tensor filter({in_ch, kk});
    std::copy(w.data() + c * in_ch * kk, w.data() + (c + 1) * in_ch * kk,
              filter.data());
    float sigma = spectral_norm(filter, power_iterations);
    if (bn != nullptr) {
      const auto* bn_mut = const_cast<nn::BatchNorm2d*>(bn);
      const float gamma =
          const_cast<nn::BatchNorm2d*>(bn_mut)->gamma().value()[c];
      const float var = const_cast<nn::BatchNorm2d*>(bn_mut)->running_var()[c];
      sigma *= std::fabs(gamma) / std::sqrt(var + 1e-5f);
    }
    bounds[static_cast<std::size_t>(c)] = sigma;
  }
  return bounds;
}

DefenseResult ClpDefense::apply(models::Classifier& model,
                                const DefenseContext& /*context*/) {
  BD_OBS_SPAN("defense.clp");
  Stopwatch watch;
  DefenseResult out;
  out.defense_name = name();

  // Ordered pre-order module list to pair each conv with the next matching
  // BatchNorm (the layer that scales its output).
  std::vector<nn::Module*> ordered;
  model.visit([&ordered](nn::Module& m) { ordered.push_back(&m); });

  for (std::size_t i = 0; i < ordered.size(); ++i) {
    auto* conv = dynamic_cast<nn::Conv2d*>(ordered[i]);
    if (conv == nullptr) continue;
    robust::poll_cancellation("clp.conv");

    nn::BatchNorm2d* bn = nullptr;
    for (std::size_t j = i + 1; j < ordered.size(); ++j) {
      if (auto* candidate = dynamic_cast<nn::BatchNorm2d*>(ordered[j])) {
        if (candidate->channels() == conv->out_channels()) {
          bn = candidate;
        }
        break;  // first BN after the conv decides (match or not)
      }
    }

    std::vector<float> bounds;
    {
      BD_OBS_SPAN_ARG("clp.lipschitz", conv->out_channels());
      bounds = channel_lipschitz_bounds(*conv, bn, config_.power_iterations);
    }
    RunningStat stat;
    for (const float b : bounds) stat.add(b);
    const double threshold = stat.mean() + config_.u * stat.stddev();
    if (stat.stddev() == 0.0) continue;

    for (std::int64_t c = 0; c < conv->out_channels(); ++c) {
      if (bounds[static_cast<std::size_t>(c)] > threshold) {
        conv->prune_filter(c);
        if (bn != nullptr) bn->suppress_channel(c);
        ++out.pruned_units;
      }
    }
  }

  BD_LOG(Debug) << "CLP pruned " << out.pruned_units << " channels";
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
