// FT-SAM baseline (Zhu et al. 2023): fine-tuning with sharpness-aware
// minimization. The SAM perturbation pushes weights out of the sharp
// backdoor minimum that plain fine-tuning cannot escape, which is why the
// paper finds FT-SAM the strongest fine-tuning-only defense.
#pragma once

#include "defense/defense.h"

namespace bd::defense {

struct FtSamConfig {
  std::int64_t max_epochs = 50;  // fixed budget (BackdoorBench default)
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float rho = 1.0f;   // SAM neighbourhood radius (FT-SAM uses large rho)
};

class FtSamDefense : public Defense {
 public:
  FtSamDefense() = default;
  explicit FtSamDefense(FtSamConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "ftsam"; }

 private:
  FtSamConfig config_;
};

}  // namespace bd::defense
