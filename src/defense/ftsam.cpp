#include "defense/ftsam.h"

#include <memory>

#include "autograd/ops.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "optim/optim.h"
#include "robust/cancel.h"
#include "util/stopwatch.h"

namespace bd::defense {

DefenseResult FtSamDefense::apply(models::Classifier& model,
                                  const DefenseContext& context) {
  BD_OBS_SPAN("defense.ftsam");
  Stopwatch watch;
  Rng& rng = context.rng_ref();

  optim::SgdOptions sgd_opts;
  sgd_opts.lr = config_.lr;
  sgd_opts.momentum = config_.momentum;
  optim::Sam sam(std::make_unique<optim::Sgd>(model.parameters(), sgd_opts),
                 config_.rho);

  DefenseResult out;
  out.defense_name = name();

  for (std::int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    BD_OBS_SPAN_ARG("ftsam.epoch", epoch);
    model.set_training(true);
    data::DataLoader loader(context.clean_train, config_.batch_size, rng);
    data::Batch batch;
    while (loader.next(batch)) {
      robust::poll_cancellation("ftsam.batch");
      // First SAM step: gradient at w, ascend to w + e(w).
      sam.zero_grad();
      ag::Var loss1 = ag::cross_entropy(
          model.forward(ag::Var(batch.images)), batch.labels);
      loss1.backward();
      sam.first_step();
      // Second step: gradient at the perturbed point, descend from w.
      sam.zero_grad();
      ag::Var loss2 = ag::cross_entropy(
          model.forward(ag::Var(batch.images)), batch.labels);
      loss2.backward();
      sam.second_step();
    }
    ++out.finetune_epochs;
  }

  model.set_training(false);
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
