// Common defense interface (Sec. V-B benchmark protocol).
//
// Every mitigation approach receives the same DefenseContext: the
// defender's SPC clean samples (split into train/val per the paper: 90/10,
// and exactly 1/1 per class at SPC=2), the synthesized backdoor variants of
// those same samples labelled with their TRUE classes, and the model spec
// (needed by defenses that build auxiliary models, e.g. NAD's teacher).
#pragma once

#include <memory>
#include <string>

#include "attack/trigger.h"
#include "data/dataset.h"
#include "models/classifier.h"
#include "models/factory.h"

namespace bd::defense {

struct DefenseContext {
  data::ImageDataset clean_train;
  data::ImageDataset clean_val;
  /// Triggered versions of the defender's clean samples, true labels
  /// (the Sec. III-C synthesis assumption; the Eq. 2 unlearning targets).
  data::ImageDataset backdoor_train;
  data::ImageDataset backdoor_val;
  models::ModelSpec model_spec;
  Rng* rng = nullptr;

  Rng& rng_ref() const;
};

/// Builds the context from the defender's SPC sample set and the
/// (synthesizable) trigger. `val_fraction` follows the paper's 10%.
DefenseContext make_defense_context(const data::ImageDataset& spc_clean,
                                    const attack::TriggerApplier& trigger,
                                    const models::ModelSpec& spec, Rng& rng,
                                    double val_fraction = 0.1);

struct DefenseResult {
  std::string defense_name;
  std::int64_t pruned_units = 0;     // filters/channels removed
  std::int64_t finetune_epochs = 0;  // epochs of post-processing
  double seconds = 0.0;              // wall-clock of apply()
  /// Divergence recoveries during the defense: TrainGuard rollbacks in the
  /// fine-tuning stages plus pruning rounds skipped for non-finite
  /// gradients (see robust/train_guard.h).
  std::int64_t recoveries = 0;
};

class Defense {
 public:
  virtual ~Defense() = default;

  /// Mutates `model` in place to remove the backdoor.
  virtual DefenseResult apply(models::Classifier& model,
                              const DefenseContext& context) = 0;

  virtual std::string name() const = 0;
};

}  // namespace bd::defense
