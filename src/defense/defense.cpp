#include "defense/defense.h"

#include <stdexcept>

#include "attack/poison.h"

namespace bd::defense {

Rng& DefenseContext::rng_ref() const {
  if (rng == nullptr) {
    throw std::logic_error("DefenseContext: rng not set");
  }
  return *rng;
}

DefenseContext make_defense_context(const data::ImageDataset& spc_clean,
                                    const attack::TriggerApplier& trigger,
                                    const models::ModelSpec& spec, Rng& rng,
                                    double val_fraction) {
  DefenseContext ctx{
      data::ImageDataset(spc_clean.image_shape(), spc_clean.num_classes()),
      data::ImageDataset(spc_clean.image_shape(), spc_clean.num_classes()),
      data::ImageDataset(spc_clean.image_shape(), spc_clean.num_classes()),
      data::ImageDataset(spc_clean.image_shape(), spc_clean.num_classes()),
      spec,
      &rng};
  auto [train, val] = spc_clean.split_per_class(1.0 - val_fraction, rng);
  ctx.clean_train = std::move(train);
  ctx.clean_val = std::move(val);
  ctx.backdoor_train = attack::synthesize_backdoor_set(ctx.clean_train, trigger);
  ctx.backdoor_val = attack::synthesize_backdoor_set(ctx.clean_val, trigger);
  return ctx;
}

}  // namespace bd::defense
