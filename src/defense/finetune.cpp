#include "defense/finetune.h"

#include "eval/trainer.h"
#include "obs/obs.h"
#include "robust/cancel.h"
#include "util/stopwatch.h"

namespace bd::defense {

DefenseResult FinetuneDefense::apply(models::Classifier& model,
                                     const DefenseContext& context) {
  BD_OBS_SPAN("defense.finetune");
  robust::poll_cancellation("finetune.start");
  Stopwatch watch;
  eval::TrainConfig cfg;
  cfg.epochs = config_.max_epochs;
  cfg.batch_size = config_.batch_size;
  cfg.lr = config_.lr;
  cfg.momentum = config_.momentum;
  const eval::TrainResult train = eval::train_classifier(
      model, context.clean_train, cfg, context.rng_ref());
  model.set_training(false);

  DefenseResult out;
  out.defense_name = name();
  out.finetune_epochs = config_.max_epochs;
  out.recoveries = train.guard.recoveries;
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
