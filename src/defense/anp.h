// ANP baseline (Wu & Wang 2021): Adversarial Neuron Pruning.
//
// Backdoor neurons are the ones most sensitive to adversarial weight
// perturbation. ANP learns a per-channel mask m on every BatchNorm scale by
// solving  min_m  alpha * L(m) + (1-alpha) * max_|delta|<=eps L(m, delta)
// on the defender's clean data, then prunes channels whose mask falls
// below a threshold.
#pragma once

#include "defense/defense.h"

namespace bd::defense {

struct AnpConfig {
  std::int64_t iterations = 60;    // outer mask updates
  std::int64_t batch_size = 32;
  float mask_lr = 0.2f;
  float eps = 0.4f;        // perturbation budget on gamma (relative)
  float eps_step = 0.4f;   // inner sign-ascent step (one jump to the eps boundary)
  float trade_off = 0.5f;  // alpha: weight of the unperturbed loss
  float prune_threshold = 0.25f;
  /// Safety floor: stop pruning once clean validation accuracy has dropped
  /// this much below its initial value (channels are pruned in ascending
  /// mask order, most backdoor-suspect first).
  double max_accuracy_drop = 0.10;
};

class AnpDefense : public Defense {
 public:
  AnpDefense() = default;
  explicit AnpDefense(AnpConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "anp"; }

 private:
  AnpConfig config_;
};

}  // namespace bd::defense
