#include "defense/inversion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "autograd/ops.h"
#include "obs/obs.h"
#include "optim/optim.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace bd::defense {

namespace {

/// Blends a triggered batch: (1 - m) .* x + m .* p, all autograd-aware.
/// x is (N,C,H,W); mask is (1,1,H,W); pattern is (1,C,H,W).
ag::Var blend(const ag::Var& x, const ag::Var& mask, const ag::Var& pattern) {
  const ag::Var keep = ag::add_scalar(ag::neg(mask), 1.0f);  // 1 - m
  return ag::add(ag::mul(keep, x), ag::mul(mask, pattern));
}

}  // namespace

InvertedTrigger invert_trigger(models::Classifier& model,
                               const data::ImageDataset& clean,
                               std::int64_t target_class,
                               const InversionConfig& config, Rng& rng) {
  if (clean.empty()) {
    throw std::invalid_argument("invert_trigger: empty clean set");
  }
  BD_OBS_SPAN_ARG("inversion.invert_trigger", target_class);
  const Shape img = clean.image_shape();  // (C,H,W)
  const std::int64_t c = img[0], h = img[1], w = img[2];

  model.set_training(false);

  // Raw (pre-sigmoid) variables; start near m ~ 0.1, p ~ 0.5.
  ag::Var raw_mask(Tensor::full({1, 1, h, w}, -2.2f), /*requires_grad=*/true);
  ag::Var raw_pattern(Tensor::zeros({1, c, h, w}), /*requires_grad=*/true);
  for (std::int64_t i = 0; i < raw_pattern.value().numel(); ++i) {
    raw_pattern.mutable_value()[i] =
        static_cast<float>(rng.normal(0.0, 0.1));
  }

  optim::AdamOptions opts;
  opts.lr = config.lr;
  optim::Adam adam({&raw_mask, &raw_pattern}, opts);

  data::DataLoader loader(clean, config.batch_size, rng);
  data::Batch batch;
  double final_loss = 0.0;

  for (std::int64_t it = 0; it < config.iterations; ++it) {
    if (!loader.next(batch)) {
      loader.reset();
      loader.next(batch);
    }
    const std::vector<std::int64_t> targets(
        static_cast<std::size_t>(batch.size()), target_class);

    adam.zero_grad();
    const ag::Var mask = ag::sigmoid(raw_mask);
    const ag::Var pattern = ag::sigmoid(raw_pattern);
    const ag::Var triggered = blend(ag::Var(batch.images), mask, pattern);
    const ag::Var ce =
        ag::cross_entropy(model.forward(triggered), targets);
    ag::Var loss = ag::add(
        ce, ag::mul_scalar(ag::sum_all(mask), config.lambda_l1));
    loss.backward();
    adam.step();
    final_loss = loss.value()[0];
  }

  InvertedTrigger out;
  out.mask = bd::sigmoid(raw_mask.value()).reshape({1, h, w});
  out.pattern = bd::sigmoid(raw_pattern.value()).reshape({c, h, w});
  out.mask_l1 = l1_norm(out.mask);
  out.final_loss = final_loss;
  out.target_class = target_class;
  return out;
}

InvertedTriggerApplier::InvertedTriggerApplier(InvertedTrigger trigger)
    : trigger_(std::move(trigger)) {
  if (!trigger_.mask.defined() || !trigger_.pattern.defined()) {
    throw std::invalid_argument("InvertedTriggerApplier: undefined trigger");
  }
}

Tensor InvertedTriggerApplier::apply(const Tensor& image) const {
  if (image.shape() != trigger_.pattern.shape()) {
    throw std::invalid_argument("InvertedTriggerApplier: shape mismatch");
  }
  const std::int64_t c = image.size(0);
  const std::int64_t hw = image.size(1) * image.size(2);
  Tensor out(image.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t i = 0; i < hw; ++i) {
      const float m = trigger_.mask[i];
      out[ch * hw + i] = (1.0f - m) * image[ch * hw + i] +
                         m * trigger_.pattern[ch * hw + i];
    }
  }
  return out;
}

std::vector<std::int64_t> TargetScanResult::ranked_candidates() const {
  std::vector<std::int64_t> order(per_class.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }
  std::sort(order.begin(), order.end(), [this](std::int64_t a, std::int64_t b) {
    return per_class[static_cast<std::size_t>(a)].mask_l1 <
           per_class[static_cast<std::size_t>(b)].mask_l1;
  });
  return order;
}

TargetScanResult scan_for_backdoor_target(models::Classifier& model,
                                          const data::ImageDataset& clean,
                                          const InversionConfig& config,
                                          Rng& rng) {
  BD_OBS_SPAN("defense.inversion");
  TargetScanResult result;
  const std::int64_t classes = clean.num_classes();
  result.per_class.reserve(static_cast<std::size_t>(classes));
  for (std::int64_t t = 0; t < classes; ++t) {
    result.per_class.push_back(invert_trigger(model, clean, t, config, rng));
    BD_LOG(Debug) << "inversion class " << t
                  << " mask_l1=" << result.per_class.back().mask_l1;
  }

  // Median absolute deviation outlier test on mask L1 norms (small = easy
  // class flip = suspicious, as in Neural Cleanse).
  std::vector<double> l1s;
  for (const auto& trig : result.per_class) l1s.push_back(trig.mask_l1);
  std::vector<double> sorted = l1s;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::vector<double> dev;
  for (const double v : l1s) dev.push_back(std::fabs(v - median));
  std::vector<double> dev_sorted = dev;
  std::sort(dev_sorted.begin(), dev_sorted.end());
  const double mad = dev_sorted[dev_sorted.size() / 2];
  if (mad <= 1e-12) return result;

  double best_index = 0.0;
  std::int64_t best_class = -1;
  for (std::int64_t t = 0; t < classes; ++t) {
    const auto i = static_cast<std::size_t>(t);
    if (l1s[i] >= median) continue;  // only abnormally SMALL triggers
    const double anomaly = dev[i] / (1.4826 * mad);
    if (anomaly > best_index) {
      best_index = anomaly;
      best_class = t;
    }
  }
  result.anomaly_index = best_index;
  if (best_index > 2.0) result.detected_target = best_class;
  return result;
}

}  // namespace bd::defense
