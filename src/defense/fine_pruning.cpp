#include "defense/fine_pruning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eval/metrics.h"
#include "eval/trainer.h"
#include "nn/layers.h"
#include "obs/obs.h"
#include "robust/cancel.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bd::defense {

namespace {

/// Mean activation per channel of the deepest stage feature over `data`.
std::vector<double> channel_activations(models::Classifier& model,
                                        const data::ImageDataset& data,
                                        std::int64_t batch_size) {
  model.set_training(false);
  ag::NoGradGuard no_grad;
  std::vector<double> sums;
  std::int64_t seen = 0;

  Rng dummy(0);
  data::DataLoader loader(data, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const auto staged = model.forward_with_features(ag::Var(batch.images));
    const Tensor& f = staged.stage_features.back().value();  // (N,C,H,W)
    const std::int64_t n = f.size(0), c = f.size(1);
    const std::int64_t hw = f.size(2) * f.size(3);
    if (sums.empty()) sums.assign(static_cast<std::size_t>(c), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float* plane = f.data() + (i * c + ch) * hw;
        double s = 0.0;
        for (std::int64_t j = 0; j < hw; ++j) s += std::fabs(plane[j]);
        sums[static_cast<std::size_t>(ch)] += s / static_cast<double>(hw);
      }
    }
    seen += n;
  }
  for (auto& s : sums) s /= static_cast<double>(seen);
  return sums;
}

/// The last standard conv layer whose output width matches `channels`
/// (the layer producing the deepest feature map), or nullptr.
nn::Conv2d* matching_last_conv(models::Classifier& model,
                               std::int64_t channels) {
  auto convs = model.modules_of_type<nn::Conv2d>();
  for (auto it = convs.rbegin(); it != convs.rend(); ++it) {
    if ((*it)->out_channels() == channels) return *it;
  }
  return nullptr;
}

}  // namespace

DefenseResult FinePruningDefense::apply(models::Classifier& model,
                                        const DefenseContext& context) {
  BD_OBS_SPAN("defense.fine_pruning");
  Stopwatch watch;
  DefenseResult out;
  out.defense_name = name();

  std::vector<double> activations;
  {
    BD_OBS_SPAN("fine_pruning.activations");
    activations =
        channel_activations(model, context.clean_train, config_.batch_size);
  }
  nn::Conv2d* conv = matching_last_conv(
      model, static_cast<std::int64_t>(activations.size()));

  if (conv != nullptr) {
    BD_OBS_SPAN("fine_pruning.prune");
    // Ascending activation order: prune the most dormant filters first.
    std::vector<std::size_t> order(activations.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return activations[a] < activations[b];
    });

    const double initial_acc = eval::accuracy(model, context.clean_val);
    const double floor = initial_acc - config_.max_accuracy_drop;
    const auto max_prune = static_cast<std::size_t>(
        static_cast<double>(order.size()) * config_.max_prune_fraction);

    auto pre_prune_state = model.state_dict();
    for (std::size_t k = 0; k < max_prune; ++k) {
      robust::poll_cancellation("fine_pruning.prune");
      pre_prune_state = model.state_dict();
      conv->prune_filter(static_cast<std::int64_t>(order[k]));
      const double acc = eval::accuracy(model, context.clean_val);
      if (acc < floor) {
        // Roll back the prune that crossed the floor.
        conv->unprune_filter(static_cast<std::int64_t>(order[k]));
        model.load_state_dict(pre_prune_state);
        break;
      }
      ++out.pruned_units;
    }
    BD_LOG(Debug) << "fine-pruning removed " << out.pruned_units
                  << " filters from the last conv layer";
  } else {
    BD_LOG(Warn) << "fine-pruning: no conv layer matches the final feature "
                    "width; skipping prune stage";
  }

  // Fixed-budget recovery fine-tune (BackdoorBench-style), re-asserting the
  // prune mask afterwards.
  BD_OBS_SPAN("fine_pruning.finetune");
  eval::TrainConfig ft;
  ft.epochs = config_.finetune_max_epochs;
  ft.batch_size = config_.batch_size;
  ft.lr = config_.finetune_lr;
  ft.momentum = 0.9f;
  ft.weight_decay = 0.0f;
  const eval::TrainResult train =
      eval::train_classifier(model, context.clean_train, ft, context.rng_ref());
  model.set_training(false);
  if (conv != nullptr) conv->enforce_filter_masks();

  out.finetune_epochs = config_.finetune_max_epochs;
  out.recoveries = train.guard.recoveries;
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
