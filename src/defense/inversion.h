// Trigger inversion (Neural-Cleanse-style, Wang et al. 2019).
//
// The paper's threat model (Sec. III-C) ASSUMES the defender can synthesize
// backdoor inputs, citing trigger-inversion approaches; its conclusion
// lists removing that assumption as future work. This module implements the
// assumption: given only the backdoored model and a handful of clean
// images, recover a (mask, pattern) pair such that
//       x' = (1 - m) .* x + m .* p
// drives the model to a target class, by minimizing
//       CE(f(x'), t) + lambda * ||m||_1
// over (m, p) through a sigmoid parameterization. Running the inversion for
// every candidate class and flagging the class whose minimal trigger is an
// L1 outlier (median absolute deviation) also yields target-class
// detection, enabling a fully oracle-free pipeline:
//       detect target -> invert trigger -> gradient-based unlearning prune.
#pragma once

#include <vector>

#include "attack/trigger.h"
#include "data/dataset.h"
#include "models/classifier.h"

namespace bd::defense {

struct InversionConfig {
  std::int64_t iterations = 150;
  std::int64_t batch_size = 32;
  float lr = 0.1f;           // Adam on the raw (pre-sigmoid) variables
  float lambda_l1 = 0.01f;   // sparsity pressure on the mask
};

struct InvertedTrigger {
  Tensor mask;     // (1, H, W) in [0, 1]
  Tensor pattern;  // (C, H, W) in [0, 1]
  double mask_l1 = 0.0;
  double final_loss = 0.0;
  std::int64_t target_class = 0;
};

/// Optimizes a trigger steering `model` toward `target_class` using the
/// clean images in `clean` (their true labels are ignored).
InvertedTrigger invert_trigger(models::Classifier& model,
                               const data::ImageDataset& clean,
                               std::int64_t target_class,
                               const InversionConfig& config, Rng& rng);

/// TriggerApplier backed by an inversion result, usable anywhere the
/// defense pipeline expects a synthesizable trigger.
class InvertedTriggerApplier : public attack::TriggerApplier {
 public:
  explicit InvertedTriggerApplier(InvertedTrigger trigger);
  Tensor apply(const Tensor& image) const override;
  std::string name() const override { return "inverted"; }
  const InvertedTrigger& trigger() const { return trigger_; }

 private:
  InvertedTrigger trigger_;
};

struct TargetScanResult {
  std::vector<InvertedTrigger> per_class;  // one inversion per class
  std::int64_t detected_target = -1;       // -1 when nothing is anomalous
  double anomaly_index = 0.0;              // |deviation| / (1.4826 * MAD)

  /// Classes ordered by ascending inverted-mask L1 (most suspicious
  /// first). Natural small-perturbation classes can tie with the true
  /// target at small scale, so robust pipelines defend against the top-k.
  std::vector<std::int64_t> ranked_candidates() const;
};

/// Neural-Cleanse scan: inverts a trigger for every class and flags the
/// class whose mask L1 is an abnormally SMALL outlier (anomaly index > 2).
TargetScanResult scan_for_backdoor_target(models::Classifier& model,
                                          const data::ImageDataset& clean,
                                          const InversionConfig& config,
                                          Rng& rng);

}  // namespace bd::defense
