// CLP baseline (Zheng et al. 2022): data-free channel-Lipschitz pruning.
//
// For every conv output channel, an upper bound on its Lipschitz constant
// is the spectral norm of the filter reshaped to (Cin, k*k), scaled by the
// downstream BatchNorm factor |gamma| / sqrt(running_var + eps). Channels
// whose bound exceeds mean + u*std within their layer are pruned. No data
// is needed, so CLP results are identical across SPC settings - exactly
// the behaviour visible in the paper's tables.
#pragma once

#include "defense/defense.h"
#include "nn/layers.h"

namespace bd::defense {

struct ClpConfig {
  /// Outlier threshold u: prune channels above mean + u*std (paper: 3-5).
  double u = 3.0;
  std::int64_t power_iterations = 20;
};

class ClpDefense : public Defense {
 public:
  ClpDefense() = default;
  explicit ClpDefense(ClpConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "clp"; }

 private:
  ClpConfig config_;
};

/// Spectral norm of a 2-D tensor via power iteration (deterministic start).
float spectral_norm(const Tensor& matrix, std::int64_t iterations);

/// Per-output-channel Lipschitz bounds of a conv layer, optionally folding
/// the following BatchNorm's scale.
std::vector<float> channel_lipschitz_bounds(nn::Conv2d& conv,
                                            const nn::BatchNorm2d* bn,
                                            std::int64_t power_iterations);

}  // namespace bd::defense
