#include "defense/anp.h"

#include <cmath>
#include <algorithm>

#include "autograd/ops.h"
#include "eval/metrics.h"
#include "nn/layers.h"
#include "obs/obs.h"
#include "optim/optim.h"
#include "robust/cancel.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bd::defense {

DefenseResult AnpDefense::apply(models::Classifier& model,
                                const DefenseContext& context) {
  BD_OBS_SPAN("defense.anp");
  Stopwatch watch;
  Rng& rng = context.rng_ref();
  DefenseResult out;
  out.defense_name = name();

  auto bns = model.modules_of_type<nn::BatchNorm2d>();
  if (bns.empty()) {
    BD_LOG(Warn) << "ANP: model has no BatchNorm layers; nothing to prune";
    out.seconds = watch.seconds();
    return out;
  }

  // Install masks (init 1) and perturbations (init 0) on every BN.
  std::vector<ag::Var> masks, deltas;
  masks.reserve(bns.size());
  deltas.reserve(bns.size());
  for (auto* bn : bns) {
    masks.emplace_back(Tensor::ones({bn->channels()}), /*requires_grad=*/true);
    deltas.emplace_back(Tensor::zeros({bn->channels()}),
                        /*requires_grad=*/true);
    bn->set_channel_mask(masks.back());
    bn->set_gamma_perturbation(deltas.back());
  }

  std::vector<ag::Var*> mask_ptrs, delta_ptrs;
  for (auto& m : masks) mask_ptrs.push_back(&m);
  for (auto& d : deltas) delta_ptrs.push_back(&d);
  optim::Sgd mask_opt(mask_ptrs, {config_.mask_lr, 0.9f, 0.0f});

  model.set_training(false);  // use running BN stats; masks still apply
  data::DataLoader loader(context.clean_train, config_.batch_size, rng);
  data::Batch batch;

  auto zero_all = [](std::vector<ag::Var*>& vars) {
    for (auto* v : vars) v->zero_grad();
  };
  auto set_deltas_zero = [&deltas] {
    for (auto& d : deltas) d.mutable_value().fill(0.0f);
  };

  for (std::int64_t it = 0; it < config_.iterations; ++it) {
    robust::poll_cancellation("anp.mask_iter");
    BD_OBS_SPAN_ARG("anp.mask_iter", it);
    if (!loader.next(batch)) {
      loader.reset();
      loader.next(batch);
    }

    // Inner step: adversarial sign-ascent on delta within [-eps, eps].
    set_deltas_zero();
    zero_all(delta_ptrs);
    zero_all(mask_ptrs);
    {
      ag::Var loss = ag::cross_entropy(model.forward(ag::Var(batch.images)),
                                       batch.labels);
      loss.backward();
    }
    for (auto& d : deltas) {
      if (!d.has_grad()) continue;
      Tensor& v = d.mutable_value();
      const Tensor& g = d.grad();
      for (std::int64_t i = 0; i < v.numel(); ++i) {
        const float step =
            g[i] > 0 ? config_.eps_step : (g[i] < 0 ? -config_.eps_step : 0.0f);
        v[i] = std::clamp(v[i] + step, -config_.eps, config_.eps);
      }
    }

    // Outer step: descend on masks with the ANP trade-off objective.
    // Save the ascended deltas, evaluate the natural loss at delta = 0,
    // then restore by REPLACING the tensors (not mutating in place, which
    // would corrupt the natural-loss graph through shared storage).
    std::vector<Tensor> ascended;
    ascended.reserve(deltas.size());
    for (auto& d : deltas) ascended.push_back(d.value().clone());

    zero_all(mask_ptrs);
    zero_all(delta_ptrs);
    set_deltas_zero();
    ag::Var natural_loss = ag::cross_entropy(
        model.forward(ag::Var(batch.images)), batch.labels);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      deltas[i].mutable_value() = std::move(ascended[i]);
    }
    ag::Var perturbed_loss = ag::cross_entropy(
        model.forward(ag::Var(batch.images)), batch.labels);
    ag::Var loss =
        ag::add(ag::mul_scalar(natural_loss, config_.trade_off),
                ag::mul_scalar(perturbed_loss, 1.0f - config_.trade_off));
    loss.backward();
    mask_opt.step();

    // Project masks back to [0, 1].
    for (auto& m : masks) {
      Tensor& v = m.mutable_value();
      for (std::int64_t i = 0; i < v.numel(); ++i) {
        v[i] = std::clamp(v[i], 0.0f, 1.0f);
      }
    }
  }

  // Prune: suppress sub-threshold channels in ascending mask order (most
  // backdoor-suspect first), guarded by a clean-accuracy floor.
  for (std::size_t b = 0; b < bns.size(); ++b) {
    bns[b]->clear_channel_mask();
    bns[b]->clear_gamma_perturbation();
  }
  struct Candidate {
    std::size_t bn;
    std::int64_t channel;
    float mask;
  };
  std::vector<Candidate> candidates;
  for (std::size_t b = 0; b < bns.size(); ++b) {
    const Tensor& m = masks[b].value();
    for (std::int64_t c = 0; c < m.numel(); ++c) {
      if (m[c] < config_.prune_threshold) {
        candidates.push_back({b, c, m[c]});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mask < b.mask;
            });

  BD_OBS_SPAN_ARG("anp.prune",
                  static_cast<std::int64_t>(candidates.size()));
  const double initial_acc = eval::accuracy(model, context.clean_val);
  const double floor = initial_acc - config_.max_accuracy_drop;
  for (const auto& cand : candidates) {
    const float saved_gamma = bns[cand.bn]->gamma().value()[cand.channel];
    const float saved_beta = bns[cand.bn]->beta().value()[cand.channel];
    bns[cand.bn]->suppress_channel(cand.channel);
    if (eval::accuracy(model, context.clean_val) < floor) {
      bns[cand.bn]->gamma().mutable_value()[cand.channel] = saved_gamma;
      bns[cand.bn]->beta().mutable_value()[cand.channel] = saved_beta;
      break;
    }
    ++out.pruned_units;
  }

  BD_LOG(Debug) << "ANP suppressed " << out.pruned_units << " BN channels";
  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::defense
