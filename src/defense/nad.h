// NAD baseline (Li et al. 2021): Neural Attention Distillation.
//
// A teacher is produced by fine-tuning a copy of the backdoored model on
// the defender's clean data; the student (the original model) is then
// trained with cross-entropy plus an attention-alignment term at every
// stage boundary. Attention of a feature map F is the channel-wise mean of
// F^2, L2-normalized per sample.
#pragma once

#include "defense/defense.h"

namespace bd::defense {

struct NadConfig {
  std::int64_t teacher_epochs = 10;
  std::int64_t distill_epochs = 20;
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float beta = 500.0f;  // attention loss weight (paper-style magnitude)
};

class NadDefense : public Defense {
 public:
  NadDefense() = default;
  explicit NadDefense(NadConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "nad"; }

 private:
  NadConfig config_;
};

/// Normalized spatial attention map of a staged feature (autograd-aware).
ag::Var attention_map(const ag::Var& feature);

}  // namespace bd::defense
