// Fine-Pruning baseline (Liu, Dolan-Gavitt, Garg 2018).
//
// Observation: backdoor neurons are dormant on clean inputs. FP ranks the
// channels of the last convolutional feature map by mean activation over
// the defender's clean data and prunes the least-active filters until the
// clean validation accuracy drops past a floor; a fine-tuning pass then
// recovers accuracy.
#pragma once

#include "defense/defense.h"

namespace bd::defense {

struct FinePruningConfig {
  /// Maximum tolerated drop in clean validation accuracy during pruning.
  double max_accuracy_drop = 0.05;
  /// Never prune more than this fraction of the layer's filters.
  double max_prune_fraction = 0.9;
  std::int64_t finetune_max_epochs = 50;
  std::int64_t batch_size = 32;
  float finetune_lr = 0.05f;
};

class FinePruningDefense : public Defense {
 public:
  FinePruningDefense() = default;
  explicit FinePruningDefense(FinePruningConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "fp"; }

 private:
  FinePruningConfig config_;
};

}  // namespace bd::defense
