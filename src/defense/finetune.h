// FT baseline (Liu et al. 2018): plain fine-tuning of the whole model on
// the defender's clean samples for a FIXED number of epochs - the
// BackdoorBench default the paper benchmarks against. No early stopping:
// that is exactly why FT collapses in low-SPC settings (it overfits the
// handful of clean samples), the paper's headline observation.
#pragma once

#include "defense/defense.h"

namespace bd::defense {

struct FinetuneConfig {
  std::int64_t max_epochs = 50;  // fixed budget, always fully used
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
};

class FinetuneDefense : public Defense {
 public:
  FinetuneDefense() = default;
  explicit FinetuneDefense(FinetuneConfig config) : config_(config) {}

  DefenseResult apply(models::Classifier& model,
                      const DefenseContext& context) override;
  std::string name() const override { return "ft"; }

 private:
  FinetuneConfig config_;
};

}  // namespace bd::defense
