#include "core/grad_prune.h"

#include <cmath>
#include <limits>
#include <optional>

#include "autograd/ops.h"
#include "eval/metrics.h"
#include "eval/trainer.h"
#include "obs/obs.h"
#include "robust/cancel.h"
#include "robust/fault_injector.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace bd::core {

std::vector<FilterScore> score_filters(models::Classifier& model,
                                       const data::ImageDataset& backdoor_true,
                                       std::int64_t batch_size) {
  // Accumulate the gradient of the SUM cross-entropy (Eq. 2) over the whole
  // unlearning set. Each batch contributes mean-CE * batch_size.
  BD_OBS_SPAN_ARG("gradprune.score",
                  static_cast<std::int64_t>(backdoor_true.size()));
  model.set_training(false);  // gradients through frozen BN statistics
  model.zero_grad();

  Rng dummy(0);
  data::DataLoader loader(backdoor_true, batch_size, dummy, /*shuffle=*/false);
  data::Batch batch;
  while (loader.next(batch)) {
    const ag::Var logits = model.forward(ag::Var(batch.images));
    const ag::Var mean_ce = ag::cross_entropy(logits, batch.labels);
    ag::Var loss = ag::mul_scalar(mean_ce, static_cast<float>(batch.size()));
    loss.backward();  // grads accumulate across batches
  }

  std::vector<FilterScore> scores;
  const auto convs = model.modules_of_type<nn::Conv2d>();
  for (std::size_t ci = 0; ci < convs.size(); ++ci) {
    nn::Conv2d* conv = convs[ci];
    if (!conv->weight().has_grad()) continue;
    const Tensor& gw = conv->weight().grad();
    const std::int64_t filter_size =
        conv->in_channels() * conv->kernel() * conv->kernel();
    const bool has_bias = conv->has_bias() && conv->bias().has_grad();

    for (std::int64_t f = 0; f < conv->out_channels(); ++f) {
      if (conv->is_filter_pruned(f)) continue;
      double l1 = 0.0;
      const float* g = gw.data() + f * filter_size;
      for (std::int64_t j = 0; j < filter_size; ++j) l1 += std::fabs(g[j]);
      std::int64_t count = filter_size;
      if (has_bias) {
        l1 += std::fabs(conv->bias().grad()[f]);
        ++count;
      }
      scores.push_back(
          {ci, f, l1 / static_cast<double>(count)});  // Eq. 3
    }
  }
  BD_OBS_COUNT("gradprune.filters_scored", scores.size());
  model.zero_grad();
  if (robust::FaultInjector::instance().fire_nan_grad()) {
    // Injected gradient blow-up: the whole scoring pass is garbage, exactly
    // as if the unlearning gradients had overflowed.
    for (auto& s : scores) s.xi = std::numeric_limits<double>::quiet_NaN();
  }
  return scores;
}

namespace {

/// A scoring pass is usable only when every xi is finite; a single NaN/Inf
/// would make the arg-max rank filters on garbage.
bool scores_finite(const std::vector<FilterScore>& scores) {
  for (const auto& s : scores) {
    if (!std::isfinite(s.xi)) return false;
  }
  return true;
}

}  // namespace

std::optional<FilterScore> best_filter_to_prune(
    const std::vector<FilterScore>& scores) {
  if (scores.empty()) return std::nullopt;
  const FilterScore* best = &scores.front();
  for (const auto& s : scores) {
    if (s.xi > best->xi) best = &s;
  }
  return *best;
}

defense::DefenseResult GradPruneDefense::apply(
    models::Classifier& model, const defense::DefenseContext& context) {
  BD_OBS_SPAN("defense.gradprune");
  Stopwatch watch;
  defense::DefenseResult out;
  out.defense_name = name();

  auto convs = model.modules_of_type<nn::Conv2d>();

  if (config_.prune) {
    const double initial_acc = eval::accuracy(model, context.clean_val);
    const double acc_floor = initial_acc - config_.alpha;

    double best_unlearn_loss =
        eval::dataset_loss(model, context.backdoor_val);
    auto best_state = model.state_dict();
    std::int64_t best_round = 0;  // number of prunes in the best state
    std::vector<std::pair<std::size_t, std::int64_t>> prune_history;
    std::int64_t rounds_without_improvement = 0;

    for (std::int64_t round = 0; round < config_.max_prune_rounds; ++round) {
      robust::poll_cancellation("gradprune.round");
      BD_OBS_SPAN_ARG("gradprune.round", round);
      const auto scores =
          score_filters(model, context.backdoor_train, config_.batch_size);
      if (!scores_finite(scores)) {
        // Non-finite unlearning gradients: skip the round instead of
        // pruning on garbage. Counts toward patience so a persistently
        // diverged model still terminates.
        ++out.recoveries;
        BD_LOG(Warn) << "gradprune round " << (round + 1)
                     << ": non-finite filter scores, skipping round";
        if (++rounds_without_improvement >= config_.prune_patience) {
          BD_LOG(Warn) << "gradprune: patience exhausted on non-finite "
                          "rounds, stopping";
          break;
        }
        continue;
      }
      const auto target = best_filter_to_prune(scores);
      if (!target) {
        BD_LOG(Warn) << "gradprune: no filters left to prune";
        break;
      }
      {
        BD_OBS_SPAN_ARG("gradprune.prune", target->filter);
        convs[target->conv_index]->prune_filter(target->filter);
      }
      prune_history.emplace_back(target->conv_index, target->filter);
      BD_OBS_COUNT("gradprune.filters_pruned", 1);

      double val_acc, unlearn_loss;
      {
        BD_OBS_SPAN("gradprune.eval");
        val_acc = eval::accuracy(model, context.clean_val);
        unlearn_loss = eval::dataset_loss(model, context.backdoor_val);
      }
      BD_OBS_GAUGE("gradprune.val_acc", val_acc);
      BD_OBS_GAUGE("gradprune.unlearn_loss", unlearn_loss);
      BD_OBS_GAUGE("gradprune.pruned_xi", target->xi);
      BD_LOG(Debug) << "gradprune round " << (round + 1) << " pruned conv#"
                    << target->conv_index << " filter " << target->filter
                    << " xi=" << target->xi << " val_acc=" << val_acc
                    << " unlearn_loss=" << unlearn_loss;

      if (unlearn_loss < best_unlearn_loss - 1e-6) {
        best_unlearn_loss = unlearn_loss;
        best_state = model.state_dict();
        best_round = static_cast<std::int64_t>(prune_history.size());
        rounds_without_improvement = 0;
      } else {
        ++rounds_without_improvement;
      }
      BD_OBS_GAUGE("gradprune.best_unlearn_loss", best_unlearn_loss);
      BD_OBS_GAUGE("gradprune.rounds_without_improvement",
                   rounds_without_improvement);

      if (val_acc < acc_floor) {
        BD_LOG(Debug) << "gradprune: accuracy floor reached";
        break;
      }
      if (rounds_without_improvement >= config_.prune_patience) {
        BD_LOG(Debug) << "gradprune: unlearning-loss patience exhausted";
        break;
      }
    }

    // Restore the best-by-unlearning-loss state: un-flag the filters pruned
    // after that point, then load the weights.
    for (std::size_t k = static_cast<std::size_t>(best_round);
         k < prune_history.size(); ++k) {
      convs[prune_history[k].first]->unprune_filter(prune_history[k].second);
    }
    model.load_state_dict(best_state);
    out.pruned_units = best_round;
  }

  if (config_.finetune) {
    BD_OBS_SPAN("gradprune.finetune");
    // Fine-tune on ALL defender data: clean + correctly-relabelled backdoor
    // samples (Sec. IV-C), early-stopped on the combined validation loss.
    const auto ft_train =
        eval::concat(context.clean_train, context.backdoor_train);
    const auto ft_val = eval::concat(context.clean_val, context.backdoor_val);

    eval::EarlyStopConfig ft;
    ft.max_epochs = config_.finetune_max_epochs;
    ft.patience = config_.finetune_patience;
    ft.batch_size = config_.batch_size;
    ft.lr = config_.finetune_lr;
    ft.post_step = [&convs] {
      for (auto* conv : convs) conv->enforce_filter_masks();
    };
    const auto result = eval::finetune_early_stopping(
        model, ft_train, ft_val, ft, context.rng_ref());
    out.finetune_epochs = result.epochs_run;
    out.recoveries += result.guard.recoveries;
    // The restored best-val state predates some post_step applications;
    // re-assert the masks on the final weights.
    for (auto* conv : convs) conv->enforce_filter_masks();
  }

  out.seconds = watch.seconds();
  return out;
}

}  // namespace bd::core
