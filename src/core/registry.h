// Defense factory covering the baselines and the proposed approach.
// Canonical names match the paper's tables: ft, fp, nad, clp, ftsam, anp,
// and gradprune ("Ours").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"

namespace bd::core {

std::unique_ptr<defense::Defense> make_defense(const std::string& name);

/// Every name make_defense accepts, in the paper's table order.
std::vector<std::string> known_defenses();

/// Display label used in tables ("FT", "FP", ..., "Ours").
std::string defense_display_name(const std::string& name);

}  // namespace bd::core
