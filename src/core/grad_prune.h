// The paper's contribution (Sec. IV): backdoor unlearning through
// gradient-based model pruning.
//
// Step 1 - gradient-based pruning (Sec. IV-B). The unlearning loss (Eq. 2)
// is the cross-entropy of the defender's synthesized backdoor inputs
// against their TRUE labels. Its gradient measures how much each parameter
// subset contributes to the trigger -> target-class shortcut. Every round
// scores each un-pruned conv filter with the mean absolute gradient
//       xi_{l,i} = ||grad theta'_{l,i}||_1 / numel(theta'_{l,i})   (Eq. 3)
// and prunes the arg-max filter (weights and bias zeroed, kept zero).
// Rounds stop when the clean validation accuracy falls more than alpha
// below its initial value, or the validation unlearning loss has not
// improved for P_p consecutive rounds; the best-unlearning-loss state is
// restored.
//
// Step 2 - fine-tuning (Sec. IV-C). The pruned model is re-trained on ALL
// the defender's data - clean samples plus backdoor samples relabelled
// with their correct classes - until the validation loss stops improving
// for P_t epochs (best state kept). Pruned filters are re-zeroed after
// every optimizer step.
#pragma once

#include <optional>
#include <vector>

#include "defense/defense.h"
#include "nn/layers.h"

namespace bd::core {

struct GradPruneConfig {
  /// Maximum tolerated drop in clean validation accuracy (the paper's
  /// "predefined threshold alpha", expressed as an absolute drop).
  double alpha = 0.10;
  /// P_p: rounds without validation unlearning-loss improvement.
  std::int64_t prune_patience = 10;
  /// Safety cap on pruning rounds.
  std::int64_t max_prune_rounds = 150;
  /// P_t: fine-tuning early-stop patience (epochs).
  std::int64_t finetune_patience = 5;
  std::int64_t finetune_max_epochs = 50;
  std::int64_t batch_size = 32;
  float finetune_lr = 0.01f;
  /// Skip the fine-tuning stage (used by the ablation benches).
  bool finetune = true;
  /// Skip the pruning stage (used by the ablation benches).
  bool prune = true;
};

/// One scored filter: layer-order index of the conv and the filter index.
struct FilterScore {
  std::size_t conv_index;
  std::int64_t filter;
  double xi;
};

class GradPruneDefense : public defense::Defense {
 public:
  GradPruneDefense() = default;
  explicit GradPruneDefense(GradPruneConfig config) : config_(config) {}

  defense::DefenseResult apply(models::Classifier& model,
                               const defense::DefenseContext& context) override;
  std::string name() const override { return "gradprune"; }

  const GradPruneConfig& config() const { return config_; }

 private:
  GradPruneConfig config_;
};

/// Accumulates the unlearning-loss gradient (Eq. 2) over `backdoor_true`
/// (triggered images, true labels) and returns xi (Eq. 3) for every
/// un-pruned filter of every standard conv layer, in layer order.
std::vector<FilterScore> score_filters(models::Classifier& model,
                                       const data::ImageDataset& backdoor_true,
                                       std::int64_t batch_size);

/// The filter with the highest xi, or nullopt when every filter is pruned.
std::optional<FilterScore> best_filter_to_prune(
    const std::vector<FilterScore>& scores);

}  // namespace bd::core
