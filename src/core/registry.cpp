#include "core/registry.h"

#include <stdexcept>

#include "core/grad_prune.h"
#include "defense/anp.h"
#include "defense/clp.h"
#include "defense/fine_pruning.h"
#include "defense/finetune.h"
#include "defense/ftsam.h"
#include "defense/nad.h"

namespace bd::core {

std::unique_ptr<defense::Defense> make_defense(const std::string& name) {
  if (name == "ft") return std::make_unique<defense::FinetuneDefense>();
  if (name == "fp") return std::make_unique<defense::FinePruningDefense>();
  if (name == "nad") return std::make_unique<defense::NadDefense>();
  if (name == "clp") return std::make_unique<defense::ClpDefense>();
  if (name == "ftsam") return std::make_unique<defense::FtSamDefense>();
  if (name == "anp") return std::make_unique<defense::AnpDefense>();
  if (name == "gradprune") return std::make_unique<GradPruneDefense>();
  throw std::invalid_argument("make_defense: unknown defense '" + name + "'");
}

std::vector<std::string> known_defenses() {
  return {"ft", "fp", "nad", "clp", "ftsam", "anp", "gradprune"};
}

std::string defense_display_name(const std::string& name) {
  if (name == "ft") return "FT";
  if (name == "fp") return "FP";
  if (name == "nad") return "NAD";
  if (name == "clp") return "CLP";
  if (name == "ftsam") return "FT-SAM";
  if (name == "anp") return "ANP";
  if (name == "gradprune") return "Ours";
  return name;
}

}  // namespace bd::core
