// Pooling kernels (forward and backward) used by the autograd layer.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace bd {

struct Pool2dSpec {
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t padding = 0;
};

struct MaxPoolResult {
  Tensor output;
  /// Flat input index (within the whole input tensor) of each output's max;
  /// -1 for windows that were entirely padding.
  std::vector<std::int64_t> argmax;
};

MaxPoolResult maxpool2d_forward(const Tensor& input, const Pool2dSpec& spec);

Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_output);

Tensor avgpool2d_forward(const Tensor& input, const Pool2dSpec& spec);

Tensor avgpool2d_backward(const Shape& input_shape, const Tensor& grad_output,
                          const Pool2dSpec& spec);

/// (N,C,H,W) -> (N,C,1,1) spatial mean.
Tensor global_avgpool_forward(const Tensor& input);

Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_output);

}  // namespace bd
