// Convolution kernels (forward and backward) used by the autograd layer.
//
// Layout is NCHW. Standard convolutions go through im2col + matmul; the
// depthwise variant (MobileNet / EfficientNet blocks) uses direct loops.
#pragma once

#include "tensor/tensor.h"

namespace bd {

struct Conv2dSpec {
  std::int64_t stride = 1;
  std::int64_t padding = 0;
};

/// Output spatial size for one dimension.
std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding);

/// Unfolds one image (C,H,W view of `input` at batch index n) into a
/// (C*KH*KW, OH*OW) patch matrix.
Tensor im2col(const Tensor& input, std::int64_t n, std::int64_t kh,
              std::int64_t kw, const Conv2dSpec& spec);

/// Folds a (C*KH*KW, OH*OW) patch-gradient matrix back onto image `n` of
/// `grad_input` (accumulating).
void col2im_accumulate(const Tensor& cols, Tensor& grad_input, std::int64_t n,
                       std::int64_t kh, std::int64_t kw,
                       const Conv2dSpec& spec);

/// input (N,Cin,H,W) * weight (Cout,Cin,KH,KW) + bias (Cout, optional
/// undefined) -> (N,Cout,OH,OW).
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec);

struct Conv2dGrads {
  Tensor grad_input;
  Tensor grad_weight;
  Tensor grad_bias;  // undefined when the forward had no bias
};

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_output,
                            const Conv2dSpec& spec);

/// Depthwise conv: input (N,C,H,W) * weight (C,1,KH,KW) + bias (C).
Tensor depthwise_conv2d_forward(const Tensor& input, const Tensor& weight,
                                const Tensor& bias, const Conv2dSpec& spec);

Conv2dGrads depthwise_conv2d_backward(const Tensor& input,
                                      const Tensor& weight, bool has_bias,
                                      const Tensor& grad_output,
                                      const Conv2dSpec& spec);

}  // namespace bd
