// Dense float32 tensor with shared, contiguous storage.
//
// This is the numeric substrate for the whole reproduction: the autograd
// engine, the neural-network modules, and the defenses all operate on
// bd::Tensor values. Tensors are always contiguous and row-major; reshape
// returns a view sharing storage, clone() makes a deep copy. Arithmetic
// lives in ops.h / conv.h / pool.h as free functions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace bd {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (1 for rank-0).
std::int64_t shape_numel(const Shape& shape);

/// "[2, 3, 4]" - for error messages.
std::string shape_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0); distinct from defined().
  Tensor();

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor wrapping a copy of `values`; size must match the shape.
  Tensor(Shape shape, std::vector<float> values);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value);

  /// Tensor viewing `storage` (no copy) as `shape`. The storage may be
  /// larger than the shape requires — the autograd arena hands out slots
  /// sized for the largest gradient that ever occupies them. Throws
  /// std::invalid_argument on null or too-small storage.
  static Tensor wrap_storage(std::shared_ptr<std::vector<float>> storage,
                             Shape shape);

  /// True when this tensor was constructed with a shape (not default).
  bool defined() const { return static_cast<bool>(storage_); }

  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t d) const;
  std::int64_t numel() const { return numel_; }

  float* data();
  const float* data() const;
  std::span<float> span();
  std::span<const float> span() const;

  /// Flat element access with bounds check in debug builds.
  float& operator[](std::int64_t i);
  float operator[](std::int64_t i) const;

  /// 4-D convenience accessor (NCHW), bounds unchecked in release.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const;

  /// 2-D convenience accessor (rows, cols).
  float& at2(std::int64_t r, std::int64_t c);
  float at2(std::int64_t r, std::int64_t c) const;

  /// View with a new shape over the same storage; numel must match.
  Tensor reshape(Shape new_shape) const;

  /// Deep copy.
  Tensor clone() const;

  /// Overwrites every element.
  void fill(float value);

  /// True if the two tensors share storage.
  bool shares_storage_with(const Tensor& other) const {
    return storage_ == other.storage_;
  }

  std::string to_string(std::int64_t max_elems = 32) const;

 private:
  std::shared_ptr<std::vector<float>> storage_;
  Shape shape_;
  std::int64_t numel_ = 0;
};

/// Throws std::invalid_argument unless both shapes are identical.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace bd
