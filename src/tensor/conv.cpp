#include "tensor/conv.h"

#include <stdexcept>
#include <vector>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "tensor/ops.h"

namespace bd {

std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding) {
  const std::int64_t out = (in + 2 * padding - kernel) / stride + 1;
  if (out <= 0) {
    throw std::invalid_argument("conv: non-positive output size");
  }
  return out;
}

Tensor im2col(const Tensor& input, std::int64_t n, std::int64_t kh,
              std::int64_t kw, const Conv2dSpec& spec) {
  const std::int64_t c = input.size(1), h = input.size(2), w = input.size(3);
  const std::int64_t oh = conv_out_size(h, kh, spec.stride, spec.padding);
  const std::int64_t ow = conv_out_size(w, kw, spec.stride, spec.padding);

  Tensor cols({c * kh * kw, oh * ow});
  float* pc = cols.data();
  const float* pin = input.data() + n * c * h * w;

  std::int64_t row = 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float* chan = pin + ch * h * w;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = pc + row * oh * ow;
        std::int64_t idx = 0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.padding + ky;
          if (iy < 0 || iy >= h) {
            for (std::int64_t ox = 0; ox < ow; ++ox) out_row[idx++] = 0.0f;
            continue;
          }
          const float* in_row = chan + iy * w;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * spec.stride - spec.padding + kx;
            out_row[idx++] = (ix >= 0 && ix < w) ? in_row[ix] : 0.0f;
          }
        }
      }
    }
  }
  return cols;
}

void col2im_accumulate(const Tensor& cols, Tensor& grad_input, std::int64_t n,
                       std::int64_t kh, std::int64_t kw,
                       const Conv2dSpec& spec) {
  const std::int64_t c = grad_input.size(1);
  const std::int64_t h = grad_input.size(2), w = grad_input.size(3);
  const std::int64_t oh = conv_out_size(h, kh, spec.stride, spec.padding);
  const std::int64_t ow = conv_out_size(w, kw, spec.stride, spec.padding);

  const float* pc = cols.data();
  float* pout = grad_input.data() + n * c * h * w;

  std::int64_t row = 0;
  for (std::int64_t ch = 0; ch < c; ++ch) {
    float* chan = pout + ch * h * w;
    for (std::int64_t ky = 0; ky < kh; ++ky) {
      for (std::int64_t kx = 0; kx < kw; ++kx, ++row) {
        const float* in_row = pc + row * oh * ow;
        std::int64_t idx = 0;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * spec.stride - spec.padding + ky;
          if (iy < 0 || iy >= h) {
            idx += ow;
            continue;
          }
          float* out_row = chan + iy * w;
          for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
            const std::int64_t ix = ox * spec.stride - spec.padding + kx;
            if (ix >= 0 && ix < w) out_row[ix] += in_row[idx];
          }
        }
      }
    }
  }
}

namespace {

void check_conv_args(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, bool depthwise) {
  if (input.dim() != 4 || weight.dim() != 4) {
    throw std::invalid_argument("conv2d: input and weight must be rank 4");
  }
  if (depthwise) {
    if (weight.size(1) != 1 || weight.size(0) != input.size(1)) {
      throw std::invalid_argument(
          "depthwise conv2d: weight must be (C,1,KH,KW) matching input C");
    }
  } else if (input.size(1) != weight.size(1)) {
    throw std::invalid_argument("conv2d: input channels " +
                                std::to_string(input.size(1)) +
                                " != weight in-channels " +
                                std::to_string(weight.size(1)));
  }
  if (bias.defined() &&
      (bias.dim() != 1 || bias.size(0) != weight.size(0))) {
    throw std::invalid_argument("conv2d: bias must be rank 1 of size Cout");
  }
}

}  // namespace

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec) {
  check_conv_args(input, weight, bias, /*depthwise=*/false);
  const std::int64_t n = input.size(0);
  const std::int64_t cout = weight.size(0), cin = weight.size(1);
  const std::int64_t kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh =
      conv_out_size(input.size(2), kh, spec.stride, spec.padding);
  const std::int64_t ow =
      conv_out_size(input.size(3), kw, spec.stride, spec.padding);

  BD_OBS_KERNEL("kernel.conv2d_fwd", n * cout * oh * ow * cin * kh * kw);
  const Tensor wmat = weight.reshape({cout, cin * kh * kw});
  Tensor out({n, cout, oh, ow});

  // Samples write disjoint output slices, so the batch dimension
  // parallelizes directly; the matmul inside runs serially (nested region).
  runtime::parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const Tensor cols = im2col(input, i, kh, kw, spec);
      const Tensor res = matmul(wmat, cols);  // (cout, oh*ow)
      float* po = out.data() + i * cout * oh * ow;
      std::copy(res.data(), res.data() + res.numel(), po);
      if (bias.defined()) {
        for (std::int64_t c = 0; c < cout; ++c) {
          const float b = bias[c];
          float* plane = po + c * oh * ow;
          for (std::int64_t j = 0; j < oh * ow; ++j) plane[j] += b;
        }
      }
    }
  });
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_output,
                            const Conv2dSpec& spec) {
  const std::int64_t n = input.size(0);
  const std::int64_t cout = weight.size(0), cin = weight.size(1);
  const std::int64_t kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = grad_output.size(2), ow = grad_output.size(3);

  BD_OBS_KERNEL("kernel.conv2d_bwd", n * cout * oh * ow * cin * kh * kw);
  const Tensor wmat = weight.reshape({cout, cin * kh * kw});
  const Tensor wmat_t = transpose2d(wmat);

  Conv2dGrads grads;
  grads.grad_input = Tensor(input.shape());
  Tensor grad_wmat({cout, cin * kh * kw});
  if (has_bias) grads.grad_bias = Tensor({cout});

  // grad_input slices are sample-disjoint, but grad_weight/grad_bias sum
  // across the batch. Each sample computes its contribution into a private
  // buffer; the reduction below runs serially in sample order, making the
  // result bitwise identical to the legacy serial loop for any thread count.
  std::vector<Tensor> gw_partial(static_cast<std::size_t>(n));
  std::vector<std::vector<float>> gb_partial(
      static_cast<std::size_t>(has_bias ? n : 0));

  runtime::parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // View of this sample's output gradient as (cout, oh*ow).
      Tensor go({cout, oh * ow});
      const float* pg = grad_output.data() + i * cout * oh * ow;
      std::copy(pg, pg + cout * oh * ow, go.data());

      const Tensor cols = im2col(input, i, kh, kw, spec);
      // dW_i = dOut * colsT
      const Tensor cols_t = transpose2d(cols);
      gw_partial[static_cast<std::size_t>(i)] = matmul(go, cols_t);
      // dX_cols = W^T * dOut ; fold back
      const Tensor dcols = matmul(wmat_t, go);
      col2im_accumulate(dcols, grads.grad_input, i, kh, kw, spec);

      if (has_bias) {
        std::vector<float> gb(static_cast<std::size_t>(cout));
        for (std::int64_t c = 0; c < cout; ++c) {
          const float* row = go.data() + c * oh * ow;
          double s = 0.0;
          for (std::int64_t j = 0; j < oh * ow; ++j) s += row[j];
          gb[static_cast<std::size_t>(c)] = static_cast<float>(s);
        }
        gb_partial[static_cast<std::size_t>(i)] = std::move(gb);
      }
    }
  });

  for (std::int64_t i = 0; i < n; ++i) {
    axpy_inplace(grad_wmat, 1.0f, gw_partial[static_cast<std::size_t>(i)]);
    if (has_bias) {
      const auto& gb = gb_partial[static_cast<std::size_t>(i)];
      for (std::int64_t c = 0; c < cout; ++c) {
        grads.grad_bias[c] += gb[static_cast<std::size_t>(c)];
      }
    }
  }
  grads.grad_weight = grad_wmat.reshape({cout, cin, kh, kw});
  return grads;
}

Tensor depthwise_conv2d_forward(const Tensor& input, const Tensor& weight,
                                const Tensor& bias, const Conv2dSpec& spec) {
  check_conv_args(input, weight, bias, /*depthwise=*/true);
  const std::int64_t n = input.size(0), c = input.size(1);
  const std::int64_t h = input.size(2), w = input.size(3);
  const std::int64_t kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = conv_out_size(h, kh, spec.stride, spec.padding);
  const std::int64_t ow = conv_out_size(w, kw, spec.stride, spec.padding);

  BD_OBS_KERNEL("kernel.depthwise_fwd", n * c * oh * ow * kh * kw);
  Tensor out({n, c, oh, ow});
  // Every (sample, channel) plane is independent; parallelize over the
  // flattened plane index.
  runtime::parallel_for(
      0, n * c, runtime::grain_for_cost(oh * ow * kh * kw),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const std::int64_t ch = p % c;
          const float* chan = input.data() + p * h * w;
          const float* ker = weight.data() + ch * kh * kw;
          const float b = bias.defined() ? bias[ch] : 0.0f;
          float* ochan = out.data() + p * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              float acc = b;
              for (std::int64_t ky = 0; ky < kh; ++ky) {
                const std::int64_t iy = oy * spec.stride - spec.padding + ky;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t kx = 0; kx < kw; ++kx) {
                  const std::int64_t ix = ox * spec.stride - spec.padding + kx;
                  if (ix < 0 || ix >= w) continue;
                  acc += chan[iy * w + ix] * ker[ky * kw + kx];
                }
              }
              ochan[oy * ow + ox] = acc;
            }
          }
        }
      });
  return out;
}

Conv2dGrads depthwise_conv2d_backward(const Tensor& input,
                                      const Tensor& weight, bool has_bias,
                                      const Tensor& grad_output,
                                      const Conv2dSpec& spec) {
  const std::int64_t n = input.size(0), c = input.size(1);
  const std::int64_t h = input.size(2), w = input.size(3);
  const std::int64_t kh = weight.size(2), kw = weight.size(3);
  const std::int64_t oh = grad_output.size(2), ow = grad_output.size(3);

  BD_OBS_KERNEL("kernel.depthwise_bwd", n * c * oh * ow * kh * kw);
  Conv2dGrads grads;
  grads.grad_input = Tensor(input.shape());
  grads.grad_weight = Tensor(weight.shape());
  if (has_bias) grads.grad_bias = Tensor({c});

  // Kernel and bias gradients accumulate across the batch per channel, so
  // parallelize over channels and keep the per-channel sample loop serial:
  // each grad element still sees its additions in the original i-ascending
  // order, and grad_input planes stay disjoint — bitwise identical to the
  // legacy serial loop for any thread count.
  runtime::parallel_for(
      0, c, runtime::grain_for_cost(n * oh * ow * kh * kw),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t ch = lo; ch < hi; ++ch) {
          const float* ker = weight.data() + ch * kh * kw;
          float* gker = grads.grad_weight.data() + ch * kh * kw;
          for (std::int64_t i = 0; i < n; ++i) {
            const float* chan = input.data() + (i * c + ch) * h * w;
            const float* gchan = grad_output.data() + (i * c + ch) * oh * ow;
            float* gin = grads.grad_input.data() + (i * c + ch) * h * w;
            double gbias = 0.0;
            for (std::int64_t oy = 0; oy < oh; ++oy) {
              for (std::int64_t ox = 0; ox < ow; ++ox) {
                const float g = gchan[oy * ow + ox];
                gbias += g;
                for (std::int64_t ky = 0; ky < kh; ++ky) {
                  const std::int64_t iy = oy * spec.stride - spec.padding + ky;
                  if (iy < 0 || iy >= h) continue;
                  for (std::int64_t kx = 0; kx < kw; ++kx) {
                    const std::int64_t ix =
                        ox * spec.stride - spec.padding + kx;
                    if (ix < 0 || ix >= w) continue;
                    gin[iy * w + ix] += g * ker[ky * kw + kx];
                    gker[ky * kw + kx] += g * chan[iy * w + ix];
                  }
                }
              }
            }
            if (has_bias) grads.grad_bias[ch] += static_cast<float>(gbias);
          }
        }
      });
  return grads;
}

}  // namespace bd
