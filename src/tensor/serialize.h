// Binary tensor serialization. Models expose save/load of their parameter
// state through these primitives (magic + rank + dims + float payload).
#pragma once

#include <iosfwd>

#include "tensor/tensor.h"

namespace bd {

void write_tensor(std::ostream& out, const Tensor& t);

/// Throws std::runtime_error on malformed streams.
Tensor read_tensor(std::istream& in);

}  // namespace bd
