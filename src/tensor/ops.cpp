#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace bd {

namespace {

// Minimum per-chunk element count for parallel elementwise/broadcast loops.
// Chunks below this run serially inside parallel_for, so small tensors pay
// (almost) nothing. Depends only on this constant, never on thread count,
// keeping chunk boundaries — and therefore results — thread-count-invariant.
constexpr std::int64_t kElemwiseGrain = std::int64_t{1} << 15;

// Right-aligned shape padded to `rank` with leading 1s.
Shape pad_shape(const Shape& s, std::size_t rank) {
  Shape out(rank, 1);
  std::copy(s.begin(), s.end(), out.begin() + (rank - s.size()));
  return out;
}

// Row-major strides; broadcast dims (size 1 where out size > 1) get stride 0.
std::vector<std::int64_t> broadcast_strides(const Shape& padded,
                                            const Shape& out) {
  std::vector<std::int64_t> strides(padded.size(), 0);
  std::int64_t stride = 1;
  for (std::size_t i = padded.size(); i-- > 0;) {
    strides[i] = (padded[i] == 1 && out[i] != 1) ? 0 : stride;
    stride *= padded[i];
  }
  return strides;
}

}  // namespace

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  const Shape pa = pad_shape(a, rank);
  const Shape pb = pad_shape(b, rank);
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    if (pa[i] == pb[i]) {
      out[i] = pa[i];
    } else if (pa[i] == 1) {
      out[i] = pb[i];
    } else if (pb[i] == 1) {
      out[i] = pa[i];
    } else {
      throw std::invalid_argument("broadcast_shape: incompatible shapes " +
                                  shape_string(a) + " and " + shape_string(b));
    }
  }
  return out;
}

bool broadcastable_to(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) return false;
  const Shape pf = pad_shape(from, to.size());
  for (std::size_t i = 0; i < to.size(); ++i) {
    if (pf[i] != to[i] && pf[i] != 1) return false;
  }
  return true;
}

Tensor reduce_to_shape(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  if (!broadcastable_to(target, t.shape())) {
    throw std::invalid_argument("reduce_to_shape: " + shape_string(target) +
                                " does not broadcast to " +
                                shape_string(t.shape()));
  }
  const std::size_t rank = t.shape().size();
  const Shape pt = pad_shape(target, rank);
  const Shape& src = t.shape();

  Tensor out(pt);
  const auto out_strides = broadcast_strides(pt, src);
  const float* in = t.data();
  float* o = out.data();

  // Walk every source element and accumulate into the (possibly stride-0)
  // target position.
  std::vector<std::int64_t> coord(rank, 0);
  const std::int64_t n = t.numel();
  for (std::int64_t flat = 0; flat < n; ++flat) {
    std::int64_t oi = 0;
    for (std::size_t d = 0; d < rank; ++d) oi += coord[d] * out_strides[d];
    o[oi] += in[flat];
    // increment coord
    for (std::size_t d = rank; d-- > 0;) {
      if (++coord[d] < src[d]) break;
      coord[d] = 0;
    }
  }
  return out.reshape(target);
}

Tensor broadcast_binary(const Tensor& a, const Tensor& b,
                        const std::function<float(float, float)>& f,
                        const char* op_name) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    runtime::parallel_for(0, a.numel(), kElemwiseGrain,
                          [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) {
                              po[i] = f(pa[i], pb[i]);
                            }
                          });
    return out;
  }
  // Fast path: b is a scalar tensor.
  if (b.numel() == 1) {
    const float s = b[0];
    Tensor out(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    runtime::parallel_for(0, a.numel(), kElemwiseGrain,
                          [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) {
                              po[i] = f(pa[i], s);
                            }
                          });
    return out;
  }
  if (a.numel() == 1) {
    const float s = a[0];
    Tensor out(b.shape());
    const float* pb = b.data();
    float* po = out.data();
    runtime::parallel_for(0, b.numel(), kElemwiseGrain,
                          [&](std::int64_t lo, std::int64_t hi) {
                            for (std::int64_t i = lo; i < hi; ++i) {
                              po[i] = f(s, pb[i]);
                            }
                          });
    return out;
  }

  Shape out_shape;
  try {
    out_shape = broadcast_shape(a.shape(), b.shape());
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(std::string(op_name) +
                                ": incompatible shapes " +
                                shape_string(a.shape()) + " and " +
                                shape_string(b.shape()));
  }

  const std::size_t rank = out_shape.size();
  const Shape pa_shape = pad_shape(a.shape(), rank);
  const Shape pb_shape = pad_shape(b.shape(), rank);
  const auto sa = broadcast_strides(pa_shape, out_shape);
  const auto sb = broadcast_strides(pb_shape, out_shape);

  Tensor out(out_shape);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();

  runtime::parallel_for(
      0, out.numel(), kElemwiseGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        // Derive this chunk's starting coordinate from its flat index, then
        // walk incrementally exactly like the serial loop did.
        std::vector<std::int64_t> coord(rank, 0);
        std::int64_t rem = lo;
        for (std::size_t d = rank; d-- > 0;) {
          coord[d] = rem % out_shape[d];
          rem /= out_shape[d];
        }
        for (std::int64_t flat = lo; flat < hi; ++flat) {
          std::int64_t ia = 0, ib = 0;
          for (std::size_t d = 0; d < rank; ++d) {
            ia += coord[d] * sa[d];
            ib += coord[d] * sb[d];
          }
          po[flat] = f(pa[ia], pb[ib]);
          for (std::size_t d = rank; d-- > 0;) {
            if (++coord[d] < out_shape[d]) break;
            coord[d] = 0;
          }
        }
      });
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x + y; }, "add");
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x - y; }, "sub");
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x * y; }, "mul");
}
Tensor div(const Tensor& a, const Tensor& b) {
  return broadcast_binary(a, b, [](float x, float y) { return x / y; }, "div");
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return broadcast_binary(
      a, b, [](float x, float y) { return x > y ? x : y; }, "maximum");
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return broadcast_binary(
      a, b, [](float x, float y) { return x < y ? x : y; }, "minimum");
}

Tensor unary(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  runtime::parallel_for(0, a.numel(), kElemwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            po[i] = f(pa[i]);
                          }
                        });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary(a, [s](float x) { return x * s; });
}
Tensor neg(const Tensor& a) {
  return unary(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary(a, [](float x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return unary(a, [](float x) { return std::fabs(x); });
}
Tensor sign(const Tensor& a) {
  return unary(a, [](float x) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}
Tensor pow_scalar(const Tensor& a, float p) {
  return unary(a, [p](float x) { return std::pow(x, p); });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  return unary(a, [lo, hi](float x) { return std::min(hi, std::max(lo, x)); });
}
Tensor relu(const Tensor& a) {
  return unary(a, [](float x) { return x > 0 ? x : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  return unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unary(a, [](float x) { return std::tanh(x); });
}

void axpy_inplace(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy_inplace");
  float* py = y.data();
  const float* px = x.data();
  runtime::parallel_for(0, y.numel(), kElemwiseGrain,
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            py[i] += alpha * px[i];
                          }
                        });
}

// Full floating-point reductions (sum/mean/norms) and the scatter-style
// reductions below stay serial: splitting them across workers would reorder
// the accumulation and break the bitwise thread-count-invariance contract.
float sum_all(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

float mean_all(const Tensor& a) {
  if (a.numel() == 0) return 0.0f;
  return sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max_all: empty tensor");
  float m = a[0];
  for (std::int64_t i = 1; i < a.numel(); ++i) m = std::max(m, a[i]);
  return m;
}

float l1_norm(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += std::fabs(a[i]);
  return static_cast<float>(s);
}

float l2_norm(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    s += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(std::sqrt(s));
}

Tensor reduce_sum(const Tensor& a, const std::vector<std::int64_t>& axes,
                  bool keepdim) {
  const std::size_t rank = a.shape().size();
  std::vector<bool> reduced(rank, false);
  for (auto ax : axes) {
    if (ax < 0) ax += static_cast<std::int64_t>(rank);
    if (ax < 0 || ax >= static_cast<std::int64_t>(rank)) {
      throw std::invalid_argument("reduce_sum: axis out of range");
    }
    reduced[static_cast<std::size_t>(ax)] = true;
  }

  Shape kept_shape(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    kept_shape[d] = reduced[d] ? 1 : a.shape()[d];
  }

  Tensor out(kept_shape);
  const auto out_strides = broadcast_strides(kept_shape, a.shape());
  const float* in = a.data();
  float* o = out.data();

  std::vector<std::int64_t> coord(rank, 0);
  const std::int64_t n = a.numel();
  for (std::int64_t flat = 0; flat < n; ++flat) {
    std::int64_t oi = 0;
    for (std::size_t d = 0; d < rank; ++d) oi += coord[d] * out_strides[d];
    o[oi] += in[flat];
    for (std::size_t d = rank; d-- > 0;) {
      if (++coord[d] < a.shape()[d]) break;
      coord[d] = 0;
    }
  }

  if (keepdim) return out;
  Shape squeezed;
  for (std::size_t d = 0; d < rank; ++d) {
    if (!reduced[d]) squeezed.push_back(a.shape()[d]);
  }
  return out.reshape(std::move(squeezed));
}

Tensor reduce_mean(const Tensor& a, const std::vector<std::int64_t>& axes,
                   bool keepdim) {
  Tensor s = reduce_sum(a, axes, keepdim);
  const std::int64_t denom = a.numel() / std::max<std::int64_t>(1, s.numel());
  return mul_scalar(s, 1.0f / static_cast<float>(denom));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_string(a.shape()) + " x " +
                                shape_string(b.shape()));
  }
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  BD_OBS_KERNEL("kernel.matmul", m * k * n);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();

  // i-k-j loop order: streams through b and out rows; good cache behaviour
  // for the row-major layout without an explicit blocking scheme. Output
  // rows are disjoint, so the row range parallelizes with no reductions;
  // the grain depends only on the shape, keeping results thread-invariant.
  runtime::parallel_for(
      0, m, runtime::grain_for_cost(k * n),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          float* out_row = po + i * n;
          const float* a_row = pa + i * k;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = a_row[kk];
            if (av == 0.0f) continue;
            const float* b_row = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
          }
        }
      });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  if (a.dim() != 2) {
    throw std::invalid_argument("transpose2d: expected rank 2, got " +
                                shape_string(a.shape()));
  }
  const std::int64_t r = a.size(0), c = a.size(1);
  Tensor out({c, r});
  runtime::parallel_for(0, r, runtime::grain_for_cost(c),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            for (std::int64_t j = 0; j < c; ++j) {
                              out.at2(j, i) = a.at2(i, j);
                            }
                          }
                        });
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  if (a.dim() != 2) {
    throw std::invalid_argument("argmax_rows: expected rank 2");
  }
  const std::int64_t rows = a.size(0), cols = a.size(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  runtime::parallel_for(0, rows, runtime::grain_for_cost(cols),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            const float* row = a.data() + i * cols;
                            std::int64_t best = 0;
                            for (std::int64_t j = 1; j < cols; ++j) {
                              if (row[j] > row[best]) best = j;
                            }
                            out[static_cast<std::size_t>(i)] = best;
                          }
                        });
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  if (a.dim() != 2) {
    throw std::invalid_argument("log_softmax_rows: expected rank 2");
  }
  const std::int64_t rows = a.size(0), cols = a.size(1);
  Tensor out(a.shape());
  // Row-local reductions only; rows are independent, so parallelizing over
  // rows never reorders a floating-point sum.
  runtime::parallel_for(
      0, rows, runtime::grain_for_cost(cols),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const float* row = a.data() + i * cols;
          float* orow = out.data() + i * cols;
          float mx = row[0];
          for (std::int64_t j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
          double denom = 0.0;
          for (std::int64_t j = 0; j < cols; ++j) {
            denom += std::exp(row[j] - mx);
          }
          const float log_denom = static_cast<float>(std::log(denom));
          for (std::int64_t j = 0; j < cols; ++j) {
            orow[j] = row[j] - mx - log_denom;
          }
        }
      });
  return out;
}

}  // namespace bd
