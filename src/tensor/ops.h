// Tensor arithmetic: elementwise ops with NumPy-style broadcasting,
// reductions, matrix multiply, and the broadcast-reduction helper the
// autograd engine uses to accumulate gradients back to parameter shapes.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace bd {

// ---------------------------------------------------------------------------
// Broadcasting
// ---------------------------------------------------------------------------

/// Result shape of broadcasting a with b; throws if incompatible.
Shape broadcast_shape(const Shape& a, const Shape& b);

/// True if `from` broadcasts to `to` under NumPy rules.
bool broadcastable_to(const Shape& from, const Shape& to);

/// Sums `t` over its broadcast dimensions so the result has shape `target`.
/// Inverse of broadcasting; used to reduce output gradients to input shapes.
Tensor reduce_to_shape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise binary (broadcasting)
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);

/// Generic broadcasted elementwise combine (slow path, used by the above).
Tensor broadcast_binary(const Tensor& a, const Tensor& b,
                        const std::function<float(float, float)>& f,
                        const char* op_name);

// ---------------------------------------------------------------------------
// Elementwise with scalars / unary
// ---------------------------------------------------------------------------

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);
Tensor pow_scalar(const Tensor& a, float p);
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor relu(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);

/// Applies f to every element.
Tensor unary(const Tensor& a, const std::function<float(float)>& f);

// In-place axpy: y += alpha * x (same shape).
void axpy_inplace(Tensor& y, float alpha, const Tensor& x);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);
float l1_norm(const Tensor& a);
float l2_norm(const Tensor& a);

/// Sum over the given axes. With keepdim, reduced axes become size 1.
Tensor reduce_sum(const Tensor& a, const std::vector<std::int64_t>& axes,
                  bool keepdim);
Tensor reduce_mean(const Tensor& a, const std::vector<std::int64_t>& axes,
                   bool keepdim);

// ---------------------------------------------------------------------------
// Linear algebra / classification helpers
// ---------------------------------------------------------------------------

/// (m,k) x (k,n) -> (m,n), blocked for cache friendliness.
Tensor matmul(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

/// Row-wise argmax of a (rows, cols) tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

/// Numerically stable log-softmax along dim 1 of a (rows, cols) tensor.
Tensor log_softmax_rows(const Tensor& a);

}  // namespace bd
