#include "tensor/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace bd {

namespace {
constexpr std::uint32_t kMagic = 0x42445431;  // "BDT1"
}

void write_tensor(std::ostream& out, const Tensor& t) {
  const std::uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::uint32_t rank = static_cast<std::uint32_t>(t.dim());
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (const auto d : t.shape()) {
    const std::int64_t dim = d;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    throw std::runtime_error("read_tensor: bad magic");
  }
  std::uint32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank > 8) throw std::runtime_error("read_tensor: bad rank");
  Shape shape(rank);
  for (auto& d : shape) {
    in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!in || d < 0) throw std::runtime_error("read_tensor: bad dim");
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("read_tensor: truncated payload");
  return t;
}

}  // namespace bd
