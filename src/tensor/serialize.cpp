#include "tensor/serialize.h"

#include <cstdint>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace bd {

namespace {
constexpr std::uint32_t kMagic = 0x42445431;  // "BDT1"
}

void write_tensor(std::ostream& out, const Tensor& t) {
  const std::uint32_t magic = kMagic;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  const std::uint32_t rank = static_cast<std::uint32_t>(t.dim());
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (const auto d : t.shape()) {
    const std::int64_t dim = d;
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!out) throw std::runtime_error("write_tensor: stream failure");
}

Tensor read_tensor(std::istream& in) {
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in) throw std::runtime_error("read_tensor: truncated tensor header");
  if (magic != kMagic) {
    char msg[64];
    std::snprintf(msg, sizeof(msg), "read_tensor: bad magic 0x%08x", magic);
    throw std::runtime_error(msg);
  }
  std::uint32_t rank = 0;
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || rank > 8) {
    throw std::runtime_error("read_tensor: bad rank " + std::to_string(rank));
  }
  // Bound the element count so corrupted dims cannot drive a huge
  // allocation before the payload read fails.
  constexpr std::int64_t kMaxElements = std::int64_t{1} << 31;
  Shape shape(rank);
  std::int64_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    auto& d = shape[i];
    in.read(reinterpret_cast<char*>(&d), sizeof(d));
    if (!in || d < 0 || (d > 0 && numel > kMaxElements / d)) {
      throw std::runtime_error("read_tensor: bad dim " + std::to_string(i) +
                               (in ? " (value " + std::to_string(d) + ")"
                                   : " (truncated)"));
    }
    numel *= d;
  }
  Tensor t(shape);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  if (!in) {
    throw std::runtime_error("read_tensor: truncated payload (" +
                             std::to_string(in.gcount()) + " of " +
                             std::to_string(t.numel() * sizeof(float)) +
                             " bytes)");
  }
  return t;
}

}  // namespace bd
