#include "tensor/tensor.h"

#include <sstream>
#include <stdexcept>

namespace bd {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

std::string shape_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor() = default;

Tensor::Tensor(Shape shape)
    : storage_(std::make_shared<std::vector<float>>(
          static_cast<std::size_t>(shape_numel(shape)), 0.0f)),
      shape_(std::move(shape)),
      numel_(static_cast<std::int64_t>(storage_->size())) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : storage_(std::make_shared<std::vector<float>>(std::move(values))),
      shape_(std::move(shape)),
      numel_(static_cast<std::int64_t>(storage_->size())) {
  if (shape_numel(shape_) != numel_) {
    throw std::invalid_argument("Tensor: values size " +
                                std::to_string(numel_) +
                                " does not match shape " +
                                shape_string(shape_));
  }
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) { return Tensor({}, {value}); }

Tensor Tensor::wrap_storage(std::shared_ptr<std::vector<float>> storage,
                            Shape shape) {
  if (!storage) {
    throw std::invalid_argument("Tensor::wrap_storage: null storage");
  }
  const std::int64_t n = shape_numel(shape);
  if (static_cast<std::int64_t>(storage->size()) < n) {
    throw std::invalid_argument("Tensor::wrap_storage: storage of " +
                                std::to_string(storage->size()) +
                                " elements too small for shape " +
                                shape_string(shape));
  }
  Tensor t;
  t.storage_ = std::move(storage);
  t.shape_ = std::move(shape);
  t.numel_ = n;
  return t;
}

std::int64_t Tensor::size(std::int64_t d) const {
  if (d < 0) d += dim();
  if (d < 0 || d >= dim()) {
    throw std::out_of_range("Tensor::size: dim " + std::to_string(d) +
                            " out of range for shape " + shape_string(shape_));
  }
  return shape_[static_cast<std::size_t>(d)];
}

float* Tensor::data() {
  if (!storage_) throw std::logic_error("Tensor::data on undefined tensor");
  return storage_->data();
}

const float* Tensor::data() const {
  if (!storage_) throw std::logic_error("Tensor::data on undefined tensor");
  return storage_->data();
}

std::span<float> Tensor::span() {
  return {data(), static_cast<std::size_t>(numel_)};
}

std::span<const float> Tensor::span() const {
  return {data(), static_cast<std::size_t>(numel_)};
}

float& Tensor::operator[](std::int64_t i) { return (*storage_)[static_cast<std::size_t>(i)]; }
float Tensor::operator[](std::int64_t i) const { return (*storage_)[static_cast<std::size_t>(i)]; }

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                   std::int64_t w) {
  const auto& s = shape_;
  return data()[((n * s[1] + c) * s[2] + h) * s[3] + w];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  const auto& s = shape_;
  return data()[((n * s[1] + c) * s[2] + h) * s[3] + w];
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  return data()[r * shape_[1] + c];
}

float Tensor::at2(std::int64_t r, std::int64_t c) const {
  return data()[r * shape_[1] + c];
}

Tensor Tensor::reshape(Shape new_shape) const {
  if (shape_numel(new_shape) != numel_) {
    throw std::invalid_argument("Tensor::reshape: cannot reshape " +
                                shape_string(shape_) + " to " +
                                shape_string(new_shape));
  }
  Tensor view;
  view.storage_ = storage_;
  view.shape_ = std::move(new_shape);
  view.numel_ = numel_;
  return view;
}

Tensor Tensor::clone() const {
  if (!storage_) return Tensor();
  Tensor copy;
  copy.storage_ = std::make_shared<std::vector<float>>(*storage_);
  copy.shape_ = shape_;
  copy.numel_ = numel_;
  return copy;
}

void Tensor::fill(float value) {
  if (!storage_) throw std::logic_error("Tensor::fill on undefined tensor");
  std::fill(storage_->begin(), storage_->end(), value);
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream out;
  out << "Tensor" << shape_string(shape_) << " {";
  const std::int64_t n = std::min<std::int64_t>(numel_, max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) out << ", ";
    out << (*this)[i];
  }
  if (numel_ > n) out << ", ...";
  out << '}';
  return out.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_string(a.shape()) + " vs " +
                                shape_string(b.shape()));
  }
}

}  // namespace bd
