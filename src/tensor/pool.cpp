#include "tensor/pool.h"

#include <limits>
#include <stdexcept>

#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "tensor/conv.h"

namespace bd {

namespace {
void check_pool_input(const Tensor& input) {
  if (input.dim() != 4) {
    throw std::invalid_argument("pool2d: input must be rank 4 (NCHW)");
  }
}
}  // namespace

MaxPoolResult maxpool2d_forward(const Tensor& input, const Pool2dSpec& spec) {
  check_pool_input(input);
  const std::int64_t n = input.size(0), c = input.size(1);
  const std::int64_t h = input.size(2), w = input.size(3);
  const std::int64_t oh = conv_out_size(h, spec.kernel, spec.stride, spec.padding);
  const std::int64_t ow = conv_out_size(w, spec.kernel, spec.stride, spec.padding);

  BD_OBS_KERNEL("kernel.maxpool_fwd",
                n * c * oh * ow * spec.kernel * spec.kernel);
  MaxPoolResult result;
  result.output = Tensor({n, c, oh, ow});
  result.argmax.assign(static_cast<std::size_t>(n * c * oh * ow), -1);

  const float* pin = input.data();
  float* pout = result.output.data();

  // (sample, channel) planes are independent — parallelize over them.
  runtime::parallel_for(
      0, n * c,
      runtime::grain_for_cost(oh * ow * spec.kernel * spec.kernel),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const std::int64_t base = p * h * w;
          std::int64_t oi = p * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
              float best = -std::numeric_limits<float>::infinity();
              std::int64_t best_idx = -1;
              for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
                const std::int64_t iy = oy * spec.stride - spec.padding + ky;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                  const std::int64_t ix = ox * spec.stride - spec.padding + kx;
                  if (ix < 0 || ix >= w) continue;
                  const std::int64_t idx = base + iy * w + ix;
                  if (pin[idx] > best) {
                    best = pin[idx];
                    best_idx = idx;
                  }
                }
              }
              pout[oi] = (best_idx >= 0) ? best : 0.0f;
              result.argmax[static_cast<std::size_t>(oi)] = best_idx;
            }
          }
        }
      });
  return result;
}

Tensor maxpool2d_backward(const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax,
                          const Tensor& grad_output) {
  BD_OBS_KERNEL("kernel.maxpool_bwd", grad_output.numel());
  Tensor grad_input(input_shape);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  // Argmax indices always point inside the plane that produced them, so
  // scattering per (sample, channel) plane never crosses chunk boundaries
  // even when pooling windows overlap.
  const std::int64_t plane = grad_output.size(2) * grad_output.size(3);
  const std::int64_t planes = grad_output.numel() / plane;
  runtime::parallel_for(0, planes, runtime::grain_for_cost(plane),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t p = lo; p < hi; ++p) {
                            for (std::int64_t i = p * plane;
                                 i < (p + 1) * plane; ++i) {
                              const std::int64_t idx =
                                  argmax[static_cast<std::size_t>(i)];
                              if (idx >= 0) gi[idx] += go[i];
                            }
                          }
                        });
  return grad_input;
}

Tensor avgpool2d_forward(const Tensor& input, const Pool2dSpec& spec) {
  check_pool_input(input);
  const std::int64_t n = input.size(0), c = input.size(1);
  const std::int64_t h = input.size(2), w = input.size(3);
  const std::int64_t oh = conv_out_size(h, spec.kernel, spec.stride, spec.padding);
  const std::int64_t ow = conv_out_size(w, spec.kernel, spec.stride, spec.padding);
  const float inv_area =
      1.0f / static_cast<float>(spec.kernel * spec.kernel);

  BD_OBS_KERNEL("kernel.avgpool_fwd",
                n * c * oh * ow * spec.kernel * spec.kernel);
  Tensor out({n, c, oh, ow});
  const float* pin = input.data();
  float* pout = out.data();

  runtime::parallel_for(
      0, n * c,
      runtime::grain_for_cost(oh * ow * spec.kernel * spec.kernel),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const std::int64_t base = p * h * w;
          std::int64_t oi = p * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
              double acc = 0.0;
              for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
                const std::int64_t iy = oy * spec.stride - spec.padding + ky;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                  const std::int64_t ix = ox * spec.stride - spec.padding + kx;
                  if (ix < 0 || ix >= w) continue;
                  acc += pin[base + iy * w + ix];
                }
              }
              pout[oi] = static_cast<float>(acc) * inv_area;
            }
          }
        }
      });
  return out;
}

Tensor avgpool2d_backward(const Shape& input_shape, const Tensor& grad_output,
                          const Pool2dSpec& spec) {
  Tensor grad_input(input_shape);
  const std::int64_t n = input_shape[0], c = input_shape[1];
  const std::int64_t h = input_shape[2], w = input_shape[3];
  const std::int64_t oh = grad_output.size(2), ow = grad_output.size(3);
  BD_OBS_KERNEL("kernel.avgpool_bwd",
                n * c * oh * ow * spec.kernel * spec.kernel);
  const float inv_area =
      1.0f / static_cast<float>(spec.kernel * spec.kernel);

  float* gi = grad_input.data();
  const float* go = grad_output.data();

  // Scatter-accumulate stays inside each (sample, channel) plane, so
  // plane-level chunks never collide even with overlapping windows.
  runtime::parallel_for(
      0, n * c,
      runtime::grain_for_cost(oh * ow * spec.kernel * spec.kernel),
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t p = lo; p < hi; ++p) {
          const std::int64_t base = p * h * w;
          std::int64_t oi = p * oh * ow;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox, ++oi) {
              const float g = go[oi] * inv_area;
              for (std::int64_t ky = 0; ky < spec.kernel; ++ky) {
                const std::int64_t iy = oy * spec.stride - spec.padding + ky;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t kx = 0; kx < spec.kernel; ++kx) {
                  const std::int64_t ix = ox * spec.stride - spec.padding + kx;
                  if (ix < 0 || ix >= w) continue;
                  gi[base + iy * w + ix] += g;
                }
              }
            }
          }
        }
      });
  return grad_input;
}

Tensor global_avgpool_forward(const Tensor& input) {
  check_pool_input(input);
  const std::int64_t n = input.size(0), c = input.size(1);
  const std::int64_t hw = input.size(2) * input.size(3);
  BD_OBS_KERNEL("kernel.global_avgpool_fwd", n * c * hw);
  Tensor out({n, c, 1, 1});
  const float* pin = input.data();
  float* pout = out.data();
  runtime::parallel_for(0, n * c, runtime::grain_for_cost(hw),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            double acc = 0.0;
                            const float* plane = pin + i * hw;
                            for (std::int64_t j = 0; j < hw; ++j) {
                              acc += plane[j];
                            }
                            pout[i] =
                                static_cast<float>(acc / static_cast<double>(hw));
                          }
                        });
  return out;
}

Tensor global_avgpool_backward(const Shape& input_shape,
                               const Tensor& grad_output) {
  Tensor grad_input(input_shape);
  const std::int64_t n = input_shape[0], c = input_shape[1];
  const std::int64_t hw = input_shape[2] * input_shape[3];
  BD_OBS_KERNEL("kernel.global_avgpool_bwd", n * c * hw);
  const float inv = 1.0f / static_cast<float>(hw);
  float* gi = grad_input.data();
  const float* go = grad_output.data();
  runtime::parallel_for(0, n * c, runtime::grain_for_cost(hw),
                        [&](std::int64_t lo, std::int64_t hi) {
                          for (std::int64_t i = lo; i < hi; ++i) {
                            const float g = go[i] * inv;
                            float* plane = gi + i * hw;
                            for (std::int64_t j = 0; j < hw; ++j) plane[j] = g;
                          }
                        });
  return grad_input;
}

}  // namespace bd
