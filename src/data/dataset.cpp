#include "data/dataset.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bd::data {

ImageDataset::ImageDataset(Shape image_shape, std::int64_t num_classes)
    : image_shape_(std::move(image_shape)), num_classes_(num_classes) {
  if (image_shape_.size() != 3) {
    throw std::invalid_argument("ImageDataset: image shape must be (C,H,W)");
  }
  if (num_classes_ <= 0) {
    throw std::invalid_argument("ImageDataset: num_classes must be positive");
  }
}

void ImageDataset::add(Tensor image, std::int64_t label) {
  if (image.shape() != image_shape_) {
    throw std::invalid_argument("ImageDataset::add: image shape " +
                                shape_string(image.shape()) +
                                " does not match dataset shape " +
                                shape_string(image_shape_));
  }
  if (label < 0 || label >= num_classes_) {
    throw std::invalid_argument("ImageDataset::add: label out of range");
  }
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

std::vector<std::size_t> ImageDataset::indices_of_class(
    std::int64_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) out.push_back(i);
  }
  return out;
}

ImageDataset ImageDataset::subset(
    const std::vector<std::size_t>& indices) const {
  ImageDataset out(image_shape_, num_classes_);
  out.reserve(indices.size());
  for (const auto i : indices) {
    out.add(images_.at(i), labels_.at(i));
  }
  return out;
}

ImageDataset ImageDataset::sample_per_class(std::int64_t per_class,
                                            Rng& rng) const {
  if (per_class <= 0) {
    throw std::invalid_argument("sample_per_class: per_class must be > 0");
  }
  ImageDataset out(image_shape_, num_classes_);
  out.reserve(static_cast<std::size_t>(per_class * num_classes_));
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    auto idx = indices_of_class(c);
    if (static_cast<std::int64_t>(idx.size()) < per_class) {
      throw std::runtime_error("sample_per_class: class " + std::to_string(c) +
                               " has only " + std::to_string(idx.size()) +
                               " examples, need " + std::to_string(per_class));
    }
    rng.shuffle(idx);
    for (std::int64_t k = 0; k < per_class; ++k) {
      out.add(images_[idx[static_cast<std::size_t>(k)]], c);
    }
  }
  return out;
}

std::pair<ImageDataset, ImageDataset> ImageDataset::split(
    double first_fraction, Rng& rng) const {
  if (size() < 2) {
    throw std::runtime_error("ImageDataset::split: need at least 2 examples");
  }
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  auto n_first = static_cast<std::size_t>(
      static_cast<double>(size()) * first_fraction + 0.5);
  n_first = std::clamp<std::size_t>(n_first, 1, size() - 1);

  const std::vector<std::size_t> first(order.begin(),
                                       order.begin() + static_cast<std::ptrdiff_t>(n_first));
  const std::vector<std::size_t> second(order.begin() + static_cast<std::ptrdiff_t>(n_first),
                                        order.end());
  return {subset(first), subset(second)};
}

std::pair<ImageDataset, ImageDataset> ImageDataset::split_per_class(
    double first_fraction, Rng& rng) const {
  std::vector<std::size_t> first_idx, second_idx;
  for (std::int64_t c = 0; c < num_classes_; ++c) {
    auto idx = indices_of_class(c);
    if (idx.size() < 2) {
      throw std::runtime_error("split_per_class: class " + std::to_string(c) +
                               " needs at least 2 examples");
    }
    rng.shuffle(idx);
    auto n_first = static_cast<std::size_t>(
        static_cast<double>(idx.size()) * first_fraction + 0.5);
    n_first = std::clamp<std::size_t>(n_first, 1, idx.size() - 1);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < n_first ? first_idx : second_idx).push_back(idx[i]);
    }
  }
  return {subset(first_idx), subset(second_idx)};
}

Batch stack(const ImageDataset& data,
            const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    throw std::invalid_argument("stack: empty index list");
  }
  const Shape& img = data.image_shape();
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  Batch batch;
  batch.images = Tensor({n, img[0], img[1], img[2]});
  batch.labels.resize(indices.size());
  const std::int64_t stride = img[0] * img[1] * img[2];
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Tensor& src = data.image(indices[i]);
    std::copy(src.data(), src.data() + stride,
              batch.images.data() + static_cast<std::int64_t>(i) * stride);
    batch.labels[i] = data.label(indices[i]);
  }
  return batch;
}

Batch stack_all(const ImageDataset& data) {
  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);
  return stack(data, idx);
}

DataLoader::DataLoader(const ImageDataset& data, std::int64_t batch_size,
                       Rng& rng, bool shuffle)
    : data_(data), batch_size_(batch_size), rng_(rng), shuffle_(shuffle) {
  if (batch_size_ <= 0) {
    throw std::invalid_argument("DataLoader: batch_size must be positive");
  }
  order_.resize(data.size());
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

void DataLoader::reset() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

std::int64_t DataLoader::batches_per_epoch() const {
  return (static_cast<std::int64_t>(data_.size()) + batch_size_ - 1) /
         batch_size_;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t end = std::min(
      order_.size(), cursor_ + static_cast<std::size_t>(batch_size_));
  const std::vector<std::size_t> indices(order_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                                         order_.begin() + static_cast<std::ptrdiff_t>(end));
  cursor_ = end;
  out = stack(data_, indices);
  return true;
}

}  // namespace bd::data
