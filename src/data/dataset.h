// Dataset containers and sampling utilities.
//
// The evaluation protocol follows the paper: the attacker trains on a
// poisoned training set; the defender only sees `k` clean samples per class
// (SPC in {2, 10, 100}) plus synthesized backdoor variants of those same
// samples; ACC/ASR/RA are measured on a held-out test set.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace bd::data {

/// A labelled image set. Images are individual (C,H,W) tensors in [0,1].
class ImageDataset {
 public:
  ImageDataset(Shape image_shape, std::int64_t num_classes);

  void add(Tensor image, std::int64_t label);
  void reserve(std::size_t n) { images_.reserve(n); labels_.reserve(n); }

  std::size_t size() const { return images_.size(); }
  bool empty() const { return images_.empty(); }
  const Tensor& image(std::size_t i) const { return images_.at(i); }
  std::int64_t label(std::size_t i) const { return labels_.at(i); }
  const Shape& image_shape() const { return image_shape_; }
  std::int64_t num_classes() const { return num_classes_; }

  /// Indices of all examples with the given label.
  std::vector<std::size_t> indices_of_class(std::int64_t label) const;

  /// New dataset holding the selected examples (deep label copy, shared
  /// image storage).
  ImageDataset subset(const std::vector<std::size_t>& indices) const;

  /// Samples exactly `per_class` examples of every class. Throws if any
  /// class has fewer examples than requested.
  ImageDataset sample_per_class(std::int64_t per_class, Rng& rng) const;

  /// Splits into (first, second) with `first_fraction` of examples in the
  /// first part, shuffled. Guarantees both parts are non-empty when
  /// size() >= 2 (the paper's SPC=2 setting: 1 train / 1 validation).
  std::pair<ImageDataset, ImageDataset> split(double first_fraction,
                                              Rng& rng) const;

  /// Splits class-by-class so both parts see every class. With 2 examples
  /// per class this yields exactly 1 train / 1 validation per class, the
  /// paper's SPC=2 protocol. Requires >= 2 examples of every class.
  std::pair<ImageDataset, ImageDataset> split_per_class(double first_fraction,
                                                        Rng& rng) const;

 private:
  Shape image_shape_;
  std::int64_t num_classes_;
  std::vector<Tensor> images_;
  std::vector<std::int64_t> labels_;
};

/// A training batch: stacked (N,C,H,W) images + labels.
struct Batch {
  Tensor images;
  std::vector<std::int64_t> labels;
  std::int64_t size() const { return images.defined() ? images.size(0) : 0; }
};

/// Stacks the given examples into one batch.
Batch stack(const ImageDataset& data, const std::vector<std::size_t>& indices);

/// Stacks the whole dataset (careful with large sets).
Batch stack_all(const ImageDataset& data);

/// Iterates a dataset in shuffled mini-batches.
class DataLoader {
 public:
  DataLoader(const ImageDataset& data, std::int64_t batch_size, Rng& rng,
             bool shuffle = true);

  /// Returns false when the epoch is exhausted.
  bool next(Batch& out);

  /// Restarts the epoch (reshuffles when enabled).
  void reset();

  std::int64_t batches_per_epoch() const;

 private:
  const ImageDataset& data_;
  std::int64_t batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace bd::data
