// Training-time data augmentation (opt-in; the paper-scale benches train
// without it, but downstream users hardening models will want it).
//
// The standard CIFAR-style recipe: random horizontal flip, random crop
// with zero padding, and brightness jitter. All draws come from the
// caller's Rng so augmented training stays deterministic per seed.
#pragma once

#include "data/dataset.h"
#include "util/rng.h"

namespace bd::data {

struct AugmentConfig {
  bool hflip = false;
  /// Pad by this many pixels on every side, then crop back at a random
  /// offset (0 disables).
  std::int64_t crop_padding = 0;
  /// Multiply the image by U(1-j, 1+j) (0 disables); result clamped [0,1].
  float brightness_jitter = 0.0f;

  bool enabled() const {
    return hflip || crop_padding > 0 || brightness_jitter > 0.0f;
  }
};

/// Augmented copy of one (C,H,W) image.
Tensor augment_image(const Tensor& image, const AugmentConfig& config,
                     Rng& rng);

/// Augments every image of a stacked batch in place.
void augment_batch_inplace(Batch& batch, const AugmentConfig& config,
                           Rng& rng);

}  // namespace bd::data
