#include "data/augment.h"

#include <algorithm>
#include <stdexcept>

namespace bd::data {

Tensor augment_image(const Tensor& image, const AugmentConfig& config,
                     Rng& rng) {
  if (image.dim() != 3) {
    throw std::invalid_argument("augment_image: expected (C,H,W)");
  }
  Tensor out = image.clone();
  const std::int64_t c = out.size(0), h = out.size(1), w = out.size(2);

  if (config.hflip && rng.bernoulli(0.5)) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        float* row = out.data() + (ch * h + y) * w;
        std::reverse(row, row + w);
      }
    }
  }

  if (config.crop_padding > 0) {
    const std::int64_t p = config.crop_padding;
    // Random offset in [-p, p] for each axis; out-of-bounds reads are zero.
    const std::int64_t dy = rng.uniform_int(-p, p);
    const std::int64_t dx = rng.uniform_int(-p, p);
    Tensor shifted({c, h, w});
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < h; ++y) {
        const std::int64_t sy = y + dy;
        if (sy < 0 || sy >= h) continue;
        for (std::int64_t x = 0; x < w; ++x) {
          const std::int64_t sx = x + dx;
          if (sx < 0 || sx >= w) continue;
          shifted.data()[(ch * h + y) * w + x] =
              out.data()[(ch * h + sy) * w + sx];
        }
      }
    }
    out = std::move(shifted);
  }

  if (config.brightness_jitter > 0.0f) {
    const float scale = static_cast<float>(
        rng.uniform(1.0 - config.brightness_jitter,
                    1.0 + config.brightness_jitter));
    float* p = out.data();
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      p[i] = std::min(1.0f, std::max(0.0f, p[i] * scale));
    }
  }
  return out;
}

void augment_batch_inplace(Batch& batch, const AugmentConfig& config,
                           Rng& rng) {
  if (!config.enabled() || batch.size() == 0) return;
  const Shape& s = batch.images.shape();  // (N,C,H,W)
  const std::int64_t stride = s[1] * s[2] * s[3];
  for (std::int64_t i = 0; i < s[0]; ++i) {
    Tensor img({s[1], s[2], s[3]});
    std::copy(batch.images.data() + i * stride,
              batch.images.data() + (i + 1) * stride, img.data());
    const Tensor augmented = augment_image(img, config, rng);
    std::copy(augmented.data(), augmented.data() + stride,
              batch.images.data() + i * stride);
  }
}

}  // namespace bd::data
