#include "data/synth.h"

#include <cmath>
#include <numbers>

namespace bd::data {

namespace {

constexpr float kPi = std::numbers::pi_v<float>;

float clamp01(float x) { return std::min(1.0f, std::max(0.0f, x)); }

// Ten visually distinct base colours for the CIFAR stand-in.
constexpr float kPalette[10][3] = {
    {0.85f, 0.20f, 0.20f}, {0.20f, 0.75f, 0.25f}, {0.20f, 0.35f, 0.85f},
    {0.85f, 0.75f, 0.20f}, {0.70f, 0.25f, 0.75f}, {0.25f, 0.75f, 0.75f},
    {0.90f, 0.50f, 0.15f}, {0.55f, 0.55f, 0.55f}, {0.35f, 0.20f, 0.10f},
    {0.95f, 0.60f, 0.70f},
};

// Border colours for the GTSRB stand-in (red, blue, yellow like real signs).
constexpr float kBorderColors[3][3] = {
    {0.85f, 0.10f, 0.10f}, {0.10f, 0.25f, 0.85f}, {0.90f, 0.80f, 0.10f}};

void add_noise(Tensor& img, float stddev, Rng& rng) {
  float* p = img.data();
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    p[i] = clamp01(p[i] + static_cast<float>(rng.normal(0.0, stddev)));
  }
}

}  // namespace

Tensor render_synth_cifar_image(std::int64_t label, const SynthConfig& config,
                                Rng& rng) {
  const std::int64_t h = config.height, w = config.width;
  Tensor img({3, h, w});

  // Class signal: stripe orientation (unique per class) and frequency
  // (label mod 3), both jittered per image. Colour is mostly a NUISANCE
  // variable (random per image) with only a weak class hint, so one or two
  // samples per class are not enough to relearn the task - the data regime
  // the paper's SPC sweep probes.
  const float theta = static_cast<float>(label) * kPi / 10.0f +
                      static_cast<float>(rng.uniform(-0.08, 0.08));
  const float freq = 2.0f + static_cast<float>(label % 3) +
                     static_cast<float>(rng.uniform(-0.15, 0.15));
  const float phase = static_cast<float>(rng.uniform(0.0, 2.0 * kPi));
  const float ct = std::cos(theta), st = std::sin(theta);

  const float* hint = kPalette[label % 10];
  float base[3];
  for (int c = 0; c < 3; ++c) {
    base[c] = static_cast<float>(rng.uniform(0.25, 0.75));
  }

  float* p = img.data();
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const float u = static_cast<float>(x) / static_cast<float>(w);
        const float v = static_cast<float>(y) / static_cast<float>(h);
        const float stripe =
            std::sin(2.0f * kPi * freq * (u * ct + v * st) + phase);
        const float value = 0.45f * base[c] + 0.12f * hint[c] +
                            0.30f * stripe + 0.12f;
        p[(c * h + y) * w + x] = clamp01(value);
      }
    }
  }
  add_noise(img, config.noise_stddev, rng);
  return img;
}

Tensor render_synth_gtsrb_image(std::int64_t label, const SynthConfig& config,
                                Rng& rng) {
  const std::int64_t h = config.height, w = config.width;
  Tensor img({3, h, w});

  const std::int64_t shape_id = label % 4;
  const std::int64_t color_id = (label / 4) % 3;
  const std::int64_t glyph_id = label / 12;  // 0..3 for 43 classes
  const float* border = kBorderColors[color_id];

  const float cx = 0.5f + static_cast<float>(rng.uniform(-0.06, 0.06));
  const float cy = 0.5f + static_cast<float>(rng.uniform(-0.06, 0.06));
  const float radius = 0.38f + static_cast<float>(rng.uniform(-0.04, 0.04));
  const float glyph_theta = static_cast<float>(glyph_id) * kPi / 4.0f;
  const float gct = std::cos(glyph_theta), gst = std::sin(glyph_theta);
  const float glyph_freq = 3.0f + static_cast<float>(glyph_id);

  // Signed "inside shape" predicate; s in [0,1]: 1 deep inside, 0 outside.
  auto shape_coverage = [&](float u, float v) -> float {
    const float dx = u - cx, dy = v - cy;
    float d;
    switch (shape_id) {
      case 0:  // circle
        d = std::sqrt(dx * dx + dy * dy);
        break;
      case 1:  // square
        d = std::max(std::fabs(dx), std::fabs(dy));
        break;
      case 2:  // diamond
        d = (std::fabs(dx) + std::fabs(dy)) * 0.75f;
        break;
      default:  // upward triangle: distance heuristic
        d = std::max(-dy + 0.1f, std::fabs(dx) * 1.4f + dy * 0.6f);
        break;
    }
    return clamp01((radius - d) / 0.08f);
  };

  float* p = img.data();
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float u = static_cast<float>(x) / static_cast<float>(w);
      const float v = static_cast<float>(y) / static_cast<float>(h);
      const float cover = shape_coverage(u, v);
      // Border band: inside the shape but near its boundary.
      const float border_band = cover * (1.0f - cover) * 4.0f;
      const float glyph =
          0.5f + 0.5f * std::sin(2.0f * kPi * glyph_freq * (u * gct + v * gst));
      for (std::int64_t c = 0; c < 3; ++c) {
        const float background = 0.45f;
        const float interior = 0.85f - 0.45f * glyph;  // glyph texture
        float value = background * (1.0f - cover) + interior * cover;
        value = value * (1.0f - border_band) + border[c] * border_band;
        p[(c * h + y) * w + x] = clamp01(value);
      }
    }
  }
  add_noise(img, config.noise_stddev, rng);
  return img;
}

namespace {

TrainTest generate(const SynthConfig& config, std::int64_t num_classes,
                   Tensor (*render)(std::int64_t, const SynthConfig&, Rng&),
                   Rng& rng) {
  const Shape image_shape{3, config.height, config.width};
  TrainTest out{ImageDataset(image_shape, num_classes),
                ImageDataset(image_shape, num_classes)};
  out.train.reserve(
      static_cast<std::size_t>(config.train_per_class * num_classes));
  out.test.reserve(
      static_cast<std::size_t>(config.test_per_class * num_classes));
  for (std::int64_t c = 0; c < num_classes; ++c) {
    for (std::int64_t i = 0; i < config.train_per_class; ++i) {
      out.train.add(render(c, config, rng), c);
    }
    for (std::int64_t i = 0; i < config.test_per_class; ++i) {
      out.test.add(render(c, config, rng), c);
    }
  }
  return out;
}

}  // namespace

TrainTest make_synth_cifar(const SynthConfig& config, Rng& rng) {
  return generate(config, kSynthCifarClasses, render_synth_cifar_image, rng);
}

TrainTest make_synth_gtsrb(const SynthConfig& config, Rng& rng) {
  return generate(config, kSynthGtsrbClasses, render_synth_gtsrb_image, rng);
}

}  // namespace bd::data
